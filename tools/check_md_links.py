#!/usr/bin/env python3
"""Fail on broken intra-repo links in the repository's markdown files.

Checks every markdown link/image whose target is not an external URL or
a pure in-page anchor, in both inline ``[text](target)`` and
reference-style ``[text][label]`` + ``[label]: target`` forms:

  * the referenced file (resolved relative to the markdown file, or to
    the repo root for ``/``-prefixed targets) must exist;
  * for ``target#anchor`` forms pointing at a markdown file, the anchor
    must match a heading of that file (GitHub slug rules, simplified);
  * every ``[text][label]`` usage must have a matching definition in the
    same file.

The walker covers every ``*.md`` outside build/VCS directories — root
docs like ISSUE.md and CHANGES.md included — and, as a guard against a
future refactor silently narrowing the walk, verifies that the repo's
required root documents were actually scanned.

External schemes (http/https/mailto) are not fetched — CI must not
depend on the network.  Exit status: 0 clean, 1 broken links (each
printed as ``file:line: message``).

Usage: tools/check_md_links.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
# [text][label] usage; excludes [text](target) and [label]: definitions.
REF_USE_RE = re.compile(r"!?\[[^\]]+\]\[([^\]]+)\]")
# [label]: target definition (must start the line, possibly indented).
REF_DEF_RE = re.compile(r"^ {0,3}\[([^\]]+)\]:\s+(\S+)")
EXTERNAL_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
SKIP_DIRS = {".git", "build", "build-asan", ".claude"}
# Root documents that must be part of every scan; a walker regression
# that drops any of these is an error, not a silent coverage loss.
REQUIRED_ROOT_DOCS = ("README.md", "ROADMAP.md", "ISSUE.md", "CHANGES.md")


def heading_slugs(md_path):
    """GitHub-style slugs of every heading in *md_path*."""
    slugs = set()
    in_fence = False
    with open(md_path, encoding="utf-8") as fh:
        for line in fh:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence or not line.startswith("#"):
                continue
            text = line.lstrip("#").strip()
            # Strip inline code/emphasis markers, then slugify.
            text = re.sub(r"[`*_]", "", text)
            slug = re.sub(r"[^\w\- ]", "", text.lower())
            slug = slug.replace(" ", "-")
            slugs.add(slug)
    return slugs


def md_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                yield os.path.join(dirpath, name)


def check_target(root, md, rel_md, lineno, target, errors):
    """Validate one link target (shared by inline and reference forms)."""
    if EXTERNAL_RE.match(target) or target.startswith("#"):
        return
    path, _, anchor = target.partition("#")
    if path.startswith("/"):
        resolved = os.path.join(root, path.lstrip("/"))
    else:
        resolved = os.path.join(os.path.dirname(md), path)
    resolved = os.path.normpath(resolved)
    if not os.path.exists(resolved):
        errors.append(f"{rel_md}:{lineno}: broken link "
                      f"'{target}' ({path} not found)")
        return
    if anchor and resolved.endswith(".md"):
        if anchor.lower() not in heading_slugs(resolved):
            errors.append(f"{rel_md}:{lineno}: broken anchor "
                          f"'{target}' (no heading #{anchor})")


def check(root):
    errors = []
    scanned = set()
    for md in sorted(md_files(root)):
        rel_md = os.path.relpath(md, root)
        scanned.add(rel_md)
        in_fence = False
        ref_defs = {}
        ref_uses = []
        with open(md, encoding="utf-8") as fh:
            for lineno, line in enumerate(fh, 1):
                if line.lstrip().startswith("```"):
                    in_fence = not in_fence
                    continue
                if in_fence:
                    continue
                defn = REF_DEF_RE.match(line)
                if defn:
                    ref_defs[defn.group(1).lower()] = defn.group(2)
                    check_target(root, md, rel_md, lineno, defn.group(2),
                                 errors)
                    continue
                for match in LINK_RE.finditer(line):
                    check_target(root, md, rel_md, lineno, match.group(1),
                                 errors)
                for match in REF_USE_RE.finditer(line):
                    ref_uses.append((lineno, match.group(1)))
        for lineno, label in ref_uses:
            if label.lower() not in ref_defs:
                errors.append(f"{rel_md}:{lineno}: undefined link "
                              f"reference '[{label}]'")
    for name in REQUIRED_ROOT_DOCS:
        if name not in scanned and os.path.exists(os.path.join(root, name)):
            errors.append(f"{name}: exists but was not scanned "
                          f"(walker coverage regression)")
    return errors


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    errors = check(root)
    for err in errors:
        print(err)
    if errors:
        print(f"{len(errors)} broken markdown link(s)")
        return 1
    print("markdown links OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
