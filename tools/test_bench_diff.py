#!/usr/bin/env python3
"""Unit tests for the bench_diff row-matching and classification logic.

Run directly (python3 tools/test_bench_diff.py) or through ctest (the
CMake target registers it when a Python3 interpreter is found).
"""

import os
import sys
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bench_diff  # noqa: E402


def throughput_doc(rows, plan_rows=None):
    """A minimal BENCH_throughput_inference-shaped document; plan_rows
    maps (backend, model, instances, cache) to resident_bytes and lands
    in the same results list, as the bench emits it."""
    results = [
        {"engine": {"backend": b, "stream_len": n}, "model": m,
         "cohort": c, "images_per_sec": v}
        for (b, m, c, n), v in rows.items()]
    for (b, m, i, cache), v in (plan_rows or {}).items():
        results.append({"section": "plan_cache",
                        "engine": {"backend": b, "stream_len": 1024},
                        "model": m, "instances": i, "cache": cache,
                        "resident_bytes": v,
                        "warmup_seconds": 0.1})
    return {"results": results}


def frontier_doc(rows):
    """A minimal BENCH_mixed_precision-shaped document; rows maps
    (backend, model, stage_lens) to (images_per_sec, accuracy_pt)."""
    return {"results": [
        {"section": "frontier",
         "engine": {"backend": b, "stream_len": 1024},
         "model": m, "stage_lens": lens,
         "images_per_sec": ips, "accuracy_pt": acc}
        for (b, m, lens), (ips, acc) in rows.items()]}


def latency_doc(runs):
    """A minimal BENCH_serving_tail-shaped document."""
    return {"results": {"runs": [
        {"policy": p, "arrival": a,
         "tenants": [{"tenant": t, "latency_ms_p99": v}
                     for t, v in tenants.items()]}
        for (p, a), tenants in runs.items()]}}


class ExtractRowsTest(unittest.TestCase):
    def test_throughput_shape_detected(self):
        doc = throughput_doc({("aqfp-sorter", "tiny", 8, 1024): 25.0})
        kind, sections = bench_diff.extract_rows(doc)
        self.assertEqual(kind, "throughput")
        metric, lower, rows, abs_threshold = sections[0]
        self.assertEqual(metric, "img/s")
        self.assertFalse(lower)
        self.assertIsNone(abs_threshold)
        self.assertEqual(rows[("aqfp-sorter", "tiny", 8, 1024)], 25.0)

    def test_latency_shape_detected(self):
        doc = latency_doc({("fifo", "poisson"): {"gold": 120.0,
                                                 "bulk": 340.0}})
        kind, sections = bench_diff.extract_rows(doc)
        self.assertEqual(kind, "latency")
        self.assertEqual(len(sections), 1)
        metric, lower, rows, _ = sections[0]
        self.assertTrue(lower)
        self.assertEqual(rows[("fifo", "poisson", "gold")], 120.0)
        self.assertEqual(rows[("fifo", "poisson", "bulk")], 340.0)

    def test_empty_results_is_throughput_with_no_rows(self):
        kind, sections = bench_diff.extract_rows({"results": []})
        self.assertEqual(kind, "throughput")
        for _, _, rows, _ in sections:
            self.assertEqual(rows, {})

    def test_plan_cache_rows_form_their_own_section(self):
        doc = throughput_doc(
            {("aqfp-sorter", "tiny", 8, 1024): 25.0},
            plan_rows={("aqfp-sorter", "tiny", 4, "on"): 4096,
                       ("aqfp-sorter", "tiny", 4, "off"): 16384})
        kind, sections = bench_diff.extract_rows(doc)
        self.assertEqual(kind, "throughput")
        _, _, tput, _ = sections[0]
        metric, lower, plan, _ = sections[1]
        self.assertEqual(metric, "resident bytes")
        self.assertTrue(lower, "resident bytes: lower is better")
        # Plan-cache rows never leak into the throughput section (they
        # carry no images_per_sec) and vice versa.
        self.assertEqual(list(tput), [("aqfp-sorter", "tiny", 8, 1024)])
        self.assertEqual(plan[("aqfp-sorter", "tiny", 4, "on")], 4096)
        self.assertEqual(plan[("aqfp-sorter", "tiny", 4, "off")], 16384)

    def test_bytes_growth_classified_as_regression(self):
        base = bench_diff.plan_bytes_rows(
            throughput_doc({}, plan_rows={
                ("aqfp-sorter", "tiny", 4, "on"): 4096})["results"])
        fresh = bench_diff.plan_bytes_rows(
            throughput_doc({}, plan_rows={
                ("aqfp-sorter", "tiny", 4, "on"): 8192})["results"])
        entries = bench_diff.compare(base, fresh, threshold=10.0,
                                     lower_is_better=True)
        self.assertEqual(entries[0]["status"], "regression")

    def test_plan_rows_without_bytes_are_skipped(self):
        results = [{"section": "plan_cache",
                    "engine": {"backend": "aqfp-sorter"},
                    "model": "tiny", "instances": 4, "cache": "on"}]
        self.assertEqual(bench_diff.plan_bytes_rows(results), {})

    def test_frontier_rows_form_their_own_sections(self):
        doc = frontier_doc(
            {("aqfp-sorter", "tiny", "1024,1024,1024"): (20.0, 85.0),
             ("aqfp-sorter", "tiny", "512,256,256"): (31.0, 84.7)})
        kind, sections = bench_diff.extract_rows(doc)
        self.assertEqual(kind, "throughput")
        # Frontier rows never leak into the plain throughput section
        # (their key shape has no cohort) and vice versa.
        self.assertEqual(sections[0][2], {})
        metric, lower, speed, abs_threshold = sections[2]
        self.assertEqual(metric, "frontier img/s")
        self.assertFalse(lower)
        self.assertIsNone(abs_threshold)
        self.assertEqual(
            speed[("aqfp-sorter", "tiny", "512,256,256")], 31.0)
        metric, lower, acc, abs_threshold = sections[3]
        self.assertEqual(metric, "frontier accuracy pt")
        self.assertFalse(lower, "accuracy: higher is better")
        self.assertEqual(abs_threshold, bench_diff.ACCURACY_DROP_PT)
        self.assertEqual(
            acc[("aqfp-sorter", "tiny", "1024,1024,1024")], 85.0)

    def test_frontier_accuracy_gates_on_absolute_points(self):
        base = {("aqfp-sorter", "tiny", "512,256,256"): 85.0}
        ok = bench_diff.compare(
            base, {("aqfp-sorter", "tiny", "512,256,256"): 84.6},
            threshold=10.0, lower_is_better=False,
            abs_threshold=bench_diff.ACCURACY_DROP_PT)
        self.assertEqual(ok[0]["status"], "ok",
                         "0.4pt drop stays inside the 0.5pt budget even "
                         "though it is < 1% relative")
        bad = bench_diff.compare(
            base, {("aqfp-sorter", "tiny", "512,256,256"): 84.4},
            threshold=10.0, lower_is_better=False,
            abs_threshold=bench_diff.ACCURACY_DROP_PT)
        self.assertEqual(bad[0]["status"], "regression",
                         "0.6pt drop breaks the budget even though it is "
                         "far below the 10% relative threshold")

    def test_frontier_speed_regression_is_relative(self):
        base = {("cmos-apc", "tiny", "512,256,256"): 100.0}
        entries = bench_diff.compare(
            base, {("cmos-apc", "tiny", "512,256,256"): 85.0},
            threshold=10.0, lower_is_better=False)
        self.assertEqual(entries[0]["status"], "regression")


class CompareTest(unittest.TestCase):
    def test_throughput_regression_is_a_drop(self):
        base = {("a",): 100.0, ("b",): 100.0}
        fresh = {("a",): 85.0, ("b",): 95.0}
        entries = bench_diff.compare(base, fresh, threshold=10.0,
                                     lower_is_better=False)
        by_key = {e["key"]: e for e in entries}
        self.assertEqual(by_key[("a",)]["status"], "regression")
        self.assertEqual(by_key[("b",)]["status"], "ok")

    def test_latency_regression_is_a_rise(self):
        base = {("fifo", "poisson", "gold"): 100.0,
                ("edf", "poisson", "gold"): 100.0}
        fresh = {("fifo", "poisson", "gold"): 115.0,
                 ("edf", "poisson", "gold"): 85.0}
        entries = bench_diff.compare(base, fresh, threshold=10.0,
                                     lower_is_better=True)
        by_key = {e["key"]: e for e in entries}
        # p99 rising 15% regresses; p99 *dropping* 15% never does.
        self.assertEqual(by_key[("fifo", "poisson", "gold")]["status"],
                         "regression")
        self.assertEqual(by_key[("edf", "poisson", "gold")]["status"],
                         "ok")

    def test_threshold_is_exclusive(self):
        entries = bench_diff.compare({("a",): 100.0}, {("a",): 110.0},
                                     threshold=10.0, lower_is_better=True)
        self.assertEqual(entries[0]["status"], "ok")
        self.assertAlmostEqual(entries[0]["delta_pct"], 10.0)

    def test_missing_and_new_rows_never_regress(self):
        base = {("gone",): 50.0}
        fresh = {("added",): 75.0}
        entries = bench_diff.compare(base, fresh, threshold=10.0,
                                     lower_is_better=False)
        by_key = {e["key"]: e for e in entries}
        self.assertEqual(by_key[("gone",)]["status"], "missing")
        self.assertIsNone(by_key[("gone",)]["fresh"])
        self.assertEqual(by_key[("added",)]["status"], "new")
        self.assertIsNone(by_key[("added",)]["base"])

    def test_zero_baseline_does_not_divide(self):
        entries = bench_diff.compare({("z",): 0.0}, {("z",): 5.0},
                                     threshold=10.0,
                                     lower_is_better=False)
        self.assertEqual(entries[0]["delta_pct"], 0.0)
        self.assertEqual(entries[0]["status"], "ok")

    def test_rows_sorted_by_key(self):
        base = {("b",): 1.0, ("a",): 1.0}
        entries = bench_diff.compare(base, base, threshold=10.0,
                                     lower_is_better=False)
        self.assertEqual([e["key"] for e in entries], [("a",), ("b",)])


if __name__ == "__main__":
    unittest.main()
