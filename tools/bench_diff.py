#!/usr/bin/env python3
"""Compare a fresh bench run against the committed baseline.

Understands two report shapes, detected from the JSON itself:

- Throughput reports (BENCH_throughput_inference.json): rows keyed
  (backend, model, cohort, stream_len), metric images_per_sec, HIGHER
  is better.  The same report carries a second section of plan-cache
  rows (marked "section": "plan_cache") keyed (backend, model,
  instances, cache) with metric resident_bytes, LOWER is better —
  those diff independently of the throughput rows.
- Serving tail-latency reports (BENCH_serving_tail.json): rows keyed
  (policy, arrival, tenant), metric latency_ms_p99, LOWER is better —
  a row regresses when the fresh p99 rises more than the threshold.
- Mixed-precision frontier reports (BENCH_mixed_precision.json): rows
  marked "section": "frontier", keyed (backend, model, stage_lens — the
  comma-joined per-stage length vector).  Each row diffs twice: its
  images_per_sec like any throughput metric (HIGHER is better, percent
  threshold) and its accuracy_pt on an ABSOLUTE scale — a drop of more
  than 0.5 percentage points warns regardless of --threshold, because
  accuracy is the quantity the tuner's budget guarantees.

Rows present on only one side are listed but never fail the run (new
configurations are expected as the benches grow).

A row regresses when the fresh metric moves more than --threshold
(default 10%) in the bad direction.  The default mode is record-only —
regressions are printed as warnings and the exit status stays 0,
because CI runs on noisy shared machines and numbers recorded under a
different SIMD dispatch level (see the build stamp's "simd_level") are
not directly comparable.  Pass --fail-on-regress for a hard gate on
quiet hardware.

Usage: tools/bench_diff.py BASELINE.json FRESH.json
           [--threshold PCT] [--fail-on-regress]
"""

import argparse
import json
import sys


def throughput_rows(results):
    """{(backend, model, cohort, stream_len): images_per_sec} from a
    throughput report's results list.  Rows without an images_per_sec
    metric (e.g. the plan-cache section sharing the list) are skipped,
    not recorded as None."""
    rows = {}
    for row in results or []:
        if row.get("section") == "frontier":
            continue  # frontier rows diff in their own sections
        if row.get("images_per_sec") is None:
            continue
        engine = row.get("engine", {})
        key = (engine.get("backend"), row.get("model"), row.get("cohort"),
               engine.get("stream_len"))
        rows[key] = row.get("images_per_sec")
    return rows


def plan_bytes_rows(results):
    """{(backend, model, instances, cache): resident_bytes} from the
    plan-cache rows of a throughput report's results list."""
    rows = {}
    for row in results or []:
        if row.get("section") != "plan_cache":
            continue
        if row.get("resident_bytes") is None:
            continue
        engine = row.get("engine", {})
        key = (engine.get("backend"), row.get("model"),
               row.get("instances"), row.get("cache"))
        rows[key] = row.get("resident_bytes")
    return rows


def frontier_rows(results, metric):
    """{(backend, model, stage_lens): metric} from the frontier rows of
    a mixed-precision report's results list; metric is "images_per_sec"
    or "accuracy_pt"."""
    rows = {}
    for row in results or []:
        if row.get("section") != "frontier":
            continue
        if row.get(metric) is None:
            continue
        engine = row.get("engine", {})
        key = (engine.get("backend"), row.get("model"),
               row.get("stage_lens"))
        rows[key] = row.get(metric)
    return rows


def latency_rows(results):
    """{(policy, arrival, tenant): latency_ms_p99} from a serving
    tail-latency report's results object."""
    rows = {}
    for run in results.get("runs", []):
        for tenant in run.get("tenants", []):
            key = (run.get("policy"), run.get("arrival"),
                   tenant.get("tenant"))
            rows[key] = tenant.get("latency_ms_p99")
    return rows


#: Absolute accuracy budget mirrored from the tuner's default
#: TuneOptions::maxAccuracyDrop (0.005 fraction = 0.5 points).
ACCURACY_DROP_PT = 0.5


def extract_rows(doc):
    """(kind, sections) from one loaded BENCH_*.json document, where
    sections is a list of (metric label, lower_is_better, {key: value},
    abs_threshold) diffed independently of each other; kind detection is
    structural, so the tool needs no per-bench flag.  abs_threshold is
    None for percent-threshold metrics; a number makes the section warn
    on absolute drops beyond it (frontier accuracy points)."""
    results = doc.get("results")
    if isinstance(results, dict) and "runs" in results:
        return "latency", [("p99 ms", True, latency_rows(results), None)]
    return "throughput", [
        ("img/s", False, throughput_rows(results), None),
        ("resident bytes", True, plan_bytes_rows(results), None),
        ("frontier img/s", False,
         frontier_rows(results, "images_per_sec"), None),
        ("frontier accuracy pt", False,
         frontier_rows(results, "accuracy_pt"), ACCURACY_DROP_PT)]


def compare(base, fresh, threshold, lower_is_better, abs_threshold=None):
    """Match {key: value} maps and classify every row.

    Returns a list of dicts sorted by key: {key, base, fresh,
    delta_pct, status} where status is "ok", "regression" (delta beyond
    threshold in the bad direction), "missing" (baseline-only) or
    "new" (fresh-only).  With abs_threshold set, a row regresses when
    the raw metric moves more than that many units in the bad
    direction (the percent threshold is ignored) — used for
    accuracy-point sections where relative thresholds are meaningless.
    """
    entries = []
    for key in sorted(base, key=lambda k: tuple(str(p) for p in k)):
        b = base[key]
        if key not in fresh:
            entries.append({"key": key, "base": b, "fresh": None,
                            "delta_pct": None, "status": "missing"})
            continue
        f = fresh[key]
        delta_pct = (f - b) / b * 100.0 if b else 0.0
        if abs_threshold is not None:
            bad = (f - b) > abs_threshold if lower_is_better \
                else (b - f) > abs_threshold
        else:
            bad = delta_pct > threshold if lower_is_better \
                else delta_pct < -threshold
        entries.append({"key": key, "base": b, "fresh": f,
                        "delta_pct": delta_pct, "delta_abs": f - b,
                        "status": "regression" if bad else "ok"})
    for key in sorted(set(fresh) - set(base),
                      key=lambda k: tuple(str(p) for p in k)):
        entries.append({"key": key, "base": None, "fresh": fresh[key],
                        "delta_pct": None, "status": "new"})
    return entries


def load_doc(path):
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression warning threshold in %% "
                             "(default: %(default)s)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any row regresses beyond the "
                             "threshold (default: record-only)")
    args = parser.parse_args()

    base_doc = load_doc(args.baseline)
    fresh_doc = load_doc(args.fresh)
    base_kind, base_sections = extract_rows(base_doc)
    fresh_kind, fresh_sections = extract_rows(fresh_doc)
    if base_kind != fresh_kind:
        print(f"error: report kinds differ ({base_kind} vs {fresh_kind}); "
              f"comparing {args.baseline} against {args.fresh} is "
              f"meaningless")
        return 2

    base_build = base_doc.get("build", {})
    fresh_build = fresh_doc.get("build", {})
    base_level = base_build.get("simd_level", "unknown")
    fresh_level = fresh_build.get("simd_level", "unknown")
    print(f"baseline: {args.baseline} (git {base_build.get('git_sha', '?')}, "
          f"simd {base_level})")
    print(f"fresh:    {args.fresh} (git {fresh_build.get('git_sha', '?')}, "
          f"simd {fresh_level})")
    if base_level != fresh_level:
        print(f"note: SIMD dispatch levels differ ({base_level} vs "
              f"{fresh_level}); deltas reflect the dispatch change too")

    regressions = []
    for (metric, lower_is_better, base, abs_threshold), \
            (_, _, fresh, _) in zip(base_sections, fresh_sections):
        if not base and not fresh:
            continue  # section absent from both reports (older bench)
        direction = ("lower is better" if lower_is_better
                     else "higher is better")
        gate = (f"absolute threshold {abs_threshold:g}"
                if abs_threshold is not None else "percent threshold")
        print(f"{base_kind} rows, metric {metric} ({direction}, {gate})")

        header = (f"{'row':<42} {'base':>12} {'fresh':>12} {'delta':>8}")
        print(header)
        print("-" * len(header))

        for entry in compare(base, fresh, args.threshold, lower_is_better,
                             abs_threshold):
            label = " ".join(str(p) for p in entry["key"])
            if entry["status"] == "missing":
                print(f"{label:<42} {entry['base']:>12.2f} {'missing':>12} "
                      f"{'-':>8}")
                continue
            if entry["status"] == "new":
                print(f"{label:<42} {'new':>12} {entry['fresh']:>12.2f} "
                      f"{'-':>8}")
                continue
            marker = ""
            if entry["status"] == "regression":
                marker = "  <-- REGRESSION"
                regressions.append(entry)
            # Absolute-gated sections show the delta in the metric's own
            # units — a relative percent next to an absolute gate reads
            # as the wrong quantity.
            delta = (f"{entry['delta_abs']:>+8.2f}"
                     if abs_threshold is not None
                     else f"{entry['delta_pct']:>+7.1f}%")
            print(f"{label:<42} {entry['base']:>12.2f} "
                  f"{entry['fresh']:>12.2f} {delta}{marker}")

    if regressions:
        print(f"WARNING: {len(regressions)} row(s) regressed beyond their "
              f"section's gate vs the committed baseline")
        if args.fail_on_regress:
            return 1
    else:
        print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
