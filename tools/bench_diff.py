#!/usr/bin/env python3
"""Compare a fresh throughput bench run against the committed baseline.

Matches rows of two BENCH_throughput_inference.json files by the key
(backend, model, cohort, stream_len) and prints an images-per-second
delta table.  Rows present on only one side are listed but never fail
the run (new configurations are expected as the bench grows).

A row regresses when fresh img/s falls more than --threshold (default
10%) below the baseline.  The default mode is record-only — regressions
are printed as warnings and the exit status stays 0, because CI runs on
noisy shared machines and numbers recorded under a different SIMD
dispatch level (see the build stamp's "simd_level") are not directly
comparable.  Pass --fail-on-regress for a hard gate on quiet hardware.

Usage: tools/bench_diff.py BASELINE.json FRESH.json
           [--threshold PCT] [--fail-on-regress]
"""

import argparse
import json
import sys


def load_rows(path):
    """(build stamp, {key: row}) from one BENCH_throughput_inference file."""
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    rows = {}
    for row in doc.get("results", []):
        engine = row.get("engine", {})
        key = (engine.get("backend"), row.get("model"), row.get("cohort"),
               engine.get("stream_len"))
        rows[key] = row
    return doc.get("build", {}), rows


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="freshly produced JSON")
    parser.add_argument("--threshold", type=float, default=10.0,
                        help="regression warning threshold in %% "
                             "(default: %(default)s)")
    parser.add_argument("--fail-on-regress", action="store_true",
                        help="exit 1 when any row regresses beyond the "
                             "threshold (default: record-only)")
    args = parser.parse_args()

    base_build, base = load_rows(args.baseline)
    fresh_build, fresh = load_rows(args.fresh)

    base_level = base_build.get("simd_level", "unknown")
    fresh_level = fresh_build.get("simd_level", "unknown")
    print(f"baseline: {args.baseline} (git {base_build.get('git_sha', '?')}, "
          f"simd {base_level})")
    print(f"fresh:    {args.fresh} (git {fresh_build.get('git_sha', '?')}, "
          f"simd {fresh_level})")
    if base_level != fresh_level:
        print(f"note: SIMD dispatch levels differ ({base_level} vs "
              f"{fresh_level}); deltas reflect the dispatch change too")

    header = (f"{'backend':<14} {'model':<8} {'cohort':>6} "
              f"{'base img/s':>12} {'fresh img/s':>12} {'delta':>8}")
    print(header)
    print("-" * len(header))

    regressions = []
    for key in sorted(base, key=lambda k: tuple(str(p) for p in k)):
        backend, model, cohort, _ = key
        b = base[key].get("images_per_sec")
        if key not in fresh:
            print(f"{backend:<14} {model:<8} {cohort:>6} {b:>12.2f} "
                  f"{'missing':>12} {'-':>8}")
            continue
        f = fresh[key].get("images_per_sec")
        delta_pct = (f - b) / b * 100.0 if b else 0.0
        marker = ""
        if delta_pct < -args.threshold:
            marker = "  <-- REGRESSION"
            regressions.append((key, delta_pct))
        print(f"{backend:<14} {model:<8} {cohort:>6} {b:>12.2f} {f:>12.2f} "
              f"{delta_pct:>+7.1f}%{marker}")
    for key in sorted(set(fresh) - set(base),
                      key=lambda k: tuple(str(p) for p in k)):
        backend, model, cohort, _ = key
        f = fresh[key].get("images_per_sec")
        print(f"{backend:<14} {model:<8} {cohort:>6} {'new':>12} {f:>12.2f} "
              f"{'-':>8}")

    if regressions:
        print(f"WARNING: {len(regressions)} row(s) regressed more than "
              f"{args.threshold:g}% vs the committed baseline")
        if args.fail_on_regress:
            return 1
    else:
        print("no regressions beyond threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
