/**
 * @file
 * aqfpsc_cli: train once, serve anywhere.
 *
 * Subcommands:
 *   train  --model <zoo> --out <file> [--epochs N] [--samples N]
 *          [--lr F] [--quant-bits B] [--seed S]
 *       Build a model_zoo architecture, train it on the synthetic digit
 *       task, quantize to the SNG grid and save a versioned model
 *       artifact (architecture + quantization state + weights).
 *   eval   --model-file <file> [--backend NAME] [--stream-len N]
 *          [--threads N] [--rng-bits N] [--images N] [--seed S]
 *       Load an artifact and evaluate it on any registered backend.
 *   infer  --model-file <file> [--backend NAME] [--index I] [...]
 *       Load an artifact and print one image's per-class scores.
 *   backends   List the BackendRegistry names.
 *   models     List the model_zoo names.
 *
 * Example round trip (the model file carries everything):
 *   aqfpsc_cli train --model tiny --out m.bin
 *   aqfpsc_cli eval --model-file m.bin --backend cmos-apc
 *   aqfpsc_cli eval --model-file m.bin --backend float-ref
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend_registry.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "data/digits.h"

namespace {

using namespace aqfpsc;

/** Fixed dataset seeds: eval/infer must see images train never saw. */
constexpr unsigned kTrainDataSeed = 11;
constexpr unsigned kTestDataSeed = 999;
constexpr int kTestImages = 200;

struct Args
{
    std::string command;
    std::string model;     ///< zoo name (train)
    std::string modelFile; ///< artifact path (eval/infer) or --out (train)
    core::EngineOptions engine;
    int epochs = 4;
    int samples = 600;
    float lr = 0.08f;
    int quantBits = 10;
    unsigned trainSeed = 3;
    int images = 40; ///< eval limit
    int index = 0;   ///< infer image index
    bool progress = true;
};

void
usage()
{
    std::printf(
        "usage: aqfpsc_cli <command> [options]\n"
        "  train --model <zoo> --out <file> [--epochs N] [--samples N]\n"
        "        [--lr F] [--quant-bits B] [--seed S]\n"
        "  eval  --model-file <file> [--backend NAME] [--stream-len N]\n"
        "        [--threads N] [--rng-bits N] [--images N] [--seed S]\n"
        "  infer --model-file <file> [--backend NAME] [--index I]\n"
        "        [--stream-len N] [--threads N] [--rng-bits N] [--seed S]\n"
        "  backends   list registered backends\n"
        "  models     list model-zoo architectures\n");
}

bool
parse(int argc, char **argv, Args &args)
{
    if (argc < 2)
        return false;
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--model")
            args.model = next();
        else if (flag == "--model-file" || flag == "--out")
            args.modelFile = next();
        else if (flag == "--backend")
            args.engine.backend = next();
        else if (flag == "--stream-len")
            args.engine.streamLen =
                static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
        else if (flag == "--threads")
            args.engine.threads = std::atoi(next());
        else if (flag == "--rng-bits")
            args.engine.rngBits = std::atoi(next());
        else if (flag == "--seed") {
            const char *v = next();
            args.engine.seed = std::strtoull(v, nullptr, 10);
            args.trainSeed = static_cast<unsigned>(args.engine.seed);
        } else if (flag == "--epochs")
            args.epochs = std::atoi(next());
        else if (flag == "--samples")
            args.samples = std::atoi(next());
        else if (flag == "--lr")
            args.lr = static_cast<float>(std::atof(next()));
        else if (flag == "--quant-bits")
            args.quantBits = std::atoi(next());
        else if (flag == "--images")
            args.images = std::atoi(next());
        else if (flag == "--index")
            args.index = std::atoi(next());
        else if (flag == "--quiet")
            args.progress = false;
        else {
            std::fprintf(stderr, "error: unknown flag %s\n", flag.c_str());
            return false;
        }
    }
    return true;
}

int
cmdTrain(const Args &args)
{
    if (args.model.empty() || args.modelFile.empty()) {
        std::fprintf(stderr,
                     "error: train needs --model <zoo> and --out <file>\n");
        return 2;
    }
    nn::Network net = core::buildModel(args.model, args.trainSeed);
    std::printf("architecture: %s\n", net.describe().c_str());
    auto train = data::generateDigits(args.samples, kTrainDataSeed);
    const auto test = data::generateDigits(kTestImages, kTestDataSeed);
    std::printf("training on %zu synthetic digits, %d epochs...\n",
                train.size(), args.epochs);
    nn::TrainConfig cfg;
    cfg.epochs = args.epochs;
    cfg.learningRate = args.lr;
    cfg.verbose = args.progress;
    net.train(train, cfg);
    net.quantizeParams(args.quantBits);
    std::printf("float accuracy (quantized to %d bits): %.2f%%\n",
                args.quantBits, net.evaluate(test) * 100);
    if (!net.saveModel(args.modelFile)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     args.modelFile.c_str());
        return 1;
    }
    std::printf("saved model artifact to %s\n", args.modelFile.c_str());
    return 0;
}

int
cmdEval(const Args &args)
{
    if (args.modelFile.empty()) {
        std::fprintf(stderr, "error: eval needs --model-file <file>\n");
        return 2;
    }
    const core::InferenceSession session =
        core::InferenceSession::fromFile(args.modelFile, args.engine);
    std::printf("model: %s (quantized to %d bits)\n",
                session.network().describe().c_str(),
                session.network().quantBits());
    std::printf("backend %s, N=%zu, %d threads\n",
                session.options().backend.c_str(),
                session.options().streamLen, session.options().threads);
    const auto test = data::generateDigits(kTestImages, kTestDataSeed);
    core::EvalOptions opts;
    opts.limit = args.images;
    opts.progress = args.progress;
    const core::ScEvalStats stats = session.evaluate(test, opts);
    std::printf("accuracy %.4f over %zu images (%.2f img/s)\n",
                stats.accuracy, stats.images, stats.imagesPerSec);
    return 0;
}

int
cmdInfer(const Args &args)
{
    if (args.modelFile.empty()) {
        std::fprintf(stderr, "error: infer needs --model-file <file>\n");
        return 2;
    }
    const auto test = data::generateDigits(kTestImages, kTestDataSeed);
    if (args.index < 0 || args.index >= static_cast<int>(test.size())) {
        std::fprintf(stderr, "error: --index must be in [0, %d)\n",
                     kTestImages);
        return 2;
    }
    const core::InferenceSession session =
        core::InferenceSession::fromFile(args.modelFile, args.engine);
    const nn::Sample &sample = test[static_cast<std::size_t>(args.index)];
    const core::ScPrediction pred = session.infer(sample.image);
    std::printf("backend %s, image %d: true label %d, predicted %d\n",
                session.options().backend.c_str(), args.index, sample.label,
                pred.label);
    for (std::size_t c = 0; c < pred.scores.size(); ++c)
        std::printf("  class %zu: %+.4f%s\n", c, pred.scores[c],
                    static_cast<int>(c) == pred.label ? "  <-- argmax"
                                                      : "");
    return 0;
}

int
cmdBackends()
{
    for (const auto &name : core::BackendRegistry::instance().names())
        std::printf("%s\n", name.c_str());
    return 0;
}

int
cmdModels()
{
    for (const auto &name : core::modelNames())
        std::printf("%s\n", name.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parse(argc, argv, args)) {
        usage();
        return 2;
    }
    try {
        if (args.command == "train")
            return cmdTrain(args);
        if (args.command == "eval")
            return cmdEval(args);
        if (args.command == "infer")
            return cmdInfer(args);
        if (args.command == "backends")
            return cmdBackends();
        if (args.command == "models")
            return cmdModels();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 args.command.c_str());
    usage();
    return 2;
}
