/**
 * @file
 * aqfpsc_cli: train once, serve anywhere.
 *
 * Subcommands:
 *   train  --model <zoo> --out <file> [--epochs N] [--samples N]
 *          [--lr F] [--quant-bits B] [--seed S]
 *       Build a model_zoo architecture, train it on the synthetic digit
 *       task, quantize to the SNG grid and save a versioned model
 *       artifact (architecture + quantization state + weights).
 *   eval   --model-file <file> [--backend NAME] [--stream-len N]
 *          [--stage-lens N,N,...] [--threads N] [--cohort C]
 *          [--rng-bits N] [--images N] [--seed S]
 *          [--adaptive [--checkpoint C] [--margin F]
 *           [--min-cycles M] [--nondet]]
 *       Load an artifact and evaluate it on any registered backend;
 *       --cohort batches C images through each stage together
 *       (stage-major execution, bit-identical results), --stage-lens
 *       sets a per-stage stream-length vector (word-aligned,
 *       non-increasing; see `tune`), and --adaptive adds
 *       confidence-based early exit and reports the mean consumed
 *       stream cycles.
 *   tune   (--model-file <file> | --model <zoo>) [--backend NAME]
 *          [--stream-len N] [--images N] [--max-drop PT]
 *          [--min-stage-len N] [--passes P]
 *       Run core::PrecisionTuner's coordinate-descent search for the
 *       fastest per-stage stream-length vector within --max-drop
 *       percentage points of the uniform baseline's calibration
 *       accuracy, and print the vector as a ready-to-paste
 *       --stage-lens value.
 *   infer  --model-file <file> [--backend NAME] [--index I] [...]
 *       Load an artifact and print one image's per-class scores.
 *   serve  --model-file <file> [--workers W] [--queue-cap Q]
 *          [--max-batch B] [--adaptive ...] [--images N]
 *       Spin up the async micro-batching InferenceServer, push the test
 *       set through it, and report latency percentiles + server stats
 *       (queue-depth high-water mark, queue/service latency histograms).
 *   serve-multi  (--model-file <file> | --model <zoo>)
 *          [--policy fifo|priority|edf|fair] [--workers W]
 *          [--max-batch B] [--images N] [--deadline-ms D] [--shed]
 *          [--tenant SPEC ...]
 *       Spin up the multi-tenant serving::ServingFrontend and push
 *       --images requests per tenant through it.  Each --tenant SPEC is
 *       comma-separated: a name followed by key=value or bare-flag
 *       tokens — weight=W, priority=P, deadline-ms=D, queue-cap=Q,
 *       backend=NAME, margin=F, min-cycles=M, adaptive, shed.  With no
 *       --tenant, two equal-weight tenants "a" and "b" are served.
 *       --deadline-ms/--shed set defaults any SPEC may override.
 *       Prints per-tenant completion/reject/shed/deadline counters and
 *       latency percentiles.
 *   backends   List the BackendRegistry names.
 *   models     List the model_zoo names.
 *
 * Example round trip (the model file carries everything):
 *   aqfpsc_cli train --model tiny --out m.bin
 *   aqfpsc_cli eval --model-file m.bin --backend cmos-apc
 *   aqfpsc_cli eval --model-file m.bin --adaptive --margin 0.125
 *   aqfpsc_cli serve --model-file m.bin --workers 4 --adaptive
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/backend_registry.h"
#include "core/hardware_report.h"
#include "core/model_zoo.h"
#include "core/precision_tuner.h"
#include "core/server.h"
#include "core/session.h"
#include "data/digits.h"
#include "serving/frontend.h"

namespace {

using namespace aqfpsc;

/** Fixed dataset seeds: eval/infer must see images train never saw. */
constexpr unsigned kTrainDataSeed = 11;
constexpr unsigned kTestDataSeed = 999;
constexpr int kTestImages = 200;

struct Args
{
    std::string command;
    std::string model;     ///< zoo name (train)
    std::string modelFile; ///< artifact path (eval/infer) or --out (train)
    core::EngineOptions engine;
    int epochs = 4;
    int samples = 600;
    float lr = 0.08f;
    int quantBits = 10;
    unsigned trainSeed = 3;
    int images = 40; ///< eval limit / serve request count
    int index = 0;   ///< infer image index
    bool progress = true;

    // tune
    double maxDropPt = 0.5;      ///< accuracy budget, percentage points
    std::size_t minStageLen = 64; ///< shortest per-stage length tried
    int passes = 8;               ///< coordinate-descent pass cap
    bool adaptive = false; ///< eval/serve: early-exit mode
    core::ServerOptions server; ///< serve: worker/queue/batch knobs

    // serve / serve-multi robustness knobs
    double timeoutMs = 0.0; ///< hard per-request budget (0 = none)
    int retries = 0;        ///< transient-failure retry budget

    // serve-multi
    std::vector<std::string> tenants; ///< --tenant specs, in order
    std::string policy = "fifo";      ///< scheduler policy name
    double deadlineMs = 0.0;          ///< default per-tenant budget
    bool shed = false;                ///< default shed-before-reject
};

void
usage()
{
    std::printf(
        "usage: aqfpsc_cli <command> [options]\n"
        "  train --model <zoo> --out <file> [--epochs N] [--samples N]\n"
        "        [--lr F] [--quant-bits B] [--seed S]\n"
        "  eval  --model-file <file> [--backend NAME] [--stream-len N]\n"
        "        [--stage-lens N,N,...] [--threads N] [--cohort C]\n"
        "        [--rng-bits N] [--images N] [--seed S]\n"
        "        [--adaptive [--checkpoint C] [--margin F]\n"
        "         [--min-cycles M] [--nondet]]\n"
        "  tune  (--model-file <file> | --model <zoo>) [--backend NAME]\n"
        "        [--stream-len N] [--images N] [--max-drop PT]\n"
        "        [--min-stage-len N] [--passes P] [--threads N] [--quiet]\n"
        "  infer --model-file <file> [--backend NAME] [--index I]\n"
        "        [--stream-len N] [--threads N] [--rng-bits N] [--seed S]\n"
        "  serve --model-file <file> [--workers W] [--queue-cap Q]\n"
        "        [--max-batch B] [--images N] [--timeout-ms T]\n"
        "        [--adaptive ...]\n"
        "  serve-multi (--model-file <file> | --model <zoo>)\n"
        "        [--policy fifo|priority|edf|fair] [--workers W]\n"
        "        [--max-batch B] [--images N] [--deadline-ms D] [--shed]\n"
        "        [--timeout-ms T] [--retries R]\n"
        "        [--tenant name,weight=W,priority=P,deadline-ms=D,\n"
        "         queue-cap=Q,backend=NAME,margin=F,min-cycles=M,\n"
        "         timeout-ms=T,retries=R,adaptive,shed ...]\n"
        "  backends   list registered backends\n"
        "  models     list model-zoo architectures\n");
}

bool
parse(int argc, char **argv, Args &args)
{
    if (argc < 2)
        return false;
    args.command = argv[1];
    for (int i = 2; i < argc; ++i) {
        const std::string flag = argv[i];
        auto next = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "error: %s needs a value\n",
                             flag.c_str());
                std::exit(2);
            }
            return argv[++i];
        };
        if (flag == "--model")
            args.model = next();
        else if (flag == "--model-file" || flag == "--out")
            args.modelFile = next();
        else if (flag == "--backend")
            args.engine.backend = next();
        else if (flag == "--stream-len")
            args.engine.streamLen =
                static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
        else if (flag == "--stage-lens") {
            args.engine.stageStreamLens.clear();
            const std::string spec = next();
            std::size_t start = 0;
            while (start <= spec.size()) {
                std::size_t comma = spec.find(',', start);
                if (comma == std::string::npos)
                    comma = spec.size();
                const std::string tok = spec.substr(start, comma - start);
                start = comma + 1;
                if (!tok.empty())
                    args.engine.stageStreamLens.push_back(
                        static_cast<std::size_t>(
                            std::strtoull(tok.c_str(), nullptr, 10)));
            }
            if (args.engine.stageStreamLens.empty()) {
                std::fprintf(stderr,
                             "error: --stage-lens needs a comma-separated "
                             "list of lengths, e.g. 1024,512,256\n");
                return false;
            }
            // The first stage runs the full plan; keep the scalar in sync
            // so banners/reports quoting streamLen match the vector.
            args.engine.streamLen = args.engine.stageStreamLens.front();
        } else if (flag == "--max-drop")
            args.maxDropPt = std::atof(next());
        else if (flag == "--min-stage-len")
            args.minStageLen =
                static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
        else if (flag == "--passes")
            args.passes = std::atoi(next());
        else if (flag == "--threads")
            args.engine.threads = std::atoi(next());
        else if (flag == "--cohort")
            args.engine.cohort = std::atoi(next());
        else if (flag == "--rng-bits")
            args.engine.rngBits = std::atoi(next());
        else if (flag == "--seed") {
            const char *v = next();
            args.engine.seed = std::strtoull(v, nullptr, 10);
            args.trainSeed = static_cast<unsigned>(args.engine.seed);
        } else if (flag == "--epochs")
            args.epochs = std::atoi(next());
        else if (flag == "--samples")
            args.samples = std::atoi(next());
        else if (flag == "--lr")
            args.lr = static_cast<float>(std::atof(next()));
        else if (flag == "--quant-bits")
            args.quantBits = std::atoi(next());
        else if (flag == "--images")
            args.images = std::atoi(next());
        else if (flag == "--index")
            args.index = std::atoi(next());
        else if (flag == "--quiet")
            args.progress = false;
        else if (flag == "--adaptive")
            args.adaptive = true;
        else if (flag == "--checkpoint")
            args.engine.adaptive.checkpointCycles =
                static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
        else if (flag == "--margin")
            args.engine.adaptive.exitMargin = std::atof(next());
        else if (flag == "--min-cycles")
            args.engine.adaptive.minCycles =
                static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
        else if (flag == "--nondet")
            args.engine.adaptive.deterministic = false;
        else if (flag == "--workers")
            args.server.workers = std::atoi(next());
        else if (flag == "--queue-cap")
            args.server.queueCapacity =
                static_cast<std::size_t>(std::strtoull(next(), nullptr, 10));
        else if (flag == "--max-batch")
            args.server.maxBatch = std::atoi(next());
        else if (flag == "--timeout-ms")
            args.timeoutMs = std::atof(next());
        else if (flag == "--retries")
            args.retries = std::atoi(next());
        else if (flag == "--tenant")
            args.tenants.push_back(next());
        else if (flag == "--policy")
            args.policy = next();
        else if (flag == "--deadline-ms")
            args.deadlineMs = std::atof(next());
        else if (flag == "--shed")
            args.shed = true;
        else {
            std::fprintf(stderr, "error: unknown flag %s\n", flag.c_str());
            return false;
        }
    }
    return true;
}

/** Render a length vector as a --stage-lens value ("1024,512,256"). */
std::string
lensSpec(const std::vector<std::size_t> &lens)
{
    std::string s;
    for (std::size_t i = 0; i < lens.size(); ++i) {
        if (i > 0)
            s += ',';
        s += std::to_string(lens[i]);
    }
    return s;
}

/** One-line plan-cache summary (serve / serve-multi footers). */
void
printPlanCacheLine(const core::PlanCacheStats &pc)
{
    std::printf("plan cache: %llu hit(s), %llu miss(es), %llu "
                "eviction(s); resident %zu plan(s), %zu stage state(s), "
                "%.1f KiB shared\n",
                static_cast<unsigned long long>(pc.hits),
                static_cast<unsigned long long>(pc.misses),
                static_cast<unsigned long long>(pc.evictions),
                pc.residentPlans, pc.residentStages,
                static_cast<double>(pc.residentBytes) / 1024.0);
}

int
cmdTrain(const Args &args)
{
    if (args.model.empty() || args.modelFile.empty()) {
        std::fprintf(stderr,
                     "error: train needs --model <zoo> and --out <file>\n");
        return 2;
    }
    nn::Network net = core::buildModel(args.model, args.trainSeed);
    std::printf("architecture: %s\n", net.describe().c_str());
    auto train = data::generateDigits(args.samples, kTrainDataSeed);
    const auto test = data::generateDigits(kTestImages, kTestDataSeed);
    std::printf("training on %zu synthetic digits, %d epochs...\n",
                train.size(), args.epochs);
    nn::TrainConfig cfg;
    cfg.epochs = args.epochs;
    cfg.learningRate = args.lr;
    cfg.verbose = args.progress;
    net.train(train, cfg);
    net.quantizeParams(args.quantBits);
    std::printf("float accuracy (quantized to %d bits): %.2f%%\n",
                args.quantBits, net.evaluate(test) * 100);
    if (!net.saveModel(args.modelFile)) {
        std::fprintf(stderr, "error: cannot write %s\n",
                     args.modelFile.c_str());
        return 1;
    }
    std::printf("saved model artifact to %s\n", args.modelFile.c_str());
    return 0;
}

int
cmdEval(const Args &args)
{
    if (args.modelFile.empty()) {
        std::fprintf(stderr, "error: eval needs --model-file <file>\n");
        return 2;
    }
    const core::InferenceSession session =
        core::InferenceSession::fromFile(args.modelFile, args.engine);
    std::printf("model: %s (quantized to %d bits)\n",
                session.network().describe().c_str(),
                session.network().quantBits());
    std::printf("backend %s, N=%zu, %d threads, cohort %d\n",
                session.options().backend.c_str(),
                session.options().streamLen, session.options().threads,
                session.options().cohort);
    if (!session.options().stageStreamLens.empty())
        std::printf("stage lens: %s\n",
                    lensSpec(session.options().stageStreamLens).c_str());
    const auto test = data::generateDigits(kTestImages, kTestDataSeed);
    core::EvalOptions opts;
    opts.limit = args.images;
    opts.progress = args.progress;
    if (args.adaptive) {
        const core::AdaptivePolicy &policy = args.engine.adaptive;
        std::printf("adaptive: checkpoint %zu, margin %.3f, floor %zu, "
                    "%s\n",
                    policy.checkpointCycles, policy.exitMargin,
                    policy.minCycles,
                    policy.deterministic ? "deterministic"
                                         : "lazy substreams");
        const core::AdaptiveEvalStats stats =
            session.evaluateAdaptive(test, opts);
        std::printf("accuracy %.4f over %zu images (%.2f img/s, avg "
                    "%.0f/%zu cycles, %zu early exits)\n",
                    stats.stats.accuracy, stats.stats.images,
                    stats.stats.imagesPerSec, stats.avgConsumedCycles,
                    session.options().streamLen, stats.earlyExits);
        return 0;
    }
    const core::ScEvalStats stats = session.evaluate(test, opts);
    std::printf("accuracy %.4f over %zu images (%.2f img/s)\n",
                stats.accuracy, stats.images, stats.imagesPerSec);
    return 0;
}

int
cmdTune(const Args &args)
{
    if (args.modelFile.empty() && args.model.empty()) {
        std::fprintf(stderr, "error: tune needs --model-file <file> or "
                             "--model <zoo>\n");
        return 2;
    }
    const core::InferenceSession session =
        args.modelFile.empty()
            ? core::InferenceSession::fromZoo(args.model, args.engine,
                                              args.trainSeed)
            : core::InferenceSession::fromFile(args.modelFile, args.engine);
    std::printf("model: %s\n", session.network().describe().c_str());
    std::printf("backend %s, N=%zu, budget %.2fpt, min stage len %zu, "
                "max %d pass(es)\n",
                session.options().backend.c_str(),
                session.options().streamLen, args.maxDropPt,
                args.minStageLen, args.passes);
    const auto calibration = data::generateDigits(kTestImages, kTestDataSeed);
    core::TuneOptions topts;
    topts.maxAccuracyDrop = args.maxDropPt / 100.0;
    topts.minStageLen = args.minStageLen;
    topts.maxPasses = args.passes;
    topts.limit = args.images;
    topts.verbose = args.progress;
    const core::TuneResult r = session.tune(calibration, topts);
    std::printf("baseline: %s  accuracy %.4f  %.2f img/s\n",
                lensSpec(r.baselineStageStreamLens).c_str(),
                r.baselineAccuracy, r.baselineImagesPerSec);
    std::printf("tuned:    %s  accuracy %.4f  %.2f img/s\n",
                lensSpec(r.stageStreamLens).c_str(), r.tunedAccuracy,
                r.tunedImagesPerSec);
    std::printf("speedup %.2fx, accuracy delta %+.2fpt, %zu candidate "
                "evaluation(s) over %d pass(es)\n",
                r.speedup, (r.tunedAccuracy - r.baselineAccuracy) * 100.0,
                r.evaluations, r.passes);
    std::printf("apply with: --stage-lens %s\n",
                lensSpec(r.stageStreamLens).c_str());
    return 0;
}

int
cmdServe(const Args &args)
{
    if (args.modelFile.empty()) {
        std::fprintf(stderr, "error: serve needs --model-file <file>\n");
        return 2;
    }
    if (args.images <= 0) {
        std::fprintf(stderr, "error: serve needs --images >= 1\n");
        return 2;
    }
    const core::InferenceSession session =
        core::InferenceSession::fromFile(args.modelFile, args.engine);
    core::ServerOptions sopts = args.server;
    sopts.adaptive = args.adaptive;
    sopts.policy = args.engine.adaptive;
    sopts.timeoutSeconds = args.timeoutMs * 1e-3;
    core::InferenceServer server(session, sopts);
    std::printf("serving %s on %s: %d worker(s), queue %zu, "
                "micro-batch %d%s\n",
                args.modelFile.c_str(), session.options().backend.c_str(),
                server.workers(), sopts.queueCapacity, sopts.maxBatch,
                sopts.adaptive ? ", adaptive early exit" : "");

    const auto test = data::generateDigits(kTestImages, kTestDataSeed);
    const int n = std::min<int>(args.images, kTestImages);
    std::vector<std::future<core::ServedPrediction>> futures;
    futures.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        futures.push_back(
            server.submit(test[static_cast<std::size_t>(i)].image));

    std::vector<double> latency_ms;
    latency_ms.reserve(futures.size());
    std::size_t correct = 0;
    std::size_t served = 0;
    for (int i = 0; i < n; ++i) {
        try {
            const core::ServedPrediction r =
                futures[static_cast<std::size_t>(i)].get();
            latency_ms.push_back((r.queueSeconds + r.serviceSeconds) * 1e3);
            if (r.prediction.label ==
                test[static_cast<std::size_t>(i)].label)
                ++correct;
            ++served;
        } catch (const core::StatusError &e) {
            // Counted in stats below; a timed-out request is expected
            // operation under --timeout-ms, not a CLI failure.
            std::fprintf(stderr, "request %d failed: %s\n", i,
                         e.what());
        }
    }
    server.shutdown();

    std::sort(latency_ms.begin(), latency_ms.end());
    auto pct = [&](double q) {
        if (latency_ms.empty())
            return 0.0;
        const std::size_t i = static_cast<std::size_t>(
            q * static_cast<double>(latency_ms.size() - 1));
        return latency_ms[i];
    };
    const core::ServerStats stats = server.stats();
    std::printf("served %llu requests: accuracy %.4f, p50 %.1f ms, "
                "p90 %.1f ms, p99 %.1f ms\n",
                static_cast<unsigned long long>(stats.completed),
                served == 0 ? 0.0
                            : static_cast<double>(correct) /
                                  static_cast<double>(served),
                pct(0.50), pct(0.90), pct(0.99));
    char budget[32];
    std::snprintf(budget, sizeof budget, "%g ms", args.timeoutMs);
    std::printf("failed %llu (timed out %llu), timeout budget %s\n",
                static_cast<unsigned long long>(stats.failed),
                static_cast<unsigned long long>(stats.timedOut),
                args.timeoutMs > 0.0 ? budget : "none");
    std::printf("avg micro-batch %.2f, avg consumed cycles %.0f/%zu, "
                "early exits %llu\n",
                stats.avgBatchSize, stats.avgConsumedCycles,
                session.options().streamLen,
                static_cast<unsigned long long>(stats.earlyExits));
    std::printf("queue depth high-water %zu/%zu\n",
                stats.queueDepthHighWater, sopts.queueCapacity);
    std::printf("queue latency   %s\n",
                stats.queueHistogram.summary().c_str());
    std::printf("service latency %s\n",
                stats.serviceHistogram.summary().c_str());
    printPlanCacheLine(core::InferenceSession::planCacheStats());
    return 0;
}

/**
 * Parse one --tenant SPEC (comma-separated: name first, then key=value
 * or bare-flag tokens) on top of the defaults in @p cfg.
 * @throws std::invalid_argument on unknown or malformed tokens.
 */
serving::TenantConfig
parseTenantSpec(const std::string &spec, serving::TenantConfig cfg)
{
    std::size_t start = 0;
    bool first = true;
    while (start <= spec.size()) {
        std::size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string token = spec.substr(start, end - start);
        start = end + 1;
        if (token.empty())
            continue;
        if (first) {
            cfg.name = token;
            first = false;
            continue;
        }
        const std::size_t eq = token.find('=');
        const std::string key = token.substr(0, eq);
        const std::string val =
            eq == std::string::npos ? "" : token.substr(eq + 1);
        if (key == "adaptive")
            cfg.adaptive = true;
        else if (key == "shed")
            cfg.shed.enabled = true;
        else if (key == "weight")
            cfg.weight = std::atof(val.c_str());
        else if (key == "priority")
            cfg.priority = std::atoi(val.c_str());
        else if (key == "deadline-ms")
            cfg.deadlineSeconds = std::atof(val.c_str()) * 1e-3;
        else if (key == "queue-cap")
            cfg.queueCapacity = static_cast<std::size_t>(
                std::strtoull(val.c_str(), nullptr, 10));
        else if (key == "backend")
            cfg.backend = val;
        else if (key == "timeout-ms")
            cfg.timeoutSeconds = std::atof(val.c_str()) * 1e-3;
        else if (key == "retries")
            cfg.maxRetries = std::atoi(val.c_str());
        else if (key == "margin") {
            cfg.adaptive = true;
            cfg.policy.exitMargin = std::atof(val.c_str());
        } else if (key == "min-cycles") {
            cfg.adaptive = true;
            cfg.policy.minCycles = static_cast<std::size_t>(
                std::strtoull(val.c_str(), nullptr, 10));
        } else {
            throw std::invalid_argument("--tenant '" + spec +
                                        "': unknown token '" + token + "'");
        }
    }
    if (cfg.name.empty())
        throw std::invalid_argument("--tenant '" + spec +
                                    "' must start with a tenant name");
    // Shedding rides the adaptive path; keep hand-typed specs terse by
    // implying it and clamping the floors into the valid range.
    if (cfg.shed.enabled) {
        cfg.adaptive = true;
        cfg.shed.marginFloor =
            std::min(cfg.shed.marginFloor, cfg.policy.exitMargin);
        cfg.shed.minCyclesFloor =
            std::min(cfg.shed.minCyclesFloor, cfg.policy.minCycles);
    }
    return cfg;
}

int
cmdServeMulti(const Args &args)
{
    if (args.modelFile.empty() && args.model.empty()) {
        std::fprintf(stderr, "error: serve-multi needs --model-file "
                             "<file> or --model <zoo>\n");
        return 2;
    }
    if (args.images <= 0) {
        std::fprintf(stderr, "error: serve-multi needs --images >= 1\n");
        return 2;
    }
    const auto policy = serving::parseSchedPolicy(args.policy);
    if (!policy) {
        std::fprintf(stderr,
                     "error: unknown --policy '%s' (fifo, priority, "
                     "edf, fair)\n",
                     args.policy.c_str());
        return 2;
    }

    serving::FrontendOptions fopts;
    fopts.workers = args.server.workers;
    fopts.maxBatch = args.server.maxBatch;
    fopts.policy = *policy;
    serving::ServingFrontend frontend(fopts);
    if (!args.modelFile.empty())
        frontend.addModelFromFile("m", args.modelFile, args.engine);
    else
        frontend.addModelFromZoo("m", args.model, args.engine,
                                 args.trainSeed);

    // Defaults every SPEC starts from (and may override).
    serving::TenantConfig base;
    base.model = "m";
    base.deadlineSeconds = args.deadlineMs * 1e-3;
    base.timeoutSeconds = args.timeoutMs * 1e-3;
    base.maxRetries = args.retries;
    base.adaptive = args.adaptive;
    base.policy = args.engine.adaptive;
    if (args.shed) {
        base.shed.enabled = true;
        base.adaptive = true;
        base.shed.marginFloor =
            std::min(base.shed.marginFloor, base.policy.exitMargin);
        base.shed.minCyclesFloor =
            std::min(base.shed.minCyclesFloor, base.policy.minCycles);
    }
    std::vector<std::string> names;
    if (args.tenants.empty()) {
        for (const char *name : {"a", "b"}) {
            serving::TenantConfig cfg = base;
            cfg.name = name;
            frontend.addTenant(cfg);
            names.push_back(name);
        }
    } else {
        for (const std::string &spec : args.tenants) {
            const serving::TenantConfig cfg = parseTenantSpec(spec, base);
            frontend.addTenant(cfg);
            names.push_back(cfg.name);
        }
    }
    frontend.start();
    std::printf("serving %zu tenant(s) on '%s', policy %s, %d worker(s), "
                "micro-batch %d, %d request(s)/tenant\n",
                names.size(),
                args.modelFile.empty() ? args.model.c_str()
                                       : args.modelFile.c_str(),
                serving::schedPolicyName(*policy), frontend.workers(),
                fopts.maxBatch, args.images);

    // Push --images requests per tenant, interleaved round-robin, via
    // the non-blocking admission path; full queues count as rejects.
    const auto test = data::generateDigits(kTestImages, kTestDataSeed);
    struct Pending
    {
        std::size_t tenant;
        int image;
        std::future<serving::ServedResult> future;
    };
    std::vector<Pending> pending;
    pending.reserve(names.size() * static_cast<std::size_t>(args.images));
    for (int i = 0; i < args.images; ++i) {
        const auto &image =
            test[static_cast<std::size_t>(i) % test.size()].image;
        for (std::size_t t = 0; t < names.size(); ++t) {
            auto f = frontend.trySubmit(names[t], image);
            if (f)
                pending.push_back(
                    {t, i % static_cast<int>(test.size()), std::move(*f)});
        }
    }

    std::vector<std::vector<double>> latency_ms(names.size());
    std::vector<std::size_t> correct(names.size(), 0);
    std::vector<std::size_t> got(names.size(), 0);
    for (Pending &p : pending) {
        try {
            const serving::ServedResult r = p.future.get();
            latency_ms[p.tenant].push_back(
                (r.queueSeconds + r.serviceSeconds) * 1e3);
            if (r.prediction.label ==
                test[static_cast<std::size_t>(p.image)].label)
                ++correct[p.tenant];
            ++got[p.tenant];
        } catch (const core::StatusError &) {
            // Timeouts/quarantines under load are expected operation;
            // the per-tenant counters below report them.
        }
    }
    // Snapshot before shutdown: workersAlive reflects the serving pool,
    // not the (correctly) empty post-join pool.
    const serving::HealthSnapshot health = frontend.health();
    frontend.shutdown();

    for (std::size_t t = 0; t < names.size(); ++t) {
        const serving::TenantStats stats = frontend.tenantStats(names[t]);
        auto &lat = latency_ms[t];
        std::sort(lat.begin(), lat.end());
        auto pct = [&](double q) {
            if (lat.empty())
                return 0.0;
            return lat[static_cast<std::size_t>(
                q * static_cast<double>(lat.size() - 1))];
        };
        std::printf(
            "tenant %-10s completed %llu, rejected %llu, shed %llu, "
            "deadline-missed %llu\n",
            names[t].c_str(),
            static_cast<unsigned long long>(stats.completed),
            static_cast<unsigned long long>(stats.rejected),
            static_cast<unsigned long long>(stats.shedServed),
            static_cast<unsigned long long>(stats.deadlineMissed));
        std::printf(
            "  failed %llu (timed out %llu, quarantined %llu), "
            "retried %llu\n",
            static_cast<unsigned long long>(stats.failed),
            static_cast<unsigned long long>(stats.timedOut),
            static_cast<unsigned long long>(stats.quarantined),
            static_cast<unsigned long long>(stats.retried));
        std::printf(
            "  accuracy %.4f, p50 %.1f ms, p99 %.1f ms, avg cycles "
            "%.0f, queue high-water %zu\n",
            got[t] == 0 ? 0.0
                        : static_cast<double>(correct[t]) /
                              static_cast<double>(got[t]),
            pct(0.50), pct(0.99), stats.avgConsumedCycles,
            stats.queueDepthHighWater);
        std::printf("  queue latency   %s\n",
                    stats.queueHistogram.summary().c_str());
        std::printf("  service latency %s\n",
                    stats.serviceHistogram.summary().c_str());
    }
    std::printf("pool health: %d/%d worker(s) alive, respawns %llu, "
                "watchdog kicks %llu over %llu tick(s)\n",
                health.workersAlive, health.workersConfigured,
                static_cast<unsigned long long>(health.respawns),
                static_cast<unsigned long long>(health.watchdogKicks),
                static_cast<unsigned long long>(health.watchdogTicks));
    printPlanCacheLine(health.planCache);
    return 0;
}

int
cmdInfer(const Args &args)
{
    if (args.modelFile.empty()) {
        std::fprintf(stderr, "error: infer needs --model-file <file>\n");
        return 2;
    }
    const auto test = data::generateDigits(kTestImages, kTestDataSeed);
    if (args.index < 0 || args.index >= static_cast<int>(test.size())) {
        std::fprintf(stderr, "error: --index must be in [0, %d)\n",
                     kTestImages);
        return 2;
    }
    const core::InferenceSession session =
        core::InferenceSession::fromFile(args.modelFile, args.engine);
    const nn::Sample &sample = test[static_cast<std::size_t>(args.index)];
    const core::ScPrediction pred = session.infer(sample.image);
    std::printf("backend %s, image %d: true label %d, predicted %d\n",
                session.options().backend.c_str(), args.index, sample.label,
                pred.label);
    for (std::size_t c = 0; c < pred.scores.size(); ++c)
        std::printf("  class %zu: %+.4f%s\n", c, pred.scores[c],
                    static_cast<int>(c) == pred.label ? "  <-- argmax"
                                                      : "");
    return 0;
}

int
cmdBackends()
{
    for (const auto &name : core::BackendRegistry::instance().names())
        std::printf("%s\n", name.c_str());
    const core::HostSimdInfo simd = core::hostSimdInfo();
    std::printf("# simd dispatch: active=%s detected=%s\n",
                simd.active.c_str(), simd.detected.c_str());
    return 0;
}

int
cmdModels()
{
    for (const auto &name : core::modelNames())
        std::printf("%s\n", name.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    if (!parse(argc, argv, args)) {
        usage();
        return 2;
    }
    try {
        if (args.command == "train")
            return cmdTrain(args);
        if (args.command == "eval")
            return cmdEval(args);
        if (args.command == "tune")
            return cmdTune(args);
        if (args.command == "infer")
            return cmdInfer(args);
        if (args.command == "serve")
            return cmdServe(args);
        if (args.command == "serve-multi")
            return cmdServeMulti(args);
        if (args.command == "backends")
            return cmdBackends();
        if (args.command == "models")
            return cmdModels();
    } catch (const std::exception &e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 1;
    }
    std::fprintf(stderr, "error: unknown command '%s'\n",
                 args.command.c_str());
    usage();
    return 2;
}
