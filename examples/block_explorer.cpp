/**
 * @file
 * Block explorer: build any of the paper's blocks at any size, run the
 * AQFP physical-design pipeline on it, and print the cost breakdown and
 * a functional verification against the reference model.
 *
 * Usage:  block_explorer [feature|pooling|categorize|comparator] [size]
 *                        [--verilog FILE] [--dot FILE]
 *         (defaults: feature 25)
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "aqfp/energy_model.h"
#include "aqfp/passes.h"
#include "aqfp/export.h"
#include "aqfp/simulator.h"
#include "blocks/avg_pooling.h"
#include "blocks/categorization.h"
#include "blocks/feature_extraction.h"
#include "blocks/sng_block.h"
#include "sc/sng.h"

namespace {

using namespace aqfpsc;

void
printNetlist(const char *title, const aqfp::Netlist &net)
{
    const aqfp::HardwareCost cost = aqfp::analyzeNetlist(net);
    std::printf("%-28s %8zu gates %10lld JJ  depth %3d  %.3e J/cycle\n",
                title, net.size(), cost.jj, cost.depthPhases,
                cost.energyPerCycleJ);
}

void
printBreakdown(const aqfp::Netlist &net)
{
    const aqfp::CellType kinds[] = {
        aqfp::CellType::Buffer,   aqfp::CellType::Inverter,
        aqfp::CellType::Splitter, aqfp::CellType::And2,
        aqfp::CellType::Or2,      aqfp::CellType::Nor2,
        aqfp::CellType::Maj3,     aqfp::CellType::Const0,
        aqfp::CellType::Const1};
    std::printf("cell breakdown:");
    for (aqfp::CellType t : kinds) {
        const int c = net.countType(t);
        if (c > 0)
            std::printf("  %s x%d", aqfp::cellName(t), c);
    }
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string kind = argc > 1 ? argv[1] : "feature";
    const int size = argc > 2 ? std::atoi(argv[2]) : 25;
    if (size < 1 || size > 2000) {
        std::fprintf(stderr, "size out of range\n");
        return 1;
    }

    aqfp::Netlist raw;
    if (kind == "feature") {
        raw = blocks::FeatureExtractionBlock::buildNetlist(size);
    } else if (kind == "pooling") {
        raw = blocks::AvgPoolingBlock::buildNetlist(size);
    } else if (kind == "categorize") {
        raw = blocks::CategorizationBlock::buildNetlist(size);
    } else if (kind == "comparator") {
        raw = blocks::buildComparatorNetlist(size);
    } else {
        std::fprintf(stderr,
                     "usage: %s [feature|pooling|categorize|comparator] "
                     "[size]\n",
                     argv[0]);
        return 1;
    }

    std::printf("== %s block, %d inputs ==\n", kind.c_str(), size);
    printNetlist("raw builder netlist", raw);

    aqfp::PassStats synth_stats;
    const aqfp::Netlist synth = aqfp::majoritySynthesis(raw, &synth_stats);
    printNetlist("after majority synthesis", synth);

    aqfp::PassStats split_stats;
    const aqfp::Netlist split = aqfp::insertSplitters(synth, &split_stats);
    printNetlist("after splitter insertion", split);
    std::printf("  %d splitters inserted\n", split_stats.splittersInserted);

    aqfp::PassStats bal_stats;
    const aqfp::Netlist final_net =
        aqfp::balancePaths(split, true, &bal_stats);
    printNetlist("after path balancing", final_net);
    std::printf("  %d buffers inserted\n", bal_stats.buffersInserted);
    printBreakdown(final_net);

    std::string err;
    if (!aqfp::checkLegalized(final_net, &err)) {
        std::printf("DESIGN-RULE CHECK FAILED: %s\n", err.c_str());
        return 1;
    }
    std::printf("design-rule check: OK (fanout caps + phase alignment)\n");

    // Functional spot-check: random vectors through the zero-delay
    // evaluator, legalized vs raw.
    sc::Xoshiro256StarStar rng(size);
    int checked = 0;
    for (int t = 0; t < 200; ++t) {
        std::vector<bool> in(raw.inputs().size());
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = rng.nextBit();
        if (aqfp::evalCombinational(raw, in) !=
            aqfp::evalCombinational(final_net, in)) {
            std::printf("MISMATCH at trial %d\n", t);
            return 1;
        }
        ++checked;
    }
    std::printf("equivalence check: %d random vectors, raw == legalized\n",
                checked);

    const aqfp::HardwareCost cost = aqfp::analyzeNetlist(final_net);
    std::printf("\nsummary: %lld JJ | latency %.2f ns | %.3e pJ per "
                "1024-cycle stream\n",
                cost.jj, cost.latencySeconds * 1e9,
                cost.energyPerStreamJ(1024) * 1e12);

    // Optional exports for downstream EDA / visualization flows.
    for (int i = 3; i + 1 < argc; i += 2) {
        const std::string flag = argv[i];
        const std::string path = argv[i + 1];
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "cannot open %s\n", path.c_str());
            return 1;
        }
        const std::string text =
            flag == "--verilog"
                ? aqfp::toVerilog(final_net, kind + "_" +
                                                 std::to_string(size))
                : aqfp::toDot(final_net, kind);
        std::fwrite(text.data(), 1, text.size(), f);
        std::fclose(f);
        std::printf("wrote %s (%zu bytes)\n", path.c_str(), text.size());
    }
    return 0;
}
