/**
 * @file
 * End-to-end pipeline on the synthetic digit task: train a small CNN
 * with the AQFP-aware activation and output layers, quantize the weights
 * to the SNG grid, then serve the model through an InferenceSession on
 * three backends (the paper's AQFP sorter blocks, the CMOS SC baseline
 * arithmetic, and the float-ref debugging backend) and print the
 * hardware report -- the whole framework in one runnable example (a
 * scaled-down version of the Table 9 flow).
 *
 * Build & run:  ./build/examples/digits_pipeline
 */

#include <cstdio>

#include "core/hardware_report.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "data/digits.h"

int
main()
{
    using namespace aqfpsc;

    std::printf("== Generating the synthetic digit dataset ==\n");
    auto train = data::generateDigits(1500, 11);
    const auto test = data::generateDigits(200, 999);
    std::printf("%zu training / %zu test images (28x28, 10 balanced "
                "classes)\n",
                train.size(), test.size());

    std::printf("\n== Training the CNN (AQFP-aware activations) ==\n");
    nn::Network net = core::buildTinyCnn(3);
    std::printf("architecture: %s\n", net.describe().c_str());
    nn::TrainConfig cfg;
    cfg.epochs = 6;
    cfg.learningRate = 0.1f;
    cfg.verbose = true;
    net.train(train, cfg);
    net.quantizeParams(10); // snap to the 10-bit SNG code grid
    const double float_acc = net.evaluate(test);
    std::printf("float accuracy (quantized weights): %.1f%%\n",
                float_acc * 100);

    // One session serves every backend; engines compile lazily.
    core::EngineOptions opts;
    opts.backend = "aqfp-sorter";
    opts.streamLen = 1024;
    opts.threads = 0; // one worker per hardware thread
    const core::InferenceSession session(std::move(net), opts);

    std::printf("\n== AQFP stochastic-computing inference (batched) ==\n");
    // Predictions are bit-identical to the single-thread path.
    const core::ScEvalStats stats =
        session.evaluate(test, {.limit = 60, .progress = true});
    std::printf("AQFP SC accuracy (%zu images, N=1024): %.1f%% at "
                "%.2f img/s\n",
                stats.images, stats.accuracy * 100, stats.imagesPerSec);

    std::printf("\n== Same session, float-ref backend (SC-noise-free) "
                "==\n");
    const core::ScEvalStats ref =
        session.evaluate(test, {.limit = 60}, "float-ref");
    std::printf("float-ref accuracy (%zu images): %.1f%%  (gap to SC: "
                "%+.1f pts)\n",
                ref.images, ref.accuracy * 100,
                (stats.accuracy - ref.accuracy) * 100);

    std::printf("\n== One image in detail ==\n");
    const core::ScPrediction pred = session.infer(test[0].image);
    std::printf("true label %d, predicted %d; class scores:\n",
                test[0].label, pred.label);
    for (std::size_t c = 0; c < pred.scores.size(); ++c)
        std::printf("  class %zu: %+.3f%s\n", c, pred.scores[c],
                    static_cast<int>(c) == pred.label ? "  <-- argmax"
                                                      : "");

    std::printf("\n== Hardware report ==\n");
    const core::NetworkHardware hw = core::analyzeNetworkHardware(
        session.network(), session.options().streamLen);
    std::printf("%-16s %12s %10s %14s %12s\n", "layer", "instances",
                "M", "JJ/block", "depth(ph)");
    for (const auto &l : hw.layers) {
        std::printf("%-16s %12lld %10d %14lld %12d\n", l.name.c_str(),
                    l.instances, l.blockInputs, l.aqfpPerBlock.jj,
                    l.aqfpPerBlock.depthPhases);
    }
    std::printf("total: %lld JJ (+%lld in SNGs/RNGs)\n", hw.aqfpTotalJj,
                hw.aqfpSngJj);
    std::printf("AQFP: %.3e uJ/image, %.0f images/ms, latency %.1f ns\n",
                hw.aqfpEnergyPerImageJ * 1e6,
                hw.aqfpThroughputImagesPerSec / 1e3,
                hw.aqfpLatencySeconds * 1e9);
    std::printf("CMOS SC baseline: %.3f uJ/image, %.0f images/ms  "
                "(energy ratio %.1e)\n",
                hw.cmosEnergyPerImageJ * 1e6,
                hw.cmosThroughputImagesPerSec / 1e3,
                hw.cmosEnergyPerImageJ / hw.aqfpEnergyPerImageJ);
    return 0;
}
