/**
 * @file
 * Quickstart: the stochastic-computing basics on AQFP, in five minutes.
 *
 * Walks through (1) bipolar encoding, (2) XNOR multiplication,
 * (3) the sorter-based feature-extraction block computing an activated
 * inner product, (4) the gate-level AQFP netlist of the same block with
 * its JJ/energy figures, and (5) the majority-chain categorization block.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cmath>
#include <cstdio>
#include <vector>

#include "aqfp/energy_model.h"
#include "aqfp/passes.h"
#include "blocks/categorization.h"
#include "blocks/feature_extraction.h"
#include "sc/sng.h"

int
main()
{
    using namespace aqfpsc;

    std::printf("== 1. Bipolar stochastic encoding ==\n");
    sc::Xoshiro256StarStar rng(2026);
    const std::size_t n = 1024; // stream length (cycles)
    const sc::Bitstream a = sc::encodeBipolar(0.40, 10, n, rng);
    const sc::Bitstream b = sc::encodeBipolar(-0.50, 10, n, rng);
    std::printf("encode(+0.40) -> stream of value %+.3f\n",
                a.bipolarValue());
    std::printf("encode(-0.50) -> stream of value %+.3f\n",
                b.bipolarValue());
    std::printf("first 32 cycles of the first stream: %s...\n",
                a.toString().substr(0, 32).c_str());

    std::printf("\n== 2. Multiplication is one XNOR gate ==\n");
    const sc::Bitstream prod = a.xnorWith(b);
    std::printf("value(a XNOR b) = %+.3f  (exact product %+.3f)\n",
                prod.bipolarValue(), 0.40 * -0.50);

    std::printf("\n== 3. Sorter-based feature extraction "
                "(inner product + activation) ==\n");
    const int m = 9;
    const std::vector<double> xv = {0.8, -0.3, 0.5, 0.1, -0.9,
                                    0.4, 0.2, -0.6, 0.7};
    const std::vector<double> wv = {0.5, 0.4, -0.2, 0.9, 0.3,
                                    -0.7, 0.6, 0.1, -0.4};
    std::vector<sc::Bitstream> x, w;
    double sum = 0.0;
    for (int j = 0; j < m; ++j) {
        sum += xv[static_cast<std::size_t>(j)] *
               wv[static_cast<std::size_t>(j)];
        x.push_back(sc::encodeBipolar(xv[static_cast<std::size_t>(j)], 10,
                                      n, rng));
        w.push_back(sc::encodeBipolar(wv[static_cast<std::size_t>(j)], 10,
                                      n, rng));
    }
    const blocks::FeatureExtractionBlock feature(m);
    const double got = feature.runInnerProduct(x, w).bipolarValue();
    std::printf("sum x.w = %+.3f; block output %+.3f "
                "(activated: tanh(0.8 z) ~ %+.3f)\n",
                sum, got, std::tanh(0.8 * sum));

    std::printf("\n== 4. The same block as an AQFP gate-level netlist ==\n");
    aqfp::PassStats stats;
    const aqfp::Netlist netlist = aqfp::legalize(
        blocks::FeatureExtractionBlock::buildNetlist(m), true, &stats);
    const aqfp::HardwareCost cost = aqfp::analyzeNetlist(netlist);
    std::printf("legalization: %s\n", stats.summary().c_str());
    std::printf("%lld JJs, depth %d phases, %.3e J per cycle, "
                "latency %.1f ns\n",
                cost.jj, cost.depthPhases, cost.energyPerCycleJ,
                cost.latencySeconds * 1e9);
    std::printf("energy for one %zu-cycle inner product: %.3e pJ\n", n,
                cost.energyPerStreamJ(n) * 1e12);

    std::printf("\n== 5. Majority-chain categorization ==\n");
    const blocks::CategorizationBlock chain(m);
    std::printf("chain of %d MAJ3 gates; output value %+.3f "
                "(sign/ranking preserved)\n",
                chain.chainLength(),
                chain.runInnerProduct(x, w).bipolarValue());

    std::printf("\nNext: examples/digits_pipeline for a full trained "
                "network in the SC domain.\n");
    return 0;
}
