/**
 * @file
 * Software re-run of the paper's hardware prototype experiment (Sec. 5,
 * Fig. 16): a feature-extraction chip fabricated in the AIST 10 kA/cm2
 * HSTP process and verified at 4.2 K in a liquid-helium dewar.
 *
 * We rebuild the same block as a legalized AQFP netlist, drive it with
 * the phase-accurate simulator at full rate (one wave per clock tick,
 * the deep-pipelining property the paper highlights), dump a short
 * oscilloscope-style trace, and verify the streamed outputs against the
 * functional model -- the digital twin of the cryoprobe measurement.
 */

#include <cstdio>
#include <vector>

#include "aqfp/energy_model.h"
#include "aqfp/passes.h"
#include "aqfp/simulator.h"
#include "blocks/feature_extraction.h"
#include "sc/sng.h"

int
main()
{
    using namespace aqfpsc;

    const int m = 9; // one 3x3 convolution window
    std::printf("== AQFP feature-extraction chip (M = %d) ==\n", m);

    const aqfp::Netlist chip =
        aqfp::legalize(blocks::FeatureExtractionBlock::buildNetlist(m));
    const aqfp::HardwareCost cost = aqfp::analyzeNetlist(chip);
    std::printf("fabricated netlist: %zu cells, %lld JJs, %d clock "
                "phases deep\n",
                chip.size(), cost.jj, cost.depthPhases);
    std::printf("at 5 GHz / 4-phase excitation: latency %.1f ns, "
                "%.2e J per cycle\n",
                cost.latencySeconds * 1e9, cost.energyPerCycleJ);

    // Test pattern: the "data pattern generator" feeds one convolution
    // window of stochastic pixels and weights.
    sc::Xoshiro256StarStar rng(42);
    const std::size_t len = 256;
    std::vector<sc::Bitstream> x, w;
    double sum = 0.0;
    for (int j = 0; j < m; ++j) {
        const double xv = 0.25 * ((j % 4) - 1.5);
        const double wv = 0.3 * ((j % 3) - 1.0);
        sum += xv * wv;
        x.push_back(sc::encodeBipolar(xv, 10, len, rng));
        w.push_back(sc::encodeBipolar(wv, 10, len, rng));
    }

    // Reference: functional model (Algorithm 1 counter form).
    const blocks::FeatureExtractionBlock block(m);
    const sc::Bitstream expected = block.runInnerProduct(x, w);

    // Streamed measurement: evaluate the combinational chip body cycle
    // by cycle with the external feedback loop closed (in silicon the
    // loop runs C-slow over the pipeline depth; the per-stream behaviour
    // is identical -- DESIGN.md Sec. 5.2).
    std::vector<bool> feedback(static_cast<std::size_t>(m), false);
    for (int j = 0; j < (m - 1) / 2; ++j)
        feedback[static_cast<std::size_t>(j)] = true;
    sc::Bitstream measured(len);
    for (std::size_t i = 0; i < len; ++i) {
        std::vector<bool> inputs;
        for (int j = 0; j < m; ++j)
            inputs.push_back(x[static_cast<std::size_t>(j)].get(i));
        for (int j = 0; j < m; ++j)
            inputs.push_back(w[static_cast<std::size_t>(j)].get(i));
        for (int j = 0; j < m; ++j)
            inputs.push_back(feedback[static_cast<std::size_t>(j)]);
        const auto outs = aqfp::evalCombinational(chip, inputs);
        if (outs[0])
            measured.set(i, true);
        for (int j = 0; j < m; ++j)
            feedback[static_cast<std::size_t>(j)] =
                outs[static_cast<std::size_t>(1 + j)];
    }

    std::printf("\noscilloscope trace (first 64 cycles):\n");
    std::printf("  x[0]: %s\n", x[0].toString().substr(0, 64).c_str());
    std::printf("  w[0]: %s\n", w[0].toString().substr(0, 64).c_str());
    std::printf("  SO:   %s\n", measured.toString().substr(0, 64).c_str());

    std::printf("\nchip output value: %+.4f (functional model %+.4f, "
                "ideal sum %+.4f)\n",
                measured.bipolarValue(), expected.bipolarValue(), sum);
    std::printf("bit-exact match with functional model: %s\n",
                measured == expected ? "YES" : "NO");

    // Full-rate streaming check through the phase-accurate simulator:
    // the balanced pipeline must accept a new wave every tick.
    aqfp::PhaseAccurateSimulator sim(chip);
    const int depth = chip.depth();
    sc::Xoshiro256StarStar wave_rng(7);
    std::vector<std::vector<bool>> waves;
    int verified = 0;
    for (int t = 0; t < depth + 64; ++t) {
        std::vector<bool> in(chip.inputs().size());
        for (std::size_t i = 0; i < in.size(); ++i)
            in[i] = wave_rng.nextBit();
        waves.push_back(in);
        const auto out = sim.tick(in);
        if (t >= depth) {
            const auto expect = aqfp::evalCombinational(
                chip, waves[static_cast<std::size_t>(t - depth)]);
            if (out != expect) {
                std::printf("STREAMING HAZARD at tick %d\n", t);
                return 1;
            }
            ++verified;
        }
    }
    std::printf("deep-pipelining check: %d back-to-back waves, RAW "
                "hazard free\n",
                verified);
    std::printf("\n(The physical chip was verified at 4.2 K in a "
                "magnetically shielded\ncryoprobe; this digital twin "
                "verifies the same netlist at full clock rate.)\n");
    return 0;
}
