/**
 * @file
 * Adaptive early-exit serving: the accuracy-vs-average-stream-length
 * trade-off the paper's stream-length evaluation is built around, plus
 * serving latency through the micro-batching InferenceServer.
 *
 * A tiny-zoo model is trained on the synthetic digit task, then
 * evaluated (1) non-adaptively at the full stream length — the
 * baseline — and (2) adaptively across a sweep of exit margins, each
 * row reporting the mean consumed cycles (the hardware would simply
 * stop clocking the SC pipeline there), the cycle-reduction factor vs.
 * the full length, and the accuracy delta.  Finally the default-margin
 * policy is served through core::InferenceServer to measure end-to-end
 * request latency percentiles (queue + service) under micro-batching.
 *
 * Results go to BENCH_adaptive_serving.json (build-stamped via
 * bench_util.h); the committed reference lives in reports/.  The
 * interesting acceptance shape: >= 1.5x mean-cycle reduction at
 * <= 0.5% accuracy drop on the tiny model.
 *
 * Usage:
 *   bench_adaptive_serving [--images N] [--stream-len L] [--epochs E]
 *                          [--train-samples S] [--backend NAME]
 *                          [--checkpoint C] [--min-cycles M]
 *                          [--workers W]
 *
 * Defaults (200 images, N=1024, 12 epochs, checkpoint 64, exit floor
 * 320 cycles) run in ~2 minutes on one core; CI smoke passes tiny
 * values and only checks the JSON appears.  The minCycles floor
 * matters: the margin estimated from the first couple of checkpoints
 * carries O(1/sqrt(n)) SC noise, and a floor of ~N/3 suppresses the
 * wrong-exit tail at almost no cost in mean cycles.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/model_zoo.h"
#include "core/server.h"
#include "core/session.h"
#include "data/digits.h"

namespace {

using namespace aqfpsc;

int
argInt(int argc, char **argv, const char *name, int fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return std::atoi(argv[i + 1]);
    }
    return fallback;
}

const char *
argStr(int argc, char **argv, const char *name, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return fallback;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace

int
main(int argc, char **argv)
{
    const int images = argInt(argc, argv, "--images", 200);
    const int stream_len = argInt(argc, argv, "--stream-len", 1024);
    const int epochs = argInt(argc, argv, "--epochs", 12);
    const int train_samples =
        argInt(argc, argv, "--train-samples", 1600);
    const int checkpoint = argInt(argc, argv, "--checkpoint", 64);
    const int min_cycles = argInt(argc, argv, "--min-cycles", 320);
    const int workers = argInt(argc, argv, "--workers", 1);
    const std::string backend =
        argStr(argc, argv, "--backend", "aqfp-sorter");

    bench::banner("Adaptive early-exit serving (tiny, N=" +
                  std::to_string(stream_len) + ", checkpoint=" +
                  std::to_string(checkpoint) + ", exit floor " +
                  std::to_string(min_cycles) + ", " +
                  std::to_string(images) + " images, backend=" + backend +
                  ")");

    // Train once: early exit only means something on a model whose
    // margins carry signal.  Same data seeds as aqfpsc_cli (train and
    // test sets disjoint).
    nn::Network net = core::buildModel("tiny", 3);
    {
        auto train = data::generateDigits(train_samples, 11);
        nn::TrainConfig cfg;
        cfg.epochs = epochs;
        cfg.learningRate = 0.08f;
        cfg.verbose = false;
        std::printf("training tiny on %zu digits, %d epochs...\n",
                    train.size(), epochs);
        net.train(train, cfg);
        net.quantizeParams(10);
    }
    const auto test = data::generateDigits(images, 999);

    core::EngineOptions opts;
    opts.backend = backend;
    opts.streamLen = static_cast<std::size_t>(stream_len);
    opts.adaptive.checkpointCycles =
        static_cast<std::size_t>(checkpoint);
    const core::InferenceSession session(std::move(net), opts);

    // ---- Baseline: full-length non-adaptive inference. ----
    session.evaluate(test, {.limit = 1}); // compile + warm
    const core::ScEvalStats baseline = session.evaluate(test, {});
    std::printf("baseline: accuracy %.4f, %zu cycles/image, %.2f img/s\n",
                baseline.accuracy, opts.streamLen, baseline.imagesPerSec);

    // ---- Margin sweep: accuracy vs. mean consumed stream length. ----
    bench::Json sweep = bench::Json::array();
    bench::header({"margin", "avg cycles", "reduction", "accuracy",
                   "acc delta", "exits", "img/s"});
    const double margins[] = {0.05, 0.10, 0.125, 0.15, 0.20};
    for (const double margin : margins) {
        core::AdaptivePolicy policy;
        policy.checkpointCycles = static_cast<std::size_t>(checkpoint);
        policy.minCycles = static_cast<std::size_t>(min_cycles);
        policy.exitMargin = margin;
        const core::AdaptiveEvalStats a =
            session.engine().evaluateAdaptive(test, policy, {});
        const double reduction =
            static_cast<double>(opts.streamLen) / a.avgConsumedCycles;
        const double delta = a.stats.accuracy - baseline.accuracy;
        bench::row({bench::cell(margin, 2),
                    bench::cell(a.avgConsumedCycles, 1),
                    bench::cell(reduction, 2) + "x",
                    bench::cell(a.stats.accuracy, 4),
                    bench::cell(delta, 4),
                    std::to_string(a.earlyExits),
                    bench::cell(a.stats.imagesPerSec, 2)});
        sweep.push(bench::Json::object()
                       .set("exit_margin", margin)
                       .set("min_cycles", min_cycles)
                       .set("avg_consumed_cycles", a.avgConsumedCycles)
                       .set("cycle_reduction", reduction)
                       .set("accuracy", a.stats.accuracy)
                       .set("accuracy_delta", delta)
                       .set("early_exits", a.earlyExits)
                       .set("images_per_sec", a.stats.imagesPerSec));
    }

    // ---- Serving latency through the micro-batching server. ----
    core::ServerOptions sopts;
    sopts.workers = workers;
    sopts.adaptive = true;
    sopts.policy.checkpointCycles =
        static_cast<std::size_t>(checkpoint);
    sopts.policy.minCycles = static_cast<std::size_t>(min_cycles);
    sopts.policy.exitMargin = 0.125;
    sopts.backend = backend;
    bench::WallTimer serve_timer;
    std::vector<double> latencies_ms;
    core::ServerStats sstats;
    {
        core::InferenceServer server(session, sopts);
        std::vector<std::future<core::ServedPrediction>> futures;
        futures.reserve(test.size());
        for (const auto &s : test)
            futures.push_back(server.submit(s.image));
        for (auto &f : futures) {
            const core::ServedPrediction r = f.get();
            latencies_ms.push_back(
                (r.queueSeconds + r.serviceSeconds) * 1000.0);
        }
        sstats = server.stats();
    }
    const double serve_wall = serve_timer.seconds();
    const double p50 = percentile(latencies_ms, 0.50);
    const double p90 = percentile(latencies_ms, 0.90);
    const double p99 = percentile(latencies_ms, 0.99);
    std::printf("serving (margin 0.125, %d worker(s)): p50 %.1f ms, "
                "p90 %.1f ms, p99 %.1f ms, %.2f img/s, "
                "avg batch %.2f, %.0f avg cycles\n",
                workers, p50, p90, p99,
                static_cast<double>(latencies_ms.size()) / serve_wall,
                sstats.avgBatchSize, sstats.avgConsumedCycles);

    bench::Json results =
        bench::Json::object()
            .set("engine", bench::engineJson(opts.toConfig(backend)))
            .set("model", "tiny")
            .set("images", static_cast<std::size_t>(test.size()))
            .set("train_epochs", epochs)
            .set("checkpoint_cycles", checkpoint)
            .set("baseline",
                 bench::Json::object()
                     .set("accuracy", baseline.accuracy)
                     .set("cycles_per_image", opts.streamLen)
                     .set("images_per_sec", baseline.imagesPerSec))
            .set("margin_sweep", std::move(sweep))
            .set("serving",
                 bench::Json::object()
                     .set("workers", workers)
                     .set("exit_margin", sopts.policy.exitMargin)
                     .set("min_cycles", min_cycles)
                     .set("latency_ms_p50", p50)
                     .set("latency_ms_p90", p90)
                     .set("latency_ms_p99", p99)
                     .set("images_per_sec",
                          static_cast<double>(latencies_ms.size()) /
                              serve_wall)
                     .set("avg_batch_size", sstats.avgBatchSize)
                     .set("avg_consumed_cycles",
                          sstats.avgConsumedCycles)
                     .set("early_exit_fraction",
                          sstats.completed == 0
                              ? 0.0
                              : static_cast<double>(sstats.earlyExits) /
                                    static_cast<double>(
                                        sstats.completed)));

    return bench::writeBenchReport("adaptive_serving",
                                   std::move(results))
               ? 0
               : 1;
}
