/**
 * @file
 * Table 3 reproduction: relative top-1 inaccuracy of the majority-chain
 * categorization block.
 *
 * Ten categorization outputs share a random input vector; the reported
 * metric is the mean relative deviation (fraction of the [-1, 1] output
 * range, in %) of the SC value of the software-top-1 output from its
 * long-stream reference -- mirroring the paper's "relative difference
 * between the highest output value in software and in SC domain".
 */

#include <cstdio>

#include "bench_util.h"
#include "blocks/accuracy.h"

namespace {

constexpr double kPaperPct[4][5] = {
    // N =      128     256     512     1024    2048
    {0.3718, 0.2198, 0.1235, 0.0620, 0.0376}, // K = 100
    {0.2708, 0.2106, 0.1671, 0.0743, 0.0301}, // K = 200
    {0.2769, 0.2374, 0.1201, 0.0687, 0.0393}, // K = 500
    {0.2780, 0.1641, 0.1269, 0.0585, 0.0339}, // K = 800
};

} // namespace

int
main()
{
    using namespace aqfpsc;
    bench::banner("Table 3: relative inaccuracy of the majority-chain "
                  "categorization block (%)");

    const int sizes[] = {100, 200, 500, 800};
    const std::vector<std::size_t> lengths = {128, 256, 512, 1024, 2048};

    blocks::AccuracyConfig cfg;
    cfg.trials = 30;
    cfg.weightScale = 1.0; // full-range weights: chains operate saturated

    std::printf("\n(a) mis-ranking margin vs the flat inner product, "
                "with RANDOM weights:\n    largest software top-1 lead "
                "at which the chain still mis-ranked the top\n    two. "
                "The large values quantify the chain's structural "
                "exponential input\n    weighting -- the reason networks "
                "must be TRAINED THROUGH the chain\n    "
                "(nn::MajorityChainDense; DESIGN.md Sec. 5) -- and are "
                "not stochastic\n    noise.\n\n");
    bench::header({"input size", "N=128", "N=256", "N=512", "N=1024",
                   "N=2048"});
    for (int si = 0; si < 4; ++si) {
        const auto flips = blocks::measureCategorizationFlipMargin(
            sizes[si], lengths, 10, cfg);
        std::vector<std::string> measured = {std::to_string(sizes[si])};
        std::vector<std::string> paper = {"(paper)"};
        for (std::size_t li = 0; li < lengths.size(); ++li) {
            measured.push_back(bench::cell(flips[li] * 100.0, 3) + "%");
            paper.push_back(bench::cell(kPaperPct[si][li]) + "%");
        }
        bench::row(measured);
        bench::row(paper);
    }

    std::printf("\n(b) the paper's metric: relative difference between "
                "the top output's value\n    in software (exact expected "
                "chain value) and in the SC domain -- the\n    stochastic"
                " component, falling ~1/sqrt(N)\n\n");
    bench::header({"input size", "N=128", "N=256", "N=512", "N=1024",
                   "N=2048"});
    for (int si = 0; si < 4; ++si) {
        const auto errs = blocks::measureCategorizationErrorRow(
            sizes[si], lengths, 10, 16384, cfg);
        std::vector<std::string> measured = {std::to_string(sizes[si])};
        for (std::size_t li = 0; li < lengths.size(); ++li)
            measured.push_back(bench::cell(errs[li] * 100.0) + "%");
        bench::row(measured);
    }

    std::printf("\nExpected trends: sub-percent inaccuracy throughout, "
                "falling ~1/sqrt(N) with\nstream length and flat in input "
                "size -- if the true top-1 leads by more than\nthis margin "
                "the majority chain classifies correctly (Sec. 4.4).\n");
    return 0;
}
