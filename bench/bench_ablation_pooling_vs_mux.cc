/**
 * @file
 * Ablation C (Sec. 4.3): accuracy of the proposed sorter-based average
 * pooling vs the CMOS baseline's MUX pooling, across input size and
 * stream length.
 */

#include <cmath>
#include <cstdio>

#include "baseline/sc_dcnn.h"
#include "bench_util.h"
#include "blocks/avg_pooling.h"
#include "sc/sng.h"

int
main()
{
    using namespace aqfpsc;
    bench::banner("Ablation C: sorter-based pooling vs MUX pooling "
                  "(mean absolute error)");

    const int trials = 100;
    bench::header({"input size", "N", "sorter", "mux", "mux/sorter"});
    for (int m : {4, 9, 16, 36}) {
        for (std::size_t n : {128u, 1024u}) {
            sc::Xoshiro256StarStar rng(m * 31 + static_cast<int>(n));
            const blocks::AvgPoolingBlock sorter(m);
            const baseline::MuxAveragePooling mux(m);
            double sorter_err = 0.0, mux_err = 0.0;
            for (int t = 0; t < trials; ++t) {
                std::vector<sc::Bitstream> ins;
                double sum = 0.0;
                for (int j = 0; j < m; ++j) {
                    const double v = 2.0 * rng.nextDouble() - 1.0;
                    sum += sc::codeToBipolar(sc::quantizeBipolar(v, 10),
                                             10);
                    ins.push_back(sc::encodeBipolar(v, 10, n, rng));
                }
                const double ideal = sum / m;
                sorter_err +=
                    std::abs(sorter.run(ins).bipolarValue() - ideal);
                mux_err +=
                    std::abs(mux.run(ins, rng).bipolarValue() - ideal);
            }
            sorter_err /= trials;
            mux_err /= trials;
            bench::row({std::to_string(m), std::to_string(n),
                        bench::cell(sorter_err), bench::cell(mux_err),
                        bench::cell(mux_err / sorter_err, 1) + "x"});
        }
    }

    std::printf("\nExpected: the sorter's error stays near the exact "
                "+/-1-carry bound while MUX\npooling's subsampling noise "
                "grows ~sqrt(M) -- the accuracy argument of Sec. 4.3.\n");
    return 0;
}
