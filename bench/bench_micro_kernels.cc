/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernels: packed
 * XNOR multiply, column counting, the feedback units, sorting-network
 * application and netlist legalization.  These guard the performance of
 * the whole-network SC engine (which executes millions of block steps
 * per image).
 */

#include <benchmark/benchmark.h>

#include "aqfp/passes.h"
#include "blocks/avg_pooling.h"
#include "blocks/feature_extraction.h"
#include "blocks/feedback_unit.h"
#include "sc/apc.h"
#include "sc/sng.h"
#include "sorting/bitonic.h"

namespace {

using namespace aqfpsc;

void
BM_XnorMultiply(benchmark::State &state)
{
    sc::Xoshiro256StarStar rng(1);
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    const sc::Bitstream a = sc::encodeBipolar(0.3, 10, len, rng);
    const sc::Bitstream b = sc::encodeBipolar(-0.4, 10, len, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.xnorWith(b));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(len));
}
BENCHMARK(BM_XnorMultiply)->Arg(1024)->Arg(8192);

void
BM_ColumnCounts(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    const std::size_t len = 1024;
    sc::Xoshiro256StarStar rng(2);
    std::vector<sc::Bitstream> streams;
    for (int j = 0; j < m; ++j)
        streams.push_back(sc::encodeBipolar(0.0, 10, len, rng));
    std::vector<int> out;
    for (auto _ : state) {
        sc::ColumnCounts counts(len, m);
        for (const auto &s : streams)
            counts.add(s);
        counts.extract(out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * m *
                            static_cast<long>(len));
}
BENCHMARK(BM_ColumnCounts)->Arg(9)->Arg(121)->Arg(1569);

void
BM_FeatureBlockRun(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    const std::size_t len = 1024;
    sc::Xoshiro256StarStar rng(3);
    std::vector<sc::Bitstream> products;
    for (int j = 0; j < m; ++j)
        products.push_back(sc::encodeBipolar(0.1, 10, len, rng));
    const blocks::FeatureExtractionBlock block(m);
    for (auto _ : state)
        benchmark::DoNotOptimize(block.run(products));
    state.SetItemsProcessed(state.iterations() * m *
                            static_cast<long>(len));
}
BENCHMARK(BM_FeatureBlockRun)->Arg(9)->Arg(121);

void
BM_SngStreamGeneration(benchmark::State &state)
{
    sc::Xoshiro256StarStar rng(4);
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sc::encodeBipolar(0.25, 10, len, rng));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(len));
}
BENCHMARK(BM_SngStreamGeneration)->Arg(1024);

void
BM_BitonicApply(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const sorting::BitonicNetwork net = sorting::BitonicNetwork::sorter(n);
    sc::Xoshiro256StarStar rng(5);
    std::vector<int> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = static_cast<int>(rng.nextBits(16));
    for (auto _ : state) {
        std::vector<int> copy = v;
        net.apply(copy);
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_BitonicApply)->Arg(32)->Arg(128);

void
BM_LegalizeFeatureBlock(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(aqfp::legalize(
            blocks::FeatureExtractionBlock::buildNetlist(m), false));
    }
}
BENCHMARK(BM_LegalizeFeatureBlock)->Arg(9)->Arg(49)->Unit(
    benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
