/**
 * @file
 * google-benchmark microbenchmarks of the simulation kernels: packed
 * XNOR multiply, column counting (unfused reference vs fused
 * XNOR+carry-save kernels), count extraction vs the fused feedback
 * drive, SNG stream generation (bit-serial vs word-batched), the
 * feedback units, sorting-network application and netlist legalization.
 * These guard the performance of the whole-network SC engine (which
 * executes millions of block steps per image).
 *
 * Besides the google-benchmark console output, the binary ends by
 * measuring the fused-vs-unfused kernel pairs with a wall timer and
 * writing BENCH_micro_kernels.json, so the kernel-level speedup is
 * tracked machine-readably across PRs (set AQFPSC_BENCH_QUICK=1 to
 * shrink the measurement for CI smoke runs).
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <vector>

#include "aqfp/passes.h"
#include "bench_util.h"
#include "blocks/avg_pooling.h"
#include "blocks/feature_extraction.h"
#include "blocks/feedback_unit.h"
#include "core/stages/stage_common.h"
#include "sc/apc.h"
#include "sc/simd/simd.h"
#include "sc/sng.h"
#include "sc/stream_matrix.h"
#include "sorting/bitonic.h"

namespace {

using namespace aqfpsc;

void
BM_XnorMultiply(benchmark::State &state)
{
    sc::Xoshiro256StarStar rng(1);
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    const sc::Bitstream a = sc::encodeBipolar(0.3, 10, len, rng);
    const sc::Bitstream b = sc::encodeBipolar(-0.4, 10, len, rng);
    for (auto _ : state)
        benchmark::DoNotOptimize(a.xnorWith(b));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(len));
}
BENCHMARK(BM_XnorMultiply)->Arg(1024)->Arg(8192);

void
BM_ColumnCounts(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    const std::size_t len = 1024;
    sc::Xoshiro256StarStar rng(2);
    std::vector<sc::Bitstream> streams;
    for (int j = 0; j < m; ++j)
        streams.push_back(sc::encodeBipolar(0.0, 10, len, rng));
    std::vector<int> out;
    for (auto _ : state) {
        sc::ColumnCounts counts(len, m);
        for (const auto &s : streams)
            counts.add(s);
        counts.extract(out);
        benchmark::DoNotOptimize(out.data());
    }
    state.SetItemsProcessed(state.iterations() * m *
                            static_cast<long>(len));
}
BENCHMARK(BM_ColumnCounts)->Arg(9)->Arg(121)->Arg(1569);

// ---------------------------------------------------------------------
// Fused vs unfused inference kernels.  Each *Unfused/*Fused pair
// computes the same per-neuron result (tests/test_fused_kernels.cc
// asserts bit-equality); the bench pair isolates the cost of the
// intermediate product buffer, the eager plane re-zeroing, and the
// materialized count array that the fused kernels eliminate.
// ---------------------------------------------------------------------

struct KernelInputs
{
    KernelInputs(int m, std::size_t len)
        : x(static_cast<std::size_t>(m), len),
          w(static_cast<std::size_t>(m), len)
    {
        sc::Xoshiro256StarStar rng(3);
        for (int j = 0; j < m; ++j) {
            x.fillBipolar(static_cast<std::size_t>(j), 0.1, 10, rng);
            w.fillBipolar(static_cast<std::size_t>(j), -0.2, 10, rng);
        }
    }

    sc::StreamMatrix x, w;
};

/** Reference path: XNOR into a product buffer, addWords, extract, step. */
void
runUnfusedNeuron(const KernelInputs &in, sc::ColumnCounts &counts,
                 std::vector<std::uint64_t> &prod, std::vector<int> &col,
                 std::uint64_t *dst)
{
    const std::size_t wpr = in.x.wordsPerRow();
    const int m = static_cast<int>(in.x.rows());
    counts.clear();
    for (int j = 0; j < m; ++j) {
        core::stages::xnorProduct(prod.data(),
                                  in.x.row(static_cast<std::size_t>(j)),
                                  in.w.row(static_cast<std::size_t>(j)),
                                  wpr);
        counts.addWords(prod.data(), wpr);
    }
    counts.extract(col);
    const int eff_m = m % 2 == 1 ? m : m + 1;
    blocks::FeatureFeedbackUnit unit(eff_m);
    for (std::size_t i = 0; i < in.x.streamLen(); ++i) {
        if (unit.step(col[i]))
            core::stages::setStreamBit(dst, i);
    }
}

/** Fused path: paired addXnor2 + lazy clear + drive, no intermediates. */
void
runFusedNeuron(const KernelInputs &in, sc::ColumnCounts &counts,
               blocks::FeatureFeedbackUnit &unit, std::uint64_t *dst)
{
    const std::size_t wpr = in.x.wordsPerRow();
    const int m = static_cast<int>(in.x.rows());
    counts.clear();
    int j = 0;
    for (; j + 1 < m; j += 2) {
        counts.addXnor2(in.x.row(static_cast<std::size_t>(j)),
                        in.w.row(static_cast<std::size_t>(j)),
                        in.x.row(static_cast<std::size_t>(j) + 1),
                        in.w.row(static_cast<std::size_t>(j) + 1), wpr);
    }
    if (j < m)
        counts.addXnor(in.x.row(static_cast<std::size_t>(j)),
                       in.w.row(static_cast<std::size_t>(j)), wpr);
    unit.reset(m % 2 == 1 ? m : m + 1);
    counts.drive([&](int c) { return unit.step(c); }, dst);
}

void
BM_NeuronKernelUnfused(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    const std::size_t len = 1024;
    const KernelInputs in(m, len);
    sc::ColumnCounts counts(len, m + 2);
    std::vector<std::uint64_t> prod(in.x.wordsPerRow());
    std::vector<int> col;
    std::vector<std::uint64_t> dst(in.x.wordsPerRow());
    for (auto _ : state) {
        std::fill(dst.begin(), dst.end(), 0);
        runUnfusedNeuron(in, counts, prod, col, dst.data());
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * m *
                            static_cast<long>(len));
}
BENCHMARK(BM_NeuronKernelUnfused)->Arg(9)->Arg(121)->Arg(1569);

void
BM_NeuronKernelFused(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    const std::size_t len = 1024;
    const KernelInputs in(m, len);
    sc::ColumnCounts counts(len, m + 2);
    blocks::FeatureFeedbackUnit unit(1);
    std::vector<std::uint64_t> dst(in.x.wordsPerRow());
    for (auto _ : state) {
        runFusedNeuron(in, counts, unit, dst.data());
        benchmark::DoNotOptimize(dst.data());
    }
    state.SetItemsProcessed(state.iterations() * m *
                            static_cast<long>(len));
}
BENCHMARK(BM_NeuronKernelFused)->Arg(9)->Arg(121)->Arg(1569);

/** The pre-fusion StreamMatrix::fillBipolar loop: one virtual RNG draw
 *  and one compare per cycle.  Shared by the google-benchmark case and
 *  the JSON report so both measure the same reference kernel. */
void
runSngFillBitSerial(sc::StreamMatrix &m, sc::RandomSource &rng,
                    std::uint32_t code, int bits)
{
    const std::size_t len = m.streamLen();
    std::uint64_t *dst = m.row(0);
    for (std::size_t w = 0; w < m.wordsPerRow(); ++w) {
        std::uint64_t word = 0;
        const std::size_t hi = len - w * 64 < 64 ? len - w * 64 : 64;
        for (std::size_t b = 0; b < hi; ++b) {
            if (rng.nextBits(bits) < code)
                word |= 1ULL << b;
        }
        dst[w] = word;
    }
}

void
BM_SngFillBitSerial(benchmark::State &state)
{
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    sc::Xoshiro256StarStar rng(4);
    sc::StreamMatrix m(1, len);
    const std::uint32_t code = sc::quantizeBipolar(0.25, 10);
    for (auto _ : state) {
        runSngFillBitSerial(m, rng, code, 10);
        benchmark::DoNotOptimize(m.row(0));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(len));
}
BENCHMARK(BM_SngFillBitSerial)->Arg(1024);

void
BM_SngFillWordBatched(benchmark::State &state)
{
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    sc::Xoshiro256StarStar rng(4);
    sc::StreamMatrix m(1, len);
    for (auto _ : state) {
        m.fillBipolar(0, 0.25, 10, rng);
        benchmark::DoNotOptimize(m.row(0));
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(len));
}
BENCHMARK(BM_SngFillWordBatched)->Arg(1024);

// ---------------------------------------------------------------------
// Cohort carry-save ripple: scalar reference table vs the dispatched
// SIMD kernels, over the exact *Multi call mix stage-major execution
// issues per output row (paired addXnor2Multi + addWordsMulti bias).
// tests/test_simd_kernels.cc asserts the paths are bit-identical; the
// pair here isolates the vector ripple's speedup per cohort size.
// ---------------------------------------------------------------------

struct CohortInputs
{
    CohortInputs(std::size_t images, int m, std::size_t len)
        : images_(images), m_(m), w(static_cast<std::size_t>(m), len)
    {
        sc::Xoshiro256StarStar rng(6);
        for (int j = 0; j < m; ++j)
            w.fillBipolar(static_cast<std::size_t>(j), -0.2, 10, rng);
        for (std::size_t c = 0; c < images; ++c) {
            xs.emplace_back(static_cast<std::size_t>(m), len);
            for (int j = 0; j < m; ++j)
                xs.back().fillBipolar(static_cast<std::size_t>(j),
                                      0.1, 10, rng);
            counts.emplace_back(len, m + 2);
        }
    }

    /** One output row: clear, paired products, bias-style shared row. */
    void
    runRow()
    {
        const std::size_t wpr = w.wordsPerRow();
        sc::ColumnCounts *cc[sc::ColumnCounts::kMaxMultiImages];
        const std::uint64_t *px[sc::ColumnCounts::kMaxMultiImages];
        const std::uint64_t *x2[sc::ColumnCounts::kMaxMultiImages];
        for (std::size_t c = 0; c < images_; ++c) {
            cc[c] = &counts[c];
            cc[c]->clear();
        }
        int j = 0;
        for (; j + 1 < m_; j += 2) {
            for (std::size_t c = 0; c < images_; ++c) {
                px[c] = xs[c].row(static_cast<std::size_t>(j));
                x2[c] = xs[c].row(static_cast<std::size_t>(j) + 1);
            }
            sc::ColumnCounts::addXnor2Multi(
                cc, px, x2, images_, w.row(static_cast<std::size_t>(j)),
                w.row(static_cast<std::size_t>(j) + 1), wpr);
        }
        if (j < m_) {
            for (std::size_t c = 0; c < images_; ++c)
                px[c] = xs[c].row(static_cast<std::size_t>(j));
            sc::ColumnCounts::addXnorMulti(
                cc, px, images_, w.row(static_cast<std::size_t>(j)), wpr);
        }
        sc::ColumnCounts::addWordsMulti(cc, images_, w.row(0), wpr);
    }

    std::size_t images_;
    int m_;
    sc::StreamMatrix w;
    std::vector<sc::StreamMatrix> xs;
    std::vector<sc::ColumnCounts> counts;
};

/** RAII level pin for the scalar-vs-dispatched comparison cases. */
struct BenchLevelGuard
{
    explicit BenchLevelGuard(sc::simd::Level level)
        : prev(sc::simd::activeLevel())
    {
        sc::simd::setActiveLevel(level);
    }
    ~BenchLevelGuard() { sc::simd::setActiveLevel(prev); }
    sc::simd::Level prev;
};

void
BM_ColumnCountsCohortRippleScalar(benchmark::State &state)
{
    const std::size_t images = static_cast<std::size_t>(state.range(0));
    CohortInputs in(images, 121, 1024);
    const BenchLevelGuard guard(sc::simd::Level::Scalar);
    for (auto _ : state) {
        in.runRow();
        benchmark::DoNotOptimize(in.counts[0]);
    }
    state.SetItemsProcessed(state.iterations() * 121 *
                            static_cast<long>(images) * 1024);
}
BENCHMARK(BM_ColumnCountsCohortRippleScalar)->Arg(1)->Arg(4)->Arg(8);

void
BM_ColumnCountsCohortRippleSimd(benchmark::State &state)
{
    const std::size_t images = static_cast<std::size_t>(state.range(0));
    CohortInputs in(images, 121, 1024);
    const BenchLevelGuard guard(sc::simd::detectedLevel());
    for (auto _ : state) {
        in.runRow();
        benchmark::DoNotOptimize(in.counts[0]);
    }
    state.SetItemsProcessed(state.iterations() * 121 *
                            static_cast<long>(images) * 1024);
}
BENCHMARK(BM_ColumnCountsCohortRippleSimd)->Arg(1)->Arg(4)->Arg(8);

void
BM_FeatureBlockRun(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    const std::size_t len = 1024;
    sc::Xoshiro256StarStar rng(3);
    std::vector<sc::Bitstream> products;
    for (int j = 0; j < m; ++j)
        products.push_back(sc::encodeBipolar(0.1, 10, len, rng));
    const blocks::FeatureExtractionBlock block(m);
    for (auto _ : state)
        benchmark::DoNotOptimize(block.run(products));
    state.SetItemsProcessed(state.iterations() * m *
                            static_cast<long>(len));
}
BENCHMARK(BM_FeatureBlockRun)->Arg(9)->Arg(121);

void
BM_SngStreamGeneration(benchmark::State &state)
{
    sc::Xoshiro256StarStar rng(4);
    const std::size_t len = static_cast<std::size_t>(state.range(0));
    for (auto _ : state)
        benchmark::DoNotOptimize(sc::encodeBipolar(0.25, 10, len, rng));
    state.SetItemsProcessed(state.iterations() *
                            static_cast<long>(len));
}
BENCHMARK(BM_SngStreamGeneration)->Arg(1024);

void
BM_BitonicApply(benchmark::State &state)
{
    const int n = static_cast<int>(state.range(0));
    const sorting::BitonicNetwork net = sorting::BitonicNetwork::sorter(n);
    sc::Xoshiro256StarStar rng(5);
    std::vector<int> v(static_cast<std::size_t>(n));
    for (auto &x : v)
        x = static_cast<int>(rng.nextBits(16));
    for (auto _ : state) {
        std::vector<int> copy = v;
        net.apply(copy);
        benchmark::DoNotOptimize(copy.data());
    }
}
BENCHMARK(BM_BitonicApply)->Arg(32)->Arg(128);

void
BM_LegalizeFeatureBlock(benchmark::State &state)
{
    const int m = static_cast<int>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(aqfp::legalize(
            blocks::FeatureExtractionBlock::buildNetlist(m), false));
    }
}
BENCHMARK(BM_LegalizeFeatureBlock)->Arg(9)->Arg(49)->Unit(
    benchmark::kMillisecond);

// ---------------------------------------------------------------------
// Machine-readable fused-vs-unfused report
// ---------------------------------------------------------------------

/** Seconds per pass of @p fn, adaptively iterated to ~target seconds. */
template <typename Fn>
double
secondsPerPass(Fn &&fn, double target)
{
    std::size_t iters = 0;
    bench::WallTimer timer;
    do {
        fn();
        ++iters;
    } while (timer.seconds() < target);
    return timer.seconds() / static_cast<double>(iters);
}

void
writeFusedKernelReport()
{
    const bool quick = std::getenv("AQFPSC_BENCH_QUICK") != nullptr;
    const double target = quick ? 0.02 : 0.3;
    const std::size_t len = 1024;

    bench::Json rows = bench::Json::array();
    for (const int m : {9, 121, 1569}) {
        const KernelInputs in(m, len);
        sc::ColumnCounts counts(len, m + 2);
        std::vector<std::uint64_t> prod(in.x.wordsPerRow());
        std::vector<int> col;
        std::vector<std::uint64_t> dst(in.x.wordsPerRow());
        blocks::FeatureFeedbackUnit unit(1);

        const double unfused = secondsPerPass(
            [&] {
                std::fill(dst.begin(), dst.end(), 0);
                runUnfusedNeuron(in, counts, prod, col, dst.data());
            },
            target);
        const double fused = secondsPerPass(
            [&] { runFusedNeuron(in, counts, unit, dst.data()); }, target);

        rows.push(bench::Json::object()
                      .set("kernel", "xnor_count_feedback_neuron")
                      .set("m", m)
                      .set("stream_len", len)
                      .set("unfused_sec_per_neuron", unfused)
                      .set("fused_sec_per_neuron", fused)
                      .set("speedup", unfused / fused));
    }

    // SNG fill: bit-serial reference vs word-batched fillBipolar.
    {
        sc::Xoshiro256StarStar rng(4);
        sc::StreamMatrix m(1, len);
        const std::uint32_t code = sc::quantizeBipolar(0.25, 10);
        const double serial = secondsPerPass(
            [&] { runSngFillBitSerial(m, rng, code, 10); }, target);
        const double batched = secondsPerPass(
            [&] { m.fillBipolar(0, 0.25, 10, rng); }, target);
        rows.push(bench::Json::object()
                      .set("kernel", "sng_fill_bipolar")
                      .set("stream_len", len)
                      .set("unfused_sec_per_stream", serial)
                      .set("fused_sec_per_stream", batched)
                      .set("speedup", serial / batched));
    }

    // Scalar vs dispatched SIMD rows.  Both sides run the same *Multi
    // entry points; only the dispatch table differs, so the speedup is
    // purely the vector kernels' (the outputs are bit-identical — see
    // tests/test_simd_kernels.cc).
    const sc::simd::Level vec = sc::simd::detectedLevel();
    const std::string vec_name = sc::simd::levelName(vec);
    for (const std::size_t images : {std::size_t{1}, std::size_t{4},
                                     std::size_t{8}}) {
        CohortInputs in(images, 121, len);
        double scalar_sec = 0.0;
        double simd_sec = 0.0;
        {
            const BenchLevelGuard guard(sc::simd::Level::Scalar);
            scalar_sec = secondsPerPass([&] { in.runRow(); }, target);
        }
        {
            const BenchLevelGuard guard(vec);
            simd_sec = secondsPerPass([&] { in.runRow(); }, target);
        }
        rows.push(bench::Json::object()
                      .set("kernel", "cohort_carry_save_ripple")
                      .set("cohort", images)
                      .set("m", 121)
                      .set("stream_len", len)
                      .set("scalar_sec_per_row", scalar_sec)
                      .set("simd_sec_per_row", simd_sec)
                      .set("speedup", scalar_sec / simd_sec)
                      .set("simd_level", vec_name));
    }
    {
        sc::Xoshiro256StarStar rng(9);
        sc::StreamMatrix m(1, len);
        double scalar_sec = 0.0;
        double simd_sec = 0.0;
        {
            const BenchLevelGuard guard(sc::simd::Level::Scalar);
            scalar_sec = secondsPerPass(
                [&] { m.fillBipolar(0, 0.731, 10, rng); }, target);
        }
        {
            const BenchLevelGuard guard(vec);
            simd_sec = secondsPerPass(
                [&] { m.fillBipolar(0, 0.731, 10, rng); }, target);
        }
        rows.push(bench::Json::object()
                      .set("kernel", "sng_threshold_fill")
                      .set("stream_len", len)
                      .set("scalar_sec_per_stream", scalar_sec)
                      .set("simd_sec_per_stream", simd_sec)
                      .set("speedup", scalar_sec / simd_sec)
                      .set("simd_level", vec_name));
    }

    bench::writeBenchReport("micro_kernels", std::move(rows));
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeFusedKernelReport();
    return 0;
}
