/**
 * @file
 * Table 1 reproduction: absolute inaccuracy of the bitonic sorter-based
 * feature-extraction block vs input size and bit-stream length.
 *
 * Workload: inputs uniform in [-1, 1]; weights uniform scaled to keep the
 * pre-activation sum in the active region of the clipped activation
 * (otherwise saturation hides the block error; see EXPERIMENTS.md).
 * Reported: mean |value(SO) - clip(sum x_j w_j, -1, 1)|.
 */

#include <cstdio>

#include "bench_util.h"
#include "blocks/accuracy.h"

namespace {

/** Paper Table 1 values for side-by-side comparison. */
constexpr double kPaper[5][5] = {
    // N =      128     256     512     1024    2048
    {0.1131, 0.0847, 0.0676, 0.0573, 0.0511}, // M = 9
    {0.1278, 0.0896, 0.0674, 0.0536, 0.0434}, // M = 25
    {0.1267, 0.0954, 0.0705, 0.0528, 0.0468}, // M = 49
    {0.1290, 0.0937, 0.0685, 0.0531, 0.0396}, // M = 81
    {0.1359, 0.0942, 0.0654, 0.0513, 0.0374}, // M = 121
};

} // namespace

int
main()
{
    using namespace aqfpsc;
    bench::banner("Table 1: absolute inaccuracy of the sorter-based "
                  "feature-extraction block");

    const int sizes[] = {9, 25, 49, 81, 121};
    const std::size_t lengths[] = {128, 256, 512, 1024, 2048};

    blocks::AccuracyConfig cfg;
    cfg.trials = 100;
    cfg.weightScale = 1.0; // full-range weights, as in the paper's setup

    std::printf("\n(a) full-range random weights, error vs the ideal "
                "clipped sum (the paper's\n    metric; most sums "
                "saturate, so the knee contributes only near |z|~1)\n\n");
    bench::header({"input size", "N=128", "N=256", "N=512", "N=1024",
                   "N=2048"});
    for (int si = 0; si < 5; ++si) {
        std::vector<std::string> measured = {std::to_string(sizes[si])};
        std::vector<std::string> paper = {"(paper)"};
        for (int li = 0; li < 5; ++li) {
            const double err = blocks::measureFeatureExtractionError(
                sizes[si], lengths[li], cfg);
            measured.push_back(bench::cell(err));
            paper.push_back(bench::cell(kPaper[si][li]));
        }
        bench::row(measured);
        bench::row(paper);
    }

    std::printf("\n(b) active-region weights (|sum| mostly < 1), error "
                "vs the block's fitted\n    transfer curve tanh(0.8 z): "
                "isolates the stochastic + carry-correlation\n    error "
                "in the hardest operating region\n\n");
    cfg.weightScale = 0.0; // active-region scaling
    bench::header({"input size", "N=128", "N=256", "N=512", "N=1024",
                   "N=2048"});
    for (int si = 0; si < 5; ++si) {
        std::vector<std::string> measured = {std::to_string(sizes[si])};
        for (int li = 0; li < 5; ++li) {
            const double err = blocks::measureFeatureExtractionError(
                sizes[si], lengths[li], cfg,
                blocks::FeatureReference::FittedTanh);
            measured.push_back(bench::cell(err));
        }
        bench::row(measured);
    }

    std::printf("\nExpected trends: table (a) matches the paper's band "
                "and falls with stream\nlength without degrading as the "
                "input size grows (the headline claim).\nTable (b) "
                "stresses the non-saturated regime, where the feedback "
                "carry's\nserial correlation adds a ~sqrt(M/N) "
                "component.\n");
    return 0;
}
