/**
 * @file
 * Table 2 reproduction: absolute inaccuracy of the bitonic sorter-based
 * average-pooling block vs input size and bit-stream length.
 *
 * Workload: inputs uniform in [-1, 1]; reported:
 * mean |value(SO) - mean_j(x_j)|.
 */

#include <cstdio>

#include "bench_util.h"
#include "blocks/accuracy.h"

namespace {

constexpr double kPaper[5][5] = {
    // N =      128     256     512     1024    2048
    {0.0249, 0.0163, 0.0115, 0.0085, 0.0058}, // M = 4
    {0.0173, 0.0112, 0.0079, 0.0055, 0.0039}, // M = 9
    {0.0141, 0.0089, 0.0061, 0.0042, 0.0030}, // M = 16
    {0.0122, 0.0078, 0.0049, 0.0033, 0.0024}, // M = 25
    {0.0105, 0.0065, 0.0043, 0.0029, 0.0019}, // M = 36
};

} // namespace

int
main()
{
    using namespace aqfpsc;
    bench::banner("Table 2: absolute inaccuracy of the sorter-based "
                  "average-pooling block");

    const int sizes[] = {4, 9, 16, 25, 36};
    const std::size_t lengths[] = {128, 256, 512, 1024, 2048};

    blocks::AccuracyConfig cfg;
    cfg.trials = 200;

    bench::header({"input size", "N=128", "N=256", "N=512", "N=1024",
                   "N=2048"});
    for (int si = 0; si < 5; ++si) {
        std::vector<std::string> measured = {std::to_string(sizes[si])};
        std::vector<std::string> paper = {"(paper)"};
        for (int li = 0; li < 5; ++li) {
            const double err =
                blocks::measurePoolingError(sizes[si], lengths[li], cfg);
            measured.push_back(bench::cell(err));
            paper.push_back(bench::cell(kPaper[si][li]));
        }
        bench::row(measured);
        bench::row(paper);
    }

    std::printf("\nExpected trends: error falls with stream length AND "
                "with input size\n(averaging over more streams), staying "
                "far below the feature-extraction\nblock's error -- the "
                "pooling block is exact up to a +/-1 carried remainder.\n");
    return 0;
}
