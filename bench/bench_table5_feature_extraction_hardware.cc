/**
 * @file
 * Table 5 reproduction: hardware utilization of the sorter-based
 * feature-extraction block.
 *
 * The AQFP column builds the actual XNOR + bitonic sorter + merger
 * netlist for every input size, runs the full legalization pipeline
 * (majority synthesis where profitable, splitter trees, path-balancing
 * buffers) and reports JJ counts, per-stream energy (N = 1024 cycles)
 * and pipeline latency.  The CMOS column is the SC-DCNN baseline (XNOR +
 * APC + Btanh counter) under the 40 nm model.
 */

#include <cstdio>

#include "aqfp/energy_model.h"
#include "aqfp/passes.h"
#include "baseline/cmos_model.h"
#include "bench_util.h"
#include "blocks/feature_extraction.h"

namespace {

struct PaperRow
{
    int m;
    double aqfp_pj;
    double cmos_pj;
    double aqfp_ns;
    double cmos_ns;
};

constexpr PaperRow kPaper[] = {
    {9, 2.972e-4, 320.819, 2.2, 1024.0},
    {25, 1.350e-3, 520.704, 3.4, 1228.8},
    {49, 3.978e-3, 843.469, 4.8, 1535.0},
    {81, 9.168e-3, 1099.776, 6.6, 1741.8},
    {121, 1.333e-2, 2948.496, 6.8, 1946.6},
    {500, 9.147e-2, 6807.552, 10.8, 2455.6},
    {800, 0.186, 9804.800, 12.4, 2868.2},
};

} // namespace

int
main()
{
    using namespace aqfpsc;
    bench::banner("Table 5: hardware utilization of the feature-extraction "
                  "block (per 1024-cycle stream)");

    const aqfp::AqfpTechnology tech;
    const baseline::CmosTechnology cmos_tech;
    const std::size_t stream = 1024;

    bench::header({"input size", "AQFP JJ", "AQFP E(pJ)", "CMOS E(pJ)",
                   "AQFP d(ns)", "CMOS d(ns)", "E ratio"});
    for (const auto &p : kPaper) {
        const aqfp::Netlist net = aqfp::legalize(
            blocks::FeatureExtractionBlock::buildNetlist(p.m),
            /*with_synthesis=*/p.m <= 128);
        const aqfp::HardwareCost cost = aqfp::analyzeNetlist(net, tech);
        const double aqfp_e = cost.energyPerStreamJ(stream) * 1e12;
        const double aqfp_d = cost.latencySeconds * 1e9;

        const baseline::CmosBlockCost cmos =
            baseline::cmosFeatureExtractionCost(p.m, cmos_tech);
        const double cmos_e = cmos.energyPerStreamJ(stream) * 1e12;
        const double cmos_d =
            stream * cmos_tech.cycleSeconds() * 1e9 +
            cmos.latencySeconds * 1e9;

        bench::row({std::to_string(p.m), std::to_string(cost.jj),
                    bench::sci(aqfp_e), bench::cell(cmos_e, 1),
                    bench::cell(aqfp_d, 1), bench::cell(cmos_d, 1),
                    bench::sci(cmos_e / aqfp_e, 2)});
        bench::row({"(paper)", "-", bench::sci(p.aqfp_pj),
                    bench::cell(p.cmos_pj, 1), bench::cell(p.aqfp_ns, 1),
                    bench::cell(p.cmos_ns, 1),
                    bench::sci(p.cmos_pj / p.aqfp_pj, 2)});
    }

    std::printf("\nExpected shape: AQFP latency grows ~log^2(M) (a few ns "
                "at M=800, ~100-500x\nbelow the stream-serial CMOS "
                "pipeline); energy ratio sits in the 1e4..1e6 band\nand "
                "grows with M as the APC+counter datapath outpaces the "
                "sorter.\n");
    return 0;
}
