/**
 * @file
 * Table 4 reproduction: hardware utilization of the stochastic number
 * generator bank (AQFP true-RNG matrix + comparators vs CMOS LFSR SNGs).
 *
 * The AQFP column is computed from legalized comparator netlists plus the
 * 4-way shared RNG-matrix JJ accounting; the CMOS column from the 40 nm
 * analytical model.  Energies are per clock cycle (one random bit per
 * output per cycle), as in the paper's Table 4; delays are the conversion
 * pipeline latencies.
 */

#include <cstdio>

#include "aqfp/energy_model.h"
#include "baseline/cmos_model.h"
#include "bench_util.h"
#include "blocks/sng_block.h"

namespace {

struct PaperRow
{
    int outputs;
    double aqfp_pj;
    double cmos_pj;
    double aqfp_ns;
    double cmos_ns;
};

constexpr PaperRow kPaper[] = {
    {100, 9.700e-5, 14.42, 0.2, 0.6},
    {500, 4.850e-4, 72.11, 0.2, 0.6},
    {800, 7.760e-4, 115.4, 0.2, 0.6},
};

} // namespace

int
main()
{
    using namespace aqfpsc;
    bench::banner("Table 4: hardware utilization of the stochastic number "
                  "generator (10-bit codes)");

    const aqfp::AqfpTechnology aqfp_tech;
    const baseline::CmosTechnology cmos_tech;
    const int rng_bits = 10;

    bench::header({"outputs", "AQFP E(pJ)", "CMOS E(pJ)", "AQFP d(ns)",
                   "CMOS d(ns)", "E ratio"});
    for (const auto &p : kPaper) {
        const blocks::SngBankCost bank =
            blocks::analyzeSngBank(p.outputs, rng_bits, true);
        const double aqfp_e =
            static_cast<double>(bank.totalJj()) *
            aqfp_tech.energyPerJjPerCycle * 1e12; // pJ per cycle
        const double aqfp_d =
            bank.depthPhases * aqfp_tech.cycleSeconds() * 1e9;

        const baseline::CmosBlockCost cmos =
            baseline::cmosSngCost(rng_bits, cmos_tech);
        const double cmos_e =
            cmos.energyPerCycleJ * p.outputs * 1e12;
        const double cmos_d = cmos.latencySeconds * 1e9;

        bench::row({std::to_string(p.outputs), bench::sci(aqfp_e),
                    bench::cell(cmos_e, 2), bench::cell(aqfp_d, 2),
                    bench::cell(cmos_d, 2), bench::sci(cmos_e / aqfp_e, 2)});
        bench::row({"(paper)", bench::sci(p.aqfp_pj),
                    bench::cell(p.cmos_pj, 2), bench::cell(p.aqfp_ns, 2),
                    bench::cell(p.cmos_ns, 2),
                    bench::sci(p.cmos_pj / p.aqfp_pj, 2)});
    }

    std::printf("\nExpected shape: AQFP energy ~1e5x below CMOS, scaling "
                "linearly with the\nnumber of outputs (comparators dominate;"
                " the shared RNG matrix amortizes the\ntrue-RNG cost 4x). "
                "The paper reports single-stage delay for the AQFP SNG;\n"
                "we report the full comparator-tree pipeline latency.\n");
    return 0;
}
