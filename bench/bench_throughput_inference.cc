/**
 * @file
 * End-to-end SC inference throughput (images/sec) through the
 * InferenceSession serving path, per stream backend and cohort size.
 *
 * This is the hot path the fused zero-allocation kernels and the
 * stage-major cohort execution target: one trained-architecture model
 * ("tiny" by default), SNG input encoding, the full stage graph,
 * per-thread CohortWorkspace arenas.  Each backend is swept over the
 * cohort sizes {1, 2, 4, 8} (results are bit-identical across cohort
 * sizes; only throughput moves).  Results go to
 * BENCH_throughput_inference.json (with the build provenance stamp from
 * bench_util.h), so the serving-throughput trajectory is machine-
 * readable across PRs.
 *
 * Usage:
 *   bench_throughput_inference [--images N] [--stream-len L]
 *                              [--model tiny|snn|dnn] [--threads T]
 *                              [--cohort C]
 *
 * Defaults (24 images, stream length 1024, 1 thread, cohort sweep) give
 * a stable single-core measurement in under a minute; --cohort C
 * restricts the sweep to one size.  CI smoke runs pass tiny values and
 * only check that the bench runs and emits valid JSON.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include <memory>
#include <set>

#include "bench_util.h"
#include "core/model_zoo.h"
#include "core/plan_cache.h"
#include "core/session.h"
#include "core/stages/stage.h"
#include "core/stages/stage_compiler.h"
#include "data/digits.h"

namespace {

using namespace aqfpsc;

int
argInt(int argc, char **argv, const char *name, int fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return std::atoi(argv[i + 1]);
    }
    return fallback;
}

const char *
argStr(int argc, char **argv, const char *name, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    const int images = argInt(argc, argv, "--images", 24);
    const int stream_len = argInt(argc, argv, "--stream-len", 1024);
    const int threads = argInt(argc, argv, "--threads", 1);
    const int cohort_arg = argInt(argc, argv, "--cohort", 0);

    const std::string model = argStr(argc, argv, "--model", "tiny");
    const std::vector<int> cohorts =
        cohort_arg > 0 ? std::vector<int>{cohort_arg}
                       : std::vector<int>{1, 2, 4, 8};

    bench::banner("End-to-end SC inference throughput (" + model +
                  ", N=" + std::to_string(stream_len) + ", " +
                  std::to_string(images) + " images, " +
                  std::to_string(threads) + " thread(s))");

    const std::vector<nn::Sample> samples =
        data::generateDigits(images, 42);

    bench::Json results = bench::Json::array();
    bench::header({"backend", "cohort", "img/s", "ms/img", "accuracy"});
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        core::EngineOptions opts;
        opts.backend = backend;
        opts.streamLen = static_cast<std::size_t>(stream_len);
        opts.threads = threads;
        core::InferenceSession session(core::buildModel(model, 3), opts);

        // Compile + warm one image outside the timed region so the
        // measurement sees steady-state serving only.
        session.evaluate(samples, {.limit = 1});

        for (const int cohort : cohorts) {
            core::EvalOptions eval;
            eval.cohort = cohort;
            const core::ScEvalStats stats = session.evaluate(samples, eval);
            bench::row({backend, std::to_string(cohort),
                        bench::cell(stats.imagesPerSec, 2),
                        bench::cell(1000.0 / stats.imagesPerSec, 2),
                        bench::cell(stats.accuracy, 3)});

            results.push(
                bench::Json::object()
                    .set("engine",
                         bench::engineJson(opts.toConfig(backend)))
                    .set("model", model)
                    .set("cohort", cohort)
                    .set("images", stats.images)
                    .set("wall_seconds", stats.wallSeconds)
                    .set("images_per_sec", stats.imagesPerSec)
                    .set("accuracy", stats.accuracy));
        }
    }

    // --- Plan & weight reuse -------------------------------------------
    // A serving fleet holds several resident instances of the same
    // model.  With the plan cache off every instance compiles and keeps
    // its own parameter streams; with it on they intern one copy.  The
    // resident-bytes rows (unique StageShared bytes actually held) and
    // the fleet warm-up time are recorded per mode so bench_diff can
    // track the memory win across PRs.
    constexpr int kInstances = 4;
    const bool cache_default = core::PlanCache::instance().enabled();
    bench::banner("Plan & weight reuse (" + std::to_string(kInstances) +
                  " resident instances of " + model + ")");
    bench::header({"backend", "cache", "resident KiB", "sum KiB",
                   "warmup ms"});
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        for (const bool cache_on : {false, true}) {
            core::PlanCache::instance().clear();
            core::PlanCache::instance().setEnabled(cache_on);

            core::EngineOptions opts;
            opts.backend = backend;
            opts.streamLen = static_cast<std::size_t>(stream_len);
            opts.threads = threads;

            bench::WallTimer warmup;
            std::vector<std::unique_ptr<core::InferenceSession>> fleet;
            for (int i = 0; i < kInstances; ++i) {
                fleet.push_back(std::make_unique<core::InferenceSession>(
                    core::buildModel(model, 3), opts));
                (void)fleet.back()->engine();
            }
            const double warmup_seconds = warmup.seconds();

            // Resident = bytes of distinct StageShared objects alive
            // across the fleet; sum = what the fleet would hold if no
            // instance shared anything (the cache-off resident value).
            std::set<const core::stages::StageShared *> distinct;
            std::size_t sum_bytes = 0;
            for (const auto &session : fleet) {
                const auto &plan = session->engine().plan();
                for (std::size_t s = 0; s < plan.stageCount(); ++s) {
                    if (const auto *shared = plan.stage(s).sharedState()) {
                        distinct.insert(shared);
                        sum_bytes += shared->bytes;
                    }
                }
            }
            std::size_t resident_bytes = 0;
            for (const auto *shared : distinct)
                resident_bytes += shared->bytes;

            bench::row({backend, cache_on ? "on" : "off",
                        bench::cell(resident_bytes / 1024.0, 1),
                        bench::cell(sum_bytes / 1024.0, 1),
                        bench::cell(warmup_seconds * 1000.0, 1)});
            results.push(
                bench::Json::object()
                    .set("section", "plan_cache")
                    .set("engine", bench::engineJson(opts.toConfig(backend)))
                    .set("model", model)
                    .set("instances", kInstances)
                    .set("cache", cache_on ? "on" : "off")
                    .set("resident_bytes", resident_bytes)
                    .set("sum_stream_bytes", sum_bytes)
                    .set("warmup_seconds", warmup_seconds));
        }
    }
    core::PlanCache::instance().setEnabled(cache_default);
    core::PlanCache::instance().clear();

    return bench::writeBenchReport("throughput_inference",
                                   std::move(results))
               ? 0
               : 1;
}
