/**
 * @file
 * End-to-end SC inference throughput (images/sec) through the
 * InferenceSession serving path, per stream backend and cohort size.
 *
 * This is the hot path the fused zero-allocation kernels and the
 * stage-major cohort execution target: one trained-architecture model
 * ("tiny" by default), SNG input encoding, the full stage graph,
 * per-thread CohortWorkspace arenas.  Each backend is swept over the
 * cohort sizes {1, 2, 4, 8} (results are bit-identical across cohort
 * sizes; only throughput moves).  Results go to
 * BENCH_throughput_inference.json (with the build provenance stamp from
 * bench_util.h), so the serving-throughput trajectory is machine-
 * readable across PRs.
 *
 * Usage:
 *   bench_throughput_inference [--images N] [--stream-len L]
 *                              [--model tiny|snn|dnn] [--threads T]
 *                              [--cohort C]
 *
 * Defaults (24 images, stream length 1024, 1 thread, cohort sweep) give
 * a stable single-core measurement in under a minute; --cohort C
 * restricts the sweep to one size.  CI smoke runs pass tiny values and
 * only check that the bench runs and emits valid JSON.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "data/digits.h"

namespace {

using namespace aqfpsc;

int
argInt(int argc, char **argv, const char *name, int fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return std::atoi(argv[i + 1]);
    }
    return fallback;
}

const char *
argStr(int argc, char **argv, const char *name, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return fallback;
}

} // namespace

int
main(int argc, char **argv)
{
    const int images = argInt(argc, argv, "--images", 24);
    const int stream_len = argInt(argc, argv, "--stream-len", 1024);
    const int threads = argInt(argc, argv, "--threads", 1);
    const int cohort_arg = argInt(argc, argv, "--cohort", 0);

    const std::string model = argStr(argc, argv, "--model", "tiny");
    const std::vector<int> cohorts =
        cohort_arg > 0 ? std::vector<int>{cohort_arg}
                       : std::vector<int>{1, 2, 4, 8};

    bench::banner("End-to-end SC inference throughput (" + model +
                  ", N=" + std::to_string(stream_len) + ", " +
                  std::to_string(images) + " images, " +
                  std::to_string(threads) + " thread(s))");

    const std::vector<nn::Sample> samples =
        data::generateDigits(images, 42);

    bench::Json results = bench::Json::array();
    bench::header({"backend", "cohort", "img/s", "ms/img", "accuracy"});
    for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
        core::EngineOptions opts;
        opts.backend = backend;
        opts.streamLen = static_cast<std::size_t>(stream_len);
        opts.threads = threads;
        core::InferenceSession session(core::buildModel(model, 3), opts);

        // Compile + warm one image outside the timed region so the
        // measurement sees steady-state serving only.
        session.evaluate(samples, {.limit = 1});

        for (const int cohort : cohorts) {
            core::EvalOptions eval;
            eval.cohort = cohort;
            const core::ScEvalStats stats = session.evaluate(samples, eval);
            bench::row({backend, std::to_string(cohort),
                        bench::cell(stats.imagesPerSec, 2),
                        bench::cell(1000.0 / stats.imagesPerSec, 2),
                        bench::cell(stats.accuracy, 3)});

            results.push(
                bench::Json::object()
                    .set("engine",
                         bench::engineJson(opts.toConfig(backend)))
                    .set("model", model)
                    .set("cohort", cohort)
                    .set("images", stats.images)
                    .set("wall_seconds", stats.wallSeconds)
                    .set("images_per_sec", stats.imagesPerSec)
                    .set("accuracy", stats.accuracy));
        }
    }

    return bench::writeBenchReport("throughput_inference",
                                   std::move(results))
               ? 0
               : 1;
}
