/**
 * @file
 * Fig. 7(b) reproduction: output distribution of the 1-bit AQFP true RNG
 * as a function of the input bias current.
 *
 * At zero input current the buffer resolves to 0/1 on thermal noise (a
 * fair coin); as |I_in| grows the distribution converges to a
 * deterministic 0 or 1 following the normal CDF of I_in / I_noise.
 */

#include <cstdio>
#include <string>

#include "bench_util.h"
#include "sc/rng.h"

int
main()
{
    using namespace aqfpsc;
    bench::banner("Fig. 7(b): 1-bit AQFP true-RNG output distribution vs "
                  "input current");

    const int cycles = 20000;
    bench::header({"I_in/I_noise", "model P(1)", "measured", "histogram"});
    for (double iin = -3.0; iin <= 3.01; iin += 0.5) {
        sc::AqfpTrueRng rng(42, iin, 1.0);
        int ones = 0;
        for (int i = 0; i < cycles; ++i)
            ones += rng.nextBit() ? 1 : 0;
        const double measured = static_cast<double>(ones) / cycles;

        std::string bar(static_cast<std::size_t>(measured * 30.0 + 0.5),
                        '#');
        bench::row({bench::cell(iin, 1), bench::cell(rng.probabilityOfOne()),
                    bench::cell(measured), bar});
    }

    std::printf("\nAt I_in = 0 the RNG is an unbiased coin (the paper's "
                "2-JJ on-chip entropy\nsource); the distribution converges "
                "to deterministic 0/1 as |I_in| grows,\nmatching Fig. 7(b)."
                "\n");
    return 0;
}
