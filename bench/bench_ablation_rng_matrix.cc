/**
 * @file
 * Ablation A (Sec. 4.1 design choice): the 4-way shared true-RNG matrix
 * vs one private RNG per SNG.
 *
 * Measures (a) the RNG hardware saved, (b) the worst pairwise stream
 * correlation introduced by sharing, and (c) the downstream effect on
 * feature-extraction accuracy when all weight streams come from one
 * matrix -- the paper's claim is that <=1 shared unit RNG between any
 * two numbers keeps correlation negligible.
 */

#include <cmath>
#include <cstdio>

#include "bench_util.h"
#include "blocks/feature_extraction.h"
#include "blocks/sng_block.h"
#include "sc/ops.h"
#include "sc/sng.h"

int
main()
{
    using namespace aqfpsc;
    bench::banner("Ablation A: shared RNG matrix vs private RNGs");

    // (a) Hardware.
    bench::header({"outputs", "shared JJ", "private JJ", "saving"});
    for (int outputs : {44, 100, 500, 800}) {
        const auto shared = blocks::analyzeSngBank(outputs, 10, true);
        const auto priv = blocks::analyzeSngBank(outputs, 10, false);
        bench::row({std::to_string(outputs),
                    std::to_string(shared.rngJj),
                    std::to_string(priv.rngJj),
                    bench::cell(static_cast<double>(priv.rngJj) /
                                    static_cast<double>(shared.rngJj),
                                2) + "x"});
    }

    // (b) Worst pairwise correlation among shared-matrix streams.
    const std::size_t len = 8192;
    for (auto mode : {sc::SngBank::Mode::SharedMatrix,
                      sc::SngBank::Mode::IndependentRng}) {
        sc::SngBank bank(10, mode, 99);
        const auto streams =
            bank.generateBipolar(std::vector<double>(44, 0.0), len);
        double worst = 0.0;
        for (std::size_t i = 0; i < streams.size(); ++i) {
            for (std::size_t j = i + 1; j < streams.size(); ++j) {
                worst = std::max(worst,
                                 std::abs(sc::streamCorrelation(
                                     streams[i], streams[j])));
            }
        }
        std::printf("worst |SCC| over 44 streams (%s): %.4f\n",
                    mode == sc::SngBank::Mode::SharedMatrix ? "shared"
                                                            : "private",
                    worst);
    }

    // (c) Downstream block accuracy with each supply.
    const int m = 25;
    const std::size_t n = 1024;
    const int trials = 60;
    for (auto mode : {sc::SngBank::Mode::SharedMatrix,
                      sc::SngBank::Mode::IndependentRng}) {
        sc::Xoshiro256StarStar value_rng(7);
        double err = 0.0;
        for (int t = 0; t < trials; ++t) {
            std::vector<double> values;
            double sum = 0.0;
            for (int j = 0; j < 2 * m; ++j)
                values.push_back(
                    (2.0 * value_rng.nextDouble() - 1.0) *
                    (j < m ? 1.0 : 2.0 / std::sqrt(m)));
            sc::SngBank bank(10, mode, 1000 + t);
            const auto streams = bank.generateBipolar(values, n);
            std::vector<sc::Bitstream> x(streams.begin(),
                                         streams.begin() + m);
            std::vector<sc::Bitstream> w(streams.begin() + m,
                                         streams.end());
            for (int j = 0; j < m; ++j) {
                sum += sc::codeToBipolar(
                           sc::quantizeBipolar(values[static_cast<std::size_t>(j)], 10), 10) *
                       sc::codeToBipolar(
                           sc::quantizeBipolar(values[static_cast<std::size_t>(m + j)], 10), 10);
            }
            const blocks::FeatureExtractionBlock block(m);
            const double got = block.runInnerProduct(x, w).bipolarValue();
            err += std::abs(got - std::tanh(0.8 * sum));
        }
        std::printf("feature-extraction error (M=25, N=1024, %s RNGs): "
                    "%.4f\n",
                    mode == sc::SngBank::Mode::SharedMatrix ? "shared "
                                                            : "private",
                    err / trials);
    }

    std::printf("\nExpected: 4x RNG hardware saving at statistically "
                "indistinguishable stream\nquality and downstream accuracy "
                "-- the paper's <=1-shared-unit design point.\n");
    return 0;
}
