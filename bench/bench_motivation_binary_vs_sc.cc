/**
 * @file
 * Motivation experiment (Sec. 3 of the paper): why conventional binary
 * accumulation is a poor fit for AQFP, quantified on real netlists.
 *
 * A binary inner-product accumulator must wait for the previous sum to
 * ripple through the adder pipeline before accepting the next operand
 * (a RAW stall of the adder depth per addition, unless the workload can
 * be C-slowed).  The SC feature-extraction block has no loop-carried
 * binary state and accepts one new stochastic bit every clock cycle.
 */

#include <cstdio>

#include "aqfp/arith.h"
#include "aqfp/energy_model.h"
#include "aqfp/passes.h"
#include "bench_util.h"
#include "blocks/feature_extraction.h"

int
main()
{
    using namespace aqfpsc;
    bench::banner("Motivation: binary accumulation vs stochastic "
                  "computing on AQFP");

    const aqfp::AqfpTechnology tech;

    std::printf("\n(a) n-bit ripple-carry adders, legalized\n\n");
    bench::header({"bits", "JJ", "depth(ph)", "add latency",
                   "adds/us (RAW)"});
    for (int n : {8, 16, 24}) {
        const aqfp::Netlist adder =
            aqfp::legalize(aqfp::buildRippleCarryAdder(n));
        const aqfp::HardwareCost cost = aqfp::analyzeNetlist(adder, tech);
        // Loop-carried accumulation: one add per `depth` clock cycles.
        const double adds_per_us =
            1e-6 / (cost.depthPhases * tech.cycleSeconds());
        bench::row({std::to_string(n), std::to_string(cost.jj),
                    std::to_string(cost.depthPhases),
                    bench::cell(cost.latencySeconds * 1e9, 1) + " ns",
                    bench::cell(adds_per_us, 0)});
    }

    std::printf("\n(b) M-input inner product, binary accumulator vs SC "
                "sorter block (N = 1024)\n\n");
    const aqfp::Netlist adder16 =
        aqfp::legalize(aqfp::buildRippleCarryAdder(16));
    const int adder_depth = aqfp::analyzeNetlist(adder16, tech).depthPhases;

    bench::header({"M", "binary cycles", "SC cycles", "SC speedup",
                   "SC block JJ"});
    for (int m : {9, 25, 121, 500}) {
        // Binary: M sequential MACs, each stalled by the adder depth
        // (multiplier pipeline excluded -- this is the best case).
        const long binary_cycles = static_cast<long>(m) * adder_depth;
        const long sc_cycles = 1024; // one stream, any M
        const aqfp::Netlist block = aqfp::legalize(
            blocks::FeatureExtractionBlock::buildNetlist(m),
            /*with_synthesis=*/m <= 128);
        bench::row({std::to_string(m), std::to_string(binary_cycles),
                    std::to_string(sc_cycles),
                    bench::cell(static_cast<double>(binary_cycles) /
                                    static_cast<double>(sc_cycles), 2) +
                        "x",
                    std::to_string(block.jjCount())});
    }

    std::printf("\nThe binary datapath stalls %d cycles per accumulation ",
                adder_depth);
    std::printf(
                "(16-bit adder), so a\nlarge inner product pays M x depth "
                "cycles; the SC block streams any M in the\nstream length."
                "  (C-slowing the binary loop recovers throughput only "
                "when many\nindependent inner products can interleave -- "
                "the same trick the SC feedback\nloop gets for free, cf. "
                "the interleaving test in tests/test_block_netlists.cc.)\n");
    return 0;
}
