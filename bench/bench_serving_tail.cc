/**
 * @file
 * Open-loop tail-latency harness for the multi-tenant serving front
 * end: the QoS story of serving::ServingFrontend measured the way a
 * serving system is actually judged — by what happens to the latency
 * tail and the accept rate when the offered load exceeds capacity.
 *
 * A tiny-zoo model is trained once, its single-worker serving capacity
 * is calibrated with a short closed-loop run, and then an open-loop
 * load generator offers `--overload` times that capacity (default
 * 1.8x) for `--duration` seconds across two tenants:
 *
 *   gold  25% of the offered rate, tight deadline, small queue
 *   bulk  75% of the offered rate, lax deadline, larger queue
 *
 * under two arrival processes (Poisson and bursty — bulk arrives in
 * back-to-back bursts of 8) and three serving policies:
 *
 *   fifo  SchedPolicy::Fifo, full-length inference — the baseline:
 *         under overload the queues fill, the tail explodes and
 *         admission control rejects.
 *   edf   SchedPolicy::Edf, full-length inference — deadline-aware
 *         ordering protects gold's tail but cannot create capacity:
 *         the same requests are still rejected, only elsewhere.
 *   shed  SchedPolicy::Edf + adaptive early exit with shed-before-
 *         reject: as queues fill the front end tightens the exit
 *         margin toward the configured floor, each request consumes
 *         fewer SC stream cycles, effective capacity rises, and the
 *         overload is absorbed — accept rate stays ~1.0 at a small,
 *         reported accuracy delta.
 *
 * Per (policy, arrival, tenant) the JSON records offered/accepted/
 * rejected/completed counts, accept rate, deadline-miss rate,
 * accuracy (+ delta vs. the non-adaptive baseline), end-to-end
 * latency p50/p99/p99.9 and mean consumed cycles; each run also
 * carries a queue-depth timeline sampled at a fixed cadence, which is
 * the picture of the backlog growing (fifo/edf) or breathing (shed).
 *
 * Results go to BENCH_serving_tail.json (build-stamped via
 * bench_util.h); the committed reference lives in reports/.  CI smoke
 * sets AQFPSC_BENCH_QUICK=1, which shrinks training, stream length and
 * duration to a seconds-scale run with the same JSON shape.
 *
 * Usage:
 *   bench_serving_tail [--duration S] [--overload F100] [--workers W]
 *                      [--stream-len L] [--epochs E] [--train-samples S]
 *                      [--backend NAME] [--seed S]
 *   (--overload is an integer percentage: 180 = 1.8x capacity.)
 */

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "data/digits.h"
#include "serving/frontend.h"

namespace {

using namespace aqfpsc;

int
argInt(int argc, char **argv, const char *name, int fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return std::atoi(argv[i + 1]);
    }
    return fallback;
}

const char *
argStr(int argc, char **argv, const char *name, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return fallback;
}

double
percentile(std::vector<double> sorted, double q)
{
    if (sorted.empty())
        return 0.0;
    std::sort(sorted.begin(), sorted.end());
    const double rank = q * static_cast<double>(sorted.size() - 1);
    const std::size_t lo = static_cast<std::size_t>(rank);
    const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/** One scheduled open-loop arrival. */
struct Arrival
{
    double t;          ///< seconds from run start
    std::size_t tenant;
    std::size_t image; ///< test-set index (labels accuracy later)
};

constexpr std::size_t kGold = 0;
constexpr std::size_t kBulk = 1;
const char *const kTenantNames[] = {"gold", "bulk"};

/**
 * Precompute the merged arrival schedule for one run.  Deterministic
 * per (mode, rates, duration, seed): the same offered load hits every
 * policy, so the runs differ only in how the front end handles it.
 */
std::vector<Arrival>
makeSchedule(const std::string &mode, double goldRate, double bulkRate,
             double duration, std::size_t imagePool, std::uint64_t seed)
{
    std::vector<Arrival> schedule;
    std::mt19937_64 rng(seed);
    std::size_t nextImage = 0;
    auto pushStream = [&](std::size_t tenant, auto nextGap) {
        for (double t = nextGap(); t < duration; t += nextGap())
            schedule.push_back({t, tenant, nextImage++ % imagePool});
    };

    std::exponential_distribution<double> goldGap(goldRate);
    pushStream(kGold, [&] { return goldGap(rng); });
    if (mode == "poisson") {
        std::exponential_distribution<double> bulkGap(bulkRate);
        pushStream(kBulk, [&] { return bulkGap(rng); });
    } else { // bursty: back-to-back bursts of 8 at the same mean rate
        constexpr double kBurst = 8.0;
        const double period = kBurst / bulkRate;
        for (double t0 = period / 2; t0 < duration; t0 += period) {
            for (int j = 0; j < static_cast<int>(kBurst); ++j)
                schedule.push_back({t0, kBulk, nextImage++ % imagePool});
        }
    }
    std::sort(schedule.begin(), schedule.end(),
              [](const Arrival &a, const Arrival &b) { return a.t < b.t; });
    return schedule;
}

/** One serving-policy configuration under test. */
struct PolicyConfig
{
    std::string name;
    serving::SchedPolicy sched;
    bool adaptive = false;
    bool shed = false;
};

/** Everything one (policy, arrival) run produces. */
struct RunResult
{
    std::size_t offered[2] = {0, 0};
    std::size_t accepted[2] = {0, 0};
    std::size_t correct[2] = {0, 0};
    std::vector<double> latencyMs[2];
    serving::TenantStats stats[2];
    bench::Json timeline = bench::Json::array();
    double wallSeconds = 0.0;
};

RunResult
runPolicy(const std::string &modelPath, const core::EngineOptions &eopts,
          const PolicyConfig &policy, const std::vector<Arrival> &schedule,
          const std::vector<nn::Sample> &test, double goldDeadline,
          double bulkDeadline, int workers, int sampleMs)
{
    serving::FrontendOptions fopts;
    fopts.workers = workers;
    fopts.maxBatch = 8;
    fopts.policy = policy.sched;
    serving::ServingFrontend frontend(fopts);
    frontend.addModelFromFile("m", modelPath, eopts);

    for (const std::size_t t : {kGold, kBulk}) {
        serving::TenantConfig cfg;
        cfg.name = kTenantNames[t];
        cfg.model = "m";
        cfg.queueCapacity = t == kGold ? 32 : 128;
        cfg.deadlineSeconds = t == kGold ? goldDeadline : bulkDeadline;
        cfg.weight = t == kGold ? 3.0 : 1.0;
        cfg.priority = t == kGold ? 1 : 0;
        if (policy.adaptive) {
            cfg.adaptive = true;
            cfg.policy.checkpointCycles = 64;
            cfg.policy.exitMargin = 0.125;
            cfg.policy.minCycles =
                std::min<std::size_t>(eopts.streamLen / 4, 320);
        }
        if (policy.shed) {
            cfg.shed.enabled = true;
            cfg.shed.startLoad = 0.25;
            cfg.shed.fullLoad = 0.90;
            // The floors bound the precision cost of absorbing the
            // overload: a ~1.8x offered load needs roughly a 2x cycle
            // reduction, not the 5x+ a 64-cycle floor would buy, so
            // keep the floor at ~minCycles*3/4 and the margin mild.
            cfg.shed.marginFloor = 0.05;
            cfg.shed.minCyclesFloor = cfg.policy.minCycles * 3 / 4;
        }
        frontend.addTenant(cfg);
    }
    frontend.start();

    RunResult result;

    // Queue-depth timeline sampler: the backlog picture over the run.
    // Only this thread touches result.timeline until it is joined.
    std::atomic<bool> sampling{true};
    std::thread sampler([&] {
        const auto t0 = std::chrono::steady_clock::now();
        while (sampling.load()) {
            const double tMs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count() *
                1e3;
            bench::Json sample = bench::Json::object().set("t_ms", tMs);
            for (const std::size_t t : {kGold, kBulk})
                sample.set(kTenantNames[t],
                           frontend.tenantStats(kTenantNames[t]).queueDepth);
            result.timeline.push(std::move(sample));
            std::this_thread::sleep_for(
                std::chrono::milliseconds(sampleMs));
        }
    });

    struct Pending
    {
        std::size_t tenant;
        std::size_t image;
        std::future<serving::ServedResult> future;
    };
    std::vector<Pending> pending;
    pending.reserve(schedule.size());

    bench::WallTimer wall;
    const auto start = std::chrono::steady_clock::now();
    for (const Arrival &a : schedule) {
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(a.t)));
        ++result.offered[a.tenant];
        auto f = frontend.trySubmit(kTenantNames[a.tenant],
                                    test[a.image].image);
        if (f) {
            ++result.accepted[a.tenant];
            pending.push_back({a.tenant, a.image, std::move(*f)});
        }
    }
    for (Pending &p : pending) {
        const serving::ServedResult r = p.future.get();
        result.latencyMs[p.tenant].push_back(
            (r.queueSeconds + r.serviceSeconds) * 1e3);
        if (r.prediction.label == test[p.image].label)
            ++result.correct[p.tenant];
    }
    frontend.shutdown();
    result.wallSeconds = wall.seconds();
    sampling.store(false);
    sampler.join();
    for (const std::size_t t : {kGold, kBulk})
        result.stats[t] = frontend.tenantStats(kTenantNames[t]);
    return result;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = std::getenv("AQFPSC_BENCH_QUICK") != nullptr;
    const double duration =
        argInt(argc, argv, "--duration", quick ? 2 : 10);
    const double overload =
        argInt(argc, argv, "--overload", 180) / 100.0;
    const int workers = argInt(argc, argv, "--workers", 1);
    const int stream_len =
        argInt(argc, argv, "--stream-len", quick ? 128 : 512);
    const int epochs = argInt(argc, argv, "--epochs", quick ? 2 : 12);
    const int train_samples =
        argInt(argc, argv, "--train-samples", quick ? 300 : 1600);
    const std::uint64_t seed = static_cast<std::uint64_t>(
        argInt(argc, argv, "--seed", 20240801));
    const std::string backend =
        argStr(argc, argv, "--backend", "aqfp-sorter");
    const int sampleMs = std::max(
        20, static_cast<int>(duration * 1000.0 / 200.0));

    bench::banner(
        "Multi-tenant serving tail latency (tiny, N=" +
        std::to_string(stream_len) + ", " + std::to_string(duration) +
        "s/run at " + bench::cell(overload, 2) +
        "x capacity, backend=" + backend + (quick ? ", QUICK" : "") + ")");

    // Train once, save once: every run loads the same artifact.
    const std::string modelPath = "bench_serving_tail_model.tmp.bin";
    {
        nn::Network net = core::buildModel("tiny", 3);
        auto train = data::generateDigits(train_samples, 11);
        nn::TrainConfig cfg;
        cfg.epochs = epochs;
        cfg.learningRate = 0.08f;
        cfg.verbose = false;
        std::printf("training tiny on %zu digits, %d epochs...\n",
                    train.size(), epochs);
        net.train(train, cfg);
        net.quantizeParams(10);
        if (!net.saveModel(modelPath)) {
            std::fprintf(stderr, "error: cannot write %s\n",
                         modelPath.c_str());
            return 1;
        }
    }
    const auto test = data::generateDigits(200, 999);

    core::EngineOptions eopts;
    eopts.backend = backend;
    eopts.streamLen = static_cast<std::size_t>(stream_len);

    // ---- Calibrate: single-worker closed-loop capacity + baseline
    // accuracy at the full stream length. ----
    const core::InferenceSession calib =
        core::InferenceSession::fromFile(modelPath, eopts);
    calib.evaluate(test, {.limit = 1}); // compile + warm
    const core::ScEvalStats baseline =
        calib.evaluate(test, {.limit = quick ? 32 : 64});
    const double capacity = baseline.imagesPerSec;
    std::printf("capacity %.2f img/s single-thread, baseline accuracy "
                "%.4f\n",
                capacity, baseline.accuracy);

    const double totalRate = overload * capacity;
    const double goldRate = 0.25 * totalRate;
    const double bulkRate = 0.75 * totalRate;
    // Deadlines in units of per-image service time: gold tight (a
    // short queue already blows it), bulk lax.
    const double goldDeadline = 12.0 / capacity;
    const double bulkDeadline = 48.0 / capacity;
    std::printf("offering %.2f img/s (gold %.2f + bulk %.2f), deadlines "
                "gold %.0f ms / bulk %.0f ms\n",
                totalRate, goldRate, bulkRate, goldDeadline * 1e3,
                bulkDeadline * 1e3);

    const PolicyConfig policies[] = {
        {"fifo", serving::SchedPolicy::Fifo, false, false},
        {"edf", serving::SchedPolicy::Edf, false, false},
        {"shed", serving::SchedPolicy::Edf, true, true},
    };
    const char *const arrivals[] = {"poisson", "bursty"};

    bench::Json runs = bench::Json::array();
    double fifoAccuracy[2] = {0.0, 0.0}; // per arrival mode, overall
    for (std::size_t ai = 0; ai < 2; ++ai) {
        const std::vector<Arrival> schedule = makeSchedule(
            arrivals[ai], goldRate, bulkRate, duration, test.size(),
            seed + ai);
        for (const PolicyConfig &policy : policies) {
            RunResult r =
                runPolicy(modelPath, eopts, policy, schedule, test,
                          goldDeadline, bulkDeadline, workers, sampleMs);
            const std::size_t offered = r.offered[0] + r.offered[1];
            const std::size_t accepted = r.accepted[0] + r.accepted[1];
            const std::size_t correct = r.correct[0] + r.correct[1];
            const double acceptRate =
                offered == 0 ? 0.0
                             : static_cast<double>(accepted) /
                                   static_cast<double>(offered);
            const double accuracy =
                accepted == 0 ? 0.0
                              : static_cast<double>(correct) /
                                    static_cast<double>(accepted);
            if (policy.name == "fifo")
                fifoAccuracy[ai] = accuracy;

            bench::Json tenants = bench::Json::array();
            bench::header({"tenant", "offered", "accept", "p50 ms",
                           "p99 ms", "p99.9 ms", "miss", "shed",
                           "avg cyc"});
            for (const std::size_t t : {kGold, kBulk}) {
                const serving::TenantStats &s = r.stats[t];
                const double tAccept =
                    r.offered[t] == 0
                        ? 0.0
                        : static_cast<double>(r.accepted[t]) /
                              static_cast<double>(r.offered[t]);
                const double tAccuracy =
                    s.completed == 0
                        ? 0.0
                        : static_cast<double>(r.correct[t]) /
                              static_cast<double>(s.completed);
                const double missRate =
                    s.completed == 0
                        ? 0.0
                        : static_cast<double>(s.deadlineMissed) /
                              static_cast<double>(s.completed);
                const double shedFrac =
                    s.completed == 0
                        ? 0.0
                        : static_cast<double>(s.shedServed) /
                              static_cast<double>(s.completed);
                const double p50 = percentile(r.latencyMs[t], 0.50);
                const double p99 = percentile(r.latencyMs[t], 0.99);
                const double p999 = percentile(r.latencyMs[t], 0.999);
                bench::row({kTenantNames[t],
                            std::to_string(r.offered[t]),
                            bench::cell(tAccept, 3),
                            bench::cell(p50, 1), bench::cell(p99, 1),
                            bench::cell(p999, 1),
                            bench::cell(missRate, 3),
                            bench::cell(shedFrac, 3),
                            bench::cell(s.avgConsumedCycles, 0)});
                tenants.push(
                    bench::Json::object()
                        .set("tenant", kTenantNames[t])
                        .set("offered", r.offered[t])
                        .set("accepted", r.accepted[t])
                        .set("rejected", s.rejected)
                        .set("completed", s.completed)
                        .set("accept_rate", tAccept)
                        .set("deadline_miss_rate", missRate)
                        .set("accuracy", tAccuracy)
                        .set("latency_ms_p50", p50)
                        .set("latency_ms_p99", p99)
                        .set("latency_ms_p999", p999)
                        .set("avg_consumed_cycles", s.avgConsumedCycles)
                        .set("shed_fraction", shedFrac)
                        .set("queue_depth_high_water",
                             s.queueDepthHighWater)
                        .set("queue_latency",
                             s.queueHistogram.summary())
                        .set("service_latency",
                             s.serviceHistogram.summary()));
            }
            std::printf("[%s/%s] accept %.3f, accuracy %.4f (fifo delta "
                        "%+.4f), wall %.1fs\n\n",
                        policy.name.c_str(), arrivals[ai], acceptRate,
                        accuracy, accuracy - fifoAccuracy[ai],
                        r.wallSeconds);
            runs.push(bench::Json::object()
                          .set("policy", policy.name)
                          .set("arrival", arrivals[ai])
                          .set("offered", offered)
                          .set("accepted", accepted)
                          .set("accept_rate", acceptRate)
                          .set("accuracy", accuracy)
                          .set("accuracy_delta_vs_fifo",
                               accuracy - fifoAccuracy[ai])
                          .set("accuracy_delta_vs_baseline",
                               accuracy - baseline.accuracy)
                          .set("wall_seconds", r.wallSeconds)
                          .set("tenants", std::move(tenants))
                          .set("queue_depth_timeline",
                               std::move(r.timeline)));
        }
    }
    std::remove(modelPath.c_str());

    bench::Json results =
        bench::Json::object()
            .set("engine", bench::engineJson(eopts.toConfig(backend)))
            .set("model", "tiny")
            .set("workers", workers)
            .set("duration_seconds", duration)
            .set("overload_factor", overload)
            .set("capacity_images_per_sec", capacity)
            .set("baseline_accuracy", baseline.accuracy)
            .set("gold_deadline_ms", goldDeadline * 1e3)
            .set("bulk_deadline_ms", bulkDeadline * 1e3)
            .set("quick", quick)
            .set("runs", std::move(runs));

    return bench::writeBenchReport("serving_tail", std::move(results))
               ? 0
               : 1;
}
