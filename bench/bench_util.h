/**
 * @file
 * Shared helpers for the reproduction benches: paper-style table
 * printing with side-by-side paper-reported and measured values.
 */

#ifndef AQFPSC_BENCH_BENCH_UTIL_H
#define AQFPSC_BENCH_BENCH_UTIL_H

#include <cstdio>
#include <string>
#include <vector>

namespace aqfpsc::bench {

/** Print a centred banner for one experiment. */
inline void
banner(const std::string &title)
{
    std::printf("\n=============================================================="
                "==========\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================"
                "========\n");
}

/** Print a table header row. */
inline void
header(const std::vector<std::string> &cols)
{
    for (const auto &c : cols)
        std::printf("%14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::printf("%14s", "------------");
    std::printf("\n");
}

/** Fixed-point cell. */
inline std::string
cell(double v, int prec = 4)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

/** Scientific-notation cell. */
inline std::string
sci(double v, int prec = 3)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
    return buf;
}

/** Print one row of string cells. */
inline void
row(const std::vector<std::string> &cols)
{
    for (const auto &c : cols)
        std::printf("%14s", c.c_str());
    std::printf("\n");
}

} // namespace aqfpsc::bench

#endif // AQFPSC_BENCH_BENCH_UTIL_H
