/**
 * @file
 * Shared helpers for the reproduction benches: paper-style table
 * printing with side-by-side paper-reported and measured values, wall
 * timing, and machine-readable BENCH_*.json result files that track the
 * performance trajectory across PRs.
 */

#ifndef AQFPSC_BENCH_BENCH_UTIL_H
#define AQFPSC_BENCH_BENCH_UTIL_H

#include <chrono>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/hardware_report.h"
#include "core/sc_engine.h"

// Build provenance macros, normally injected by CMake (see
// aqfpsc_bench_info in CMakeLists.txt); the fallbacks keep out-of-tree
// compilation working.
#ifndef AQFPSC_GIT_SHA
#define AQFPSC_GIT_SHA "unknown"
#endif
#ifndef AQFPSC_COMPILER
#define AQFPSC_COMPILER "unknown"
#endif
#ifndef AQFPSC_CXX_FLAGS
#define AQFPSC_CXX_FLAGS ""
#endif

namespace aqfpsc::bench {

/** Print a centred banner for one experiment. */
inline void
banner(const std::string &title)
{
    std::printf("\n=============================================================="
                "==========\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================"
                "========\n");
}

/** Print a table header row. */
inline void
header(const std::vector<std::string> &cols)
{
    for (const auto &c : cols)
        std::printf("%14s", c.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < cols.size(); ++i)
        std::printf("%14s", "------------");
    std::printf("\n");
}

/** Fixed-point cell. */
inline std::string
cell(double v, int prec = 4)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f", prec, v);
    return buf;
}

/** Scientific-notation cell. */
inline std::string
sci(double v, int prec = 3)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*e", prec, v);
    return buf;
}

/** Print one row of string cells. */
inline void
row(const std::vector<std::string> &cols)
{
    for (const auto &c : cols)
        std::printf("%14s", c.c_str());
    std::printf("\n");
}

/** Wall-clock stopwatch. */
class WallTimer
{
  public:
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last reset()). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

/**
 * Minimal JSON value builder for bench result files.
 *
 * Supports objects (insertion-ordered), arrays, strings, numbers and
 * booleans — enough to serialize {name, config, wall time, accuracy}
 * records without external dependencies.
 */
class Json
{
  public:
    static Json
    object()
    {
        Json j;
        j.kind_ = Kind::Object;
        return j;
    }

    static Json
    array()
    {
        Json j;
        j.kind_ = Kind::Array;
        return j;
    }

    Json() = default;
    Json(const char *s) : kind_(Kind::String), str_(s) {}
    Json(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    Json(double v) : kind_(Kind::Number), num_(v) {}
    Json(int v) : kind_(Kind::Number), num_(v) {}
    Json(long long v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
    Json(std::size_t v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
    Json(bool v) : kind_(Kind::Bool), bool_(v) {}

    /** Object member set (insertion order preserved). */
    Json &
    set(const std::string &key, Json value)
    {
        members_.emplace_back(key,
                              std::make_shared<Json>(std::move(value)));
        return *this;
    }

    /** Array element append. */
    Json &
    push(Json value)
    {
        elements_.push_back(std::make_shared<Json>(std::move(value)));
        return *this;
    }

    /** Serialize with 2-space indentation. */
    std::string
    dump(int depth = 0) const
    {
        const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
        const std::string pad1(static_cast<std::size_t>(depth + 1) * 2,
                               ' ');
        switch (kind_) {
          case Kind::Null:
            return "null";
          case Kind::Bool:
            return bool_ ? "true" : "false";
          case Kind::Number: {
            char buf[40];
            std::snprintf(buf, sizeof(buf), "%.17g", num_);
            return buf;
          }
          case Kind::String:
            return quote(str_);
          case Kind::Object: {
            if (members_.empty())
                return "{}";
            std::string out = "{\n";
            for (std::size_t i = 0; i < members_.size(); ++i) {
                out += pad1 + quote(members_[i].first) + ": " +
                       members_[i].second->dump(depth + 1);
                out += i + 1 < members_.size() ? ",\n" : "\n";
            }
            return out + pad + "}";
          }
          case Kind::Array: {
            if (elements_.empty())
                return "[]";
            std::string out = "[\n";
            for (std::size_t i = 0; i < elements_.size(); ++i) {
                out += pad1 + elements_[i]->dump(depth + 1);
                out += i + 1 < elements_.size() ? ",\n" : "\n";
            }
            return out + pad + "]";
          }
        }
        return "null";
    }

  private:
    enum class Kind
    {
        Null,
        Bool,
        Number,
        String,
        Object,
        Array,
    };

    static std::string
    quote(const std::string &s)
    {
        std::string out = "\"";
        for (const char c : s) {
            switch (c) {
              case '"':
                out += "\\\"";
                break;
              case '\\':
                out += "\\\\";
                break;
              case '\n':
                out += "\\n";
                break;
              case '\t':
                out += "\\t";
                break;
              default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
            }
        }
        return out + "\"";
    }

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<std::pair<std::string, std::shared_ptr<Json>>> members_;
    std::vector<std::shared_ptr<Json>> elements_;
};

/**
 * Self-describing engine stamp for bench JSON records: the backend
 * registry name plus the stream length and worker count, so
 * BENCH_*.json trajectories stay comparable across PRs without reading
 * the bench source of that revision.
 */
inline Json
engineJson(const core::ScEngineConfig &cfg)
{
    Json j = Json::object()
                 .set("backend", cfg.resolvedBackend())
                 .set("stream_len", cfg.streamLen)
                 .set("threads", cfg.threads);
    if (!cfg.stageStreamLens.empty()) {
        Json lens = Json::array();
        for (const std::size_t len : cfg.stageStreamLens)
            lens.push(len);
        j.set("stage_stream_lens", std::move(lens));
    }
    return j;
}

/**
 * Build/hardware provenance stamp: git SHA (of the configure, refreshed
 * by re-running CMake), compiler id+version, the compile flags of the
 * active configuration, and the machine's hardware thread count.  Makes
 * BENCH_*.json numbers from different PRs / machines comparable without
 * archaeology.
 */
inline Json
buildInfoJson()
{
    // The SIMD fields make committed reports comparable across hosts:
    // a number recorded under "scalar" dispatch must not be read as a
    // regression against one recorded under "avx512".
    const core::HostSimdInfo simd = core::hostSimdInfo();
    return Json::object()
        .set("git_sha", AQFPSC_GIT_SHA)
        .set("compiler", AQFPSC_COMPILER)
        .set("cxx_flags", AQFPSC_CXX_FLAGS)
        .set("hardware_threads",
             static_cast<std::size_t>(std::thread::hardware_concurrency()))
        .set("simd_detected", simd.detected)
        .set("simd_level", simd.active)
        .set("kernel_variants", simd.variants);
}

/**
 * Write @p payload to BENCH_<name>.json in the working directory.  The
 * bench name and the build provenance stamp (buildInfoJson) are added
 * so aggregators can glob the files without parsing filenames and
 * compare numbers across PRs.  @return success.
 */
inline bool
writeBenchReport(const std::string &name, Json payload)
{
    Json wrapped = Json::object();
    wrapped.set("bench", name);
    wrapped.set("build", buildInfoJson());
    wrapped.set("results", std::move(payload));
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream out(path);
    if (!out)
        return false;
    out << wrapped.dump() << "\n";
    out.flush();
    if (!out) {
        std::printf("[bench] ERROR: failed writing %s\n", path.c_str());
        return false;
    }
    std::printf("[bench] wrote %s\n", path.c_str());
    return true;
}

} // namespace aqfpsc::bench

#endif // AQFPSC_BENCH_BENCH_UTIL_H
