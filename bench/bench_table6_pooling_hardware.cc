/**
 * @file
 * Table 6 reproduction: hardware utilization of the sub-sampling
 * (average pooling) block -- sorter-based AQFP vs MUX-based CMOS.
 */

#include <cstdio>

#include "aqfp/energy_model.h"
#include "aqfp/passes.h"
#include "baseline/cmos_model.h"
#include "bench_util.h"
#include "blocks/avg_pooling.h"

namespace {

struct PaperRow
{
    int m;
    double aqfp_pj;
    double cmos_pj;
    double aqfp_ns;
    double cmos_ns;
};

constexpr PaperRow kPaper[] = {
    {4, 5.898e-5, 18.432, 1.2, 614.3},
    {9, 3.007e-4, 21.504, 2.4, 716.8},
    {16, 9.063e-4, 23.552, 3.4, 819.2},
    {25, 1.359e-3, 24.576, 3.6, 819.2},
    {36, 2.946e-3, 32.768, 5.0, 921.6},
};

} // namespace

int
main()
{
    using namespace aqfpsc;
    bench::banner("Table 6: hardware utilization of the sub-sampling "
                  "block (per 1024-cycle stream)");

    const aqfp::AqfpTechnology tech;
    const baseline::CmosTechnology cmos_tech;
    const std::size_t stream = 1024;

    bench::header({"input size", "AQFP JJ", "AQFP E(pJ)", "CMOS E(pJ)",
                   "AQFP d(ns)", "CMOS d(ns)", "E ratio"});
    for (const auto &p : kPaper) {
        const aqfp::Netlist net =
            aqfp::legalize(blocks::AvgPoolingBlock::buildNetlist(p.m));
        const aqfp::HardwareCost cost = aqfp::analyzeNetlist(net, tech);
        const double aqfp_e = cost.energyPerStreamJ(stream) * 1e12;
        const double aqfp_d = cost.latencySeconds * 1e9;

        const baseline::CmosBlockCost cmos =
            baseline::cmosMuxPoolingCost(p.m, cmos_tech);
        const double cmos_e = cmos.energyPerStreamJ(stream) * 1e12;
        // The MUX baseline subsamples: it needs only N * M / M = N cycles
        // but its output quality corresponds to N/M effective samples;
        // the paper reports ~0.6-0.9 us (stream-serial operation).
        const double cmos_d =
            stream * cmos_tech.cycleSeconds() * 1e9 * 0.6 +
            cmos.latencySeconds * 1e9;

        bench::row({std::to_string(p.m), std::to_string(cost.jj),
                    bench::sci(aqfp_e), bench::cell(cmos_e, 1),
                    bench::cell(aqfp_d, 1), bench::cell(cmos_d, 1),
                    bench::sci(cmos_e / aqfp_e, 2)});
        bench::row({"(paper)", "-", bench::sci(p.aqfp_pj),
                    bench::cell(p.cmos_pj, 1), bench::cell(p.aqfp_ns, 1),
                    bench::cell(p.cmos_ns, 1),
                    bench::sci(p.cmos_pj / p.aqfp_pj, 2)});
    }

    std::printf("\nExpected shape: a lower AQFP/CMOS energy margin than "
                "the other blocks\n(the CMOS comparison point is just a "
                "MUX), exactly as the paper notes --\nthe sorter buys "
                "accuracy (Table 2 / the pooling ablation), not just "
                "energy.\n");
    return 0;
}
