/**
 * @file
 * Ablation B (contribution (v)): effect of the majority-synthesis pass
 * on the legalized block netlists.
 *
 * The pass absorbs inverters into coupling polarities, folds constants,
 * shares structurally identical gates and canonicalizes NAND/NOR into
 * polarity-annotated AND/OR -- all AQFP-specific opportunities.
 */

#include <cstdio>

#include "aqfp/passes.h"
#include "bench_util.h"
#include "blocks/avg_pooling.h"
#include "blocks/categorization.h"
#include "blocks/feature_extraction.h"
#include "blocks/sng_block.h"

namespace {

void
report(const std::string &name, const aqfpsc::aqfp::Netlist &raw)
{
    using namespace aqfpsc;
    const aqfp::Netlist without = aqfp::legalize(raw, false);
    const aqfp::Netlist with = aqfp::legalize(raw, true);
    const double saving =
        100.0 * (1.0 - static_cast<double>(with.jjCount()) /
                           static_cast<double>(without.jjCount()));
    bench::row({name, std::to_string(without.jjCount()),
                std::to_string(with.jjCount()),
                bench::cell(saving, 1) + "%",
                std::to_string(without.depth()),
                std::to_string(with.depth())});
}

} // namespace

int
main()
{
    using namespace aqfpsc;
    bench::banner("Ablation B: majority synthesis on/off (legalized JJ "
                  "counts)");

    bench::header({"block", "JJ w/o", "JJ with", "saving", "d w/o",
                   "d with"});
    report("featext-9",
           blocks::FeatureExtractionBlock::buildNetlist(9));
    report("featext-25",
           blocks::FeatureExtractionBlock::buildNetlist(25));
    report("featext-49",
           blocks::FeatureExtractionBlock::buildNetlist(49));
    report("pooling-4", blocks::AvgPoolingBlock::buildNetlist(4));
    report("pooling-16", blocks::AvgPoolingBlock::buildNetlist(16));
    report("categorize-101",
           blocks::CategorizationBlock::buildNetlist(101));
    report("comparator-10", blocks::buildComparatorNetlist(10));

    std::printf("\nExpected: small JJ savings on blocks whose front ends "
                "carry absorbable\ninverters/shared subterms; roughly "
                "neutral where CSE-induced sharing costs\nextra "
                "splitters.\n");

    bench::banner("Ablation B2: splitter-tree shape (balanced vs "
                  "caterpillar)");
    bench::header({"block", "balanced JJ", "caterpil JJ", "bal depth",
                   "cat depth"});
    struct ShapeCase
    {
        const char *name;
        aqfp::Netlist net;
    };
    ShapeCase cases[] = {
        {"featext-25", blocks::FeatureExtractionBlock::buildNetlist(25)},
        {"pooling-16", blocks::AvgPoolingBlock::buildNetlist(16)},
        {"categorize-201",
         blocks::CategorizationBlock::buildNetlist(201)},
    };
    for (auto &c : cases) {
        const aqfp::Netlist bal = aqfp::legalize(
            c.net, false, nullptr, aqfp::SplitterShape::Balanced);
        const aqfp::Netlist cat = aqfp::legalize(
            c.net, false, nullptr, aqfp::SplitterShape::Caterpillar);
        bench::row({c.name, std::to_string(bal.jjCount()),
                    std::to_string(cat.jjCount()),
                    std::to_string(bal.depth()),
                    std::to_string(cat.depth())});
    }
    std::printf("\nFinding: balanced trees win on the sorter blocks "
                "(consumers cluster at\nsimilar phases, so chain-shaped "
                "taps just add skew) and tie on the majority\nchain "
                "(whose cost is input delay chains, not fanout) -- hence "
                "Balanced is the\nframework default.\n");
    return 0;
}
