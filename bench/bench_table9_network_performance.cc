/**
 * @file
 * Table 8 + Table 9 reproduction: end-to-end network performance
 * (accuracy / energy / throughput) for the shallow (SNN) and deep (DNN)
 * networks on three platforms:
 *
 *  - Software: float inference of the trained network;
 *  - AQFP: stochastic-computing inference through the sorter /
 *    majority-chain blocks (backend "aqfp-sorter") with hardware figures
 *    from legalized netlists;
 *  - CMOS: SC-DCNN-style inference (APC + Btanh + MUX pooling,
 *    backend "cmos-apc") with figures from the 40 nm model.  The CMOS
 *    platform scores classes with linear APC accumulation, so it gets a
 *    linear output head trained on the same frozen features (the
 *    majority-chain weights are specific to the AQFP output structure).
 *
 * Substitution note: networks are trained on the synthetic digit dataset
 * (DESIGN.md Sec. 3); trained weights are cached under aqfpsc_assets/ so
 * reruns skip training.  SC accuracies are evaluated on test subsets
 * sized for a single-core machine (exact counts printed).
 */

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "bench_util.h"
#include "core/hardware_report.h"
#include "core/model_zoo.h"
#include "core/session.h"
#include "data/digits.h"

namespace {

using namespace aqfpsc;

constexpr const char *kAssetDir = "aqfpsc_assets";

/** Trains (or loads a cached model artifact for) one network. */
void
obtainWeights(nn::Network &net, const std::string &tag, int train_samples,
              int epochs, std::vector<nn::Sample> &train_set)
{
    std::filesystem::create_directories(kAssetDir);
    // Versioned model artifacts; fall back to the legacy weights-only
    // cache so pre-existing asset dirs keep skipping training.
    const std::string model_path =
        std::string(kAssetDir) + "/" + tag + ".model";
    const std::string path = std::string(kAssetDir) + "/" + tag + ".bin";
    if (std::filesystem::exists(model_path)) {
        net = nn::Network::loadModel(model_path);
        std::printf("[%s] loaded cached model from %s\n", tag.c_str(),
                    model_path.c_str());
        return;
    }
    if (net.loadWeights(path)) {
        std::printf("[%s] loaded cached weights from %s\n", tag.c_str(),
                    path.c_str());
        return;
    }
    std::printf("[%s] training on %d synthetic digits, %d epochs...\n",
                tag.c_str(), train_samples, epochs);
    std::fflush(stdout);
    nn::TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.learningRate = 0.08f;
    cfg.verbose = true;
    std::vector<nn::Sample> subset(
        train_set.begin(),
        train_set.begin() + std::min<std::size_t>(train_set.size(),
                                                  static_cast<std::size_t>(
                                                      train_samples)));
    net.train(subset, cfg);
    net.quantizeParams(10);
    if (!net.saveModel(model_path))
        std::printf("[%s] warning: could not cache model\n", tag.c_str());
}

/**
 * Builds the CMOS evaluation network: same body weights as @p aqfp_net
 * (layers 0 .. n-2) with a linear Dense head trained on the frozen
 * features -- the APC baseline scores classes linearly.
 */
nn::Network
buildCmosVariant(const nn::Network &aqfp_net, nn::Network &&same_arch_linear,
                 const std::vector<nn::Sample> &train_set, int head_samples)
{
    nn::Network cmos = std::move(same_arch_linear);
    // Copy all body parameters (every layer except the output head).
    for (std::size_t li = 0; li + 1 < aqfp_net.layerCount(); ++li) {
        auto src = const_cast<nn::Network &>(aqfp_net).layer(li).params();
        auto dst = cmos.layer(li).params();
        for (std::size_t p = 0; p < src.size(); ++p)
            *dst[p] = *src[p];
    }
    // Extract features through the body and train only the linear head.
    const std::size_t body_layers = cmos.layerCount() - 1;
    std::vector<nn::Sample> features;
    const int n = std::min<int>(head_samples,
                                static_cast<int>(train_set.size()));
    features.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        nn::Tensor f = train_set[static_cast<std::size_t>(i)].image;
        for (std::size_t li = 0; li < body_layers; ++li)
            f = cmos.layer(li).forward(f);
        nn::Sample s;
        s.image = nn::Tensor({static_cast<int>(f.size())});
        for (std::size_t j = 0; j < f.size(); ++j)
            s.image[j] = f[j];
        s.label = train_set[static_cast<std::size_t>(i)].label;
        features.push_back(std::move(s));
    }
    auto *head = dynamic_cast<nn::Dense *>(
        &cmos.layer(cmos.layerCount() - 1));
    nn::Network head_net;
    head_net.add(std::make_unique<nn::Dense>(head->inFeatures(),
                                             head->outFeatures(), 77));
    nn::TrainConfig cfg;
    cfg.epochs = 8;
    cfg.learningRate = 0.05f;
    head_net.train(features, cfg);
    head_net.quantizeParams(10);
    *head->params()[0] = *head_net.layer(0).params()[0];
    *head->params()[1] = *head_net.layer(0).params()[1];
    return cmos;
}

void
printTable8()
{
    bench::banner("Table 8: DNN layer configuration");
    bench::header({"layer", "kernel", "stride"});
    bench::row({"Conv3_x", "[3x3, 32]", "1"});
    bench::row({"Conv5_x", "[5x5, 32]", "1"});
    bench::row({"Conv7_x", "[7x7, 64]", "1"});
    bench::row({"AvgPool", "[2x2]", "2"});
    bench::row({"FC500", "500", "-"});
    bench::row({"FC800", "800", "-"});
}

struct NetResult
{
    double software = 0.0;
    core::ScEvalStats aqfp_t1;  ///< AQFP batch at 1 thread
    core::ScEvalStats aqfp_t8;  ///< AQFP batch at 8 threads
    core::ScEvalStats cmos;     ///< CMOS baseline batch (8 threads)
    bool deterministic = false; ///< per-image predictions equal at 1 vs 8
    core::ScEngineConfig aqfpCfg; ///< engine stamps for the JSON report
    core::ScEngineConfig cmosCfg;
    core::NetworkHardware hw;
};

constexpr int kBatchThreads = 8;

/** Per-image score-level equality of two batch prediction sets. */
bool
predictionsMatch(const std::vector<core::ScPrediction> &a,
                 const std::vector<core::ScPrediction> &b)
{
    if (a.size() != b.size())
        return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (a[i].label != b[i].label || a[i].scores != b[i].scores)
            return false;
    }
    return true;
}

/** Score a timed batch-prediction run into ScEvalStats. */
core::ScEvalStats
scoreBatch(const std::vector<core::ScPrediction> &predictions,
           const std::vector<nn::Sample> &samples, double wall_seconds)
{
    core::ScEvalStats stats;
    stats.images = predictions.size();
    stats.wallSeconds = wall_seconds;
    if (predictions.empty())
        return stats;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        if (predictions[i].label == samples[i].label)
            ++correct;
    }
    stats.accuracy = static_cast<double>(correct) /
                     static_cast<double>(predictions.size());
    stats.imagesPerSec =
        wall_seconds > 0.0
            ? static_cast<double>(predictions.size()) / wall_seconds
            : 0.0;
    return stats;
}

/** @param net Taken by value: the trained network moves into the AQFP
 *  session, so the caller visibly gives up ownership at the call site. */
NetResult
runNetwork(const std::string &tag, nn::Network net,
           nn::Network &&linear_arch, std::vector<nn::Sample> &train_set,
           const std::vector<nn::Sample> &test_set, int train_samples,
           int epochs, int sc_images, int float_images, bool fast_hw)
{
    NetResult r;
    obtainWeights(net, tag, train_samples, epochs, train_set);

    std::printf("[%s] software evaluation (%d images)...\n", tag.c_str(),
                float_images);
    std::fflush(stdout);
    std::vector<nn::Sample> test_subset(
        test_set.begin(),
        test_set.begin() + std::min<std::size_t>(
                               test_set.size(),
                               static_cast<std::size_t>(float_images)));
    r.software = net.evaluate(test_subset);

    std::printf("[%s] AQFP SC inference (%d images, N=1024, 1 vs %d "
                "threads)\n",
                tag.c_str(), sc_images, kBatchThreads);
    std::fflush(stdout);
    core::EngineOptions aqfp_opts;
    aqfp_opts.backend = "aqfp-sorter";
    aqfp_opts.streamLen = 1024;
    const core::InferenceSession aqfp(std::move(net), aqfp_opts);
    aqfp.engine(); // compile outside the timed region
    bench::WallTimer timer;
    const auto p1 = aqfp.predict(
        test_set, {.limit = sc_images, .threads = 1, .progress = true});
    r.aqfp_t1 = scoreBatch(p1, test_set, timer.seconds());
    timer.reset();
    const auto p8 =
        aqfp.predict(test_set, {.limit = sc_images,
                                .threads = kBatchThreads,
                                .progress = true});
    r.aqfp_t8 = scoreBatch(p8, test_set, timer.seconds());
    r.deterministic = predictionsMatch(p1, p8);
    if (!r.deterministic) {
        std::printf("[%s] WARNING: thread count changed predictions "
                    "(determinism violation!)\n",
                    tag.c_str());
    }

    std::printf("[%s] CMOS SC baseline inference (%d images, N=1024)\n",
                tag.c_str(), sc_images);
    std::fflush(stdout);
    core::EngineOptions cmos_opts;
    cmos_opts.backend = "cmos-apc";
    cmos_opts.streamLen = 1024;
    cmos_opts.threads = kBatchThreads;
    const core::InferenceSession cmos(
        buildCmosVariant(aqfp.network(), std::move(linear_arch), train_set,
                         1200),
        cmos_opts);
    r.cmos = cmos.evaluate(test_set,
                           {.limit = sc_images, .progress = true});
    r.aqfpCfg = aqfp.engine().config();
    r.cmosCfg = cmos.engine().config();

    std::printf("[%s] hardware analysis...\n", tag.c_str());
    std::fflush(stdout);
    r.hw = core::analyzeNetworkHardware(aqfp.network(), 1024, {}, {},
                                        fast_hw);
    return r;
}

void
printResult(const std::string &name, const NetResult &r, double p_sw,
            double p_cmos_acc, double p_aqfp_acc, double p_cmos_uj,
            double p_aqfp_uj, double p_cmos_tp, double p_aqfp_tp)
{
    bench::header({"platform", "accuracy", "energy(uJ)", "imgs/ms"});
    bench::row({"Software", bench::cell(r.software * 100, 2) + "%", "-",
                "-"});
    bench::row({"CMOS", bench::cell(r.cmos.accuracy * 100, 2) + "%",
                bench::cell(r.hw.cmosEnergyPerImageJ * 1e6, 3),
                bench::cell(r.hw.cmosThroughputImagesPerSec / 1e3, 0)});
    bench::row({"AQFP", bench::cell(r.aqfp_t8.accuracy * 100, 2) + "%",
                bench::sci(r.hw.aqfpEnergyPerImageJ * 1e6),
                bench::cell(r.hw.aqfpThroughputImagesPerSec / 1e3, 0)});
    std::printf("  SC simulation: %.2fs at 1 thread, %.2fs at %d threads "
                "(%.2fx speedup, %.2f img/s)\n",
                r.aqfp_t1.wallSeconds, r.aqfp_t8.wallSeconds,
                kBatchThreads,
                r.aqfp_t8.wallSeconds > 0.0
                    ? r.aqfp_t1.wallSeconds / r.aqfp_t8.wallSeconds
                    : 0.0,
                r.aqfp_t8.imagesPerSec);
    std::printf("  energy improvement (CMOS/AQFP): %s (paper: %s)\n",
                bench::sci(r.hw.cmosEnergyPerImageJ /
                           r.hw.aqfpEnergyPerImageJ, 2)
                    .c_str(),
                bench::sci(p_cmos_uj / p_aqfp_uj, 2).c_str());
    std::printf("  throughput improvement (AQFP/CMOS): %.1fx (paper: "
                "%.1fx)\n",
                r.hw.aqfpThroughputImagesPerSec /
                    r.hw.cmosThroughputImagesPerSec,
                p_aqfp_tp / p_cmos_tp);
    std::printf("  paper (%s on MNIST): software %.2f%%, CMOS %.2f%% / "
                "%.2f uJ / %.0f img/ms, AQFP %.2f%% / %.3e uJ / %.0f "
                "img/ms\n",
                name.c_str(), p_sw, p_cmos_acc, p_cmos_uj, p_cmos_tp,
                p_aqfp_acc, p_aqfp_uj, p_aqfp_tp);
    std::printf("  AQFP JJ count: %lld (incl. %lld SNG JJ); latency/image "
                "%.1f ns\n",
                r.hw.aqfpTotalJj, r.hw.aqfpSngJj,
                r.hw.aqfpLatencySeconds * 1e9);
}

/** Machine-readable record of one network's results. */
bench::Json
resultToJson(const std::string &name, const NetResult &r)
{
    bench::Json eval1 = bench::Json::object();
    eval1.set("wall_seconds", r.aqfp_t1.wallSeconds)
        .set("images_per_sec", r.aqfp_t1.imagesPerSec)
        .set("threads", 1);
    bench::Json eval8 = bench::Json::object();
    eval8.set("wall_seconds", r.aqfp_t8.wallSeconds)
        .set("images_per_sec", r.aqfp_t8.imagesPerSec)
        .set("threads", kBatchThreads);

    bench::Json j = bench::Json::object();
    j.set("network", name)
        .set("config", bench::Json::object()
                           .set("stream_len", 1024)
                           .set("sc_images", r.aqfp_t8.images)
                           .set("batch_threads", kBatchThreads)
                           .set("hardware_threads",
                                static_cast<int>(
                                    std::thread::hardware_concurrency())))
        .set("aqfp_engine", bench::engineJson(r.aqfpCfg))
        .set("cmos_engine", bench::engineJson(r.cmosCfg))
        .set("accuracy", bench::Json::object()
                             .set("software", r.software)
                             .set("aqfp_sc", r.aqfp_t8.accuracy)
                             .set("cmos_sc", r.cmos.accuracy))
        .set("batch_eval_single", std::move(eval1))
        .set("batch_eval_parallel", std::move(eval8))
        .set("thread_speedup",
             r.aqfp_t8.wallSeconds > 0.0
                 ? r.aqfp_t1.wallSeconds / r.aqfp_t8.wallSeconds
                 : 0.0)
        .set("deterministic_across_threads", r.deterministic)
        .set("hardware",
             bench::Json::object()
                 .set("aqfp_energy_per_image_j", r.hw.aqfpEnergyPerImageJ)
                 .set("cmos_energy_per_image_j", r.hw.cmosEnergyPerImageJ)
                 .set("aqfp_throughput_images_per_sec",
                      r.hw.aqfpThroughputImagesPerSec)
                 .set("cmos_throughput_images_per_sec",
                      r.hw.cmosThroughputImagesPerSec)
                 .set("aqfp_total_jj",
                      static_cast<long long>(r.hw.aqfpTotalJj)));
    return j;
}

} // namespace

int
main()
{
    printTable8();

    bench::banner("Table 9: network performance comparison "
                  "(synthetic-digit substitution for MNIST)");

    auto train_set = data::generateDigits(2500, 20260612);
    const auto test_set = data::generateDigits(500, 424242);

    bench::WallTimer total_timer;
    bench::Json networks = bench::Json::array();

    // ------------------------------------------------------------ SNN
    {
        nn::Network snn = core::buildSnn(5);
        nn::Network snn_linear;
        {
            // Same architecture with a linear output head for CMOS.
            nn::Network &n = snn_linear;
            n.add(std::make_unique<nn::Conv2D>(1, 32, 3, 5 + 11));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::AvgPool2>());
            n.add(std::make_unique<nn::Conv2D>(32, 32, 3, 5 + 22));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::AvgPool2>());
            n.add(std::make_unique<nn::Dense>(7 * 7 * 32, 500, 5 + 33));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::Dense>(500, 800, 5 + 44));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::Dense>(800, 10, 5 + 55));
        }
        std::printf("\n--- SNN: %s ---\n", snn.describe().c_str());
        const NetResult r =
            runNetwork("snn", std::move(snn), std::move(snn_linear),
                       train_set,
                       test_set, 2500, 5, 60, 500, /*fast_hw=*/false);
        printResult("SNN", r, 99.04, 97.35, 97.91, 39.46, 5.606e-4, 231,
                    8305);
        networks.push(resultToJson("SNN", r));
    }

    // ------------------------------------------------------------ DNN
    {
        nn::Network dnn = core::buildDnn(7);
        nn::Network dnn_linear;
        {
            nn::Network &n = dnn_linear;
            n.add(std::make_unique<nn::Conv2D>(1, 32, 3, 7 + 11));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::Conv2D>(32, 32, 3, 7 + 22));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::AvgPool2>());
            n.add(std::make_unique<nn::Conv2D>(32, 32, 5, 7 + 33));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::Conv2D>(32, 32, 5, 7 + 44));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::AvgPool2>());
            n.add(std::make_unique<nn::Conv2D>(32, 64, 7, 7 + 55));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::Dense>(7 * 7 * 64, 500, 7 + 66));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::Dense>(500, 800, 7 + 77));
            n.add(std::make_unique<nn::SorterTanh>());
            n.add(std::make_unique<nn::Dense>(800, 10, 7 + 88));
        }
        std::printf("\n--- DNN: %s ---\n", dnn.describe().c_str());
        const NetResult r =
            runNetwork("dnn", std::move(dnn), std::move(dnn_linear),
                       train_set,
                       test_set, 1600, 4, 16, 200, /*fast_hw=*/true);
        printResult("DNN", r, 99.17, 96.62, 96.95, 219.37, 2.482e-3, 229,
                    6667);
        networks.push(resultToJson("DNN", r));
    }

    bench::Json report = bench::Json::object();
    report.set("networks", std::move(networks))
        .set("total_wall_seconds", total_timer.seconds());
    bench::writeBenchReport("table9_network_performance",
                            std::move(report));

    std::printf("\nExpected shape: AQFP accuracy within ~1%% of software "
                "and at or above the\nCMOS SC baseline; energy improvement "
                "in the 1e3..1e5 band (paper: ~7e4);\nthroughput improvement"
                " ~10-40x from the stall-free deep pipeline.\n");
    return 0;
}
