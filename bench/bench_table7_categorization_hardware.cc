/**
 * @file
 * Table 7 reproduction: hardware utilization of the majority-chain
 * categorization block.
 *
 * Note the quadratic-looking energy growth in the paper's own numbers
 * (0.01 pJ at K=100 -> 0.62 pJ at K=800, a 62x increase for 8x inputs):
 * the chain's MAJ gates grow linearly, but AQFP's path-balancing rule
 * forces every later input through a buffer chain proportional to its
 * chain position, so legalized JJ grows ~K^2/2.  Our netlists reproduce
 * exactly that behaviour; latency stays linear in K.
 */

#include <cstdio>

#include "aqfp/energy_model.h"
#include "aqfp/passes.h"
#include "baseline/cmos_model.h"
#include "bench_util.h"
#include "blocks/categorization.h"

namespace {

struct PaperRow
{
    int k;
    double aqfp_pj;
    double cmos_pj;
    double aqfp_ns;
    double cmos_ns;
};

constexpr PaperRow kPaper[] = {
    {100, 1.008e-2, 7825.408, 10.0, 1945.6},
    {200, 3.957e-2, 17131.220, 20.0, 2252.8},
    {500, 0.244, 37396.480, 50.0, 2867.2},
    {800, 0.624, 58880.409, 80.0, 4300.8},
};

} // namespace

int
main()
{
    using namespace aqfpsc;
    bench::banner("Table 7: hardware utilization of the categorization "
                  "block (per 1024-cycle stream)");

    const aqfp::AqfpTechnology tech;
    const baseline::CmosTechnology cmos_tech;
    const std::size_t stream = 1024;

    bench::header({"input size", "AQFP JJ", "AQFP E(pJ)", "CMOS E(pJ)",
                   "AQFP d(ns)", "CMOS d(ns)", "E ratio"});
    for (const auto &p : kPaper) {
        const aqfp::Netlist net = aqfp::legalize(
            blocks::CategorizationBlock::buildNetlist(p.k),
            /*with_synthesis=*/false);
        const aqfp::HardwareCost cost = aqfp::analyzeNetlist(net, tech);
        const double aqfp_e = cost.energyPerStreamJ(stream) * 1e12;
        const double aqfp_d = cost.latencySeconds * 1e9;

        const baseline::CmosBlockCost cmos =
            baseline::cmosCategorizationCost(p.k, cmos_tech);
        const double cmos_e = cmos.energyPerStreamJ(stream) * 1e12;
        const double cmos_d =
            stream * cmos_tech.cycleSeconds() * 1e9 +
            cmos.latencySeconds * 1e9;

        bench::row({std::to_string(p.k), std::to_string(cost.jj),
                    bench::sci(aqfp_e), bench::cell(cmos_e, 1),
                    bench::cell(aqfp_d, 1), bench::cell(cmos_d, 1),
                    bench::sci(cmos_e / aqfp_e, 2)});
        bench::row({"(paper)", "-", bench::sci(p.aqfp_pj),
                    bench::cell(p.cmos_pj, 1), bench::cell(p.aqfp_ns, 1),
                    bench::cell(p.cmos_ns, 1),
                    bench::sci(p.cmos_pj / p.aqfp_pj, 2)});
    }

    std::printf("\nExpected shape: latency linear in K (one MAJ stage per "
                "two inputs);\nenergy superlinear (~K^2) from path-balancing"
                " buffers -- matching the\nsuperlinear growth visible in "
                "the paper's own Table 7 numbers.\n");
    return 0;
}
