/**
 * @file
 * Mixed stream-length precision frontier: throughput vs accuracy for
 * uniform stream lengths and the PrecisionTuner's per-stage vector.
 *
 * Stream length is the SC accuracy/latency knob (error ~ 1/sqrt(N),
 * cycles ~ N); per-stage vectors (ScEngineConfig::stageStreamLens) let
 * early stages run shorter streams than the terminal categorizer.  This
 * bench maps the frontier per backend and model: uniform N in {1024,
 * 512, 256} plus the vector core::PrecisionTuner finds from the
 * N=1024 baseline under the default 0.5-point accuracy budget.  Each
 * row lands in BENCH_mixed_precision.json marked "section": "frontier"
 * and keyed (backend, model, stage_lens — the comma-joined vector);
 * tools/bench_diff.py diffs images_per_sec relatively and accuracy_pt
 * on an absolute 0.5-point scale.
 *
 * Usage:
 *   bench_mixed_precision [--images N] [--epochs E] [--train-samples S]
 *                         [--threads T] [--model tiny|snn|dnn]
 *
 * Models are trained on the synthetic digit task first (accuracy rows
 * are meaningless on random weights); AQFPSC_BENCH_QUICK=1 shrinks the
 * run to the tiny model with a short training budget for CI smoke.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.h"
#include "core/model_zoo.h"
#include "core/precision_tuner.h"
#include "core/sc_engine.h"
#include "core/session.h"
#include "core/stages/stage_compiler.h"
#include "data/digits.h"

namespace {

using namespace aqfpsc;

int
argInt(int argc, char **argv, const char *name, int fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return std::atoi(argv[i + 1]);
    }
    return fallback;
}

const char *
argStr(int argc, char **argv, const char *name, const char *fallback)
{
    for (int i = 1; i + 1 < argc; ++i) {
        if (std::strcmp(argv[i], name) == 0)
            return argv[i + 1];
    }
    return fallback;
}

std::string
lensSpec(const std::vector<std::size_t> &lens)
{
    std::string s;
    for (std::size_t i = 0; i < lens.size(); ++i) {
        if (i > 0)
            s += ',';
        s += std::to_string(lens[i]);
    }
    return s;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool quick = std::getenv("AQFPSC_BENCH_QUICK") != nullptr;
    // --images overrides the per-model calibration budget (0 = keep the
    // defaults: tiny gets 200 images so accuracy granularity — one
    // flipped image = 0.5pt — matches the tuner's default budget; the
    // wide FC models run ~1-4 img/s at N=1024 on one core, so they get
    // smaller sets and the tuner only accepts moves that flip no
    // calibration image at all).
    const int images_arg = argInt(argc, argv, "--images", 0);
    const int epochs = argInt(argc, argv, "--epochs", quick ? 4 : 12);
    const int train_samples =
        argInt(argc, argv, "--train-samples", quick ? 600 : 1600);
    const int threads = argInt(argc, argv, "--threads", 1);
    const char *model_arg = argStr(argc, argv, "--model", nullptr);

    const std::vector<std::string> models =
        model_arg ? std::vector<std::string>{model_arg}
        : quick   ? std::vector<std::string>{"tiny"}
                  : std::vector<std::string>{"tiny", "snn", "dnn"};

    bench::banner("Mixed stream-length precision frontier (" +
                  std::to_string(threads) + " thread(s)" +
                  (quick ? ", quick mode" : "") + ")");

    bench::Json results = bench::Json::array();
    for (const std::string &model : models) {
        const int images =
            images_arg > 0 ? images_arg
            : quick        ? 40
            : model == "tiny" ? 200
            : model == "snn"  ? 48
                              : 16;
        const auto test = data::generateDigits(images, 999);
        core::EvalOptions eval;
        eval.limit = images;
        std::printf("%s: %d calibration images\n", model.c_str(), images);
        // Train once per model: the frontier's accuracy axis only means
        // something on a model whose predictions carry signal.  Same
        // disjoint data seeds as aqfpsc_cli (train 11, test 999).
        nn::Network net = core::buildModel(model, 3);
        {
            auto train = data::generateDigits(train_samples, 11);
            nn::TrainConfig cfg;
            cfg.epochs = epochs;
            cfg.learningRate = 0.08f;
            cfg.verbose = false;
            std::printf("training %s on %zu digits, %d epochs...\n",
                        model.c_str(), train.size(), epochs);
            net.train(train, cfg);
            net.quantizeParams(10);
        }

        for (const char *backend : {"aqfp-sorter", "cmos-apc"}) {
            bench::banner(model + " / " + backend);
            bench::header({"stage lens", "img/s", "accuracy", "speedup",
                           "acc delta"});

            core::EngineOptions base;
            base.backend = backend;
            base.streamLen = 1024;
            base.threads = threads;

            // Uniform rows: the scalar-config frontier the tuner must
            // beat.  Warm one image so rows see steady state only.
            double uniform1024Ips = 0.0;
            double uniform1024Acc = 0.0;
            for (const std::size_t len : {std::size_t{1024},
                                          std::size_t{512},
                                          std::size_t{256}}) {
                core::EngineOptions opts = base;
                opts.streamLen = len;
                const core::ScNetworkEngine engine(net, opts.toConfig());
                engine.evaluate(test, {.limit = 1});
                const core::ScEvalStats stats = engine.evaluate(test, eval);
                const std::string lens =
                    lensSpec(engine.plan().stageStreamLens);
                if (len == 1024) {
                    uniform1024Ips = stats.imagesPerSec;
                    uniform1024Acc = stats.accuracy;
                }
                const double speedup =
                    uniform1024Ips > 0.0
                        ? stats.imagesPerSec / uniform1024Ips
                        : 1.0;
                bench::row({lens, bench::cell(stats.imagesPerSec, 2),
                            bench::cell(stats.accuracy, 3),
                            bench::cell(speedup, 2),
                            bench::cell(
                                (stats.accuracy - uniform1024Acc) * 100.0,
                                2)});
                results.push(
                    bench::Json::object()
                        .set("section", "frontier")
                        .set("engine", bench::engineJson(opts.toConfig()))
                        .set("model", model)
                        .set("config",
                             "uniform-" + std::to_string(len))
                        .set("stage_lens", lens)
                        .set("images", stats.images)
                        .set("images_per_sec", stats.imagesPerSec)
                        .set("accuracy_pt", stats.accuracy * 100.0)
                        .set("speedup_vs_uniform_1024", speedup)
                        .set("accuracy_delta_pt",
                             (stats.accuracy - uniform1024Acc) * 100.0));
            }

            // Tuned row: coordinate descent from the N=1024 baseline
            // under the default 0.5-point budget, re-measured on a warm
            // engine so the committed number is comparable to the
            // uniform rows above.
            core::TuneOptions topts;
            topts.limit = images;
            const core::TuneResult tuned =
                core::PrecisionTuner(net, base).tune(test, topts);

            core::EngineOptions opts = base;
            opts.streamLen = tuned.stageStreamLens.front();
            opts.stageStreamLens = tuned.stageStreamLens;
            const core::ScNetworkEngine engine(net, opts.toConfig());
            engine.evaluate(test, {.limit = 1});
            const core::ScEvalStats stats = engine.evaluate(test, eval);
            const double speedup = uniform1024Ips > 0.0
                                       ? stats.imagesPerSec / uniform1024Ips
                                       : 1.0;
            const double deltaPt =
                (stats.accuracy - uniform1024Acc) * 100.0;
            bench::row({lensSpec(tuned.stageStreamLens),
                        bench::cell(stats.imagesPerSec, 2),
                        bench::cell(stats.accuracy, 3),
                        bench::cell(speedup, 2),
                        bench::cell(deltaPt, 2)});
            std::printf("tuned in %zu evaluation(s) over %d pass(es): "
                        "%.2fx at %+.2fpt\n",
                        tuned.evaluations, tuned.passes, speedup, deltaPt);
            results.push(
                bench::Json::object()
                    .set("section", "frontier")
                    .set("engine", bench::engineJson(opts.toConfig()))
                    .set("model", model)
                    .set("config", "tuned")
                    .set("stage_lens", lensSpec(tuned.stageStreamLens))
                    .set("images", stats.images)
                    .set("images_per_sec", stats.imagesPerSec)
                    .set("accuracy_pt", stats.accuracy * 100.0)
                    .set("speedup_vs_uniform_1024", speedup)
                    .set("accuracy_delta_pt", deltaPt)
                    .set("tuner_evaluations", tuned.evaluations)
                    .set("tuner_passes", tuned.passes));
        }
    }

    return bench::writeBenchReport("mixed_precision", std::move(results))
               ? 0
               : 1;
}
