/**
 * @file
 * Fig. 13 reproduction: activated output of the feature-extraction block.
 *
 * Sweeps the true pre-activation sum z and plots the mean output of the
 * block in both the ones-count domain (the paper's shifted clipped ReLU
 * view) and the bipolar value domain, against the ideal clip and the
 * tanh(0.8 z) fit used as the training surrogate (nn::SorterTanh).
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_util.h"
#include "blocks/accuracy.h"

int
main()
{
    using namespace aqfpsc;
    bench::banner("Fig. 13: activated output of the feature-extraction "
                  "block (M = 25, N = 2048)");

    const int m = 25;
    const std::size_t stream = 2048;
    blocks::AccuracyConfig cfg;
    cfg.trials = 30;

    const auto curve =
        blocks::measureActivationShape(m, stream, -3.0, 3.0, 25, cfg);

    bench::header({"sum z", "value(SO)", "clip(z)", "tanh(.8z)",
                   "ones-domain"});
    for (const auto &[z, v] : curve) {
        const double ones_frac = (v + 1.0) / 2.0;
        std::string bar(static_cast<std::size_t>(ones_frac * 30.0 + 0.5),
                        '#');
        bench::row({bench::cell(z, 2), bench::cell(v, 3),
                    bench::cell(std::clamp(z, -1.0, 1.0), 3),
                    bench::cell(std::tanh(0.8 * z), 3), bar});
    }

    std::printf("\nThe ones-count transfer curve (bar column) is the "
                "paper's shifted, clipped\nReLU; in the value domain the "
                "bounded feedback carry rounds the clip corners,\nand the "
                "measured curve is fitted by tanh(0.8 z) to within ~0.05 "
                "-- the\nsurrogate used when training networks for this "
                "hardware (nn::SorterTanh).\n");
    return 0;
}
