/**
 * @file
 * Structured error taxonomy and cooperative cancellation.
 *
 * Production serving cannot reason about `catch (const std::exception &)`:
 * a timed-out request, a crashed worker, a corrupt model artifact and a
 * caller bug all need different handling (retry, respawn, reject,
 * surface).  core::Status is the one vocabulary every failure in the
 * serving stack speaks:
 *
 *  - **Status** = {StatusCode, message}.  The code drives policy (is the
 *    failure transient and retry-eligible?), the message stays
 *    actionable for humans.
 *  - **StatusError** is the exception form.  It derives from
 *    std::runtime_error, so legacy call sites that catch runtime_error
 *    keep working, while new call sites catch StatusError and branch on
 *    status().code.  Every exception that reaches an
 *    InferenceServer/ServingFrontend future is wrapped into a
 *    StatusError (Status::fromCurrentException maps foreign exception
 *    types into the taxonomy).
 *  - **RunControl** is the cooperative cancellation primitive: a worker
 *    arms it with the request deadline before dispatching into the
 *    engine, the engine polls it between adaptive checkpoint blocks
 *    (ScNetworkEngine::inferAdaptive/inferAdaptiveCohort), and a
 *    watchdog may flip its cancel flag from another thread to reclaim a
 *    stuck worker.  poll() also counts "beats", which is how the
 *    ServingFrontend watchdog distinguishes a slow-but-alive worker
 *    (beats advance) from a wedged one (beats frozen).
 *
 * Thread safety: Status/StatusError are plain values.  RunControl's
 * cancel flag and beat counter are atomics — requestCancel() may be
 * called from any thread while the owning worker runs; rearm() must only
 * be called by the owning worker between runs.
 */

#ifndef AQFPSC_CORE_STATUS_H
#define AQFPSC_CORE_STATUS_H

#include <atomic>
#include <chrono>
#include <cstdint>
#include <exception>
#include <stdexcept>
#include <string>

namespace aqfpsc::core {

/** The failure taxonomy of the serving stack. */
enum class StatusCode : int
{
    Ok = 0,
    InvalidArgument,     ///< caller bug: bad config/image; never retried
    Timeout,             ///< per-request budget elapsed (queue or run)
    Cancelled,           ///< cooperative cancellation (not deadline-driven)
    Overloaded,          ///< admission control rejected the request
    Shutdown,            ///< the service stopped before serving it
    WorkerCrashed,       ///< a worker thread died serving it (transient)
    ExecutionFailed,     ///< the inference itself threw (transient)
    Quarantined,         ///< retries exhausted: poison request isolated
    ModelTruncated,      ///< artifact ends mid-structure (partial write)
    ModelCorrupted,      ///< artifact bytes fail verification (bit rot)
    EngineCompileFailed, ///< stage-graph compilation failed
    IoError,             ///< file system level failure
    Internal,            ///< unclassified; a bug in the mapping if seen
};

/** Stable upper-snake name of @p code (e.g. "TIMEOUT"). */
const char *statusCodeName(StatusCode code);

/**
 * True for failures worth retrying on another attempt/worker
 * (WorkerCrashed, ExecutionFailed).  Timeouts are NOT transient: the
 * budget is gone.  InvalidArgument is NOT transient: the same request
 * fails the same way forever — retrying it is how poison requests eat
 * a worker pool.
 */
bool statusCodeTransient(StatusCode code);

/** One structured outcome: a taxonomy code plus an actionable message. */
struct Status
{
    StatusCode code = StatusCode::Ok;
    std::string message;

    bool ok() const { return code == StatusCode::Ok; }
    bool transient() const { return statusCodeTransient(code); }

    /** "TIMEOUT: request budget of 20 ms elapsed ..." */
    std::string toString() const;

    /**
     * Map the in-flight exception (current_exception) into the
     * taxonomy: StatusError keeps its status, std::invalid_argument
     * becomes InvalidArgument, other std::exceptions become
     * ExecutionFailed, anything else Internal.  Call from a catch block.
     */
    static Status fromCurrentException();
};

/**
 * Exception form of Status.  Derives from std::runtime_error so
 * existing `catch (const std::runtime_error &)` sites (tests, CLI)
 * keep observing the message; taxonomy-aware callers catch StatusError
 * and switch on status().code.
 */
class StatusError : public std::runtime_error
{
  public:
    explicit StatusError(Status status)
        : std::runtime_error(status.toString()), status_(std::move(status))
    {
    }

    StatusError(StatusCode code, std::string message)
        : StatusError(Status{code, std::move(message)})
    {
    }

    const Status &status() const { return status_; }

    /** The current exception wrapped as a StatusError exception_ptr
     *  (the one thing futures are ever failed with). */
    static std::exception_ptr wrapCurrentException();

  private:
    Status status_;
};

/**
 * Cooperative cancellation + deadline + liveness for one worker.
 *
 * The owning worker calls rearm() with the earliest hard deadline of
 * the batch it is about to run, then passes the control into the
 * engine; the engine calls poll() between checkpoint blocks and aborts
 * with StatusError{Timeout|Cancelled} when the control fires, so a
 * cancelled request frees its worker at block granularity instead of
 * wedging it for the rest of the stream.  Any other thread (the
 * watchdog) may call requestCancel() at any time.
 *
 * poll() increments beats(): a monotonic progress counter the watchdog
 * samples to tell "slow but advancing" from "stuck" — deliberately, an
 * injected hang does NOT beat (it only watches cancelRequested()), so
 * the watchdog sees it as stuck and kicks it.
 */
class RunControl
{
  public:
    /** No deadline. */
    static constexpr std::chrono::steady_clock::time_point kNoDeadline =
        std::chrono::steady_clock::time_point::max();

    /** Owner only, between runs: clear the cancel flag and set the
     *  deadline of the next run.  beats() keeps counting monotonically. */
    void rearm(std::chrono::steady_clock::time_point deadline = kNoDeadline)
    {
        deadline_ = deadline;
        cancel_.store(false, std::memory_order_release);
    }

    /** Any thread: ask the current run to stop at its next checkpoint. */
    void requestCancel() { cancel_.store(true, std::memory_order_release); }

    /** True once requestCancel() was called for the current run.
     *  Does not beat — safe inside stall-detection windows. */
    bool cancelRequested() const
    {
        return cancel_.load(std::memory_order_acquire);
    }

    /** True once the armed deadline has passed.  Does not beat. */
    bool expired() const
    {
        return deadline_ != kNoDeadline &&
               std::chrono::steady_clock::now() > deadline_;
    }

    /** Monotonic checkpoint-progress counter (never reset). */
    std::uint64_t beats() const
    {
        return beats_.load(std::memory_order_relaxed);
    }

    /**
     * The engine-side check, called between checkpoint blocks: records
     * one beat and reports why the run must stop (Ok = keep going,
     * Cancelled = requestCancel() fired, Timeout = deadline passed).
     */
    StatusCode poll() const
    {
        beats_.fetch_add(1, std::memory_order_relaxed);
        if (cancel_.load(std::memory_order_acquire))
            return StatusCode::Cancelled;
        if (expired())
            return StatusCode::Timeout;
        return StatusCode::Ok;
    }

  private:
    std::atomic<bool> cancel_{false};
    mutable std::atomic<std::uint64_t> beats_{0};
    std::chrono::steady_clock::time_point deadline_ = kNoDeadline;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_STATUS_H
