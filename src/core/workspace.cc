#include "workspace.h"

#include <algorithm>

#include "core/sc_engine.h"
#include "core/stages/stage_compiler.h"

namespace aqfpsc::core {

StageWorkspace::StageWorkspace(const ScNetworkEngine &engine)
    : engine_(engine)
{
    const stages::ExecutionPlan &plan = engine.plan();
    scratch_.reserve(plan.stageCount());
    for (std::size_t s = 0; s < plan.stageCount(); ++s)
        scratch_.push_back(plan.stage(s).makeScratch());
    for (int i = 0; i < 2; ++i)
        pingPong_[i].reset(plan.bufferRows[i], plan.bufferLen[i]);
}

CohortWorkspace::CohortWorkspace(const ScNetworkEngine &engine,
                                 std::size_t capacity)
    : engine_(engine)
{
    capacity = std::clamp<std::size_t>(capacity, 1, kMaxCohortImages);
    const stages::ExecutionPlan &plan = engine.plan();
    slots_.resize(capacity);
    for (Slot &slot : slots_) {
        slot.scratch.reserve(plan.stageCount());
        for (std::size_t s = 0; s < plan.stageCount(); ++s)
            slot.scratch.push_back(plan.stage(s).makeScratch());
        for (int i = 0; i < 2; ++i)
            slot.pingPong[i].reset(plan.bufferRows[i], plan.bufferLen[i]);
    }
    views_.resize(capacity);
    active_.reserve(capacity);
}

} // namespace aqfpsc::core
