#include "workspace.h"

#include <algorithm>

#include "core/sc_engine.h"

namespace aqfpsc::core {

StageWorkspace::StageWorkspace(const ScNetworkEngine &engine)
    : engine_(engine)
{
    const std::size_t len = engine.config().streamLen;
    // Stage s reads pingPong_[s % 2 ^ 1] and writes pingPong_[s % 2]
    // (the first stage reads input_), so pre-size each buffer to the
    // largest output that will ever land in it.
    std::size_t max_rows[2] = {0, 0};
    scratch_.reserve(engine.stageCount());
    for (std::size_t s = 0; s < engine.stageCount(); ++s) {
        const ScStage &stage = engine.stage(s);
        scratch_.push_back(stage.makeScratch());
        max_rows[s % 2] =
            std::max(max_rows[s % 2], stage.footprint().outputRows);
    }
    for (int i = 0; i < 2; ++i)
        pingPong_[i].reset(max_rows[i], len);
}

} // namespace aqfpsc::core
