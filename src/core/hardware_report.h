/**
 * @file
 * Whole-network hardware accounting: instantiates the paper's spatial
 * architecture (one block per output neuron, fully pipelined) and sums
 * JJ / energy / latency / throughput on the AQFP side against the CMOS
 * SC baseline cost model (Table 9).
 *
 * Notes on the accounting:
 *  - Conv layers use the interior window size for every position; edge
 *    blocks are slightly smaller, so totals overestimate by a few percent
 *    at most.
 *  - SNG cost covers the primary inputs and all hardwired weights/biases
 *    (RNG-matrix sharing on the AQFP side; LFSR SNGs on the CMOS side).
 *  - AQFP throughput: one new image per stream (N cycles) -- the chip is
 *    fully pipelined at one stochastic bit per clock.  CMOS throughput is
 *    derated by the calibrated pipeline-stall factor of the counter-based
 *    activation datapath.
 */

#ifndef AQFPSC_CORE_HARDWARE_REPORT_H
#define AQFPSC_CORE_HARDWARE_REPORT_H

#include <string>
#include <vector>

#include "aqfp/energy_model.h"
#include "baseline/cmos_model.h"
#include "nn/network.h"

namespace aqfpsc::core {

/** Hardware figures of one mapped layer. */
struct LayerHardware
{
    std::string name;        ///< layer description
    long long instances = 0; ///< parallel block instances
    int blockInputs = 0;     ///< products per block (M / K)

    aqfp::HardwareCost aqfpPerBlock;    ///< one AQFP block, legalized
    baseline::CmosBlockCost cmosPerBlock; ///< one CMOS baseline block
};

/** Whole-network hardware figures. */
struct NetworkHardware
{
    std::vector<LayerHardware> layers;
    std::size_t streamLen = 0;

    long long aqfpTotalJj = 0;
    long long weightStreams = 0;   ///< SNG-converted streams (weights+bias)
    long long inputStreams = 0;    ///< primary-input SNGs
    long long aqfpSngJj = 0;

    double aqfpEnergyPerImageJ = 0.0;
    double aqfpLatencySeconds = 0.0;
    double aqfpThroughputImagesPerSec = 0.0;

    double cmosEnergyPerImageJ = 0.0;
    double cmosThroughputImagesPerSec = 0.0;
};

/**
 * Analyze a mappable network (same layer pattern ScNetworkEngine accepts)
 * at stream length @p stream_len.
 *
 * @param fast When true, large feature-extraction netlists are costed
 *        from the sorting-network comparator counts plus calibrated
 *        buffer/splitter overhead instead of full legalization (used by
 *        the DNN row, where exact legalization of the 3000-input FC
 *        sorter is slow); small blocks are always legalized exactly.
 */
NetworkHardware
analyzeNetworkHardware(const nn::Network &net, std::size_t stream_len,
                       const aqfp::AqfpTechnology &aqfp_tech = {},
                       const baseline::CmosTechnology &cmos_tech = {},
                       bool fast = false);

/**
 * The *simulation host's* SIMD dispatch state (distinct from the
 * modeled hardware above): which kernel tier the CPU supports, which
 * one is active (env overrides or setActiveLevel may pin it lower),
 * and the per-kernel variant summary.  Recorded in bench report stamps
 * (bench_util.h) and printed by the CLI so committed BENCH_*.json are
 * comparable across hosts.
 */
struct HostSimdInfo
{
    std::string detected; ///< highest tier CPU + build support
    std::string active;   ///< tier the kernel table dispatches to
    std::string variants; ///< "kernel=tier" summary of the active table
};

HostSimdInfo hostSimdInfo();

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_HARDWARE_REPORT_H
