/**
 * @file
 * The paper's network architectures (Table 8) plus a small CNN used by
 * tests and examples.
 *
 *  - SNN:  Conv3_x(32) - AvgPool - Conv3_x(32) - AvgPool - FC500 - FC800
 *          - OutLayer(10)
 *  - DNN:  Conv3_x - Conv3_x - AvgPool - Conv5_x - Conv5_x - AvgPool -
 *          Conv7_x - FC500 - FC800 - OutLayer(10)
 *
 * All convolutions use same padding and stride 1 (Table 8); every Conv /
 * hidden FC carries the hard-tanh activation that the sorter-based
 * feature-extraction block integrates; the output layer is linear and
 * maps to the majority-chain categorization block.
 */

#ifndef AQFPSC_CORE_MODEL_ZOO_H
#define AQFPSC_CORE_MODEL_ZOO_H

#include <string>
#include <vector>

#include "nn/network.h"

namespace aqfpsc::core {

/** Shallow network of Table 9 ("SNN"). */
nn::Network buildSnn(unsigned seed = 1);

/** Deep network of Table 9 ("DNN"). */
nn::Network buildDnn(unsigned seed = 1);

/**
 * Small CNN (Conv3x3x8 - HT - AvgPool - AvgPool - FC10) used by tests,
 * examples and quick demonstrations.
 */
nn::Network buildTinyCnn(unsigned seed = 1);

/** Zoo model names accepted by buildModel, sorted ("dnn", "snn", "tiny"). */
const std::vector<std::string> &modelNames();

/**
 * Name-keyed zoo lookup: "snn", "dnn" or "tiny".
 * @throws std::invalid_argument listing modelNames() when unknown.
 */
nn::Network buildModel(const std::string &name, unsigned seed = 1);

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_MODEL_ZOO_H
