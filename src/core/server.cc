#include "server.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/fault_injection.h"
#include "core/stages/stage_compiler.h"
#include "core/workspace.h"

namespace aqfpsc::core {

namespace {

int
resolveWorkerCount(int requested)
{
    if (requested <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        requested = hw == 0 ? 1 : static_cast<int>(hw);
    }
    return std::clamp(requested, 1, 256);
}

} // namespace

std::vector<std::string>
ServerOptions::validate() const
{
    std::vector<std::string> errors;
    if (workers < 0 || workers > 256) {
        errors.push_back(
            "workers " + std::to_string(workers) +
            " out of [0, 256]: 0 means one worker per hardware thread");
    }
    if (queueCapacity == 0 || queueCapacity > kMaxQueueCapacity) {
        errors.push_back(
            "queueCapacity " + std::to_string(queueCapacity) +
            " out of [1, " + std::to_string(kMaxQueueCapacity) +
            "]: pending requests own their image tensors, so the bound "
            "is what keeps a slow consumer from exhausting memory");
    }
    if (maxBatch < 1 ||
        static_cast<std::size_t>(maxBatch) > kMaxQueueCapacity) {
        errors.push_back(
            "maxBatch " + std::to_string(maxBatch) + " out of [1, " +
            std::to_string(kMaxQueueCapacity) +
            "]: it is the number of requests a worker pops per queue "
            "lock (micro-batching amortization) and each worker "
            "pre-reserves that many request slots");
    }
    if (adaptive) {
        for (const std::string &e : policy.validate())
            errors.push_back("policy: " + e);
    }
    if (!(timeoutSeconds >= 0.0) || !std::isfinite(timeoutSeconds)) {
        errors.push_back(
            "timeoutSeconds " + std::to_string(timeoutSeconds) +
            " must be a finite value >= 0 (0 disables the per-request "
            "deadline)");
    }
    return errors;
}

namespace {

/** Deadline of a request enqueued now under @p timeout_seconds. */
std::chrono::steady_clock::time_point
expiryFor(std::chrono::steady_clock::time_point enqueued,
          double timeout_seconds)
{
    if (timeout_seconds <= 0.0)
        return RunControl::kNoDeadline;
    return enqueued + std::chrono::duration_cast<
                          std::chrono::steady_clock::duration>(
                          std::chrono::duration<double>(timeout_seconds));
}

} // namespace

InferenceServer::InferenceServer(const InferenceSession &session,
                                 ServerOptions opts)
    : session_(session), opts_(std::move(opts))
{
    {
        const std::vector<std::string> errors = opts_.validate();
        if (!errors.empty()) {
            std::string msg = "invalid ServerOptions: ";
            for (std::size_t i = 0; i < errors.size(); ++i)
                msg += (i ? "; " : "") + errors[i];
            throw std::invalid_argument(msg);
        }
    }
    // Compile up front: serving threads must never pay (or race on) the
    // first-use engine build, and configuration errors — unknown
    // backend, adaptive on a non-resumable backend — surface here, not
    // inside a future.
    engine_ = &session_.engine(opts_.backend);
    if (opts_.adaptive) {
        std::string why_not;
        if (!engine_->supportsAdaptive(&why_not)) {
            throw std::invalid_argument(
                "adaptive serving unavailable on backend '" +
                engine_->backendName() + "': stage '" + why_not +
                "' is not resumable");
        }
    }
    // A timed non-adaptive request is cancellable only if the backend
    // can run in checkpoint blocks; the exitMargin=infinity policy
    // never exits early, so routing through the adaptive path keeps
    // results bit-identical to inferCohort (pinned in test_adaptive).
    if (!opts_.adaptive && opts_.timeoutSeconds > 0.0 &&
        engine_->supportsAdaptive()) {
        routeCancellable_ = true;
        fullLengthPolicy_.checkpointCycles = 256;
        fullLengthPolicy_.exitMargin =
            std::numeric_limits<double>::infinity();
        fullLengthPolicy_.minCycles = 0;
        fullLengthPolicy_.deterministic = true;
    }
    workerCount_ = resolveWorkerCount(opts_.workers);
    threads_.reserve(static_cast<std::size_t>(workerCount_));
    for (int t = 0; t < workerCount_; ++t)
        threads_.emplace_back(&InferenceServer::workerLoop, this);
}

InferenceServer::~InferenceServer()
{
    shutdown();
}

std::future<ServedPrediction>
InferenceServer::enqueueLocked(nn::Tensor image)
{
    Request request;
    request.image = std::move(image);
    request.id = nextId_++;
    request.enqueued = std::chrono::steady_clock::now();
    request.expiry = expiryFor(request.enqueued, opts_.timeoutSeconds);
    std::future<ServedPrediction> future = request.promise.get_future();
    queue_.push_back(std::move(request));
    queueDepthHighWater_ = std::max(queueDepthHighWater_, queue_.size());
    return future;
}

std::future<ServedPrediction>
InferenceServer::submit(nn::Tensor image)
{
    std::future<ServedPrediction> future;
    {
        std::unique_lock<std::mutex> lock(mutex_);
        notFull_.wait(lock, [&] {
            return stopping_ || queue_.size() < opts_.queueCapacity;
        });
        if (stopping_) {
            throw StatusError(
                StatusCode::Shutdown,
                "InferenceServer is shut down: request rejected");
        }
        future = enqueueLocked(std::move(image));
    }
    notEmpty_.notify_one();
    return future;
}

std::optional<std::future<ServedPrediction>>
InferenceServer::trySubmit(nn::Tensor image)
{
    std::optional<std::future<ServedPrediction>> future;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (stopping_ || queue_.size() >= opts_.queueCapacity)
            return std::nullopt;
        future = enqueueLocked(std::move(image));
    }
    notEmpty_.notify_one();
    return future;
}

std::vector<std::future<ServedPrediction>>
InferenceServer::submitBatch(const std::vector<nn::Tensor> &images)
{
    std::vector<std::future<ServedPrediction>> futures;
    futures.reserve(images.size());
    for (const nn::Tensor &image : images)
        futures.push_back(submit(image));
    return futures;
}

void
InferenceServer::shutdown()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    notEmpty_.notify_all();
    notFull_.notify_all();
    const std::lock_guard<std::mutex> join_lock(joinMutex_);
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

bool
InferenceServer::accepting() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return !stopping_;
}

ServerStats
InferenceServer::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    ServerStats s;
    s.submitted = nextId_;
    s.completed = completed_;
    s.failed = failed_;
    s.timedOut = timedOut_;
    s.earlyExits = earlyExits_;
    s.batches = batches_;
    s.avgConsumedCycles =
        completed_ == 0 ? 0.0
                        : static_cast<double>(consumedCycles_) /
                              static_cast<double>(completed_);
    s.avgBatchSize = batches_ == 0 ? 0.0
                                   : static_cast<double>(completed_ +
                                                         failed_) /
                                         static_cast<double>(batches_);
    s.queueDepthHighWater = queueDepthHighWater_;
    s.queueHistogram = queueHistogram_;
    s.serviceHistogram = serviceHistogram_;
    return s;
}

void
InferenceServer::workerLoop()
{
    // One arena per worker, built once: steady-state serving performs no
    // heap allocation inside the stage pipeline.  A popped micro-batch
    // is served as stage-major cohorts (requestId = image index keeps
    // every prediction the same pure function as per-request serving).
    const std::size_t cohortCap = std::min<std::size_t>(
        static_cast<std::size_t>(opts_.maxBatch), kMaxCohortImages);
    CohortWorkspace workspace(*engine_, cohortCap);
    std::vector<Request> batch;
    // A pop can never exceed what the queue may hold.
    batch.reserve(std::min(static_cast<std::size_t>(opts_.maxBatch),
                           opts_.queueCapacity));

    for (;;) {
        batch.clear();
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock,
                           [&] { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping, queue drained
            const std::size_t take = std::min(
                queue_.size(), static_cast<std::size_t>(opts_.maxBatch));
            for (std::size_t i = 0; i < take; ++i) {
                batch.push_back(std::move(queue_.front()));
                queue_.pop_front();
            }
            ++batches_;
        }
        // Space freed: wake blocked producers (all of them — several
        // slots may have opened).
        notFull_.notify_all();

        for (std::size_t off = 0; off < batch.size(); off += cohortCap)
            serveCohort(batch, off,
                        std::min(cohortCap, batch.size() - off),
                        workspace);
    }
}

void
InferenceServer::serveCohort(std::vector<Request> &batch, std::size_t off,
                             std::size_t count, CohortWorkspace &workspace)
{
    const auto picked = std::chrono::steady_clock::now();

    // Requests already past their deadline fail at pickup — their
    // budget is gone, so spending engine cycles on them only delays the
    // live ones behind them.
    const nn::Tensor *images[kMaxCohortImages];
    std::size_t ids[kMaxCohortImages];
    std::size_t slot[kMaxCohortImages];
    std::size_t live = 0;
    auto deadline = RunControl::kNoDeadline;
    for (std::size_t j = 0; j < count; ++j) {
        Request &request = batch[off + j];
        if (picked > request.expiry) {
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                ++failed_;
                ++timedOut_;
            }
            request.promise.set_exception(
                std::make_exception_ptr(StatusError(
                    StatusCode::Timeout,
                    "request " + std::to_string(request.id) +
                        " expired in the queue before a worker "
                        "picked it up")));
            continue;
        }
        images[live] = &request.image;
        ids[live] = request.id;
        slot[live] = off + j;
        deadline = std::min(deadline, request.expiry);
        ++live;
    }
    if (live == 0)
        return;

    // The cohort runs under the earliest deadline of its members: a
    // mid-run expiry aborts at the next checkpoint block and the
    // per-request isolation pass below sorts out who actually expired.
    RunControl control;
    control.rearm(deadline);
    const bool adaptiveRun = opts_.adaptive || routeCancellable_;
    const AdaptivePolicy &runPolicy =
        opts_.adaptive ? opts_.policy : fullLengthPolicy_;

    ScPrediction preds[kMaxCohortImages];
    AdaptivePrediction apreds[kMaxCohortImages];
    bool cohortOk = true;
    try {
        fault::injectDelay(FaultSite::WorkerSlowdown, ids[0], &control);
        fault::injectThrow(FaultSite::WorkerException, ids[0]);
        if (adaptiveRun)
            engine_->inferAdaptiveCohort(images, ids, live, workspace,
                                         runPolicy, apreds, &control);
        else
            engine_->inferCohort(images, ids, live, workspace, preds);
    } catch (...) {
        cohortOk = false;
    }
    const double serviceSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      picked)
            .count();

    for (std::size_t j = 0; j < live; ++j) {
        Request &request = batch[slot[j]];
        ServedPrediction served;
        served.requestId = request.id;
        served.queueSeconds =
            std::chrono::duration<double>(picked - request.enqueued)
                .count();
        // Execution is cohort-granular, so the measured service time is
        // shared by every request of the cohort.
        served.serviceSeconds = serviceSeconds;
        try {
            if (!cohortOk) {
                // Isolate the failure: re-run this request as a cohort
                // of one (bit-identical result) under its own deadline,
                // so one bad or expired request cannot fail its
                // cohort-mates.
                if (std::chrono::steady_clock::now() > request.expiry)
                    throw StatusError(
                        StatusCode::Timeout,
                        "request " + std::to_string(request.id) +
                            " deadline elapsed during service");
                RunControl solo;
                solo.rearm(request.expiry);
                if (adaptiveRun)
                    engine_->inferAdaptiveCohort(&images[j], &ids[j], 1,
                                                 workspace, runPolicy,
                                                 &apreds[j], &solo);
                else
                    engine_->inferCohort(&images[j], &ids[j], 1,
                                         workspace, &preds[j]);
            }
            if (opts_.adaptive) {
                served.prediction = std::move(apreds[j].prediction);
                served.consumedCycles = apreds[j].consumedCycles;
                served.exitedEarly = apreds[j].exitedEarly;
            } else if (adaptiveRun) {
                // Cancellable full-length route: bit-identical to
                // inferCohort, and reported as non-adaptive serving.
                served.prediction = std::move(apreds[j].prediction);
                served.consumedCycles = engine_->plan().fullRunCycles();
            } else {
                served.prediction = std::move(preds[j]);
                served.consumedCycles = engine_->plan().fullRunCycles();
            }
            // Count before fulfilling: a caller returning from
            // future.get() must already see itself in stats().  All
            // counters are per image, never per cohort or queue pop.
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                ++completed_;
                consumedCycles_ += served.consumedCycles;
                if (served.exitedEarly)
                    ++earlyExits_;
                queueHistogram_.record(served.queueSeconds);
                serviceHistogram_.record(served.serviceSeconds);
            }
            request.promise.set_value(std::move(served));
        } catch (...) {
            // Futures carry the taxonomy, never a raw exception.
            const Status status = Status::fromCurrentException();
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                ++failed_;
                if (status.code == StatusCode::Timeout)
                    ++timedOut_;
            }
            request.promise.set_exception(
                std::make_exception_ptr(StatusError(status)));
        }
    }
}

} // namespace aqfpsc::core
