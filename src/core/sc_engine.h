/**
 * @file
 * Whole-network stochastic-computing inference engine.
 *
 * Compiles a trained nn::Network into a graph of polymorphic ScStage
 * nodes (see core/stages/) and runs inference entirely in the bipolar
 * stream domain:
 *
 *  - AqfpSorter backend (the paper's proposal): Conv / hidden-FC layers
 *    execute as sorter-based feature-extraction blocks (Algorithm 1,
 *    counter form), pooling as the sorter-based average-pooling block
 *    (Algorithm 2), and the output layer as majority-chain categorization
 *    blocks;
 *  - CmosApc backend (prior art, SC-DCNN): Conv / hidden-FC layers use
 *    the approximate parallel counter + Btanh activation, pooling uses
 *    the random-select MUX, and the output layer accumulates exact APC
 *    counts into binary scores.
 *
 * Weight streams are generated once at engine construction (weights are
 * hardwired on chip and converted through SNGs continuously; re-drawing
 * them per image only adds Monte-Carlo noise), input streams per image.
 *
 * The compiled stage graph is immutable, so one engine can serve many
 * images concurrently; batched multi-threaded inference lives in
 * core::BatchRunner, which evaluate() delegates to.  Each image's
 * randomness derives from seed XOR image-index, making every prediction
 * independent of batch size and thread count.
 */

#ifndef AQFPSC_CORE_SC_ENGINE_H
#define AQFPSC_CORE_SC_ENGINE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"
#include "nn/network.h"

namespace aqfpsc::core {

class ScStage;
class StageWorkspace;
class CohortWorkspace;

namespace stages {
struct ExecutionPlan;
} // namespace stages

/** Engine configuration. */
struct ScEngineConfig
{
    std::size_t streamLen = 1024; ///< stochastic stream length N
    int rngBits = 10;             ///< SNG code width
    std::uint64_t seed = 123;     ///< randomness seed
    /**
     * BackendRegistry name ("aqfp-sorter", "cmos-apc", "float-ref", ...).
     * String names have been the only backend selector since the
     * deprecated ScBackend enum shim was removed.
     */
    std::string backendName = "aqfp-sorter";
    /**
     * CmosApc: model the first-layer OR-pair approximate counter.  Off
     * by default: that approximation overcounts by ~M/8 per cycle, which
     * at network scale saturates activations (SC-DCNN's actual APC uses
     * balanced approximate units whose residual error is small); see
     * baseline::ApproximateParallelCounter for the component-level
     * study.
     */
    bool approximateApc = false;
    /**
     * Worker threads evaluate() fans images across (0 = one per
     * hardware thread).  Results are bit-identical for any value.
     */
    int threads = 1;
    /**
     * Images per execution cohort (stage-major batching): each worker
     * pushes up to this many images through every stage together, so
     * weight streams are traversed once per cohort instead of once per
     * image.  Results are bit-identical for any value (per-image seeds
     * are untouched); clamped to [1, kMaxCohortImages of stage.h].
     */
    int cohort = 1;
    /**
     * Per-stage stream lengths (mixed stream-length precision).  Empty
     * (the default) means "uniform at streamLen" — the compiler resolves
     * it to a uniform vector, and that path is bit-identical to the
     * scalar config it replaces.  A non-empty vector must have one entry
     * per compiled stage (in execution order), every entry a positive
     * multiple of 64 (word-aligned spans), and must be non-increasing
     * along the graph: each stage consumes the prefix of a longer
     * upstream stream, so an upstream stage may never be shorter than
     * its consumer.  Stage s generates its weight/bias streams at —
     * and executes exactly — stageStreamLens[s] cycles; when set,
     * streamLen is ignored for stage lengths (the input encoding runs at
     * stageStreamLens[0]).  See core::PrecisionTuner for the search that
     * produces these vectors.
     */
    std::vector<std::size_t> stageStreamLens;

    /** The authoritative backend name (empty falls back to the default
     *  registry name, so a value-initialized config stays valid). */
    std::string resolvedBackend() const
    {
        return backendName.empty() ? "aqfp-sorter" : backendName;
    }
};

/**
 * Per-call options of one batched evaluation.  The worker count defaults
 * to the engine's config().threads — one source of truth — and can be
 * overridden per call (benches comparing thread counts on one compiled
 * engine).
 */
struct EvalOptions
{
    int limit = -1;       ///< evaluate only the first limit samples (<0 = all)
    int threads = -1;     ///< <0 = config().threads, 0 = one per hw thread
    bool progress = false; ///< thread-safe dots + final summary line
    int cohort = -1;       ///< images per cohort; <=0 = config().cohort
};

/** Per-class SC scores plus the argmax prediction. */
struct ScPrediction
{
    int label = 0;
    std::vector<double> scores;
};

/**
 * Confidence-based progressive-precision (early-exit) policy.
 *
 * The SC stream length trades accuracy/energy for latency; most images
 * are classified correctly long before the full stream is consumed.
 * Adaptive inference executes the stage graph in checkpointCycles-sized
 * blocks and, after each checkpoint, exits as soon as the terminal
 * stage's normalized top-1 margin (ScStage::scoreMargin, in [0, 1])
 * reaches exitMargin — the remaining stream cycles are never computed.
 *
 * exitMargin = 0 exits at the first eligible checkpoint;
 * infinity() never exits (useful to verify the checkpoint machinery is
 * bit-exact against the non-adaptive path).
 *
 * The margin estimated after n cycles carries O(1/sqrt(n)) SC noise, so
 * a bare threshold misfires at the earliest checkpoints; the minCycles
 * floor suppresses that wrong-exit tail at almost no mean-cycle cost.
 * The defaults below were tuned on the trained tiny model at N = 1024
 * (bench_adaptive_serving: ~2.3x mean-cycle reduction at unchanged
 * accuracy); both knobs are model- and stream-length-dependent.
 */
struct AdaptivePolicy
{
    /**
     * Cycles per checkpoint block; must be a positive multiple of 64
     * (the packed-stream word size — spans are word-aligned so the
     * incremental kernels never split a word).  Values >= streamLen
     * degenerate to the non-adaptive single-block path.
     */
    std::size_t checkpointCycles = 64;

    /** Normalized margin in [0, 1] at which an image may exit early. */
    double exitMargin = 0.125;

    /** No exit before this many cycles (rounded up to a checkpoint);
     *  0 = may exit at the first checkpoint. */
    std::size_t minCycles = 320;

    /**
     * true (default): all randomness draws are identical to the
     * non-adaptive path — input SNG streams are generated at full length
     * up front and position-dependent per-stage draws are replayed
     * exactly, so results are bit-identical to ScNetworkEngine::infer*
     * truncated at the exit point.  false: input streams and MUX selects
     * come from cheaper per-block/per-pixel substreams (early-exited
     * cycles are never even generated); statistically equivalent,
     * different draws.
     */
    bool deterministic = true;

    /** Violations of the constraints above; empty means valid. */
    std::vector<std::string> validate() const;
};

/** One adaptive inference: the prediction plus how it terminated. */
struct AdaptivePrediction
{
    /** Scores over the consumed cycles (the full-stream scores when the
     *  image did not exit early). */
    ScPrediction prediction;
    std::size_t consumedCycles = 0; ///< stream cycles actually executed
    std::size_t checkpoints = 0;    ///< margin evaluations performed
    bool exitedEarly = false;       ///< stopped before the full length
};


/** Timing/accuracy summary of one batched evaluation. */
struct ScEvalStats
{
    double accuracy = 0.0;     ///< fraction of correct argmax labels
    std::size_t images = 0;    ///< images evaluated
    double wallSeconds = 0.0;  ///< wall-clock time of the batch
    double imagesPerSec = 0.0; ///< throughput
};

/** ScEvalStats of an adaptive batch plus early-exit accounting. */
struct AdaptiveEvalStats
{
    ScEvalStats stats;              ///< accuracy / wall time / throughput
    double avgConsumedCycles = 0.0; ///< mean cycles per image
    std::size_t earlyExits = 0;     ///< images that exited early
};

/**
 * SC-domain executor for one trained network.
 *
 * The source network must follow the mappable pattern: every Conv2D and
 * every hidden Dense immediately followed by HardTanh/SorterTanh,
 * AvgPool2 between feature stages, and a final Dense (or
 * MajorityChainDense) with no activation.
 */
class ScNetworkEngine
{
  public:
    /**
     * Compile the stage graph and pre-generate all weight streams.
     * @param net Trained network (weights are read, not copied).
     * @param cfg Engine configuration.
     */
    ScNetworkEngine(const nn::Network &net, const ScEngineConfig &cfg);

    /** Out-of-line: ScStage is incomplete at this point. */
    ~ScNetworkEngine();

    /**
     * Run one image through the SC pipeline with the engine seed
     * (identical to inferIndexed(image, 0)).  Thread-safe.
     */
    ScPrediction infer(const nn::Tensor &image) const;

    /**
     * Run one image with the per-image seed derived for batch position
     * @p index (seed XOR index), so batched evaluation is a pure
     * function of the image index.  Thread-safe.  Convenience form: a
     * transient StageWorkspace is built per call; loops should hold a
     * workspace and use the overload below.
     */
    ScPrediction inferIndexed(const nn::Tensor &image,
                              std::size_t index) const;

    /**
     * The zero-allocation serving path: run one image through
     * @p workspace (which must have been constructed for this engine).
     * All stage scratch and stream buffers come from the workspace, so
     * steady-state calls perform no heap allocation inside the stage
     * pipeline.  Results are bit-identical to the transient overload.
     * Thread-safe across distinct workspaces.
     */
    ScPrediction inferIndexed(const nn::Tensor &image, std::size_t index,
                              StageWorkspace &workspace) const;

    /**
     * True when every compiled stage supports checkpointed (runSpan)
     * execution, i.e. adaptive early-exit inference is available on this
     * backend.  When false and @p why_not is non-null, it receives the
     * first non-resumable stage's name.
     */
    bool supportsAdaptive(std::string *why_not = nullptr) const;

    /**
     * Adaptive early-exit inference (see AdaptivePolicy): runs the stage
     * graph in checkpoint blocks through @p workspace and stops as soon
     * as the score margin clears the policy's exit threshold.  With
     * policy.deterministic the result is bit-identical to what
     * inferIndexed(image, index, workspace) computes over the same
     * number of cycles — and to the full inferIndexed() result whenever
     * the image does not exit early.  Thread-safe across distinct
     * workspaces.
     *
     * When @p control is non-null it is polled between checkpoint
     * blocks (the serving stack's cooperative-cancellation point:
     * block granularity, not stream granularity) and the run aborts
     * with StatusError{Cancelled|Timeout} when it fires.  Polling
     * never perturbs the results of runs that complete.
     * @throws std::invalid_argument on invalid policies or if any stage
     *         is not resumable (see supportsAdaptive()).
     * @throws StatusError when @p control reports cancellation/expiry.
     */
    AdaptivePrediction inferAdaptive(const nn::Tensor &image,
                                     std::size_t index,
                                     StageWorkspace &workspace,
                                     const AdaptivePolicy &policy,
                                     const RunControl *control = nullptr) const;

    /** Transient-workspace convenience overload of inferAdaptive(). */
    AdaptivePrediction inferAdaptive(const nn::Tensor &image,
                                     std::size_t index,
                                     const AdaptivePolicy &policy) const;

    /**
     * Stage-major cohort execution: run @p count images (each with the
     * per-image seed of its entry in @p indices) through the stage graph
     * together, one stage dispatch per stage for the whole cohort.
     * Weight streams are traversed once per cohort, and every prediction
     * is bit-identical to inferIndexed(*images[c], indices[c]) — cohort
     * size changes throughput only, never results.  @p out receives
     * @p count predictions.  @p count must not exceed the workspace's
     * capacity.  Thread-safe across distinct workspaces.
     */
    void inferCohort(const nn::Tensor *const images[],
                     const std::size_t indices[], std::size_t count,
                     CohortWorkspace &workspace, ScPrediction out[]) const;

    /**
     * Adaptive early-exit cohort execution: the cohort advances through
     * checkpoint blocks together and images whose margin clears the
     * policy's threshold are retired, compacting the cohort in place, so
     * the remaining images keep the stage-major amortization.  Each
     * result is bit-identical to inferAdaptive(*images[c], indices[c],
     * policy) for deterministic policies.  @p control is polled once
     * per checkpoint block for the whole cohort, exactly like
     * inferAdaptive(); on abort no entry of @p out is valid.
     * @throws std::invalid_argument like inferAdaptive().
     * @throws StatusError when @p control reports cancellation/expiry.
     */
    void inferAdaptiveCohort(const nn::Tensor *const images[],
                             const std::size_t indices[], std::size_t count,
                             CohortWorkspace &workspace,
                             const AdaptivePolicy &policy,
                             AdaptivePrediction out[],
                             const RunControl *control = nullptr) const;

    /**
     * THE batched evaluation entry point: fans the batch across a
     * BatchRunner and returns accuracy plus timing stats.  Worker count
     * comes from config().threads unless @p opts overrides it.
     */
    ScEvalStats evaluate(const std::vector<nn::Sample> &samples,
                         const EvalOptions &opts) const;

    /**
     * Batched adaptive evaluation: evaluate() with per-image early exit
     * under @p policy, also reporting the mean consumed stream cycles
     * and the early-exit count.  Deterministic policies keep per-image
     * results bit-identical for any thread count, like evaluate().
     */
    AdaptiveEvalStats evaluateAdaptive(const std::vector<nn::Sample> &samples,
                                       const AdaptivePolicy &policy,
                                       const EvalOptions &opts) const;

    /**
     * Batched per-image predictions, in sample order (same BatchRunner
     * path as evaluate(), without the scoring).
     */
    std::vector<ScPrediction> predict(const std::vector<nn::Sample> &samples,
                                      const EvalOptions &opts = {}) const;

    /** Engine configuration. */
    const ScEngineConfig &config() const { return cfg_; }

    /** Resolved BackendRegistry name this engine was compiled for. */
    const std::string &backendName() const { return backendName_; }

    /** Number of compiled stages (terminal stage included). */
    std::size_t stageCount() const;

    /** Compiled stage @p i, in execution order. */
    const ScStage &stage(std::size_t i) const;

    /** The compiled execution plan (stage graph + buffer plan).  Plans
     *  are interned through core::PlanCache, so engines compiled from
     *  identical (network, options) specs share one plan object —
     *  &engine.plan() compares equal across them. */
    const stages::ExecutionPlan &plan() const { return *plan_; }

  private:
    ScEngineConfig cfg_;
    std::string backendName_;
    bool encodeInputStreams_ = true; ///< from the backend's traits
    std::shared_ptr<const stages::ExecutionPlan> plan_;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_SC_ENGINE_H
