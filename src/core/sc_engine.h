/**
 * @file
 * Whole-network stochastic-computing inference engine.
 *
 * Compiles a trained nn::Network into a pipeline of SC stages and runs
 * inference entirely in the bipolar stream domain:
 *
 *  - AqfpSorter backend (the paper's proposal): Conv / hidden-FC layers
 *    execute as sorter-based feature-extraction blocks (Algorithm 1,
 *    counter form), pooling as the sorter-based average-pooling block
 *    (Algorithm 2), and the output layer as majority-chain categorization
 *    blocks;
 *  - CmosApc backend (prior art, SC-DCNN): Conv / hidden-FC layers use
 *    the approximate parallel counter + Btanh activation, pooling uses
 *    the random-select MUX, and the output layer accumulates exact APC
 *    counts into binary scores.
 *
 * Weight streams are generated once at engine construction (weights are
 * hardwired on chip and converted through SNGs continuously; re-drawing
 * them per image only adds Monte-Carlo noise), input streams per image.
 */

#ifndef AQFPSC_CORE_SC_ENGINE_H
#define AQFPSC_CORE_SC_ENGINE_H

#include <cstdint>
#include <vector>

#include "nn/network.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core {

/** Which hardware's arithmetic the engine emulates. */
enum class ScBackend
{
    AqfpSorter, ///< this paper's sorter/majority blocks
    CmosApc,    ///< SC-DCNN-style APC + Btanh + MUX pooling
};

/** Engine configuration. */
struct ScEngineConfig
{
    std::size_t streamLen = 1024; ///< stochastic stream length N
    int rngBits = 10;             ///< SNG code width
    std::uint64_t seed = 123;     ///< randomness seed
    ScBackend backend = ScBackend::AqfpSorter;
    /**
     * CmosApc: model the first-layer OR-pair approximate counter.  Off
     * by default: that approximation overcounts by ~M/8 per cycle, which
     * at network scale saturates activations (SC-DCNN's actual APC uses
     * balanced approximate units whose residual error is small); see
     * baseline::ApproximateParallelCounter for the component-level
     * study.
     */
    bool approximateApc = false;
};

/** Per-class SC scores plus the argmax prediction. */
struct ScPrediction
{
    int label = 0;
    std::vector<double> scores;
};

/**
 * SC-domain executor for one trained network.
 *
 * The source network must follow the mappable pattern: every Conv2D and
 * every hidden Dense immediately followed by HardTanh, AvgPool2 between
 * feature stages, and a final Dense with no activation.
 */
class ScNetworkEngine
{
  public:
    /**
     * Build the stage plan and pre-generate all weight streams.
     * @param net Trained network (weights are read, not copied).
     * @param cfg Engine configuration.
     */
    ScNetworkEngine(const nn::Network &net, const ScEngineConfig &cfg);

    /** Out-of-line: Stage is incomplete at this point. */
    ~ScNetworkEngine();

    /** Run one image through the SC pipeline. */
    ScPrediction infer(const nn::Tensor &image);

    /**
     * Accuracy over samples (optionally only the first @p limit).
     * @param progress Print a dot every 10 images.
     */
    double evaluate(const std::vector<nn::Sample> &samples, int limit = -1,
                    bool progress = false);

    /** Engine configuration. */
    const ScEngineConfig &config() const { return cfg_; }

  private:
    struct Stage; // stage plan node (see .cc)

    ScEngineConfig cfg_;
    std::vector<Stage> stages_;

    sc::StreamMatrix
    runStage(const Stage &stage, const sc::StreamMatrix &in,
             std::vector<double> *scores_out);
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_SC_ENGINE_H
