/**
 * @file
 * Hidden fully-connected stage on the CMOS SC-DCNN baseline: APC column
 * counts feed a Btanh activation counter.  Thin instantiation of the
 * shared linear kernel core.
 */

#ifndef AQFPSC_CORE_STAGES_CMOS_DENSE_STAGE_H
#define AQFPSC_CORE_STAGES_CMOS_DENSE_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Feature extraction over a flat input via APC + Btanh. */
class CmosDenseStage final
    : public LinearScStage<ApcBtanhPolicy, DenseGather>
{
  public:
    CmosDenseStage(const DenseGeometry &geom,
                   std::shared_ptr<const StageShared> shared,
                   bool approximate_apc)
        : LinearScStage(DenseGather{geom}, std::move(shared),
                        ApcBtanhPolicy{approximate_apc})
    {
    }

    std::string name() const override;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_CMOS_DENSE_STAGE_H
