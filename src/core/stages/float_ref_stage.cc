#include "float_ref_stage.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "nn/layers.h"
#include "nn/tensor.h"

namespace aqfpsc::core::stages {

namespace {

/**
 * Current value-domain activations: the side channel if a previous float
 * stage filled it, otherwise the raw input image (first stage).
 */
std::vector<float>
takeValues(StageContext &ctx, std::size_t expected)
{
    if (!ctx.values.empty()) {
        assert(ctx.values.size() == expected);
        return std::move(ctx.values);
    }
    assert(ctx.image != nullptr && ctx.image->size() == expected);
    std::vector<float> v(expected);
    for (std::size_t i = 0; i < expected; ++i)
        v[i] = (*ctx.image)[i];
    return v;
}

/** Apply the fused activation exactly as the float layers do. */
void
applyActivation(std::vector<float> &v, FusedActivation activation)
{
    switch (activation) {
      case FusedActivation::None:
        break;
      case FusedActivation::HardTanh:
        for (float &x : v)
            x = std::clamp(x, -1.0f, 1.0f);
        break;
      case FusedActivation::SorterTanh:
        for (float &x : v)
            x = std::tanh(nn::SorterTanh::kGain * x);
        break;
    }
}

/** Bipolar-domain majority value, as in nn::MajorityChainDense. */
float
majValue(float a, float x, float y)
{
    return 0.5f * (a + x + y - a * x * y);
}

} // namespace

FloatRefConvStage::FloatRefConvStage(const ConvGeometry &geom,
                                     WeightedStageInit init)
    : geom_(geom), w_(init.weights), b_(init.biases),
      activation_(init.activation)
{
}

std::string
FloatRefConvStage::name() const
{
    return "FloatRefConv " + std::to_string(geom_.outC) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW) +
           " k" + std::to_string(geom_.kernel);
}

void
FloatRefConvStage::runInto(const sc::StreamMatrix &, sc::StreamMatrix &out,
                           StageContext &ctx, StageScratch *) const
{
    const std::vector<float> x = takeValues(
        ctx, static_cast<std::size_t>(geom_.inC) * geom_.inH * geom_.inW);
    std::vector<float> y(static_cast<std::size_t>(geom_.outC) *
                         geom_.outH * geom_.outW);

    // Same accumulation order as nn::Conv2D::forward, so the result is
    // bit-identical to the float network.
    const int k = geom_.kernel;
    const int r = k / 2;
    for (int oc = 0; oc < geom_.outC; ++oc) {
        const float *wbase =
            &w_[static_cast<std::size_t>(oc) * geom_.inC * k * k];
        for (int yy = 0; yy < geom_.outH; ++yy) {
            for (int xx = 0; xx < geom_.outW; ++xx) {
                float acc = b_[static_cast<std::size_t>(oc)];
                for (int ic = 0; ic < geom_.inC; ++ic) {
                    for (int ky = 0; ky < k; ++ky) {
                        const int sy = yy + ky - r;
                        if (sy < 0 || sy >= geom_.inH)
                            continue;
                        for (int kx = 0; kx < k; ++kx) {
                            const int sx = xx + kx - r;
                            if (sx < 0 || sx >= geom_.inW)
                                continue;
                            acc += wbase[(static_cast<std::size_t>(ic) * k +
                                          ky) * k + kx] *
                                   x[(static_cast<std::size_t>(ic) *
                                          geom_.inH + sy) * geom_.inW + sx];
                        }
                    }
                }
                y[(static_cast<std::size_t>(oc) * geom_.outH + yy) *
                      geom_.outW + xx] = acc;
            }
        }
    }
    applyActivation(y, activation_);
    ctx.values = std::move(y);
    out.reset(0, 0); // value-domain: no streams flow between stages
}

FloatRefDenseStage::FloatRefDenseStage(const DenseGeometry &geom,
                                       WeightedStageInit init)
    : geom_(geom), w_(init.weights), b_(init.biases),
      activation_(init.activation)
{
}

std::string
FloatRefDenseStage::name() const
{
    return "FloatRefDense " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

void
FloatRefDenseStage::runInto(const sc::StreamMatrix &, sc::StreamMatrix &out,
                            StageContext &ctx, StageScratch *) const
{
    const std::vector<float> x =
        takeValues(ctx, static_cast<std::size_t>(geom_.inFeatures));
    std::vector<float> y(static_cast<std::size_t>(geom_.outFeatures));
    for (int o = 0; o < geom_.outFeatures; ++o) {
        const float *row = &w_[static_cast<std::size_t>(o) *
                               geom_.inFeatures];
        float acc = b_[static_cast<std::size_t>(o)];
        for (int i = 0; i < geom_.inFeatures; ++i)
            acc += row[i] * x[static_cast<std::size_t>(i)];
        y[static_cast<std::size_t>(o)] = acc;
    }
    applyActivation(y, activation_);
    ctx.values = std::move(y);
    out.reset(0, 0); // value-domain: no streams flow between stages
}

std::string
FloatRefPoolStage::name() const
{
    return "FloatRefPool " + std::to_string(geom_.channels) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW);
}

void
FloatRefPoolStage::runInto(const sc::StreamMatrix &, sc::StreamMatrix &out,
                           StageContext &ctx, StageScratch *) const
{
    const std::vector<float> x = takeValues(
        ctx,
        static_cast<std::size_t>(geom_.channels) * geom_.inH * geom_.inW);
    std::vector<float> y(static_cast<std::size_t>(geom_.channels) *
                         geom_.outH * geom_.outW);
    auto in = [&](int c, int yy, int xx) {
        return x[(static_cast<std::size_t>(c) * geom_.inH + yy) *
                     geom_.inW + xx];
    };
    for (int c = 0; c < geom_.channels; ++c) {
        for (int yy = 0; yy < geom_.outH; ++yy) {
            for (int xx = 0; xx < geom_.outW; ++xx) {
                y[(static_cast<std::size_t>(c) * geom_.outH + yy) *
                      geom_.outW + xx] =
                    0.25f * (in(c, 2 * yy, 2 * xx) +
                             in(c, 2 * yy, 2 * xx + 1) +
                             in(c, 2 * yy + 1, 2 * xx) +
                             in(c, 2 * yy + 1, 2 * xx + 1));
            }
        }
    }
    ctx.values = std::move(y);
    out.reset(0, 0); // value-domain: no streams flow between stages
}

FloatRefOutputStage::FloatRefOutputStage(const DenseGeometry &geom,
                                         WeightedStageInit init)
    : geom_(geom), w_(init.weights), b_(init.biases),
      majorityChain_(init.majorityChainOutput)
{
}

std::string
FloatRefOutputStage::name() const
{
    return std::string("FloatRefOutput ") +
           (majorityChain_ ? "maj-chain " : "linear ") +
           std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

void
FloatRefOutputStage::runInto(const sc::StreamMatrix &, sc::StreamMatrix &out,
                             StageContext &ctx, StageScratch *) const
{
    const std::vector<float> x =
        takeValues(ctx, static_cast<std::size_t>(geom_.inFeatures));
    const int in = geom_.inFeatures;
    ctx.scores.assign(static_cast<std::size_t>(geom_.outFeatures), 0.0);
    for (int o = 0; o < geom_.outFeatures; ++o) {
        const float *row = &w_[static_cast<std::size_t>(o) * in];
        float score;
        if (majorityChain_) {
            // Same fold as nn::MajorityChainDense::forward (incl. the
            // trained-in logit gain).
            const int k_total = in + 1; // + bias
            auto product = [&](int j) -> float {
                if (j < in)
                    return row[j] * x[static_cast<std::size_t>(j)];
                if (j == in)
                    return b_[static_cast<std::size_t>(o)];
                return 0.0f; // neutral pad
            };
            float acc = majValue(product(0), product(1), product(2));
            for (int j = 3; j < k_total; j += 2) {
                const float p2 = j + 1 < k_total ? product(j + 1) : 0.0f;
                acc = majValue(acc, product(j), p2);
            }
            score = acc * nn::MajorityChainDense::kLogitGain;
        } else {
            float acc = b_[static_cast<std::size_t>(o)];
            for (int i = 0; i < in; ++i)
                acc += row[i] * x[static_cast<std::size_t>(i)];
            score = acc;
        }
        ctx.scores[static_cast<std::size_t>(o)] =
            static_cast<double>(score);
    }
}

// ---------------------------------------------------------------- registry
// The whole backend registers from this TU: no edits to the stage
// compiler (or anything else in core) are needed to add a backend.
namespace {

const BackendTraitsRegistration kTraits{
    kFloatRefBackend,
    BackendTraits{/*wantsParamStreams=*/false, /*wantsInputStreams=*/false}};

const ConvStageRegistration kConv{
    kFloatRefBackend, [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<FloatRefConvStage>(g, std::move(init));
    }};

const DenseStageRegistration kDense{
    kFloatRefBackend, [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<FloatRefDenseStage>(g, std::move(init));
    }};

const PoolStageRegistration kPool{
    kFloatRefBackend, [](const PoolGeometry &g, const ScEngineConfig &) {
        return std::make_unique<FloatRefPoolStage>(g);
    }};

const OutputStageRegistration kOutput{
    kFloatRefBackend, [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<FloatRefOutputStage>(g, std::move(init));
    }};

} // namespace

} // namespace aqfpsc::core::stages
