#include "cmos_conv_stage.h"

#include "baseline/sc_dcnn.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {
const ConvStageRegistration kRegistration{
    "cmos-apc", [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosConvStage>(
            g, std::move(init.streams), init.cfg.approximateApc);
    }};
} // namespace

std::string
CmosConvStage::name() const
{
    return "CmosConv " + std::to_string(geom_.outC) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW) +
           " k" + std::to_string(geom_.kernel);
}

sc::StreamMatrix
CmosConvStage::run(const sc::StreamMatrix &in, StageContext &) const
{
    const std::size_t len = streams_.weights.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    sc::StreamMatrix out(
        static_cast<std::size_t>(geom_.outC) * geom_.outH * geom_.outW,
        len);

    const int max_m = geom_.inC * geom_.kernel * geom_.kernel + 2;
    sc::ColumnCounts counts(len, max_m);
    ApproxPairOvercount over(len, max_m / 2 + 1);
    std::vector<std::uint64_t> prod(wpr);
    std::vector<int> col;

    for (int oc = 0; oc < geom_.outC; ++oc) {
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                counts.clear();
                if (approximateApc_)
                    over.reset();
                int m = 0;
                forEachConvProduct(
                    geom_, in, streams_.weights, oc, y, x,
                    [&](const std::uint64_t *xr, const std::uint64_t *wr) {
                        xnorProduct(prod.data(), xr, wr, wpr);
                        counts.addWords(prod.data(), wpr);
                        ++m;
                        if (approximateApc_)
                            over.observe(prod, wpr);
                    });
                counts.addWords(
                    streams_.biases.row(static_cast<std::size_t>(oc)), wpr);
                ++m;

                const std::size_t out_row =
                    (static_cast<std::size_t>(oc) * geom_.outH + y) *
                        geom_.outW +
                    x;
                std::uint64_t *dst = out.row(out_row);
                counts.extract(col);
                if (approximateApc_)
                    over.addOvercount(col, m);

                int state = m; // s_max / 2 with s_max = 2m
                for (std::size_t i = 0; i < len; ++i) {
                    if (baseline::ApcFeatureExtraction::btanhStep(
                            state, col[i], m, 2 * m)) {
                        setStreamBit(dst, i);
                    }
                }
            }
        }
    }
    return out;
}

} // namespace aqfpsc::core::stages
