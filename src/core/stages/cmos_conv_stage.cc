#include "cmos_conv_stage.h"

#include <cassert>

#include "baseline/sc_dcnn.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const ConvStageRegistration kRegistration{
    "cmos-apc", [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosConvStage>(
            g, std::move(init.streams), init.cfg.approximateApc);
    }};

/** APC column counter + OR-pair overcount model reused across pixels. */
struct CmosConvScratch final : StageScratch
{
    CmosConvScratch(std::size_t len, int max_m, std::size_t rows)
        : counts(len, max_m), over(len, max_m / 2 + 1),
          prod((len + 63) / 64), states(rows, 0)
    {
    }

    sc::ColumnCounts counts;
    ApproxPairOvercount over;
    /** Product buffer of the approximate-APC path (shared between the
     *  counter and the overcount model: one XNOR pass per product). */
    std::vector<std::uint64_t> prod;
    /** Per-output-pixel Btanh counter state, resumed across spans. */
    std::vector<int> states;
};

} // namespace

std::string
CmosConvStage::name() const
{
    return "CmosConv " + std::to_string(geom_.outC) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW) +
           " k" + std::to_string(geom_.kernel);
}

StageFootprint
CmosConvStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.outC) * geom_.outH *
            geom_.outW};
}

std::unique_ptr<StageScratch>
CmosConvStage::makeScratch() const
{
    const int max_m = geom_.inC * geom_.kernel * geom_.kernel + 2;
    return std::make_unique<CmosConvScratch>(streams_.weights.streamLen(),
                                             max_m,
                                             footprint().outputRows);
}

void
CmosConvStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &ctx, StageScratch *scratch) const
{
    runSpan(in, out, ctx, scratch, 0, streams_.weights.streamLen());
}

void
CmosConvStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &, StageScratch *scratch,
                       std::size_t begin, std::size_t end) const
{
    const std::size_t len = streams_.weights.streamLen();
    assert(begin % 64 == 0 && begin < end && end <= len);
    const std::size_t w0 = begin / 64;
    const std::size_t sw = (end - begin + 63) / 64;

    out.reset(footprint().outputRows, len);
    auto &ws = *static_cast<CmosConvScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    ApproxPairOvercount &over = ws.over;

    for (int oc = 0; oc < geom_.outC; ++oc) {
        const std::uint64_t *bias =
            streams_.biases.row(static_cast<std::size_t>(oc));
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                counts.clear();
                int m = 0;
                if (approximateApc_) {
                    // One XNOR pass per product, shared by the counter
                    // and the overcount model.
                    over.reset();
                    forEachConvProduct(
                        geom_, in, streams_.weights, oc, y, x,
                        [&](const std::uint64_t *xr,
                            const std::uint64_t *wr) {
                            xnorProduct(ws.prod.data(), xr + w0, wr + w0,
                                        sw);
                            counts.addWords(ws.prod.data(), sw);
                            over.observe(ws.prod, sw);
                            ++m;
                        });
                } else {
                    // Pair up window products for the 3:2 carry-save
                    // add; an odd trailing product goes in alone.
                    const std::uint64_t *px = nullptr;
                    const std::uint64_t *pw = nullptr;
                    forEachConvProduct(
                        geom_, in, streams_.weights, oc, y, x,
                        [&](const std::uint64_t *xr,
                            const std::uint64_t *wr) {
                            if (px != nullptr) {
                                counts.addXnor2(px + w0, pw + w0, xr + w0,
                                                wr + w0, sw);
                                px = nullptr;
                            } else {
                                px = xr;
                                pw = wr;
                            }
                            ++m;
                        });
                    if (px != nullptr)
                        counts.addXnor(px + w0, pw + w0, sw);
                }
                counts.addWords(bias + w0, sw);
                ++m;

                const std::size_t out_row =
                    (static_cast<std::size_t>(oc) * geom_.outH + y) *
                        geom_.outW +
                    x;
                std::uint64_t *dst = out.row(out_row) + w0;
                // s_max / 2 with s_max = 2m; resumed across spans.
                int state = begin == 0 ? m : ws.states[out_row];
                auto step = [&](int c) {
                    return baseline::ApcFeatureExtraction::btanhStep(
                        state, c, m, 2 * m);
                };
                if (approximateApc_)
                    counts.driveWithOvercountPrefix(over.counts(), m,
                                                    end - begin, step, dst);
                else
                    counts.drivePrefix(end - begin, step, dst);
                ws.states[out_row] = state;
            }
        }
    }
}

} // namespace aqfpsc::core::stages
