#include "cmos_conv_stage.h"

#include "baseline/sc_dcnn.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const ConvStageRegistration kRegistration{
    "cmos-apc", [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosConvStage>(
            g, std::move(init.streams), init.cfg.approximateApc);
    }};

/** APC column counter + OR-pair overcount model reused across pixels. */
struct CmosConvScratch final : StageScratch
{
    CmosConvScratch(std::size_t len, int max_m)
        : counts(len, max_m), over(len, max_m / 2 + 1),
          prod((len + 63) / 64)
    {
    }

    sc::ColumnCounts counts;
    ApproxPairOvercount over;
    /** Product buffer of the approximate-APC path (shared between the
     *  counter and the overcount model: one XNOR pass per product). */
    std::vector<std::uint64_t> prod;
};

} // namespace

std::string
CmosConvStage::name() const
{
    return "CmosConv " + std::to_string(geom_.outC) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW) +
           " k" + std::to_string(geom_.kernel);
}

StageFootprint
CmosConvStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.outC) * geom_.outH *
            geom_.outW};
}

std::unique_ptr<StageScratch>
CmosConvStage::makeScratch() const
{
    const int max_m = geom_.inC * geom_.kernel * geom_.kernel + 2;
    return std::make_unique<CmosConvScratch>(streams_.weights.streamLen(),
                                             max_m);
}

void
CmosConvStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &, StageScratch *scratch) const
{
    const std::size_t len = streams_.weights.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    out.reset(footprint().outputRows, len);
    auto &ws = *static_cast<CmosConvScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    ApproxPairOvercount &over = ws.over;

    for (int oc = 0; oc < geom_.outC; ++oc) {
        const std::uint64_t *bias =
            streams_.biases.row(static_cast<std::size_t>(oc));
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                counts.clear();
                int m = 0;
                if (approximateApc_) {
                    // One XNOR pass per product, shared by the counter
                    // and the overcount model.
                    over.reset();
                    forEachConvProduct(
                        geom_, in, streams_.weights, oc, y, x,
                        [&](const std::uint64_t *xr,
                            const std::uint64_t *wr) {
                            xnorProduct(ws.prod.data(), xr, wr, wpr);
                            counts.addWords(ws.prod.data(), wpr);
                            over.observe(ws.prod, wpr);
                            ++m;
                        });
                } else {
                    // Pair up window products for the 3:2 carry-save
                    // add; an odd trailing product goes in alone.
                    const std::uint64_t *px = nullptr;
                    const std::uint64_t *pw = nullptr;
                    forEachConvProduct(
                        geom_, in, streams_.weights, oc, y, x,
                        [&](const std::uint64_t *xr,
                            const std::uint64_t *wr) {
                            if (px != nullptr) {
                                counts.addXnor2(px, pw, xr, wr, wpr);
                                px = nullptr;
                            } else {
                                px = xr;
                                pw = wr;
                            }
                            ++m;
                        });
                    if (px != nullptr)
                        counts.addXnor(px, pw, wpr);
                }
                counts.addWords(bias, wpr);
                ++m;

                const std::size_t out_row =
                    (static_cast<std::size_t>(oc) * geom_.outH + y) *
                        geom_.outW +
                    x;
                std::uint64_t *dst = out.row(out_row);
                int state = m; // s_max / 2 with s_max = 2m
                auto step = [&](int c) {
                    return baseline::ApcFeatureExtraction::btanhStep(
                        state, c, m, 2 * m);
                };
                if (approximateApc_)
                    counts.driveWithOvercount(over.counts(), m, step, dst);
                else
                    counts.drive(step, dst);
            }
        }
    }
}

} // namespace aqfpsc::core::stages
