#include "cmos_conv_stage.h"

#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const ConvStageRegistration kRegistration{
    "cmos-apc", [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosConvStage>(
            g, std::move(init.shared), init.cfg.approximateApc);
    }};

} // namespace

std::string
CmosConvStage::name() const
{
    return "CmosConv " + std::to_string(gather_.g.outC) + "x" +
           std::to_string(gather_.g.outH) + "x" +
           std::to_string(gather_.g.outW) + " k" +
           std::to_string(gather_.g.kernel);
}

} // namespace aqfpsc::core::stages
