#include "stage.h"

#include <stdexcept>
#include <utility>

namespace aqfpsc::core {

namespace {

/**
 * Guard against a stage that overrides neither run() nor runInto():
 * the default implementations bridge to each other, so such a stage
 * would otherwise recurse to a stack overflow with no diagnostic.
 * Thread-local because one stage graph executes from many workers.
 */
thread_local const ScStage *t_bridging = nullptr;

struct BridgeGuard
{
    explicit BridgeGuard(const ScStage *stage) : stage_(stage)
    {
        if (t_bridging == stage) {
            throw std::logic_error(
                "ScStage '" + stage->name() +
                "' must override run() or runInto()");
        }
        t_bridging = stage;
    }

    ~BridgeGuard() { t_bridging = nullptr; }

    const ScStage *stage_;
};

} // namespace

void
ScStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *) const
{
    // Compatibility bridge for stages that only implement run(): the
    // per-image allocation of the returned matrix is the cost of not
    // migrating to the workspace API.
    const BridgeGuard guard(this);
    out = run(in, ctx);
}

sc::StreamMatrix
ScStage::run(const sc::StreamMatrix &in, StageContext &ctx) const
{
    const BridgeGuard guard(this);
    const std::unique_ptr<StageScratch> scratch = makeScratch();
    sc::StreamMatrix out;
    runInto(in, out, ctx, scratch.get());
    return out;
}

void
ScStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const
{
    if (begin != 0 || end != in.streamLen()) {
        throw std::logic_error("ScStage '" + name() +
                               "' does not support partial spans "
                               "(resumable() is false)");
    }
    runInto(in, out, ctx, scratch);
}

double
scoreTopTwoGap(const std::vector<double> &scores)
{
    if (scores.size() < 2)
        return 0.0;
    double top = scores[0], second = scores[1];
    if (second > top)
        std::swap(top, second);
    for (std::size_t i = 2; i < scores.size(); ++i) {
        const double s = scores[i];
        if (s > top) {
            second = top;
            top = s;
        } else if (s > second) {
            second = s;
        }
    }
    return top - second;
}

double
ScStage::scoreMargin(const StageContext &ctx, std::size_t) const
{
    // Bipolar scores live in [-1, 1]: half the gap normalizes to [0, 1].
    return 0.5 * scoreTopTwoGap(ctx.scores);
}

} // namespace aqfpsc::core
