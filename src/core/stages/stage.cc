#include "stage.h"

#include <stdexcept>
#include <utility>

namespace aqfpsc::core {

void
ScStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const
{
    if (begin != 0 || end != in.streamLen()) {
        throw std::logic_error("ScStage '" + name() +
                               "' does not support partial spans "
                               "(resumable() is false)");
    }
    runInto(in, out, ctx, scratch);
}

void
ScStage::runCohortSpan(const CohortSlot *slots, std::size_t count,
                       std::size_t begin, std::size_t end) const
{
    // Image-major fallback: correct for every stage (per-slot state is
    // independent), just without the weight-traversal amortization the
    // linear kernel cores' overrides provide.  A span covering the whole
    // input is exactly runInto() — routing it there keeps full-stream
    // cohorts working on non-resumable stages (value-domain backends
    // carry empty input matrices, so the engine's [0, streamLen) span
    // always covers them).
    for (std::size_t c = 0; c < count; ++c) {
        if (begin == 0 && end >= slots[c].in->streamLen()) {
            runInto(*slots[c].in, *slots[c].out, *slots[c].ctx,
                    slots[c].scratch);
        } else {
            runSpan(*slots[c].in, *slots[c].out, *slots[c].ctx,
                    slots[c].scratch, begin, end);
        }
    }
}

double
scoreTopTwoGap(const std::vector<double> &scores)
{
    if (scores.size() < 2)
        return 0.0;
    double top = scores[0], second = scores[1];
    if (second > top)
        std::swap(top, second);
    for (std::size_t i = 2; i < scores.size(); ++i) {
        const double s = scores[i];
        if (s > top) {
            second = top;
            top = s;
        } else if (s > second) {
            second = s;
        }
    }
    return top - second;
}

double
ScStage::scoreMargin(const StageContext &ctx, std::size_t) const
{
    // Bipolar scores live in [-1, 1]: half the gap normalizes to [0, 1].
    return 0.5 * scoreTopTwoGap(ctx.scores);
}

} // namespace aqfpsc::core
