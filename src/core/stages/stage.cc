#include "stage.h"

#include <stdexcept>

namespace aqfpsc::core {

namespace {

/**
 * Guard against a stage that overrides neither run() nor runInto():
 * the default implementations bridge to each other, so such a stage
 * would otherwise recurse to a stack overflow with no diagnostic.
 * Thread-local because one stage graph executes from many workers.
 */
thread_local const ScStage *t_bridging = nullptr;

struct BridgeGuard
{
    explicit BridgeGuard(const ScStage *stage) : stage_(stage)
    {
        if (t_bridging == stage) {
            throw std::logic_error(
                "ScStage '" + stage->name() +
                "' must override run() or runInto()");
        }
        t_bridging = stage;
    }

    ~BridgeGuard() { t_bridging = nullptr; }

    const ScStage *stage_;
};

} // namespace

void
ScStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *) const
{
    // Compatibility bridge for stages that only implement run(): the
    // per-image allocation of the returned matrix is the cost of not
    // migrating to the workspace API.
    const BridgeGuard guard(this);
    out = run(in, ctx);
}

sc::StreamMatrix
ScStage::run(const sc::StreamMatrix &in, StageContext &ctx) const
{
    const BridgeGuard guard(this);
    const std::unique_ptr<StageScratch> scratch = makeScratch();
    sc::StreamMatrix out;
    runInto(in, out, ctx, scratch.get());
    return out;
}

} // namespace aqfpsc::core
