#include "cmos_dense_stage.h"

#include <cassert>

#include "baseline/sc_dcnn.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {
const DenseStageRegistration kRegistration{
    "cmos-apc", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosDenseStage>(
            g, std::move(init.streams), init.cfg.approximateApc);
    }};
} // namespace

std::string
CmosDenseStage::name() const
{
    return "CmosDense " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

sc::StreamMatrix
CmosDenseStage::run(const sc::StreamMatrix &in, StageContext &) const
{
    assert(static_cast<int>(in.rows()) == geom_.inFeatures);
    const std::size_t len = streams_.weights.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    sc::StreamMatrix out(static_cast<std::size_t>(geom_.outFeatures), len);
    const int m_total = geom_.inFeatures + 1; // + bias
    sc::ColumnCounts counts(len, m_total + 1);
    ApproxPairOvercount over(len, m_total / 2 + 1);
    std::vector<std::uint64_t> prod(wpr);
    std::vector<int> col;

    for (int o = 0; o < geom_.outFeatures; ++o) {
        counts.clear();
        if (approximateApc_)
            over.reset();
        for (int j = 0; j < geom_.inFeatures; ++j) {
            xnorProduct(prod.data(), in.row(static_cast<std::size_t>(j)),
                        streams_.weights.row(static_cast<std::size_t>(o) *
                                                 geom_.inFeatures +
                                             j),
                        wpr);
            counts.addWords(prod.data(), wpr);
            if (approximateApc_)
                over.observe(prod, wpr);
        }
        counts.addWords(streams_.biases.row(static_cast<std::size_t>(o)),
                        wpr);

        std::uint64_t *dst = out.row(static_cast<std::size_t>(o));
        counts.extract(col);
        if (approximateApc_)
            over.addOvercount(col, m_total);

        int state = m_total;
        for (std::size_t i = 0; i < len; ++i) {
            if (baseline::ApcFeatureExtraction::btanhStep(state, col[i],
                                                          m_total,
                                                          2 * m_total)) {
                setStreamBit(dst, i);
            }
        }
    }
    return out;
}

} // namespace aqfpsc::core::stages
