#include "cmos_dense_stage.h"

#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const DenseStageRegistration kRegistration{
    "cmos-apc", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosDenseStage>(
            g, std::move(init.shared), init.cfg.approximateApc);
    }};

} // namespace

std::string
CmosDenseStage::name() const
{
    return "CmosDense " + std::to_string(gather_.g.inFeatures) + "->" +
           std::to_string(gather_.g.outFeatures);
}

} // namespace aqfpsc::core::stages
