#include "cmos_dense_stage.h"

#include <cassert>

#include "baseline/sc_dcnn.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const DenseStageRegistration kRegistration{
    "cmos-apc", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosDenseStage>(
            g, std::move(init.streams), init.cfg.approximateApc);
    }};

/** APC column counter + OR-pair overcount model reused across neurons. */
struct CmosDenseScratch final : StageScratch
{
    CmosDenseScratch(std::size_t len, int m_total, std::size_t rows)
        : counts(len, m_total + 1), over(len, m_total / 2 + 1),
          prod((len + 63) / 64), states(rows, 0)
    {
    }

    sc::ColumnCounts counts;
    ApproxPairOvercount over;
    /** Product buffer of the approximate-APC path (shared between the
     *  counter and the overcount model: one XNOR pass per product). */
    std::vector<std::uint64_t> prod;
    /** Per-output-neuron Btanh counter state, resumed across spans. */
    std::vector<int> states;
};

} // namespace

std::string
CmosDenseStage::name() const
{
    return "CmosDense " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

StageFootprint
CmosDenseStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.outFeatures)};
}

std::unique_ptr<StageScratch>
CmosDenseStage::makeScratch() const
{
    return std::make_unique<CmosDenseScratch>(
        streams_.weights.streamLen(), geom_.inFeatures + 1,
        footprint().outputRows);
}

void
CmosDenseStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                        StageContext &ctx, StageScratch *scratch) const
{
    runSpan(in, out, ctx, scratch, 0, streams_.weights.streamLen());
}

void
CmosDenseStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                        StageContext &, StageScratch *scratch,
                        std::size_t begin, std::size_t end) const
{
    assert(static_cast<int>(in.rows()) == geom_.inFeatures);
    const std::size_t len = streams_.weights.streamLen();
    assert(begin % 64 == 0 && begin < end && end <= len);
    const std::size_t w0 = begin / 64;
    const std::size_t sw = (end - begin + 63) / 64;

    out.reset(static_cast<std::size_t>(geom_.outFeatures), len);
    auto &ws = *static_cast<CmosDenseScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    ApproxPairOvercount &over = ws.over;
    const int m_total = geom_.inFeatures + 1; // + bias

    for (int o = 0; o < geom_.outFeatures; ++o) {
        counts.clear();
        const sc::StreamMatrix &wm = streams_.weights;
        const std::size_t wbase =
            static_cast<std::size_t>(o) * geom_.inFeatures;
        if (approximateApc_) {
            // One XNOR pass per product, shared by the counter and the
            // overcount model.
            over.reset();
            for (int j = 0; j < geom_.inFeatures; ++j) {
                xnorProduct(ws.prod.data(),
                            in.row(static_cast<std::size_t>(j)) + w0,
                            wm.row(wbase + static_cast<std::size_t>(j)) +
                                w0,
                            sw);
                counts.addWords(ws.prod.data(), sw);
                over.observe(ws.prod, sw);
            }
        } else {
            int j = 0;
            for (; j + 1 < geom_.inFeatures; j += 2) {
                counts.addXnor2(
                    in.row(static_cast<std::size_t>(j)) + w0,
                    wm.row(wbase + static_cast<std::size_t>(j)) + w0,
                    in.row(static_cast<std::size_t>(j) + 1) + w0,
                    wm.row(wbase + static_cast<std::size_t>(j) + 1) + w0,
                    sw);
            }
            if (j < geom_.inFeatures) {
                counts.addXnor(
                    in.row(static_cast<std::size_t>(j)) + w0,
                    wm.row(wbase + static_cast<std::size_t>(j)) + w0, sw);
            }
        }
        counts.addWords(
            streams_.biases.row(static_cast<std::size_t>(o)) + w0, sw);

        std::uint64_t *dst = out.row(static_cast<std::size_t>(o)) + w0;
        int state = begin == 0 ? m_total
                               : ws.states[static_cast<std::size_t>(o)];
        auto step = [&](int c) {
            return baseline::ApcFeatureExtraction::btanhStep(
                state, c, m_total, 2 * m_total);
        };
        if (approximateApc_)
            counts.driveWithOvercountPrefix(over.counts(), m_total,
                                            end - begin, step, dst);
        else
            counts.drivePrefix(end - begin, step, dst);
        ws.states[static_cast<std::size_t>(o)] = state;
    }
}

} // namespace aqfpsc::core::stages
