#include "cmos_dense_stage.h"

#include <cassert>

#include "baseline/sc_dcnn.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const DenseStageRegistration kRegistration{
    "cmos-apc", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosDenseStage>(
            g, std::move(init.streams), init.cfg.approximateApc);
    }};

/** APC column counter + OR-pair overcount model reused across neurons. */
struct CmosDenseScratch final : StageScratch
{
    CmosDenseScratch(std::size_t len, int m_total)
        : counts(len, m_total + 1), over(len, m_total / 2 + 1),
          prod((len + 63) / 64)
    {
    }

    sc::ColumnCounts counts;
    ApproxPairOvercount over;
    /** Product buffer of the approximate-APC path (shared between the
     *  counter and the overcount model: one XNOR pass per product). */
    std::vector<std::uint64_t> prod;
};

} // namespace

std::string
CmosDenseStage::name() const
{
    return "CmosDense " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

StageFootprint
CmosDenseStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.outFeatures)};
}

std::unique_ptr<StageScratch>
CmosDenseStage::makeScratch() const
{
    return std::make_unique<CmosDenseScratch>(
        streams_.weights.streamLen(), geom_.inFeatures + 1);
}

void
CmosDenseStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                        StageContext &, StageScratch *scratch) const
{
    assert(static_cast<int>(in.rows()) == geom_.inFeatures);
    const std::size_t len = streams_.weights.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    out.reset(static_cast<std::size_t>(geom_.outFeatures), len);
    auto &ws = *static_cast<CmosDenseScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    ApproxPairOvercount &over = ws.over;
    const int m_total = geom_.inFeatures + 1; // + bias

    for (int o = 0; o < geom_.outFeatures; ++o) {
        counts.clear();
        const sc::StreamMatrix &wm = streams_.weights;
        const std::size_t wbase =
            static_cast<std::size_t>(o) * geom_.inFeatures;
        if (approximateApc_) {
            // One XNOR pass per product, shared by the counter and the
            // overcount model.
            over.reset();
            for (int j = 0; j < geom_.inFeatures; ++j) {
                xnorProduct(ws.prod.data(),
                            in.row(static_cast<std::size_t>(j)),
                            wm.row(wbase + static_cast<std::size_t>(j)),
                            wpr);
                counts.addWords(ws.prod.data(), wpr);
                over.observe(ws.prod, wpr);
            }
        } else {
            int j = 0;
            for (; j + 1 < geom_.inFeatures; j += 2) {
                counts.addXnor2(
                    in.row(static_cast<std::size_t>(j)),
                    wm.row(wbase + static_cast<std::size_t>(j)),
                    in.row(static_cast<std::size_t>(j) + 1),
                    wm.row(wbase + static_cast<std::size_t>(j) + 1), wpr);
            }
            if (j < geom_.inFeatures) {
                counts.addXnor(in.row(static_cast<std::size_t>(j)),
                               wm.row(wbase + static_cast<std::size_t>(j)),
                               wpr);
            }
        }
        counts.addWords(streams_.biases.row(static_cast<std::size_t>(o)),
                        wpr);

        std::uint64_t *dst = out.row(static_cast<std::size_t>(o));
        int state = m_total;
        auto step = [&](int c) {
            return baseline::ApcFeatureExtraction::btanhStep(
                state, c, m_total, 2 * m_total);
        };
        if (approximateApc_)
            counts.driveWithOvercount(over.counts(), m_total, step, dst);
        else
            counts.drive(step, dst);
    }
}

} // namespace aqfpsc::core::stages
