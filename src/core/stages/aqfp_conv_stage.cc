#include "aqfp_conv_stage.h"

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const ConvStageRegistration kRegistration{
    "aqfp-sorter", [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<AqfpConvStage>(g, std::move(init.streams));
    }};

/** Column counter + feedback unit reused across all output pixels. */
struct ConvScratch final : StageScratch
{
    ConvScratch(std::size_t len, int max_m) : counts(len, max_m), unit(1)
    {
    }

    sc::ColumnCounts counts;
    blocks::FeatureFeedbackUnit unit;
};

} // namespace

std::string
AqfpConvStage::name() const
{
    return "AqfpConv " + std::to_string(geom_.outC) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW) +
           " k" + std::to_string(geom_.kernel);
}

StageFootprint
AqfpConvStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.outC) * geom_.outH *
            geom_.outW};
}

std::unique_ptr<StageScratch>
AqfpConvStage::makeScratch() const
{
    // Interior window + bias + possible neutral bounds the counts.
    const int max_m = geom_.inC * geom_.kernel * geom_.kernel + 2;
    return std::make_unique<ConvScratch>(streams_.weights.streamLen(),
                                         max_m);
}

void
AqfpConvStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &, StageScratch *scratch) const
{
    const std::size_t len = streams_.weights.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    out.reset(footprint().outputRows, len);
    auto &ws = *static_cast<ConvScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    blocks::FeatureFeedbackUnit &unit = ws.unit;
    const std::uint64_t *neutral = streams_.neutral.row(0);

    for (int oc = 0; oc < geom_.outC; ++oc) {
        const std::uint64_t *bias =
            streams_.biases.row(static_cast<std::size_t>(oc));
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                counts.clear();
                int m = 0;
                // Pair up window products for the 3:2 carry-save add;
                // an odd trailing product goes in alone.
                const std::uint64_t *px = nullptr;
                const std::uint64_t *pw = nullptr;
                forEachConvProduct(
                    geom_, in, streams_.weights, oc, y, x,
                    [&](const std::uint64_t *xr, const std::uint64_t *wr) {
                        if (px != nullptr) {
                            counts.addXnor2(px, pw, xr, wr, wpr);
                            px = nullptr;
                        } else {
                            px = xr;
                            pw = wr;
                        }
                        ++m;
                    });
                if (px != nullptr)
                    counts.addXnor(px, pw, wpr);
                // Bias enters the sum as one more product stream of fixed
                // value (its "input" is the constant 1 stream).
                counts.addWords(bias, wpr);
                ++m;

                // The sorter block needs an odd input count; pad with the
                // neutral (value 0) stream when even.
                int eff_m = m;
                if (m % 2 == 0) {
                    counts.addWords(neutral, wpr);
                    eff_m = m + 1;
                }

                const std::size_t out_row =
                    (static_cast<std::size_t>(oc) * geom_.outH + y) *
                        geom_.outW +
                    x;
                unit.reset(eff_m);
                counts.drive([&](int c) { return unit.step(c); },
                             out.row(out_row));
            }
        }
    }
}

} // namespace aqfpsc::core::stages
