#include "aqfp_conv_stage.h"

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {
const ConvStageRegistration kRegistration{
    "aqfp-sorter", [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<AqfpConvStage>(g, std::move(init.streams));
    }};
} // namespace

std::string
AqfpConvStage::name() const
{
    return "AqfpConv " + std::to_string(geom_.outC) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW) +
           " k" + std::to_string(geom_.kernel);
}

sc::StreamMatrix
AqfpConvStage::run(const sc::StreamMatrix &in, StageContext &) const
{
    const std::size_t len = streams_.weights.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    sc::StreamMatrix out(
        static_cast<std::size_t>(geom_.outC) * geom_.outH * geom_.outW,
        len);

    // Interior window + bias + possible neutral bounds the counts.
    const int max_m = geom_.inC * geom_.kernel * geom_.kernel + 2;
    sc::ColumnCounts counts(len, max_m);
    std::vector<std::uint64_t> prod(wpr);
    std::vector<int> col;

    for (int oc = 0; oc < geom_.outC; ++oc) {
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                counts.clear();
                int m = 0;
                forEachConvProduct(
                    geom_, in, streams_.weights, oc, y, x,
                    [&](const std::uint64_t *xr, const std::uint64_t *wr) {
                        xnorProduct(prod.data(), xr, wr, wpr);
                        counts.addWords(prod.data(), wpr);
                        ++m;
                    });
                // Bias enters the sum as one more product stream of fixed
                // value (its "input" is the constant 1 stream).
                counts.addWords(
                    streams_.biases.row(static_cast<std::size_t>(oc)), wpr);
                ++m;

                // The sorter block needs an odd input count; pad with the
                // neutral (value 0) stream when even.
                int eff_m = m;
                if (m % 2 == 0) {
                    counts.addWords(streams_.neutral.row(0), wpr);
                    eff_m = m + 1;
                }

                const std::size_t out_row =
                    (static_cast<std::size_t>(oc) * geom_.outH + y) *
                        geom_.outW +
                    x;
                std::uint64_t *dst = out.row(out_row);
                counts.extract(col);
                blocks::FeatureFeedbackUnit unit(eff_m);
                for (std::size_t i = 0; i < len; ++i) {
                    if (unit.step(col[i]))
                        setStreamBit(dst, i);
                }
            }
        }
    }
    return out;
}

} // namespace aqfpsc::core::stages
