#include "aqfp_conv_stage.h"

#include <cassert>

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const ConvStageRegistration kRegistration{
    "aqfp-sorter", [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<AqfpConvStage>(g, std::move(init.streams));
    }};

/** Column counter + feedback unit reused across all output pixels. */
struct ConvScratch final : StageScratch
{
    ConvScratch(std::size_t len, int max_m, std::size_t rows)
        : counts(len, max_m), unit(1), carries(rows, 0)
    {
    }

    sc::ColumnCounts counts;
    blocks::FeatureFeedbackUnit unit;
    /** Per-output-pixel feedback count, resumed across spans. */
    std::vector<int> carries;
};

} // namespace

std::string
AqfpConvStage::name() const
{
    return "AqfpConv " + std::to_string(geom_.outC) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW) +
           " k" + std::to_string(geom_.kernel);
}

StageFootprint
AqfpConvStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.outC) * geom_.outH *
            geom_.outW};
}

std::unique_ptr<StageScratch>
AqfpConvStage::makeScratch() const
{
    // Interior window + bias + possible neutral bounds the counts.
    const int max_m = geom_.inC * geom_.kernel * geom_.kernel + 2;
    return std::make_unique<ConvScratch>(streams_.weights.streamLen(),
                                         max_m, footprint().outputRows);
}

void
AqfpConvStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &ctx, StageScratch *scratch) const
{
    runSpan(in, out, ctx, scratch, 0, streams_.weights.streamLen());
}

void
AqfpConvStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &, StageScratch *scratch,
                       std::size_t begin, std::size_t end) const
{
    const std::size_t len = streams_.weights.streamLen();
    assert(begin % 64 == 0 && begin < end && end <= len);
    // Span streams are accumulated at plane offset 0 of the scratch
    // counter and driven through the incremental kernel entry point, so
    // a span costs exactly its share of the full-stream work.
    const std::size_t w0 = begin / 64;
    const std::size_t sw = (end - begin + 63) / 64;

    out.reset(footprint().outputRows, len);
    auto &ws = *static_cast<ConvScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    blocks::FeatureFeedbackUnit &unit = ws.unit;
    const std::uint64_t *neutral = streams_.neutral.row(0);

    for (int oc = 0; oc < geom_.outC; ++oc) {
        const std::uint64_t *bias =
            streams_.biases.row(static_cast<std::size_t>(oc));
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                counts.clear();
                int m = 0;
                // Pair up window products for the 3:2 carry-save add;
                // an odd trailing product goes in alone.
                const std::uint64_t *px = nullptr;
                const std::uint64_t *pw = nullptr;
                forEachConvProduct(
                    geom_, in, streams_.weights, oc, y, x,
                    [&](const std::uint64_t *xr, const std::uint64_t *wr) {
                        if (px != nullptr) {
                            counts.addXnor2(px + w0, pw + w0, xr + w0,
                                            wr + w0, sw);
                            px = nullptr;
                        } else {
                            px = xr;
                            pw = wr;
                        }
                        ++m;
                    });
                if (px != nullptr)
                    counts.addXnor(px + w0, pw + w0, sw);
                // Bias enters the sum as one more product stream of fixed
                // value (its "input" is the constant 1 stream).
                counts.addWords(bias + w0, sw);
                ++m;

                // The sorter block needs an odd input count; pad with the
                // neutral (value 0) stream when even.
                int eff_m = m;
                if (m % 2 == 0) {
                    counts.addWords(neutral + w0, sw);
                    eff_m = m + 1;
                }

                const std::size_t out_row =
                    (static_cast<std::size_t>(oc) * geom_.outH + y) *
                        geom_.outW +
                    x;
                if (begin == 0)
                    unit.reset(eff_m);
                else
                    unit.restore(eff_m, ws.carries[out_row]);
                counts.drivePrefix(end - begin,
                                   [&](int c) { return unit.step(c); },
                                   out.row(out_row) + w0);
                ws.carries[out_row] = unit.carry();
            }
        }
    }
}

} // namespace aqfpsc::core::stages
