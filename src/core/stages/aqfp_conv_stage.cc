#include "aqfp_conv_stage.h"

#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const ConvStageRegistration kRegistration{
    "aqfp-sorter", [](const ConvGeometry &g, WeightedStageInit init) {
        return std::make_unique<AqfpConvStage>(g, std::move(init.shared));
    }};

} // namespace

std::string
AqfpConvStage::name() const
{
    return "AqfpConv " + std::to_string(gather_.g.outC) + "x" +
           std::to_string(gather_.g.outH) + "x" +
           std::to_string(gather_.g.outW) + " k" +
           std::to_string(gather_.g.kernel);
}

} // namespace aqfpsc::core::stages
