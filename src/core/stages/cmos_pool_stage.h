/**
 * @file
 * 2x2 average pooling on the CMOS SC-DCNN baseline: a 4-to-1 MUX selects
 * a random pooled input every cycle.
 */

#ifndef AQFPSC_CORE_STAGES_CMOS_POOL_STAGE_H
#define AQFPSC_CORE_STAGES_CMOS_POOL_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Random-select MUX 2x2 average pooling. */
class CmosPoolStage final : public ScStage
{
  public:
    /** @param stream_len The stage's compiled stream length (the MUX
     *  output length; inputs may carry longer upstream streams). */
    CmosPoolStage(const PoolGeometry &geom, std::size_t stream_len)
        : geom_(geom), streamLen_(stream_len)
    {
    }

    std::string name() const override;

    StageFootprint footprint() const override;

    std::unique_ptr<StageScratch> makeScratch() const override;

    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

    bool resumable() const override { return true; }

    void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const override;

  private:
    PoolGeometry geom_;
    std::size_t streamLen_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_CMOS_POOL_STAGE_H
