/**
 * @file
 * Shared geometry/parameter structs and inner-loop helpers for the
 * concrete ScStage implementations.
 *
 * Every weighted stage (Conv/Dense x backend) owns a FeatureStreams
 * bundle: pre-generated weight and bias streams plus the neutral 0101...
 * pad stream.  The helpers here keep the product-gathering loops (XNOR
 * bipolar multiply, conv window walk, SC-DCNN OR-pair overcount model)
 * identical across backends so that the backend files only differ in the
 * accumulation/activation they implement.
 */

#ifndef AQFPSC_CORE_STAGES_STAGE_COMMON_H
#define AQFPSC_CORE_STAGES_STAGE_COMMON_H

#include <cstdint>
#include <vector>

#include "sc/apc.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core::stages {

/** Spatial geometry of a conv stage (same padding, stride 1). */
struct ConvGeometry
{
    int inC = 0, inH = 0, inW = 0;
    int outC = 0, outH = 0, outW = 0;
    int kernel = 0;
};

/** Geometry of a 2x2 stride-2 pooling stage. */
struct PoolGeometry
{
    int channels = 0;
    int inH = 0, inW = 0;
    int outH = 0, outW = 0;
};

/** Flat geometry of a dense/output stage. */
struct DenseGeometry
{
    int inFeatures = 0;
    int outFeatures = 0;
};

/** Pre-generated parameter streams of one weighted stage. */
struct FeatureStreams
{
    sc::StreamMatrix weights; ///< rows follow the float layer's layout
    sc::StreamMatrix biases;  ///< one row per output neuron/channel
    sc::StreamMatrix neutral; ///< single neutral row for odd padding
};

/** Bipolar SC multiply: XNOR the packed words of two streams. */
inline void
xnorProduct(std::uint64_t *prod, const std::uint64_t *x,
            const std::uint64_t *w, std::size_t wpr)
{
    for (std::size_t i = 0; i < wpr; ++i)
        prod[i] = ~(x[i] ^ w[i]);
}

/**
 * Walk one conv window's in-bounds products in the canonical order
 * (input channel, kernel row, kernel column), invoking
 * @p fn(input_row, weight_row) for each.  The order is part of the
 * deterministic contract: the CMOS approximate counter pairs products in
 * visit order, so both backends must share it.
 */
template <typename Fn>
inline void
forEachConvProduct(const ConvGeometry &g, const sc::StreamMatrix &in,
                   const sc::StreamMatrix &weights, int oc, int y, int x,
                   Fn &&fn)
{
    const int k = g.kernel;
    const int r = k / 2;
    for (int ic = 0; ic < g.inC; ++ic) {
        for (int ky = 0; ky < k; ++ky) {
            const int sy = y + ky - r;
            if (sy < 0 || sy >= g.inH)
                continue;
            for (int kx = 0; kx < k; ++kx) {
                const int sx = x + kx - r;
                if (sx < 0 || sx >= g.inW)
                    continue;
                fn(in.row((static_cast<std::size_t>(ic) * g.inH + sy) *
                              g.inW +
                          sx),
                   weights.row(
                       ((static_cast<std::size_t>(oc) * g.inC + ic) * k +
                        ky) *
                           k +
                       kx));
            }
        }
    }
}

/**
 * SC-DCNN first-layer OR-pair overcount model.
 *
 * The approximate parallel counter encodes product pairs as
 * (a AND b, a OR b), which overcounts by one exactly when both pair
 * members are 1.  Products are paired in arrival order; an unpaired
 * trailing product is exact.  observe()/observeXnor() every product,
 * then either addOvercount() folds the per-cycle overcounts into the
 * extracted column counts (reference path) or
 * ColumnCounts::driveWithOvercount reads counts() directly (fused
 * path); both saturate at @p cap (the counter cannot exceed its input
 * count).
 */
class ApproxPairOvercount
{
  public:
    ApproxPairOvercount(std::size_t len, int max_pairs)
        : over_(len, max_pairs), prev_((len + 63) / 64, 0)
    {
    }

    void
    reset()
    {
        over_.clear();
        havePrev_ = false;
    }

    /** Reference form: observe a materialized product buffer. */
    void
    observe(const std::vector<std::uint64_t> &prod, std::size_t wpr)
    {
        if (havePrev_) {
            for (std::size_t wi = 0; wi < wpr; ++wi)
                prev_[wi] &= prod[wi];
            over_.addWords(prev_.data(), wpr);
            havePrev_ = false;
        } else {
            for (std::size_t wi = 0; wi < wpr; ++wi)
                prev_[wi] = prod[wi];
            havePrev_ = true;
        }
    }

    /**
     * Fused form: observe the XNOR product of rows @p x and @p w with no
     * caller-side product buffer — bit-identical to observe() of
     * xnorProduct(x, w).
     */
    void
    observeXnor(const std::uint64_t *x, const std::uint64_t *w,
                std::size_t wpr)
    {
        if (havePrev_) {
            for (std::size_t wi = 0; wi < wpr; ++wi)
                prev_[wi] &= ~(x[wi] ^ w[wi]);
            over_.addWords(prev_.data(), wpr);
            havePrev_ = false;
        } else {
            for (std::size_t wi = 0; wi < wpr; ++wi)
                prev_[wi] = ~(x[wi] ^ w[wi]);
            havePrev_ = true;
        }
    }

    void
    addOvercount(std::vector<int> &col, int cap)
    {
        over_.extract(scratch_);
        for (std::size_t i = 0; i < col.size(); ++i) {
            col[i] += scratch_[i];
            if (col[i] > cap)
                col[i] = cap;
        }
    }

    /** The accumulated per-cycle overcounts (fused drive path). */
    const sc::ColumnCounts &counts() const { return over_; }

  private:
    sc::ColumnCounts over_;
    std::vector<std::uint64_t> prev_;
    std::vector<int> scratch_;
    bool havePrev_ = false;
};

/** Set bit @p i of a packed stream row. */
inline void
setStreamBit(std::uint64_t *dst, std::size_t i)
{
    dst[i / 64] |= 1ULL << (i % 64);
}

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_STAGE_COMMON_H
