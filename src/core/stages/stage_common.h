/**
 * @file
 * Shared geometry/parameter structs and the templated linear kernel
 * cores of the concrete ScStage implementations.
 *
 * Every weighted stage (Conv/Dense x backend) owns a FeatureStreams
 * bundle: pre-generated weight and bias streams plus the neutral 0101...
 * pad stream.  The four linear stage TUs (aqfp_conv, aqfp_dense,
 * cmos_conv, cmos_dense) are thin instantiations of one kernel core,
 * LinearScStage<Policy, Gather>:
 *
 *  - the Gather names each output row's (input row, weight row) product
 *    pairs — DenseGather walks the flat weight matrix, ConvWindowGather
 *    expresses conv as dense-with-window-gather in the canonical
 *    (ic, ky, kx) in-bounds order (part of the deterministic contract:
 *    the CMOS approximate counter pairs products in visit order);
 *  - the Policy supplies the accumulation/activation — sorter-majority
 *    feedback (AQFP) or APC + Btanh (CMOS) — together with its resumable
 *    per-row scratch state.
 *
 * The core has exactly one kernel path, the stage-major cohort span: a
 * single-image runSpan() is a cohort of one, and a cohort of C images
 * walks every weight row once while feeding all C images' carry-save
 * planes through the ColumnCounts multi-scratch entry points.  Results
 * are bit-identical at every cohort size by construction.
 */

#ifndef AQFPSC_CORE_STAGES_STAGE_COMMON_H
#define AQFPSC_CORE_STAGES_STAGE_COMMON_H

#include <array>
#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "baseline/sc_dcnn.h"
#include "blocks/feedback_unit.h"
#include "core/stages/stage.h"
#include "sc/apc.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core::stages {

/** Spatial geometry of a conv stage (same padding, stride 1). */
struct ConvGeometry
{
    int inC = 0, inH = 0, inW = 0;
    int outC = 0, outH = 0, outW = 0;
    int kernel = 0;
};

/** Geometry of a 2x2 stride-2 pooling stage. */
struct PoolGeometry
{
    int channels = 0;
    int inH = 0, inW = 0;
    int outH = 0, outW = 0;
};

/** Flat geometry of a dense/output stage. */
struct DenseGeometry
{
    int inFeatures = 0;
    int outFeatures = 0;
};

/** Pre-generated parameter streams of one weighted stage. */
struct FeatureStreams
{
    sc::StreamMatrix weights; ///< rows follow the float layer's layout
    sc::StreamMatrix biases;  ///< one row per output neuron/channel
    sc::StreamMatrix neutral; ///< single neutral row for odd padding
};

/** Total packed payload bytes of a FeatureStreams bundle. */
inline std::size_t
featureStreamBytes(const FeatureStreams &fs)
{
    auto bytes = [](const sc::StreamMatrix &m) {
        return m.rows() * m.wordsPerRow() * sizeof(std::uint64_t);
    };
    return bytes(fs.weights) + bytes(fs.biases) + bytes(fs.neutral);
}

/**
 * Immutable per-stage compile product, shared across engines.
 *
 * Everything a weighted stage derives once at compile time and only ever
 * reads afterwards lives here: the parameter bit-streams (weight
 * bit-plane layout, bias rows, neutral pad row).  The plan cache interns
 * StageShared objects by spec so identical layers across engines,
 * sessions, and serving tenants reference one copy; mutable run state
 * stays in StageScratch / StageWorkspace, which remain strictly
 * per-engine-invocation.
 *
 * rngStateAfter records the compiler RNG state immediately after the
 * streams were generated.  On a cache hit the compiler restores it so
 * the layers downstream of the hit see exactly the word sequence a cold
 * compile would have produced — the mechanism behind the cached ==
 * cold-compiled bit-identity guarantee.
 */
struct StageShared
{
    FeatureStreams streams;
    /** Compiler RNG state right after generating @ref streams. */
    std::array<std::uint64_t, 4> rngStateAfter{};
    /** Resident payload size (packed stream words), for cache stats. */
    std::size_t bytes = 0;
};

/** Bipolar SC multiply: XNOR the packed words of two streams. */
inline void
xnorProduct(std::uint64_t *prod, const std::uint64_t *x,
            const std::uint64_t *w, std::size_t wpr)
{
    for (std::size_t i = 0; i < wpr; ++i)
        prod[i] = ~(x[i] ^ w[i]);
}

/**
 * Row gather of a dense (fully-connected) linear stage: output row r
 * multiplies every input feature j against weight row r*inFeatures + j.
 */
struct DenseGather
{
    DenseGeometry g;

    std::size_t
    rows() const
    {
        return static_cast<std::size_t>(g.outFeatures);
    }

    /** Bias stream row of output row @p r. */
    std::size_t biasRow(std::size_t r) const { return r; }

    /** Largest product count any output row gathers. */
    int maxProducts() const { return g.inFeatures; }

    /** Invoke fn(input_row, weight_row) per product; returns the count. */
    template <typename Fn>
    int
    forEachProduct(std::size_t r, Fn &&fn) const
    {
        const std::size_t wbase =
            r * static_cast<std::size_t>(g.inFeatures);
        for (int j = 0; j < g.inFeatures; ++j)
            fn(static_cast<std::size_t>(j),
               wbase + static_cast<std::size_t>(j));
        return g.inFeatures;
    }
};

/**
 * Conv expressed as dense-with-window-gather: output row r decomposes to
 * (oc, y, x) and gathers that window's in-bounds products in the
 * canonical (input channel, kernel row, kernel column) order.  The order
 * is part of the deterministic contract: the CMOS approximate counter
 * pairs products in visit order, so both backends must share it.
 */
struct ConvWindowGather
{
    ConvGeometry g;

    std::size_t
    rows() const
    {
        return static_cast<std::size_t>(g.outC) * g.outH * g.outW;
    }

    /** Bias stream row (= output channel) of output row @p r. */
    std::size_t
    biasRow(std::size_t r) const
    {
        return r / (static_cast<std::size_t>(g.outH) * g.outW);
    }

    /** Interior window product count (border rows gather fewer). */
    int maxProducts() const { return g.inC * g.kernel * g.kernel; }

    template <typename Fn>
    int
    forEachProduct(std::size_t r, Fn &&fn) const
    {
        const std::size_t plane =
            static_cast<std::size_t>(g.outH) * g.outW;
        const int oc = static_cast<int>(r / plane);
        const int rem = static_cast<int>(r % plane);
        const int y = rem / g.outW;
        const int x = rem % g.outW;
        const int k = g.kernel;
        const int rr = k / 2;
        int m = 0;
        for (int ic = 0; ic < g.inC; ++ic) {
            for (int ky = 0; ky < k; ++ky) {
                const int sy = y + ky - rr;
                if (sy < 0 || sy >= g.inH)
                    continue;
                for (int kx = 0; kx < k; ++kx) {
                    const int sx = x + kx - rr;
                    if (sx < 0 || sx >= g.inW)
                        continue;
                    fn((static_cast<std::size_t>(ic) * g.inH + sy) *
                           g.inW +
                       sx,
                       ((static_cast<std::size_t>(oc) * g.inC + ic) * k +
                        ky) *
                           k +
                       kx);
                    ++m;
                }
            }
        }
        return m;
    }
};

/**
 * SC-DCNN first-layer OR-pair overcount model.
 *
 * The approximate parallel counter encodes product pairs as
 * (a AND b, a OR b), which overcounts by one exactly when both pair
 * members are 1.  Products are paired in arrival order; an unpaired
 * trailing product is exact.  observe()/observeXnor() every product,
 * then either addOvercount() folds the per-cycle overcounts into the
 * extracted column counts (reference path) or
 * ColumnCounts::driveWithOvercount reads counts() directly (fused
 * path); both saturate at @p cap (the counter cannot exceed its input
 * count).
 */
class ApproxPairOvercount
{
  public:
    ApproxPairOvercount(std::size_t len, int max_pairs)
        : over_(len, max_pairs), prev_((len + 63) / 64, 0)
    {
    }

    void
    reset()
    {
        over_.clear();
        havePrev_ = false;
    }

    /** Reference form: observe a materialized product buffer. */
    void
    observe(const std::vector<std::uint64_t> &prod, std::size_t wpr)
    {
        if (havePrev_) {
            for (std::size_t wi = 0; wi < wpr; ++wi)
                prev_[wi] &= prod[wi];
            over_.addWords(prev_.data(), wpr);
            havePrev_ = false;
        } else {
            for (std::size_t wi = 0; wi < wpr; ++wi)
                prev_[wi] = prod[wi];
            havePrev_ = true;
        }
    }

    /**
     * Fused form: observe the XNOR product of rows @p x and @p w with no
     * caller-side product buffer — bit-identical to observe() of
     * xnorProduct(x, w).
     */
    void
    observeXnor(const std::uint64_t *x, const std::uint64_t *w,
                std::size_t wpr)
    {
        if (havePrev_) {
            for (std::size_t wi = 0; wi < wpr; ++wi)
                prev_[wi] &= ~(x[wi] ^ w[wi]);
            over_.addWords(prev_.data(), wpr);
            havePrev_ = false;
        } else {
            for (std::size_t wi = 0; wi < wpr; ++wi)
                prev_[wi] = ~(x[wi] ^ w[wi]);
            havePrev_ = true;
        }
    }

    void
    addOvercount(std::vector<int> &col, int cap)
    {
        over_.extract(scratch_);
        for (std::size_t i = 0; i < col.size(); ++i) {
            col[i] += scratch_[i];
            if (col[i] > cap)
                col[i] = cap;
        }
    }

    /** The accumulated per-cycle overcounts (fused drive path). */
    const sc::ColumnCounts &counts() const { return over_; }

  private:
    sc::ColumnCounts over_;
    std::vector<std::uint64_t> prev_;
    std::vector<int> scratch_;
    bool havePrev_ = false;
};

/** Set bit @p i of a packed stream row. */
inline void
setStreamBit(std::uint64_t *dst, std::size_t i)
{
    dst[i / 64] |= 1ULL << (i % 64);
}

/** Mask selecting the valid bits of the last word of a @p len-cycle
 *  stream (all-ones when len is word-aligned). */
inline std::uint64_t
lastWordMask(std::size_t len)
{
    return len % 64 == 0 ? ~0ULL : (1ULL << (len % 64)) - 1;
}

/**
 * Per-class ones accumulators of a terminal (categorization) stage,
 * resumed across spans — the resumable state both output backends share
 * (the AQFP majority chain counts chain-output ones, the CMOS APC stage
 * counts product ones; only the count width differs).
 */
template <typename Count>
struct OnesScratch final : StageScratch
{
    explicit OnesScratch(std::size_t classes) : ones(classes, 0) {}

    /** begin-of-image re-arm (runSpan with begin == 0). */
    void rearm() { ones.assign(ones.size(), 0); }

    std::vector<Count> ones;
};

/**
 * Accumulation policy of the AQFP sorter-majority linear stages: exact
 * column counts drive the sorter + feedback unit (Algorithm 1, counter
 * form).  The sorter needs an odd input count, so even rows are padded
 * with the neutral stream; the feedback carry is the per-row resumable
 * state.
 */
class SorterMajorityPolicy
{
  public:
    /** Sorter stages never model the SC-DCNN approximate counter. */
    static constexpr bool kApproxCapable = false;
    /** Pad even product counts to odd with the neutral stream. */
    static constexpr bool kPadToOdd = true;

    struct Scratch final : StageScratch
    {
        Scratch(std::size_t len, int max_count, std::size_t rows)
            : counts(len, max_count), unit(1), carries(rows, 0)
        {
        }

        sc::ColumnCounts counts;
        blocks::FeatureFeedbackUnit unit;
        /** Per-output-row feedback count, resumed across spans. */
        std::vector<int> carries;
    };

    /** Interior window + bias + possible neutral pad bounds the counts. */
    static int maxCount(int max_products) { return max_products + 2; }

    void
    drive(Scratch &ws, std::size_t r, int /*m*/, int eff_m,
          std::size_t begin, std::size_t end, std::uint64_t *dst) const
    {
        if (begin == 0)
            ws.unit.reset(eff_m);
        else
            ws.unit.restore(eff_m, ws.carries[r]);
        ws.counts.drivePrefix(end - begin,
                              [&](int c) { return ws.unit.step(c); }, dst);
        ws.carries[r] = ws.unit.carry();
    }
};

/**
 * Accumulation policy of the CMOS SC-DCNN linear stages: (approximate)
 * APC column counts drive the Btanh activation counter, whose state is
 * the per-row resumable state.  With @ref approx the OR-pair overcount
 * model rides along (ApproxPairOvercount), folded into the drive.
 */
class ApcBtanhPolicy
{
  public:
    static constexpr bool kApproxCapable = true;
    static constexpr bool kPadToOdd = false;

    /** Model the SC-DCNN first-layer OR-pair approximate counter. */
    bool approx = false;

    struct Scratch final : StageScratch
    {
        Scratch(std::size_t len, int max_count, std::size_t rows)
            : counts(len, max_count), over(len, max_count / 2 + 1),
              prod((len + 63) / 64), states(rows, 0)
        {
        }

        sc::ColumnCounts counts;
        ApproxPairOvercount over;
        /** Product buffer of the approximate-APC path (shared between
         *  the counter and the overcount model: one XNOR per product). */
        std::vector<std::uint64_t> prod;
        /** Per-output-row Btanh counter state, resumed across spans. */
        std::vector<int> states;
    };

    static int maxCount(int max_products) { return max_products + 2; }

    void
    drive(Scratch &ws, std::size_t r, int m, int /*eff_m*/,
          std::size_t begin, std::size_t end, std::uint64_t *dst) const
    {
        // s_max / 2 with s_max = 2m; resumed across spans.
        int state = begin == 0 ? m : ws.states[r];
        auto step = [&](int c) {
            return baseline::ApcFeatureExtraction::btanhStep(state, c, m,
                                                             2 * m);
        };
        if (approx)
            ws.counts.driveWithOvercountPrefix(ws.over.counts(), m,
                                               end - begin, step, dst);
        else
            ws.counts.drivePrefix(end - begin, step, dst);
        ws.states[r] = state;
    }
};

/**
 * The shared linear stage: Gather names the products of each output
 * row, Policy accumulates and activates them.  There is exactly one
 * kernel path — the stage-major cohort span — so the per-image
 * entry points (runInto, runSpan) are cohorts of one and bit-identity
 * across cohort sizes holds by construction: per-image state (counters,
 * feedback/Btanh resume values, output rows) is fully per-slot, and the
 * multi-scratch ColumnCounts entry points perform the same per-image
 * plane updates as their single-image forms.
 *
 * Concrete stages only add name() and a registry entry.
 */
template <typename Policy, typename Gather>
class LinearScStage : public ScStage
{
  public:
    LinearScStage(Gather gather, std::shared_ptr<const StageShared> shared,
                  Policy policy)
        : gather_(std::move(gather)), shared_(std::move(shared)),
          policy_(std::move(policy))
    {
        assert(shared_ != nullptr);
    }

    StageFootprint footprint() const override { return {gather_.rows()}; }

    const StageShared *sharedState() const override
    {
        return shared_.get();
    }

    std::unique_ptr<StageScratch>
    makeScratch() const override
    {
        return std::make_unique<typename Policy::Scratch>(
            streams().weights.streamLen(),
            Policy::maxCount(gather_.maxProducts()), gather_.rows());
    }

    void
    runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
            StageContext &ctx, StageScratch *scratch) const override
    {
        runSpan(in, out, ctx, scratch, 0, streams().weights.streamLen());
    }

    bool resumable() const override { return true; }

    void
    runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
            StageContext &ctx, StageScratch *scratch, std::size_t begin,
            std::size_t end) const override
    {
        const CohortSlot slot{&in, &out, &ctx, scratch};
        runCohortSpan(&slot, 1, begin, end);
    }

    void
    runCohortSpan(const CohortSlot *slots, std::size_t count,
                  std::size_t begin, std::size_t end) const override
    {
        const std::size_t len = streams().weights.streamLen();
        // The multi entry points below route through the sc::simd
        // dispatch table (stack-allocated plane-span arrays sized by
        // the kernel-layer cap), so the cohort cap must fit.
        static_assert(kMaxCohortImages <=
                      sc::ColumnCounts::kMaxMultiImages);
        assert(count >= 1 && count <= kMaxCohortImages);
        assert(begin % 64 == 0 && begin < end && end <= len);
        // Spans accumulate at plane offset 0 of each scratch counter and
        // drive through the incremental kernel entry points, so a span
        // costs exactly its share of the full-stream work.
        const std::size_t w0 = begin / 64;
        const std::size_t sw = (end - begin + 63) / 64;
        const std::size_t rows = gather_.rows();

        typename Policy::Scratch *ws[kMaxCohortImages];
        sc::ColumnCounts *cc[kMaxCohortImages];
        const sc::StreamMatrix *in[kMaxCohortImages];
        for (std::size_t c = 0; c < count; ++c) {
            ws[c] = static_cast<typename Policy::Scratch *>(
                slots[c].scratch);
            cc[c] = &ws[c]->counts;
            in[c] = slots[c].in;
            // Prefix consumption: the input may carry a longer upstream
            // stream; this stage reads only its own len cycles of it.
            assert(in[c]->streamLen() >= len);
            slots[c].out->reset(rows, len);
        }
        const std::uint64_t *neutral = streams().neutral.row(0) + w0;

        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < count; ++c)
                cc[c]->clear();
            int m = 0;
            bool exact = true;
            if constexpr (Policy::kApproxCapable) {
                if (policy_.approx) {
                    exact = false;
                    // One XNOR per product per image, shared by the
                    // counter and the overcount model; products observed
                    // in visit order per image.
                    for (std::size_t c = 0; c < count; ++c)
                        ws[c]->over.reset();
                    m = gather_.forEachProduct(
                        r, [&](std::size_t xr, std::size_t wr) {
                            const std::uint64_t *w =
                                streams().weights.row(wr) + w0;
                            for (std::size_t c = 0; c < count; ++c) {
                                xnorProduct(ws[c]->prod.data(),
                                            in[c]->row(xr) + w0, w, sw);
                                cc[c]->addWords(ws[c]->prod.data(), sw);
                                ws[c]->over.observe(ws[c]->prod, sw);
                            }
                        });
                }
            }
            if (exact) {
                // Pair up products for the 3:2 carry-save add (an odd
                // trailing product goes in alone); every weight row is
                // walked once and feeds all images' planes.
                const std::uint64_t *pw = nullptr;
                const std::uint64_t *px[kMaxCohortImages];
                const std::uint64_t *x2[kMaxCohortImages];
                m = gather_.forEachProduct(
                    r, [&](std::size_t xr, std::size_t wr) {
                        const std::uint64_t *w =
                            streams().weights.row(wr) + w0;
                        if (pw != nullptr) {
                            for (std::size_t c = 0; c < count; ++c)
                                x2[c] = in[c]->row(xr) + w0;
                            sc::ColumnCounts::addXnor2Multi(
                                cc, px, x2, count, pw, w, sw);
                            pw = nullptr;
                        } else {
                            pw = w;
                            for (std::size_t c = 0; c < count; ++c)
                                px[c] = in[c]->row(xr) + w0;
                        }
                    });
                if (pw != nullptr)
                    sc::ColumnCounts::addXnorMulti(cc, px, count, pw, sw);
            }
            // Bias enters the sum as one more product stream of fixed
            // value (its "input" is the constant 1 stream).
            sc::ColumnCounts::addWordsMulti(
                cc, count, streams().biases.row(gather_.biasRow(r)) + w0,
                sw);
            ++m;
            int eff_m = m;
            if constexpr (Policy::kPadToOdd) {
                if (m % 2 == 0) {
                    sc::ColumnCounts::addWordsMulti(cc, count, neutral,
                                                    sw);
                    eff_m = m + 1;
                }
            }
            for (std::size_t c = 0; c < count; ++c)
                policy_.drive(*ws[c], r, m, eff_m, begin, end,
                              slots[c].out->row(r) + w0);
        }
    }

  protected:
    /** The interned read-only compile product (possibly shared). */
    const FeatureStreams &streams() const { return shared_->streams; }

    Gather gather_;
    std::shared_ptr<const StageShared> shared_;
    Policy policy_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_STAGE_COMMON_H
