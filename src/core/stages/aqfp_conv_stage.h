/**
 * @file
 * Conv stage on the AQFP sorter backend: every output pixel/channel is
 * one sorter-based feature-extraction block (Algorithm 1, counter form).
 */

#ifndef AQFPSC_CORE_STAGES_AQFP_CONV_STAGE_H
#define AQFPSC_CORE_STAGES_AQFP_CONV_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Feature extraction over conv windows via sorter + feedback blocks. */
class AqfpConvStage final : public ScStage
{
  public:
    AqfpConvStage(const ConvGeometry &geom, FeatureStreams streams)
        : geom_(geom), streams_(std::move(streams))
    {
    }

    std::string name() const override;

    StageFootprint footprint() const override;

    std::unique_ptr<StageScratch> makeScratch() const override;

    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

    bool resumable() const override { return true; }

    void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const override;

  private:
    ConvGeometry geom_;
    FeatureStreams streams_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_AQFP_CONV_STAGE_H
