/**
 * @file
 * Conv stage on the AQFP sorter backend: every output pixel/channel is
 * one sorter-based feature-extraction block (Algorithm 1, counter form).
 * Thin instantiation of the shared linear kernel core — conv is
 * dense-with-window-gather.
 */

#ifndef AQFPSC_CORE_STAGES_AQFP_CONV_STAGE_H
#define AQFPSC_CORE_STAGES_AQFP_CONV_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Feature extraction over conv windows via sorter + feedback blocks. */
class AqfpConvStage final
    : public LinearScStage<SorterMajorityPolicy, ConvWindowGather>
{
  public:
    AqfpConvStage(const ConvGeometry &geom,
                  std::shared_ptr<const StageShared> shared)
        : LinearScStage(ConvWindowGather{geom}, std::move(shared), {})
    {
    }

    std::string name() const override;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_AQFP_CONV_STAGE_H
