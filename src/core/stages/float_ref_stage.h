/**
 * @file
 * "float-ref" backend: a value-domain reference implementation of the
 * stage graph, registered entirely outside the stage compiler (the
 * demonstration that BackendRegistry is an open API).
 *
 * Every stage replicates the float network's arithmetic bit-exactly
 * (same accumulation order as nn/layers.cc), reading the input image
 * from StageContext::image and passing activations through the
 * StageContext::values side channel instead of stochastic streams.  The
 * backend's traits opt out of both parameter-stream generation and
 * input-stream encoding, so it compiles and runs orders of magnitude
 * faster than the stream backends — the intended use is accuracy
 * debugging: run the same InferenceSession on "aqfp-sorter" and
 * "float-ref" and diff the per-class scores to separate SC noise from
 * model error.
 */

#ifndef AQFPSC_CORE_STAGES_FLOAT_REF_STAGE_H
#define AQFPSC_CORE_STAGES_FLOAT_REF_STAGE_H

#include <vector>

#include "core/backend_registry.h"
#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Registry name of the value-domain reference backend. */
inline constexpr const char *kFloatRefBackend = "float-ref";

/** Conv2D (+ fused activation) in the value domain. */
class FloatRefConvStage final : public ScStage
{
  public:
    FloatRefConvStage(const ConvGeometry &geom, WeightedStageInit init);

    std::string name() const override;
    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

  private:
    ConvGeometry geom_;
    std::vector<float> w_, b_;
    FusedActivation activation_;
};

/** Hidden Dense (+ fused activation) in the value domain. */
class FloatRefDenseStage final : public ScStage
{
  public:
    FloatRefDenseStage(const DenseGeometry &geom, WeightedStageInit init);

    std::string name() const override;
    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

  private:
    DenseGeometry geom_;
    std::vector<float> w_, b_;
    FusedActivation activation_;
};

/** 2x2 average pooling in the value domain. */
class FloatRefPoolStage final : public ScStage
{
  public:
    explicit FloatRefPoolStage(const PoolGeometry &geom) : geom_(geom) {}

    std::string name() const override;
    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

  private:
    PoolGeometry geom_;
};

/** Terminal scoring stage: linear Dense or the majority-chain fold. */
class FloatRefOutputStage final : public ScStage
{
  public:
    FloatRefOutputStage(const DenseGeometry &geom, WeightedStageInit init);

    std::string name() const override;
    bool terminal() const override { return true; }
    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

  private:
    DenseGeometry geom_;
    std::vector<float> w_, b_;
    bool majorityChain_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_FLOAT_REF_STAGE_H
