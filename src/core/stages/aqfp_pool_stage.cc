#include "aqfp_pool_stage.h"

#include <cassert>

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const PoolStageRegistration kRegistration{
    "aqfp-sorter", [](const PoolGeometry &g, const ScEngineConfig &cfg) {
        return std::make_unique<AqfpPoolStage>(g, cfg.streamLen);
    }};

/** 2x2 window counter + pooling feedback unit reused across pixels. */
struct PoolScratch final : StageScratch
{
    PoolScratch(std::size_t len, std::size_t rows)
        : counts(len, 4), unit(4), carries(rows, 0)
    {
    }

    sc::ColumnCounts counts;
    blocks::PoolingFeedbackUnit unit;
    /** Per-output-pixel remainder count, resumed across spans. */
    std::vector<int> carries;
};

} // namespace

std::string
AqfpPoolStage::name() const
{
    return "AqfpPool " + std::to_string(geom_.channels) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW);
}

StageFootprint
AqfpPoolStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.channels) * geom_.outH *
            geom_.outW};
}

std::unique_ptr<StageScratch>
AqfpPoolStage::makeScratch() const
{
    return std::make_unique<PoolScratch>(streamLen_,
                                         footprint().outputRows);
}

void
AqfpPoolStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &ctx, StageScratch *scratch) const
{
    runSpan(in, out, ctx, scratch, 0, streamLen_);
}

void
AqfpPoolStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &, StageScratch *scratch,
                       std::size_t begin, std::size_t end) const
{
    // The stage runs at its own compiled length and consumes only the
    // prefix of a (possibly longer) upstream stream.
    const std::size_t len = streamLen_;
    assert(in.streamLen() >= len);
    assert(begin % 64 == 0 && begin < end && end <= len);
    const std::size_t w0 = begin / 64;
    const std::size_t sw = (end - begin + 63) / 64;

    out.reset(footprint().outputRows, len);
    auto &ws = *static_cast<PoolScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    blocks::PoolingFeedbackUnit &unit = ws.unit;

    for (int c = 0; c < geom_.channels; ++c) {
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                const std::size_t out_row =
                    (static_cast<std::size_t>(c) * geom_.outH + y) *
                        geom_.outW +
                    x;
                counts.clear();
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        counts.addWords(
                            in.row((static_cast<std::size_t>(c) * geom_.inH +
                                    (2 * y + dy)) *
                                       geom_.inW +
                                   (2 * x + dx)) +
                                w0,
                            sw);
                    }
                }
                if (begin == 0)
                    unit.reset();
                else
                    unit.restore(4, ws.carries[out_row]);
                counts.drivePrefix(end - begin,
                                   [&](int cnt) { return unit.step(cnt); },
                                   out.row(out_row) + w0);
                ws.carries[out_row] = unit.carry();
            }
        }
    }
}

} // namespace aqfpsc::core::stages
