#include "aqfp_pool_stage.h"

#include <cassert>

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const PoolStageRegistration kRegistration{
    "aqfp-sorter", [](const PoolGeometry &g, const ScEngineConfig &cfg) {
        return std::make_unique<AqfpPoolStage>(g, cfg.streamLen);
    }};

/** 2x2 window counter + pooling feedback unit reused across pixels. */
struct PoolScratch final : StageScratch
{
    explicit PoolScratch(std::size_t len) : counts(len, 4), unit(4) {}

    sc::ColumnCounts counts;
    blocks::PoolingFeedbackUnit unit;
};

} // namespace

std::string
AqfpPoolStage::name() const
{
    return "AqfpPool " + std::to_string(geom_.channels) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW);
}

StageFootprint
AqfpPoolStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.channels) * geom_.outH *
            geom_.outW};
}

std::unique_ptr<StageScratch>
AqfpPoolStage::makeScratch() const
{
    return std::make_unique<PoolScratch>(streamLen_);
}

void
AqfpPoolStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &, StageScratch *scratch) const
{
    const std::size_t len = in.streamLen();
    const std::size_t wpr = in.wordsPerRow();
    // The scratch counter was sized from the engine config; the input
    // must match it (the only stage where the two could diverge).
    assert(len == streamLen_);

    out.reset(footprint().outputRows, len);
    auto &ws = *static_cast<PoolScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    blocks::PoolingFeedbackUnit &unit = ws.unit;

    for (int c = 0; c < geom_.channels; ++c) {
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                const std::size_t out_row =
                    (static_cast<std::size_t>(c) * geom_.outH + y) *
                        geom_.outW +
                    x;
                counts.clear();
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        counts.addWords(
                            in.row((static_cast<std::size_t>(c) * geom_.inH +
                                    (2 * y + dy)) *
                                       geom_.inW +
                                   (2 * x + dx)),
                            wpr);
                    }
                }
                unit.reset();
                counts.drive([&](int cnt) { return unit.step(cnt); },
                             out.row(out_row));
            }
        }
    }
}

} // namespace aqfpsc::core::stages
