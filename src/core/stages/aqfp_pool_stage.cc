#include "aqfp_pool_stage.h"

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {
const PoolStageRegistration kRegistration{
    "aqfp-sorter", [](const PoolGeometry &g, const ScEngineConfig &) {
        return std::make_unique<AqfpPoolStage>(g);
    }};
} // namespace

std::string
AqfpPoolStage::name() const
{
    return "AqfpPool " + std::to_string(geom_.channels) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW);
}

sc::StreamMatrix
AqfpPoolStage::run(const sc::StreamMatrix &in, StageContext &) const
{
    const std::size_t len = in.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    sc::StreamMatrix out(
        static_cast<std::size_t>(geom_.channels) * geom_.outH * geom_.outW,
        len);
    sc::ColumnCounts counts(len, 4);
    std::vector<int> col;

    for (int c = 0; c < geom_.channels; ++c) {
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                const std::size_t out_row =
                    (static_cast<std::size_t>(c) * geom_.outH + y) *
                        geom_.outW +
                    x;
                counts.clear();
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        counts.addWords(
                            in.row((static_cast<std::size_t>(c) * geom_.inH +
                                    (2 * y + dy)) *
                                       geom_.inW +
                                   (2 * x + dx)),
                            wpr);
                    }
                }
                counts.extract(col);
                std::uint64_t *dst = out.row(out_row);
                blocks::PoolingFeedbackUnit unit(4);
                for (std::size_t i = 0; i < len; ++i) {
                    if (unit.step(col[i]))
                        setStreamBit(dst, i);
                }
            }
        }
    }
    return out;
}

} // namespace aqfpsc::core::stages
