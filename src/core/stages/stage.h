/**
 * @file
 * Polymorphic stage interface of the SC inference stage graph.
 *
 * A compiled network is a linear graph of ScStage nodes.  Every stage
 * consumes a StreamMatrix of packed stochastic streams (one row per
 * neuron/pixel of the previous stage) and produces the next one; the
 * terminal (categorization) stage instead writes per-class scores into
 * the StageContext.
 *
 * Stages are immutable after compilation: execution is const and keeps
 * all mutable per-image state either on the stack or in a caller-owned
 * StageScratch, so one stage graph can execute many images concurrently
 * from different threads (see core::BatchRunner).  All per-image
 * randomness derives from StageContext::imageSeed, which makes results a
 * pure function of (network, config, image, image index) regardless of
 * thread schedule.
 *
 * Execution entry points, all per-image state in caller-owned scratch:
 *
 *  - runInto(in, out, ctx, scratch): the allocation-free hot path.  The
 *    stage reshapes @p out (a reusable arena buffer that only ever
 *    grows) and fully overwrites it, drawing all scratch state from the
 *    StageScratch it built once via makeScratch().  Steady-state
 *    inference through core::StageWorkspace performs no heap allocation
 *    here.
 *  - runSpan(...): checkpointed execution of one 64-cycle-aligned block,
 *    resuming per-image state across blocks (adaptive early exit).
 *  - runCohortSpan(...): stage-major cohort execution — one stage
 *    dispatch processes the same span of several images, so weight
 *    streams are traversed once per cohort instead of once per image.
 *    The default loops runSpan() per image; the linear kernel cores
 *    override it with interleaved per-image block processing.
 */

#ifndef AQFPSC_CORE_STAGES_STAGE_H
#define AQFPSC_CORE_STAGES_STAGE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sc/stream_matrix.h"

namespace aqfpsc::nn {
class Tensor;
} // namespace aqfpsc::nn

namespace aqfpsc::core {

namespace stages {
struct StageShared;
} // namespace stages

/** Gap between the largest and second-largest score (0 if fewer than
 *  two) — the raw confidence quantity every ScStage::scoreMargin
 *  normalizes into [0, 1]. */
double scoreTopTwoGap(const std::vector<double> &scores);

/** Per-image state threaded through one stage-graph execution. */
struct StageContext
{
    /** Deterministic per-image seed (sc::deriveStreamSeed of engine seed). */
    std::uint64_t imageSeed = 0;

    /** Per-class scores; written by the terminal stage. */
    std::vector<double> scores;

    /** The raw input image; always set by the engine.  Value-domain
     *  backends ("float-ref") read it instead of the input streams. */
    const nn::Tensor *image = nullptr;

    /** Value-domain side channel: float stages pass activations here and
     *  return empty stream matrices.  Empty means "not started". */
    std::vector<float> values;

    /**
     * Checkpointed (runSpan) execution only: when true, stages whose
     * randomness consumption depends on stream position (CmosPool's MUX
     * selects) replay the exact draw sequence of the uninterrupted path,
     * so block-wise execution is bit-identical to runInto().  When
     * false, they may draw from cheaper per-block substreams instead
     * (statistically equivalent, not bit-identical).
     */
    bool deterministicSpans = true;
};

/**
 * Opaque per-thread mutable state of one stage (column counters,
 * feedback units, ...), built once by ScStage::makeScratch() and reused
 * across images so the inference inner loop never allocates.  A scratch
 * object may only be passed back to the stage that created it, and to
 * one stage execution at a time.
 */
class StageScratch
{
  public:
    virtual ~StageScratch() = default;
};

/**
 * Compile-time resource declaration of one stage, used by
 * core::StageWorkspace to pre-size its arena buffers before the first
 * image runs.
 */
struct StageFootprint
{
    /** Rows runInto() writes into @p out (0 = terminal / value-domain). */
    std::size_t outputRows = 0;
};

/**
 * Upper bound on the images one cohort may execute together
 * (ScEngineConfig::cohort, CohortWorkspace capacity).  Keeps the
 * per-cohort pointer tables of the interleaved kernel cores stack-sized;
 * larger batches are simply executed as several cohorts.
 */
inline constexpr std::size_t kMaxCohortImages = 64;

/**
 * One image's execution slot within a cohort: the per-image buffers and
 * state a stage needs to process that image's span.  @c in / @c out
 * follow the same contract as runInto()/runSpan(); @c scratch must come
 * from this stage's makeScratch() and belong to this slot alone.
 */
struct CohortSlot
{
    const sc::StreamMatrix *in = nullptr;
    sc::StreamMatrix *out = nullptr;
    StageContext *ctx = nullptr;
    StageScratch *scratch = nullptr;
};

/** One node of the compiled SC pipeline. */
class ScStage
{
  public:
    virtual ~ScStage() = default;

    /** Stage name for reports/debugging, e.g. "AqfpConv 8x28x28". */
    virtual std::string name() const = 0;

    /** True for the terminal stage (writes scores, returns no streams). */
    virtual bool terminal() const { return false; }

    /** Declared output/scratch footprint (defaults to "no streams"). */
    virtual StageFootprint footprint() const { return {}; }

    /**
     * The interned immutable compile product this stage references, or
     * nullptr for stages without one (pooling, value-domain reference).
     * Identical specs compiled through the core::PlanCache return stages
     * whose sharedState() pointers compare equal — the observable handle
     * of cross-engine weight-state sharing, used by cache statistics and
     * the differential tests.
     */
    virtual const stages::StageShared *sharedState() const
    {
        return nullptr;
    }

    /**
     * Build this stage's reusable scratch state (may be null for stages
     * that need none).  Called once per worker thread at workspace
     * construction, never on the per-image path.
     */
    virtual std::unique_ptr<StageScratch> makeScratch() const
    {
        return nullptr;
    }

    /**
     * Execute the stage on one image's streams, writing the output
     * streams into @p out (reshaped and fully overwritten by the stage;
     * its buffer is reused across images and only ever grows).
     * @p scratch must come from this stage's makeScratch().
     *
     * Thread-safe across distinct (out, scratch) pairs.  Terminal stages
     * fill @p ctx .scores and leave @p out untouched.
     */
    virtual void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                         StageContext &ctx, StageScratch *scratch) const = 0;

    /**
     * True when this stage implements runSpan(), i.e. can execute a
     * stream in 64-cycle-aligned blocks with per-image state resumed
     * across blocks.  Adaptive (early-exit) inference requires every
     * stage of the graph to be resumable.
     */
    virtual bool resumable() const { return false; }

    /**
     * Checkpointable execution: process input cycles [@p begin, @p end)
     * and write the same cycle range of the output streams (only the
     * covered words of @p out are touched; @p begin must be 64-aligned).
     *
     * Per-image sequential state (feedback-vector counts, activation
     * counters, score accumulators, per-pixel RNG positions) lives in
     * @p scratch: a call with begin == 0 re-arms it for a new image and
     * reshapes @p out; later calls resume it, so that covering [0, N)
     * with any sequence of adjacent spans is bit-identical to one
     * runInto() pass (see StageContext::deterministicSpans for the one
     * permitted deviation).  Within one image, spans must be executed in
     * order and without gaps.  Terminal stages update ctx.scores to the
     * scores over cycles [0, @p end) — at end == N these equal the
     * runInto() scores exactly.
     *
     * Thread-safe across distinct (out, scratch) pairs, like runInto().
     * Default: forwards full spans ([0, input length)) to runInto() and
     * throws std::logic_error for partial ones — a stage that returns
     * resumable() == true must override it.
     */
    virtual void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                         StageContext &ctx, StageScratch *scratch,
                         std::size_t begin, std::size_t end) const;

    /**
     * Stage-major cohort execution: process cycles [@p begin, @p end) of
     * @p count images in one stage dispatch.  Each slot follows the
     * runSpan() contract independently (per-slot resume state, spans in
     * order and without gaps), and the result per image is bit-identical
     * to runSpan(*slot.in, *slot.out, *slot.ctx, slot.scratch, begin,
     * end) — cohort size never changes results, only how often shared
     * weight streams are traversed.  The full span [0, stream length)
     * also works on non-resumable stages (it degenerates to runInto()).
     *
     * Default: loops runSpan() over the slots.  The linear kernel cores
     * override it to interleave images per weight row.
     */
    virtual void runCohortSpan(const CohortSlot *slots, std::size_t count,
                               std::size_t begin, std::size_t end) const;

    /**
     * Terminal stages: normalized confidence margin of the scores
     * currently in @p ctx, computed over the first @p cycles cycles of
     * stream.  Returns (top-1 − top-2) mapped to [0, 1] in the backend's
     * own score scale, comparable across checkpoints of one execution;
     * 0 when fewer than two classes.  The default implementation assumes
     * scores in [−1, 1] (bipolar stream values, the AQFP convention) and
     * returns half the top-2 gap; backends with other score scales
     * override it.
     */
    virtual double scoreMargin(const StageContext &ctx,
                               std::size_t cycles) const;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_STAGES_STAGE_H
