/**
 * @file
 * Polymorphic stage interface of the SC inference stage graph.
 *
 * A compiled network is a linear graph of ScStage nodes.  Every stage
 * consumes a StreamMatrix of packed stochastic streams (one row per
 * neuron/pixel of the previous stage) and produces the next one; the
 * terminal (categorization) stage instead writes per-class scores into
 * the StageContext.
 *
 * Stages are immutable after compilation: run() is const and keeps all
 * scratch state on its own stack, so one stage graph can execute many
 * images concurrently from different threads (see core::BatchRunner).
 * All per-image randomness derives from StageContext::imageSeed, which
 * makes results a pure function of (network, config, image, image index)
 * regardless of thread schedule.
 */

#ifndef AQFPSC_CORE_STAGES_STAGE_H
#define AQFPSC_CORE_STAGES_STAGE_H

#include <cstdint>
#include <string>
#include <vector>

#include "sc/stream_matrix.h"

namespace aqfpsc::nn {
class Tensor;
} // namespace aqfpsc::nn

namespace aqfpsc::core {

/** Per-image state threaded through one stage-graph execution. */
struct StageContext
{
    /** Deterministic per-image seed (sc::deriveStreamSeed of engine seed). */
    std::uint64_t imageSeed = 0;

    /** Per-class scores; written by the terminal stage. */
    std::vector<double> scores;

    /** The raw input image; always set by the engine.  Value-domain
     *  backends ("float-ref") read it instead of the input streams. */
    const nn::Tensor *image = nullptr;

    /** Value-domain side channel: float stages pass activations here and
     *  return empty stream matrices.  Empty means "not started". */
    std::vector<float> values;
};

/** One node of the compiled SC pipeline. */
class ScStage
{
  public:
    virtual ~ScStage() = default;

    /** Stage name for reports/debugging, e.g. "AqfpConv 8x28x28". */
    virtual std::string name() const = 0;

    /** True for the terminal stage (writes scores, returns no streams). */
    virtual bool terminal() const { return false; }

    /**
     * Execute the stage on one image's streams.
     *
     * Thread-safe: const, all scratch local.  Terminal stages fill
     * @p ctx .scores and return an empty matrix.
     */
    virtual sc::StreamMatrix run(const sc::StreamMatrix &in,
                                 StageContext &ctx) const = 0;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_STAGES_STAGE_H
