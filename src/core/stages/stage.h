/**
 * @file
 * Polymorphic stage interface of the SC inference stage graph.
 *
 * A compiled network is a linear graph of ScStage nodes.  Every stage
 * consumes a StreamMatrix of packed stochastic streams (one row per
 * neuron/pixel of the previous stage) and produces the next one; the
 * terminal (categorization) stage instead writes per-class scores into
 * the StageContext.
 *
 * Stages are immutable after compilation: execution is const and keeps
 * all mutable per-image state either on the stack or in a caller-owned
 * StageScratch, so one stage graph can execute many images concurrently
 * from different threads (see core::BatchRunner).  All per-image
 * randomness derives from StageContext::imageSeed, which makes results a
 * pure function of (network, config, image, image index) regardless of
 * thread schedule.
 *
 * Execution has two entry points:
 *
 *  - runInto(in, out, ctx, scratch): the allocation-free hot path.  The
 *    stage reshapes @p out (a reusable arena buffer that only ever
 *    grows) and fully overwrites it, drawing all scratch state from the
 *    StageScratch it built once via makeScratch().  Steady-state
 *    inference through core::StageWorkspace performs no heap allocation
 *    here.
 *  - run(in, ctx): convenience wrapper that allocates a fresh output and
 *    scratch per call; kept for tests and out-of-tree stages.
 *
 * A concrete stage must override at least one of run()/runInto(); each
 * default implementation forwards to the other.
 */

#ifndef AQFPSC_CORE_STAGES_STAGE_H
#define AQFPSC_CORE_STAGES_STAGE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sc/stream_matrix.h"

namespace aqfpsc::nn {
class Tensor;
} // namespace aqfpsc::nn

namespace aqfpsc::core {

/** Gap between the largest and second-largest score (0 if fewer than
 *  two) — the raw confidence quantity every ScStage::scoreMargin
 *  normalizes into [0, 1]. */
double scoreTopTwoGap(const std::vector<double> &scores);

/** Per-image state threaded through one stage-graph execution. */
struct StageContext
{
    /** Deterministic per-image seed (sc::deriveStreamSeed of engine seed). */
    std::uint64_t imageSeed = 0;

    /** Per-class scores; written by the terminal stage. */
    std::vector<double> scores;

    /** The raw input image; always set by the engine.  Value-domain
     *  backends ("float-ref") read it instead of the input streams. */
    const nn::Tensor *image = nullptr;

    /** Value-domain side channel: float stages pass activations here and
     *  return empty stream matrices.  Empty means "not started". */
    std::vector<float> values;

    /**
     * Checkpointed (runSpan) execution only: when true, stages whose
     * randomness consumption depends on stream position (CmosPool's MUX
     * selects) replay the exact draw sequence of the uninterrupted path,
     * so block-wise execution is bit-identical to runInto().  When
     * false, they may draw from cheaper per-block substreams instead
     * (statistically equivalent, not bit-identical).
     */
    bool deterministicSpans = true;
};

/**
 * Opaque per-thread mutable state of one stage (column counters,
 * feedback units, ...), built once by ScStage::makeScratch() and reused
 * across images so the inference inner loop never allocates.  A scratch
 * object may only be passed back to the stage that created it, and to
 * one stage execution at a time.
 */
class StageScratch
{
  public:
    virtual ~StageScratch() = default;
};

/**
 * Compile-time resource declaration of one stage, used by
 * core::StageWorkspace to pre-size its arena buffers before the first
 * image runs.
 */
struct StageFootprint
{
    /** Rows runInto() writes into @p out (0 = terminal / value-domain). */
    std::size_t outputRows = 0;
};

/** One node of the compiled SC pipeline. */
class ScStage
{
  public:
    virtual ~ScStage() = default;

    /** Stage name for reports/debugging, e.g. "AqfpConv 8x28x28". */
    virtual std::string name() const = 0;

    /** True for the terminal stage (writes scores, returns no streams). */
    virtual bool terminal() const { return false; }

    /** Declared output/scratch footprint (defaults to "no streams"). */
    virtual StageFootprint footprint() const { return {}; }

    /**
     * Build this stage's reusable scratch state (may be null for stages
     * that need none).  Called once per worker thread at workspace
     * construction, never on the per-image path.
     */
    virtual std::unique_ptr<StageScratch> makeScratch() const
    {
        return nullptr;
    }

    /**
     * Execute the stage on one image's streams, writing the output
     * streams into @p out (reshaped and fully overwritten by the stage;
     * its buffer is reused across images and only ever grows).
     * @p scratch must come from this stage's makeScratch().
     *
     * Thread-safe across distinct (out, scratch) pairs.  Terminal stages
     * fill @p ctx .scores and leave @p out untouched.
     *
     * Default: forwards to run() (compatibility for stages that predate
     * the workspace API — they pay one allocation per image).
     */
    virtual void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                         StageContext &ctx, StageScratch *scratch) const;

    /**
     * Execute the stage on one image's streams into a freshly allocated
     * matrix.  Default: allocates a scratch + output and forwards to
     * runInto().  Terminal stages fill @p ctx .scores and return an
     * empty matrix.
     */
    virtual sc::StreamMatrix run(const sc::StreamMatrix &in,
                                 StageContext &ctx) const;

    /**
     * True when this stage implements runSpan(), i.e. can execute a
     * stream in 64-cycle-aligned blocks with per-image state resumed
     * across blocks.  Adaptive (early-exit) inference requires every
     * stage of the graph to be resumable.
     */
    virtual bool resumable() const { return false; }

    /**
     * Checkpointable execution: process input cycles [@p begin, @p end)
     * and write the same cycle range of the output streams (only the
     * covered words of @p out are touched; @p begin must be 64-aligned).
     *
     * Per-image sequential state (feedback-vector counts, activation
     * counters, score accumulators, per-pixel RNG positions) lives in
     * @p scratch: a call with begin == 0 re-arms it for a new image and
     * reshapes @p out; later calls resume it, so that covering [0, N)
     * with any sequence of adjacent spans is bit-identical to one
     * runInto() pass (see StageContext::deterministicSpans for the one
     * permitted deviation).  Within one image, spans must be executed in
     * order and without gaps.  Terminal stages update ctx.scores to the
     * scores over cycles [0, @p end) — at end == N these equal the
     * runInto() scores exactly.
     *
     * Thread-safe across distinct (out, scratch) pairs, like runInto().
     * Default: forwards full spans ([0, input length)) to runInto() and
     * throws std::logic_error for partial ones — a stage that returns
     * resumable() == true must override it.
     */
    virtual void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                         StageContext &ctx, StageScratch *scratch,
                         std::size_t begin, std::size_t end) const;

    /**
     * Terminal stages: normalized confidence margin of the scores
     * currently in @p ctx, computed over the first @p cycles cycles of
     * stream.  Returns (top-1 − top-2) mapped to [0, 1] in the backend's
     * own score scale, comparable across checkpoints of one execution;
     * 0 when fewer than two classes.  The default implementation assumes
     * scores in [−1, 1] (bipolar stream values, the AQFP convention) and
     * returns half the top-2 gap; backends with other score scales
     * override it.
     */
    virtual double scoreMargin(const StageContext &ctx,
                               std::size_t cycles) const;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_STAGES_STAGE_H
