#include "cmos_pool_stage.h"

#include "core/backend_registry.h"
#include "sc/rng.h"

namespace aqfpsc::core::stages {

namespace {
const PoolStageRegistration kRegistration{
    "cmos-apc", [](const PoolGeometry &g, const ScEngineConfig &) {
        return std::make_unique<CmosPoolStage>(g);
    }};
} // namespace

std::string
CmosPoolStage::name() const
{
    return "CmosPool " + std::to_string(geom_.channels) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW);
}

StageFootprint
CmosPoolStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.channels) * geom_.outH *
            geom_.outW};
}

void
CmosPoolStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &ctx, StageScratch *) const
{
    const std::size_t len = in.streamLen();

    out.reset(footprint().outputRows, len);
    // The MUX select lines are per-image randomness: derive them from the
    // image seed so batched execution stays schedule-independent.
    sc::Xoshiro256StarStar mux_rng(ctx.imageSeed ^ 0x9E3779B9ULL);

    for (int c = 0; c < geom_.channels; ++c) {
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                const std::size_t out_row =
                    (static_cast<std::size_t>(c) * geom_.outH + y) *
                        geom_.outW +
                    x;
                const std::uint64_t *rows[4];
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        rows[2 * dy + dx] =
                            in.row((static_cast<std::size_t>(c) * geom_.inH +
                                    (2 * y + dy)) *
                                       geom_.inW +
                                   (2 * x + dx));
                    }
                }
                // Accumulate each 64-cycle block in a register and store
                // whole words: the output buffer is reused across images,
                // so every word (tail bits included) is fully rewritten.
                std::uint64_t *dst = out.row(out_row);
                std::uint64_t word = 0;
                for (std::size_t i = 0; i < len; ++i) {
                    const std::uint64_t sel = mux_rng.nextBits(2);
                    word |= ((rows[sel][i / 64] >> (i % 64)) & 1ULL)
                            << (i % 64);
                    if (i % 64 == 63) {
                        dst[i / 64] = word;
                        word = 0;
                    }
                }
                if (len % 64 != 0)
                    dst[len / 64] = word;
            }
        }
    }
}

} // namespace aqfpsc::core::stages
