#include "cmos_pool_stage.h"

#include <cassert>

#include "core/backend_registry.h"
#include "sc/rng.h"

namespace aqfpsc::core::stages {

namespace {
const PoolStageRegistration kRegistration{
    "cmos-apc", [](const PoolGeometry &g, const ScEngineConfig &cfg) {
        return std::make_unique<CmosPoolStage>(g, cfg.streamLen);
    }};

/**
 * Per-pixel MUX-select RNG positions, resumed across spans.
 *
 * The uninterrupted path consumes ONE per-image RNG pixel-major (pixel p
 * draws selects [p*N, (p+1)*N)), so checkpointed execution snapshots the
 * generator at every pixel's start offset on the first span and resumes
 * each snapshot as later spans arrive — the select draws are
 * bit-identical to runInto() at any checkpoint granularity.  In
 * non-deterministic mode each pixel instead gets an independent
 * substream (no skip-ahead cost, draws differ from the one-pass path).
 */
struct CmosPoolScratch final : StageScratch
{
    explicit CmosPoolScratch(std::size_t rows) : rngs(rows) {}

    std::vector<sc::Xoshiro256StarStar> rngs;
};

} // namespace

std::string
CmosPoolStage::name() const
{
    return "CmosPool " + std::to_string(geom_.channels) + "x" +
           std::to_string(geom_.outH) + "x" + std::to_string(geom_.outW);
}

StageFootprint
CmosPoolStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.channels) * geom_.outH *
            geom_.outW};
}

std::unique_ptr<StageScratch>
CmosPoolStage::makeScratch() const
{
    return std::make_unique<CmosPoolScratch>(footprint().outputRows);
}

void
CmosPoolStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &ctx, StageScratch *scratch) const
{
    runSpan(in, out, ctx, scratch, 0, streamLen_);
}

void
CmosPoolStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                       StageContext &ctx, StageScratch *scratch,
                       std::size_t begin, std::size_t end) const
{
    // The stage runs at its own compiled length; a longer upstream
    // stream only contributes its prefix to the MUX selects.
    const std::size_t len = streamLen_;
    assert(in.streamLen() >= len);
    assert(begin % 64 == 0 && begin < end && end <= len);

    out.reset(footprint().outputRows, len);
    auto &ws = *static_cast<CmosPoolScratch *>(scratch);
    const bool firstSpan = begin == 0;
    const bool fullSpan = firstSpan && end == len;
    // The MUX select lines are per-image randomness: derive them from the
    // image seed so batched execution stays schedule-independent.
    sc::Xoshiro256StarStar master(ctx.imageSeed ^ 0x9E3779B9ULL);

    for (int c = 0; c < geom_.channels; ++c) {
        for (int y = 0; y < geom_.outH; ++y) {
            for (int x = 0; x < geom_.outW; ++x) {
                const std::size_t out_row =
                    (static_cast<std::size_t>(c) * geom_.outH + y) *
                        geom_.outW +
                    x;
                const std::uint64_t *rows[4];
                for (int dy = 0; dy < 2; ++dy) {
                    for (int dx = 0; dx < 2; ++dx) {
                        rows[2 * dy + dx] =
                            in.row((static_cast<std::size_t>(c) * geom_.inH +
                                    (2 * y + dy)) *
                                       geom_.inW +
                                   (2 * x + dx));
                    }
                }
                // Position this pixel's select generator.  Full span
                // (the runInto() path): draw from the master directly —
                // identical cost and draws to the one-pass loop.
                sc::Xoshiro256StarStar *rng = &master;
                if (!fullSpan) {
                    if (firstSpan && !ctx.deterministicSpans)
                        ws.rngs[out_row] = sc::Xoshiro256StarStar(
                            sc::deriveStreamSeed(
                                ctx.imageSeed ^ 0x9E3779B9ULL,
                                out_row + 1));
                    else if (firstSpan)
                        ws.rngs[out_row] = master; // offset p*N
                    rng = &ws.rngs[out_row];
                }
                // Accumulate each 64-cycle block in a register and store
                // whole words: the output buffer is reused across images,
                // so every covered word (tail bits included) is fully
                // rewritten.
                std::uint64_t *dst = out.row(out_row);
                std::uint64_t word = 0;
                for (std::size_t i = begin; i < end; ++i) {
                    const std::uint64_t sel = rng->nextBits(2);
                    word |= ((rows[sel][i / 64] >> (i % 64)) & 1ULL)
                            << (i % 64);
                    if (i % 64 == 63) {
                        dst[i / 64] = word;
                        word = 0;
                    }
                }
                if (end % 64 != 0)
                    dst[end / 64] = word;
                // Deterministic partial first span: skip the master past
                // the draws this pixel would have consumed to the end of
                // the stream, so the next pixel's snapshot lands at its
                // one-pass offset.
                if (firstSpan && !fullSpan && ctx.deterministicSpans) {
                    master = ws.rngs[out_row];
                    for (std::size_t i = end; i < len; ++i)
                        master.nextWord();
                }
            }
        }
    }
}

} // namespace aqfpsc::core::stages
