/**
 * @file
 * Terminal categorization stage on the AQFP backend: one majority-chain
 * block per class folds Maj3 gates over the product streams (Sec. 4.4)
 * and the chain output's bipolar value is the class score.
 */

#ifndef AQFPSC_CORE_STAGES_AQFP_OUTPUT_STAGE_H
#define AQFPSC_CORE_STAGES_AQFP_OUTPUT_STAGE_H

#include <cassert>

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Majority-chain categorization block. */
class AqfpOutputStage final : public ScStage
{
  public:
    AqfpOutputStage(const DenseGeometry &geom,
                    std::shared_ptr<const StageShared> shared)
        : geom_(geom), shared_(std::move(shared))
    {
        assert(shared_ != nullptr);
    }

    const StageShared *sharedState() const override
    {
        return shared_.get();
    }

    std::string name() const override;

    bool terminal() const override { return true; }

    std::unique_ptr<StageScratch> makeScratch() const override;

    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

    bool resumable() const override { return true; }

    void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const override;

  private:
    /** The interned read-only compile product (possibly shared). */
    const FeatureStreams &streams() const { return shared_->streams; }

    DenseGeometry geom_;
    std::shared_ptr<const StageShared> shared_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_AQFP_OUTPUT_STAGE_H
