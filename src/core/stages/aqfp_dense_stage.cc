#include "aqfp_dense_stage.h"

#include <cassert>

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {
const DenseStageRegistration kRegistration{
    "aqfp-sorter", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<AqfpDenseStage>(g, std::move(init.streams));
    }};
} // namespace

std::string
AqfpDenseStage::name() const
{
    return "AqfpDense " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

sc::StreamMatrix
AqfpDenseStage::run(const sc::StreamMatrix &in, StageContext &) const
{
    assert(static_cast<int>(in.rows()) == geom_.inFeatures);
    const std::size_t len = streams_.weights.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    sc::StreamMatrix out(static_cast<std::size_t>(geom_.outFeatures), len);
    const int m_total = geom_.inFeatures + 1; // + bias
    sc::ColumnCounts counts(len, m_total + 1);
    std::vector<std::uint64_t> prod(wpr);
    std::vector<int> col;

    for (int o = 0; o < geom_.outFeatures; ++o) {
        counts.clear();
        for (int j = 0; j < geom_.inFeatures; ++j) {
            xnorProduct(prod.data(), in.row(static_cast<std::size_t>(j)),
                        streams_.weights.row(static_cast<std::size_t>(o) *
                                                 geom_.inFeatures +
                                             j),
                        wpr);
            counts.addWords(prod.data(), wpr);
        }
        counts.addWords(streams_.biases.row(static_cast<std::size_t>(o)),
                        wpr);

        int eff_m = m_total;
        if (eff_m % 2 == 0) {
            counts.addWords(streams_.neutral.row(0), wpr);
            ++eff_m;
        }

        std::uint64_t *dst = out.row(static_cast<std::size_t>(o));
        counts.extract(col);
        blocks::FeatureFeedbackUnit unit(eff_m);
        for (std::size_t i = 0; i < len; ++i) {
            if (unit.step(col[i]))
                setStreamBit(dst, i);
        }
    }
    return out;
}

} // namespace aqfpsc::core::stages
