#include "aqfp_dense_stage.h"

#include <cassert>

#include "blocks/feedback_unit.h"
#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const DenseStageRegistration kRegistration{
    "aqfp-sorter", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<AqfpDenseStage>(g, std::move(init.streams));
    }};

/** Column counter + feedback unit reused across all output neurons. */
struct DenseScratch final : StageScratch
{
    DenseScratch(std::size_t len, int max_m, std::size_t rows)
        : counts(len, max_m), unit(1), carries(rows, 0)
    {
    }

    sc::ColumnCounts counts;
    blocks::FeatureFeedbackUnit unit;
    /** Per-output-neuron feedback count, resumed across spans. */
    std::vector<int> carries;
};

} // namespace

std::string
AqfpDenseStage::name() const
{
    return "AqfpDense " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

StageFootprint
AqfpDenseStage::footprint() const
{
    return {static_cast<std::size_t>(geom_.outFeatures)};
}

std::unique_ptr<StageScratch>
AqfpDenseStage::makeScratch() const
{
    return std::make_unique<DenseScratch>(streams_.weights.streamLen(),
                                          geom_.inFeatures + 2,
                                          footprint().outputRows);
}

void
AqfpDenseStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                        StageContext &ctx, StageScratch *scratch) const
{
    runSpan(in, out, ctx, scratch, 0, streams_.weights.streamLen());
}

void
AqfpDenseStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                        StageContext &, StageScratch *scratch,
                        std::size_t begin, std::size_t end) const
{
    assert(static_cast<int>(in.rows()) == geom_.inFeatures);
    const std::size_t len = streams_.weights.streamLen();
    assert(begin % 64 == 0 && begin < end && end <= len);
    const std::size_t w0 = begin / 64;
    const std::size_t sw = (end - begin + 63) / 64;

    out.reset(static_cast<std::size_t>(geom_.outFeatures), len);
    auto &ws = *static_cast<DenseScratch *>(scratch);
    sc::ColumnCounts &counts = ws.counts;
    blocks::FeatureFeedbackUnit &unit = ws.unit;

    // The input count is the same for every output neuron: hoist the
    // odd/even padding decision (and the neutral row) out of the loop.
    const int m_total = geom_.inFeatures + 1; // + bias
    const bool pad = m_total % 2 == 0;
    const int eff_m = pad ? m_total + 1 : m_total;
    const std::uint64_t *neutral = streams_.neutral.row(0);

    for (int o = 0; o < geom_.outFeatures; ++o) {
        counts.clear();
        const sc::StreamMatrix &w = streams_.weights;
        const std::size_t wbase =
            static_cast<std::size_t>(o) * geom_.inFeatures;
        int j = 0;
        for (; j + 1 < geom_.inFeatures; j += 2) {
            counts.addXnor2(
                in.row(static_cast<std::size_t>(j)) + w0,
                w.row(wbase + static_cast<std::size_t>(j)) + w0,
                in.row(static_cast<std::size_t>(j) + 1) + w0,
                w.row(wbase + static_cast<std::size_t>(j) + 1) + w0, sw);
        }
        if (j < geom_.inFeatures) {
            counts.addXnor(in.row(static_cast<std::size_t>(j)) + w0,
                           w.row(wbase + static_cast<std::size_t>(j)) + w0,
                           sw);
        }
        counts.addWords(
            streams_.biases.row(static_cast<std::size_t>(o)) + w0, sw);
        if (pad)
            counts.addWords(neutral + w0, sw);

        if (begin == 0)
            unit.reset(eff_m);
        else
            unit.restore(eff_m, ws.carries[static_cast<std::size_t>(o)]);
        counts.drivePrefix(end - begin,
                           [&](int c) { return unit.step(c); },
                           out.row(static_cast<std::size_t>(o)) + w0);
        ws.carries[static_cast<std::size_t>(o)] = unit.carry();
    }
}

} // namespace aqfpsc::core::stages
