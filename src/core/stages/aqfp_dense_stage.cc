#include "aqfp_dense_stage.h"

#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const DenseStageRegistration kRegistration{
    "aqfp-sorter", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<AqfpDenseStage>(g, std::move(init.shared));
    }};

} // namespace

std::string
AqfpDenseStage::name() const
{
    return "AqfpDense " + std::to_string(gather_.g.inFeatures) + "->" +
           std::to_string(gather_.g.outFeatures);
}

} // namespace aqfpsc::core::stages
