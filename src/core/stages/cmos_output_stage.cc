#include "cmos_output_stage.h"

#include <bit>
#include <cassert>

#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {
const OutputStageRegistration kRegistration{
    "cmos-apc", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosOutputStage>(g,
                                                 std::move(init.shared));
    }};

} // namespace

std::string
CmosOutputStage::name() const
{
    return "CmosOutput " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

std::unique_ptr<StageScratch>
CmosOutputStage::makeScratch() const
{
    return std::make_unique<OnesScratch<long long>>(
        static_cast<std::size_t>(geom_.outFeatures));
}

void
CmosOutputStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                         StageContext &ctx, StageScratch *scratch) const
{
    runSpan(in, out, ctx, scratch, 0, streams().weights.streamLen());
}

void
CmosOutputStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &,
                         StageContext &ctx, StageScratch *scratch,
                         std::size_t begin, std::size_t end) const
{
    assert(static_cast<int>(in.rows()) == geom_.inFeatures);
    const std::size_t len = streams().weights.streamLen();
    assert(begin % 64 == 0 && begin < end && end <= len);
    assert(in.streamLen() >= len); // prefix consumption: input may be longer
    // Tail-mask trigger from the stage's own streams — the input may
    // carry a longer upstream stream whose extra words we never read.
    const std::size_t wpr = streams().weights.wordsPerRow();
    const std::size_t w0 = begin / 64;
    const std::size_t w1 = (end + 63) / 64;

    auto &ws = *static_cast<OnesScratch<long long> *>(scratch);
    if (begin == 0)
        ws.rearm();
    ctx.scores.assign(static_cast<std::size_t>(geom_.outFeatures), 0.0);

    for (int o = 0; o < geom_.outFeatures; ++o) {
        // APC counts accumulated into an exact binary score.
        long long ones = ws.ones[static_cast<std::size_t>(o)];
        for (int j = 0; j < geom_.inFeatures; ++j) {
            const std::uint64_t *xr = in.row(static_cast<std::size_t>(j));
            const std::uint64_t *wr = streams().weights.row(
                static_cast<std::size_t>(o) * geom_.inFeatures + j);
            for (std::size_t wi = w0; wi < w1; ++wi) {
                std::uint64_t p = ~(xr[wi] ^ wr[wi]);
                if (wi == wpr - 1)
                    p &= lastWordMask(len);
                ones += std::popcount(p);
            }
        }
        // The bias stream's tail bits beyond streamLen() are zero, so
        // per-span word popcounts sum to countOnes() at end == len.
        {
            const std::uint64_t *br =
                streams().biases.row(static_cast<std::size_t>(o));
            for (std::size_t wi = w0; wi < w1; ++wi)
                ones += std::popcount(br[wi]);
        }
        ws.ones[static_cast<std::size_t>(o)] = ones;
        ctx.scores[static_cast<std::size_t>(o)] =
            static_cast<double>(ones);
    }
}

double
CmosOutputStage::scoreMargin(const StageContext &ctx,
                             std::size_t cycles) const
{
    if (cycles == 0)
        return 0.0;
    // Scores are raw ones counts in [0, (inFeatures + 1) * cycles]:
    // normalize the gap to the per-cycle full-scale range, mapping to
    // [0, 1] like the bipolar backends' margins.
    const double scale =
        static_cast<double>(geom_.inFeatures + 1) *
        static_cast<double>(cycles);
    return scoreTopTwoGap(ctx.scores) / scale;
}

} // namespace aqfpsc::core::stages
