#include "cmos_output_stage.h"

#include <bit>
#include <cassert>

#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {
const OutputStageRegistration kRegistration{
    "cmos-apc", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<CmosOutputStage>(g,
                                                 std::move(init.streams));
    }};
} // namespace

std::string
CmosOutputStage::name() const
{
    return "CmosOutput " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

void
CmosOutputStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &,
                         StageContext &ctx, StageScratch *) const
{
    assert(static_cast<int>(in.rows()) == geom_.inFeatures);
    const std::size_t len = streams_.weights.streamLen();
    const std::size_t wpr = in.wordsPerRow();

    ctx.scores.assign(static_cast<std::size_t>(geom_.outFeatures), 0.0);

    for (int o = 0; o < geom_.outFeatures; ++o) {
        // APC counts accumulated into an exact binary score.
        long long ones = 0;
        for (int j = 0; j < geom_.inFeatures; ++j) {
            const std::uint64_t *xr = in.row(static_cast<std::size_t>(j));
            const std::uint64_t *wr = streams_.weights.row(
                static_cast<std::size_t>(o) * geom_.inFeatures + j);
            for (std::size_t wi = 0; wi < wpr; ++wi) {
                std::uint64_t p = ~(xr[wi] ^ wr[wi]);
                if (wi == wpr - 1 && len % 64 != 0)
                    p &= (1ULL << (len % 64)) - 1;
                ones += std::popcount(p);
            }
        }
        ones += static_cast<long long>(
            streams_.biases.countOnes(static_cast<std::size_t>(o)));
        ctx.scores[static_cast<std::size_t>(o)] =
            static_cast<double>(ones);
    }
}

} // namespace aqfpsc::core::stages
