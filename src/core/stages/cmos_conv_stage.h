/**
 * @file
 * Conv stage on the CMOS SC-DCNN baseline: APC column counts feed a
 * Btanh activation counter (optionally modelling the first-layer OR-pair
 * approximate counter).
 */

#ifndef AQFPSC_CORE_STAGES_CMOS_CONV_STAGE_H
#define AQFPSC_CORE_STAGES_CMOS_CONV_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Feature extraction over conv windows via APC + Btanh. */
class CmosConvStage final : public ScStage
{
  public:
    CmosConvStage(const ConvGeometry &geom, FeatureStreams streams,
                  bool approximate_apc)
        : geom_(geom), streams_(std::move(streams)),
          approximateApc_(approximate_apc)
    {
    }

    std::string name() const override;

    StageFootprint footprint() const override;

    std::unique_ptr<StageScratch> makeScratch() const override;

    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

    bool resumable() const override { return true; }

    void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const override;

  private:
    ConvGeometry geom_;
    FeatureStreams streams_;
    bool approximateApc_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_CMOS_CONV_STAGE_H
