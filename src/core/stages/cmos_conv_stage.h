/**
 * @file
 * Conv stage on the CMOS SC-DCNN baseline: APC column counts feed a
 * Btanh activation counter (optionally modelling the first-layer OR-pair
 * approximate counter).  Thin instantiation of the shared linear kernel
 * core — conv is dense-with-window-gather.
 */

#ifndef AQFPSC_CORE_STAGES_CMOS_CONV_STAGE_H
#define AQFPSC_CORE_STAGES_CMOS_CONV_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Feature extraction over conv windows via APC + Btanh. */
class CmosConvStage final
    : public LinearScStage<ApcBtanhPolicy, ConvWindowGather>
{
  public:
    CmosConvStage(const ConvGeometry &geom,
                  std::shared_ptr<const StageShared> shared,
                  bool approximate_apc)
        : LinearScStage(ConvWindowGather{geom}, std::move(shared),
                        ApcBtanhPolicy{approximate_apc})
    {
    }

    std::string name() const override;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_CMOS_CONV_STAGE_H
