/**
 * @file
 * Stage compiler: lowers a trained nn::Network into an ExecutionPlan —
 * the executable stage graph of the requested backend plus the
 * graph-level buffer plan every workspace allocates from.
 *
 * The compiler walks the float network, fuses (Conv2D | Dense) +
 * activation pairs into feature-extraction stages, maps AvgPool2 to
 * pooling stages and the final Dense / MajorityChainDense to the
 * terminal categorization stage, and pre-generates every weight/bias
 * stream from a single RNG walked in layer order (the stream contents
 * are part of the deterministic contract: one seed, one stage graph).
 *
 * Stage construction is registry-driven: the backend named by
 * ScEngineConfig::resolvedBackend() is looked up in core::BackendRegistry
 * and its per-layer-kind factories build the stages, so new backends
 * plug in without touching this compiler.
 *
 * Documented error messages (all std::invalid_argument):
 *  - "unknown backend '<name>'; registered backends: <a>, <b>, ..."
 *  - "backend '<name>' registers no <conv|dense|pool|output> stage"
 *  - "ScNetworkEngine: Conv2D needs a following activation"
 *  - "ScNetworkEngine: MajorityChainDense must be last"
 *  - "ScNetworkEngine: activation-free Dense must be last"
 *  - "ScNetworkEngine: unmappable layer <name>"
 *  - "ScNetworkEngine: network must end in an output Dense layer"
 */

#ifndef AQFPSC_CORE_STAGES_STAGE_COMPILER_H
#define AQFPSC_CORE_STAGES_STAGE_COMPILER_H

#include <memory>
#include <vector>

#include "core/sc_engine.h"
#include "core/stages/stage.h"
#include "nn/network.h"

namespace aqfpsc::core::stages {

/**
 * Compiled stage graph plus the graph-level buffer plan.
 *
 * The plan is what workspaces (per-image StageWorkspace, multi-image
 * CohortWorkspace) size their arenas from: stage s of the graph reads
 * ping-pong buffer (s % 2) ^ 1 and writes buffer s % 2 (the first stage
 * reads the input matrix), so @ref bufferRows holds the high-water row
 * count of each parity — one sized allocation per buffer per cohort
 * slot, reused across all stages, never reallocated afterwards.
 */
struct ExecutionPlan
{
    /** Stages in execution order; the last one is terminal. */
    std::vector<std::unique_ptr<ScStage>> stages;

    /** Ping-pong buffer plan: max output rows written at each parity. */
    std::size_t bufferRows[2] = {0, 0};

    /** True when every stage supports checkpointed (runSpan) execution. */
    bool resumable = true;

    /** Stream length the graph was compiled for. */
    std::size_t streamLen = 0;

    std::size_t stageCount() const { return stages.size(); }

    const ScStage &stage(std::size_t i) const { return *stages[i]; }
};

/**
 * Compile @p net into an ExecutionPlan for @p cfg 's backend.
 *
 * Compilation is routed through core::PlanCache: an identical
 * (backend, options, architecture, parameters) spec compiled earlier —
 * and still alive in some engine — is returned directly, and on a plan
 * miss each weighted stage's immutable state is still interned
 * stage-by-stage, so engines of different models share the state of
 * layers they have in common.  Cached and cold compiles are
 * bit-identical (see plan_cache.h for the RNG fast-forward argument);
 * set AQFPSC_DISABLE_PLAN_CACHE=1 to always compile cold.
 *
 * @throws std::invalid_argument if the backend is unknown or incomplete,
 *         or the network does not follow the mappable pattern (see the
 *         documented messages above).
 */
std::shared_ptr<const ExecutionPlan>
compileNetwork(const nn::Network &net, const ScEngineConfig &cfg);

/**
 * The cold compile path: always rebuilds the plan, never consults the
 * plan-level cache (stage-level interning still applies when the cache
 * is enabled).  compileNetwork() runs this on a plan miss; the
 * differential tests call it directly to pin cached == cold.
 */
ExecutionPlan compileNetworkUncached(const nn::Network &net,
                                     const ScEngineConfig &cfg);

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_STAGE_COMPILER_H
