/**
 * @file
 * Stage compiler: lowers a trained nn::Network into the executable stage
 * graph of the requested backend.
 *
 * The compiler walks the float network, fuses (Conv2D | Dense) +
 * activation pairs into feature-extraction stages, maps AvgPool2 to
 * pooling stages and the final Dense / MajorityChainDense to the
 * terminal categorization stage, and pre-generates every weight/bias
 * stream from a single RNG walked in layer order (the stream contents
 * are part of the deterministic contract: one seed, one stage graph).
 */

#ifndef AQFPSC_CORE_STAGES_STAGE_COMPILER_H
#define AQFPSC_CORE_STAGES_STAGE_COMPILER_H

#include <memory>
#include <vector>

#include "core/sc_engine.h"
#include "core/stages/stage.h"
#include "nn/network.h"

namespace aqfpsc::core::stages {

/**
 * Compile @p net into an executable stage graph for @p cfg 's backend.
 *
 * @throws std::invalid_argument if the network does not follow the
 *         mappable pattern (see ScNetworkEngine docs).
 */
std::vector<std::unique_ptr<ScStage>>
compileNetwork(const nn::Network &net, const ScEngineConfig &cfg);

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_STAGE_COMPILER_H
