/**
 * @file
 * Stage compiler: lowers a trained nn::Network into an ExecutionPlan —
 * the executable stage graph of the requested backend plus the
 * graph-level buffer plan every workspace allocates from.
 *
 * The compiler walks the float network, fuses (Conv2D | Dense) +
 * activation pairs into feature-extraction stages, maps AvgPool2 to
 * pooling stages and the final Dense / MajorityChainDense to the
 * terminal categorization stage, and pre-generates every weight/bias
 * stream from a single RNG walked in layer order (the stream contents
 * are part of the deterministic contract: one seed, one stage graph).
 *
 * Stage construction is registry-driven: the backend named by
 * ScEngineConfig::resolvedBackend() is looked up in core::BackendRegistry
 * and its per-layer-kind factories build the stages, so new backends
 * plug in without touching this compiler.
 *
 * Documented error messages (all std::invalid_argument):
 *  - "unknown backend '<name>'; registered backends: <a>, <b>, ..."
 *  - "backend '<name>' registers no <conv|dense|pool|output> stage"
 *  - "ScNetworkEngine: Conv2D needs a following activation"
 *  - "ScNetworkEngine: MajorityChainDense must be last"
 *  - "ScNetworkEngine: activation-free Dense must be last"
 *  - "ScNetworkEngine: unmappable layer <name>"
 *  - "ScNetworkEngine: network must end in an output Dense layer"
 */

#ifndef AQFPSC_CORE_STAGES_STAGE_COMPILER_H
#define AQFPSC_CORE_STAGES_STAGE_COMPILER_H

#include <memory>
#include <vector>

#include "core/sc_engine.h"
#include "core/stages/stage.h"
#include "nn/network.h"

namespace aqfpsc::core::stages {

/**
 * Compiled stage graph plus the graph-level buffer plan.
 *
 * The plan is what workspaces (per-image StageWorkspace, multi-image
 * CohortWorkspace) size their arenas from: stage s of the graph reads
 * ping-pong buffer (s % 2) ^ 1 and writes buffer s % 2 (the first stage
 * reads the input matrix), so @ref bufferRows holds the high-water row
 * count of each parity — one sized allocation per buffer per cohort
 * slot, reused across all stages, never reallocated afterwards.
 */
struct ExecutionPlan
{
    /** Stages in execution order; the last one is terminal. */
    std::vector<std::unique_ptr<ScStage>> stages;

    /** Ping-pong buffer plan: max output rows written at each parity. */
    std::size_t bufferRows[2] = {0, 0};

    /** Ping-pong buffer plan: max stream length written at each parity
     *  (uniform plans: streamLen at both).  Workspaces pre-size each
     *  buffer from (bufferRows, bufferLen) of its parity. */
    std::size_t bufferLen[2] = {0, 0};

    /** True when every stage supports checkpointed (runSpan) execution. */
    bool resumable = true;

    /**
     * Full-run cycle count: the longest stage stream length, i.e. the
     * stream length of the first stage (lengths are validated
     * non-increasing along the graph).  Uniform plans: the scalar
     * streamLen the graph was compiled for.
     */
    std::size_t streamLen = 0;

    /**
     * Resolved per-stage stream lengths, one entry per stage in
     * execution order (a scalar config resolves to a uniform vector).
     * Non-increasing; stage s generates its parameter streams at — and
     * executes exactly — stageStreamLens[s] cycles, consuming the
     * prefix of its (equal or longer) input streams.
     */
    std::vector<std::size_t> stageStreamLens;

    std::size_t stageCount() const { return stages.size(); }

    const ScStage &stage(std::size_t i) const { return *stages[i]; }

    /** Cycles a complete (non-early-exit) run executes — what
     *  consumedCycles accounting reports for full-length inference. */
    std::size_t fullRunCycles() const { return streamLen; }

    /** The terminal stage's stream length (the shortest; the score
     *  denominator of a full run). */
    std::size_t terminalCycles() const
    {
        return stageStreamLens.empty() ? streamLen
                                       : stageStreamLens.back();
    }
};

/**
 * Resolve @p cfg 's per-stage stream lengths against @p net: counts the
 * stages the compiler will emit and returns one length per stage.  An
 * empty ScEngineConfig::stageStreamLens yields a uniform vector at
 * cfg.streamLen (bit-identical to the scalar path); a non-empty vector
 * is validated — size must equal the stage count, every entry a
 * positive multiple of 64 within the engine bounds, and the sequence
 * non-increasing in execution order (prefix consumption: a stage may
 * never outlive its upstream producer).
 *
 * @throws std::invalid_argument with an actionable message on any
 *         violation.
 */
std::vector<std::size_t> resolveStageLens(const nn::Network &net,
                                          const ScEngineConfig &cfg);

/**
 * Compile @p net into an ExecutionPlan for @p cfg 's backend.
 *
 * Compilation is routed through core::PlanCache: an identical
 * (backend, options, architecture, parameters) spec compiled earlier —
 * and still alive in some engine — is returned directly, and on a plan
 * miss each weighted stage's immutable state is still interned
 * stage-by-stage, so engines of different models share the state of
 * layers they have in common.  Cached and cold compiles are
 * bit-identical (see plan_cache.h for the RNG fast-forward argument);
 * set AQFPSC_DISABLE_PLAN_CACHE=1 to always compile cold.
 *
 * @throws std::invalid_argument if the backend is unknown or incomplete,
 *         or the network does not follow the mappable pattern (see the
 *         documented messages above).
 */
std::shared_ptr<const ExecutionPlan>
compileNetwork(const nn::Network &net, const ScEngineConfig &cfg);

/**
 * The cold compile path: always rebuilds the plan, never consults the
 * plan-level cache (stage-level interning still applies when the cache
 * is enabled).  compileNetwork() runs this on a plan miss; the
 * differential tests call it directly to pin cached == cold.
 */
ExecutionPlan compileNetworkUncached(const nn::Network &net,
                                     const ScEngineConfig &cfg);

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_STAGE_COMPILER_H
