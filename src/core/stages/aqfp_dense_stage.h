/**
 * @file
 * Hidden fully-connected stage on the AQFP sorter backend: one
 * sorter-based feature-extraction block per output neuron.  Thin
 * instantiation of the shared linear kernel core.
 */

#ifndef AQFPSC_CORE_STAGES_AQFP_DENSE_STAGE_H
#define AQFPSC_CORE_STAGES_AQFP_DENSE_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Feature extraction over a flat input via sorter + feedback blocks. */
class AqfpDenseStage final
    : public LinearScStage<SorterMajorityPolicy, DenseGather>
{
  public:
    AqfpDenseStage(const DenseGeometry &geom,
                   std::shared_ptr<const StageShared> shared)
        : LinearScStage(DenseGather{geom}, std::move(shared), {})
    {
    }

    std::string name() const override;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_AQFP_DENSE_STAGE_H
