/**
 * @file
 * Hidden fully-connected stage on the AQFP sorter backend: one
 * sorter-based feature-extraction block per output neuron.
 */

#ifndef AQFPSC_CORE_STAGES_AQFP_DENSE_STAGE_H
#define AQFPSC_CORE_STAGES_AQFP_DENSE_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Feature extraction over a flat input via sorter + feedback blocks. */
class AqfpDenseStage final : public ScStage
{
  public:
    AqfpDenseStage(const DenseGeometry &geom, FeatureStreams streams)
        : geom_(geom), streams_(std::move(streams))
    {
    }

    std::string name() const override;

    StageFootprint footprint() const override;

    std::unique_ptr<StageScratch> makeScratch() const override;

    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

    bool resumable() const override { return true; }

    void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const override;

  private:
    DenseGeometry geom_;
    FeatureStreams streams_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_AQFP_DENSE_STAGE_H
