#include "stage_compiler.h"

#include <cassert>
#include <stdexcept>

#include "core/stages/aqfp_conv_stage.h"
#include "core/stages/aqfp_dense_stage.h"
#include "core/stages/aqfp_output_stage.h"
#include "core/stages/aqfp_pool_stage.h"
#include "core/stages/cmos_conv_stage.h"
#include "core/stages/cmos_dense_stage.h"
#include "core/stages/cmos_output_stage.h"
#include "core/stages/cmos_pool_stage.h"
#include "sc/rng.h"

namespace aqfpsc::core::stages {

namespace {

/** Layers the feature-extraction block's activation can stand in for. */
bool
isScActivation(const nn::Layer &l)
{
    return dynamic_cast<const nn::HardTanh *>(&l) != nullptr ||
           dynamic_cast<const nn::SorterTanh *>(&l) != nullptr;
}

/**
 * Generate the parameter streams of one weighted stage.  The shared
 * @p rng is consumed in (weights, biases) order, matching the layer walk
 * so that stream contents are a function of the engine seed alone.
 */
FeatureStreams
makeStreams(const std::vector<float> &weights,
            const std::vector<float> &biases, const ScEngineConfig &cfg,
            sc::RandomSource &rng)
{
    FeatureStreams s;
    const std::size_t len = cfg.streamLen;
    s.weights = sc::StreamMatrix(weights.size(), len);
    for (std::size_t i = 0; i < weights.size(); ++i)
        s.weights.fillBipolar(i, weights[i], cfg.rngBits, rng);
    s.biases = sc::StreamMatrix(biases.size(), len);
    for (std::size_t i = 0; i < biases.size(); ++i)
        s.biases.fillBipolar(i, biases[i], cfg.rngBits, rng);
    s.neutral = sc::StreamMatrix(1, len);
    s.neutral.fillNeutral(0);
    return s;
}

std::unique_ptr<ScStage>
makeConvStage(const ConvGeometry &g, FeatureStreams s,
              const ScEngineConfig &cfg)
{
    if (cfg.backend == ScBackend::AqfpSorter)
        return std::make_unique<AqfpConvStage>(g, std::move(s));
    return std::make_unique<CmosConvStage>(g, std::move(s),
                                           cfg.approximateApc);
}

std::unique_ptr<ScStage>
makeDenseStage(const DenseGeometry &g, FeatureStreams s,
               const ScEngineConfig &cfg)
{
    if (cfg.backend == ScBackend::AqfpSorter)
        return std::make_unique<AqfpDenseStage>(g, std::move(s));
    return std::make_unique<CmosDenseStage>(g, std::move(s),
                                            cfg.approximateApc);
}

std::unique_ptr<ScStage>
makePoolStage(const PoolGeometry &g, const ScEngineConfig &cfg)
{
    if (cfg.backend == ScBackend::AqfpSorter)
        return std::make_unique<AqfpPoolStage>(g);
    return std::make_unique<CmosPoolStage>(g);
}

std::unique_ptr<ScStage>
makeOutputStage(const DenseGeometry &g, FeatureStreams s,
                const ScEngineConfig &cfg)
{
    if (cfg.backend == ScBackend::AqfpSorter)
        return std::make_unique<AqfpOutputStage>(g, std::move(s));
    return std::make_unique<CmosOutputStage>(g, std::move(s));
}

} // namespace

std::vector<std::unique_ptr<ScStage>>
compileNetwork(const nn::Network &net, const ScEngineConfig &cfg)
{
    std::vector<std::unique_ptr<ScStage>> stages;
    sc::Xoshiro256StarStar rng(cfg.seed);

    // Walk the float network and fuse (Conv|Dense) + activation pairs.
    int in_c = 0, in_h = 0, in_w = 0; // tracked spatial shape
    bool shape_known = false;

    const std::size_t n_layers = net.layerCount();
    for (std::size_t li = 0; li < n_layers; ++li) {
        const nn::Layer &l = net.layer(li);

        if (const auto *conv = dynamic_cast<const nn::Conv2D *>(&l)) {
            if (li + 1 >= n_layers || !isScActivation(net.layer(li + 1))) {
                throw std::invalid_argument(
                    "ScNetworkEngine: Conv2D needs a following activation");
            }
            if (!shape_known) {
                // First layer fixes the input geometry to 28x28.
                in_c = conv->inChannels();
                in_h = 28;
                in_w = 28;
                shape_known = true;
            }
            ConvGeometry g;
            g.inC = conv->inChannels();
            g.inH = in_h;
            g.inW = in_w;
            g.outC = conv->outChannels();
            g.outH = in_h;
            g.outW = in_w;
            g.kernel = conv->kernel();
            stages.push_back(makeConvStage(
                g, makeStreams(conv->weights(), conv->biases(), cfg, rng),
                cfg));
            in_c = conv->outChannels();
            ++li; // consume the activation
            continue;
        }

        if (dynamic_cast<const nn::AvgPool2 *>(&l) != nullptr) {
            assert(shape_known && in_h % 2 == 0 && in_w % 2 == 0);
            PoolGeometry g;
            g.channels = in_c;
            g.inH = in_h;
            g.inW = in_w;
            g.outH = in_h / 2;
            g.outW = in_w / 2;
            stages.push_back(makePoolStage(g, cfg));
            in_h /= 2;
            in_w /= 2;
            continue;
        }

        if (const auto *chain =
                dynamic_cast<const nn::MajorityChainDense *>(&l)) {
            if (li + 1 != n_layers)
                throw std::invalid_argument(
                    "ScNetworkEngine: MajorityChainDense must be last");
            DenseGeometry g;
            g.inFeatures = chain->inFeatures();
            g.outFeatures = chain->outFeatures();
            stages.push_back(makeOutputStage(
                g,
                makeStreams(chain->weights(), chain->biases(), cfg, rng),
                cfg));
            continue;
        }

        if (const auto *fc = dynamic_cast<const nn::Dense *>(&l)) {
            const bool has_act =
                li + 1 < n_layers && isScActivation(net.layer(li + 1));
            DenseGeometry g;
            g.inFeatures = fc->inFeatures();
            g.outFeatures = fc->outFeatures();
            FeatureStreams s =
                makeStreams(fc->weights(), fc->biases(), cfg, rng);
            if (has_act) {
                stages.push_back(makeDenseStage(g, std::move(s), cfg));
                ++li;
            } else {
                if (li + 1 != n_layers)
                    throw std::invalid_argument(
                        "ScNetworkEngine: activation-free Dense must be "
                        "last");
                stages.push_back(makeOutputStage(g, std::move(s), cfg));
            }
            continue;
        }

        throw std::invalid_argument("ScNetworkEngine: unmappable layer " +
                                    l.name());
    }

    if (stages.empty() || !stages.back()->terminal())
        throw std::invalid_argument(
            "ScNetworkEngine: network must end in an output Dense layer");
    return stages;
}

} // namespace aqfpsc::core::stages
