#include "stage_compiler.h"

#include <algorithm>
#include <array>
#include <cassert>
#include <stdexcept>

#include "core/backend_registry.h"
#include "core/plan_cache.h"
#include "sc/rng.h"

namespace aqfpsc::core::stages {

namespace {

/** Layers the feature-extraction block's activation can stand in for. */
bool
isScActivation(const nn::Layer &l)
{
    return dynamic_cast<const nn::HardTanh *>(&l) != nullptr ||
           dynamic_cast<const nn::SorterTanh *>(&l) != nullptr;
}

FusedActivation
activationKind(const nn::Layer &l)
{
    if (dynamic_cast<const nn::SorterTanh *>(&l) != nullptr)
        return FusedActivation::SorterTanh;
    if (dynamic_cast<const nn::HardTanh *>(&l) != nullptr)
        return FusedActivation::HardTanh;
    return FusedActivation::None;
}

/**
 * Generate the parameter streams of one weighted stage.  The shared
 * @p rng is consumed in (weights, biases) order, matching the layer walk
 * so that stream contents are a function of the engine seed alone.
 */
FeatureStreams
makeStreams(const std::vector<float> &weights,
            const std::vector<float> &biases, const ScEngineConfig &cfg,
            sc::RandomSource &rng)
{
    FeatureStreams s;
    const std::size_t len = cfg.streamLen;
    s.weights = sc::StreamMatrix(weights.size(), len);
    for (std::size_t i = 0; i < weights.size(); ++i)
        s.weights.fillBipolar(i, weights[i], cfg.rngBits, rng);
    s.biases = sc::StreamMatrix(biases.size(), len);
    for (std::size_t i = 0; i < biases.size(); ++i)
        s.biases.fillBipolar(i, biases[i], cfg.rngBits, rng);
    s.neutral = sc::StreamMatrix(1, len);
    s.neutral.fillNeutral(0);
    return s;
}

/**
 * Produce (or intern) one weighted stage's immutable compile product.
 * Backends whose traits opt out of parameter streams get nullptr (the
 * whole graph is one backend, so the skipped draws cannot desynchronize
 * anything).
 *
 * The spec keys on the RNG state before generation; on a cache hit the
 * build never runs and the compiler RNG is fast-forwarded to the
 * recorded post-generation state instead, so every downstream layer
 * consumes the identical word sequence a cold compile would produce.
 */
std::shared_ptr<const StageShared>
internStageState(StageKind kind, const std::array<int, 7> &dims,
                 FusedActivation act, bool majority_chain,
                 const std::string &backend, const ScEngineConfig &cfg,
                 sc::Xoshiro256StarStar &rng,
                 const std::vector<float> &weights,
                 const std::vector<float> &biases, bool wanted)
{
    if (!wanted)
        return nullptr;
    StageSpec spec;
    spec.backend = backend;
    spec.kind = kind;
    spec.dims = dims;
    spec.activation = static_cast<int>(act);
    spec.majorityChain = majority_chain;
    spec.approximateApc = cfg.approximateApc;
    spec.streamLen = cfg.streamLen;
    spec.rngBits = cfg.rngBits;
    spec.rngState = rng.state();
    spec.weights = weights;
    spec.biases = biases;
    auto shared = PlanCache::instance().internStage(spec, [&] {
        auto s = std::make_shared<StageShared>();
        s->streams = makeStreams(weights, biases, cfg, rng);
        s->rngStateAfter = rng.state();
        s->bytes = featureStreamBytes(s->streams);
        return s;
    });
    rng.setState(shared->rngStateAfter);
    return shared;
}

/** Canonical PlanSpec of (net, cfg): architecture string from the layer
 *  specs + quantization grid, parameters flattened in layer order.  The
 *  RESOLVED per-stage length vector is always stored (scalar configs
 *  resolve to a uniform vector first), so a scalar streamLen and the
 *  equivalent explicit uniform vector share one cache entry. */
PlanSpec
makePlanSpec(const nn::Network &net, const ScEngineConfig &cfg,
             const std::string &backend,
             const std::vector<std::size_t> &lens)
{
    PlanSpec p;
    p.backend = backend;
    p.streamLen = lens.empty() ? cfg.streamLen : lens.front();
    p.stageStreamLens.assign(lens.begin(), lens.end());
    p.rngBits = cfg.rngBits;
    p.seed = cfg.seed;
    p.approximateApc = cfg.approximateApc;
    auto append = [&p](const std::vector<float> &v) {
        p.params.insert(p.params.end(), v.begin(), v.end());
    };
    std::string arch = "q" + std::to_string(net.quantBits());
    for (std::size_t li = 0; li < net.layerCount(); ++li) {
        const nn::Layer &l = net.layer(li);
        const nn::LayerSpec s = l.spec();
        arch += '|';
        arch += std::to_string(static_cast<int>(s.kind));
        arch += ':';
        arch += std::to_string(s.p0) + ',' + std::to_string(s.p1) + ',' +
                std::to_string(s.p2);
        if (const auto *chain =
                dynamic_cast<const nn::MajorityChainDense *>(&l)) {
            append(chain->weights());
            append(chain->biases());
        } else if (const auto *conv = dynamic_cast<const nn::Conv2D *>(&l)) {
            append(conv->weights());
            append(conv->biases());
        } else if (const auto *fc = dynamic_cast<const nn::Dense *>(&l)) {
            append(fc->weights());
            append(fc->biases());
        }
    }
    p.architecture = std::move(arch);
    return p;
}

[[noreturn]] void
throwIncomplete(const std::string &backend, const char *kind)
{
    throw std::invalid_argument("backend '" + backend +
                                "' registers no " + kind + " stage");
}

/**
 * Count the stages the compiler will emit for @p net — the same walk as
 * compileNetworkUncached (conv/dense fuse their following activation),
 * minus the stage construction.  Mapping errors are left for the real
 * compile to diagnose; this only needs the count for length resolution.
 */
std::size_t
countStages(const nn::Network &net)
{
    std::size_t count = 0;
    const std::size_t n_layers = net.layerCount();
    for (std::size_t li = 0; li < n_layers; ++li) {
        const nn::Layer &l = net.layer(li);
        if (dynamic_cast<const nn::Conv2D *>(&l) != nullptr) {
            ++count;
            if (li + 1 < n_layers && isScActivation(net.layer(li + 1)))
                ++li; // the activation fuses into the conv stage
            continue;
        }
        if (dynamic_cast<const nn::AvgPool2 *>(&l) != nullptr) {
            ++count;
            continue;
        }
        if (dynamic_cast<const nn::MajorityChainDense *>(&l) != nullptr) {
            ++count;
            continue;
        }
        if (dynamic_cast<const nn::Dense *>(&l) != nullptr) {
            ++count;
            if (li + 1 < n_layers && isScActivation(net.layer(li + 1)))
                ++li; // fused hidden Dense + activation
            continue;
        }
        // Unmappable layers contribute no stage; compileNetworkUncached
        // throws the documented message when it reaches them.
    }
    return count;
}

} // namespace

std::vector<std::size_t>
resolveStageLens(const nn::Network &net, const ScEngineConfig &cfg)
{
    const std::size_t n_stages = countStages(net);
    if (cfg.stageStreamLens.empty())
        return std::vector<std::size_t>(n_stages, cfg.streamLen);

    const std::vector<std::size_t> &lens = cfg.stageStreamLens;
    if (lens.size() != n_stages) {
        throw std::invalid_argument(
            "stageStreamLens has " + std::to_string(lens.size()) +
            " entries but the network compiles to " +
            std::to_string(n_stages) +
            " stages; provide one length per stage in execution order");
    }
    for (std::size_t s = 0; s < lens.size(); ++s) {
        if (lens[s] == 0 || lens[s] % 64 != 0) {
            throw std::invalid_argument(
                "stageStreamLens[" + std::to_string(s) + "] = " +
                std::to_string(lens[s]) +
                " must be a positive multiple of 64 (word-aligned spans)");
        }
        if (s > 0 && lens[s] > lens[s - 1]) {
            throw std::invalid_argument(
                "stageStreamLens must be non-increasing along the graph "
                "(stages consume the prefix of longer upstream streams); "
                "entry " +
                std::to_string(s) + " = " + std::to_string(lens[s]) +
                " exceeds entry " + std::to_string(s - 1) + " = " +
                std::to_string(lens[s - 1]));
        }
    }
    return lens;
}

std::shared_ptr<const ExecutionPlan>
compileNetwork(const nn::Network &net, const ScEngineConfig &cfg)
{
    return PlanCache::instance().internPlan(
        makePlanSpec(net, cfg, cfg.resolvedBackend(),
                     resolveStageLens(net, cfg)),
        [&] {
            return std::make_shared<const ExecutionPlan>(
                compileNetworkUncached(net, cfg));
        });
}

ExecutionPlan
compileNetworkUncached(const nn::Network &net, const ScEngineConfig &cfg)
{
    const std::string backend = cfg.resolvedBackend();
    // entry() throws the documented unknown-backend message.
    const BackendEntry &factories =
        BackendRegistry::instance().entry(backend);
    const bool want_streams = factories.traits.wantsParamStreams;

    const std::vector<std::size_t> lens = resolveStageLens(net, cfg);

    std::vector<std::unique_ptr<ScStage>> stages;

    // Per-stage config: identical to cfg except streamLen carries the
    // stage's own resolved length (factories and stream generation read
    // only streamLen, so a scalar-era stage builds unchanged from it).
    const auto stageCfg = [&]() {
        ScEngineConfig c = cfg;
        c.streamLen = lens[stages.size()];
        c.stageStreamLens.clear();
        return c;
    };

    sc::Xoshiro256StarStar rng(cfg.seed);

    // Walk the float network and fuse (Conv|Dense) + activation pairs.
    int in_c = 0, in_h = 0, in_w = 0; // tracked spatial shape
    bool shape_known = false;

    const std::size_t n_layers = net.layerCount();
    for (std::size_t li = 0; li < n_layers; ++li) {
        const nn::Layer &l = net.layer(li);

        if (const auto *conv = dynamic_cast<const nn::Conv2D *>(&l)) {
            if (li + 1 >= n_layers || !isScActivation(net.layer(li + 1))) {
                throw std::invalid_argument(
                    "ScNetworkEngine: Conv2D needs a following activation");
            }
            if (!shape_known) {
                // First layer fixes the input geometry to 28x28.
                in_c = conv->inChannels();
                in_h = 28;
                in_w = 28;
                shape_known = true;
            }
            ConvGeometry g;
            g.inC = conv->inChannels();
            g.inH = in_h;
            g.inW = in_w;
            g.outC = conv->outChannels();
            g.outH = in_h;
            g.outW = in_w;
            g.kernel = conv->kernel();
            if (!factories.conv)
                throwIncomplete(backend, "conv");
            const ScEngineConfig scfg = stageCfg();
            stages.push_back(factories.conv(
                g, WeightedStageInit{
                       internStageState(
                           StageKind::Conv,
                           {g.inC, g.inH, g.inW, g.outC, g.outH, g.outW,
                            g.kernel},
                           activationKind(net.layer(li + 1)), false,
                           backend, scfg, rng, conv->weights(),
                           conv->biases(), want_streams),
                       conv->weights(), conv->biases(),
                       activationKind(net.layer(li + 1)), false, scfg}));
            in_c = conv->outChannels();
            ++li; // consume the activation
            continue;
        }

        if (dynamic_cast<const nn::AvgPool2 *>(&l) != nullptr) {
            assert(shape_known && in_h % 2 == 0 && in_w % 2 == 0);
            PoolGeometry g;
            g.channels = in_c;
            g.inH = in_h;
            g.inW = in_w;
            g.outH = in_h / 2;
            g.outW = in_w / 2;
            if (!factories.pool)
                throwIncomplete(backend, "pool");
            stages.push_back(factories.pool(g, stageCfg()));
            in_h /= 2;
            in_w /= 2;
            continue;
        }

        if (const auto *chain =
                dynamic_cast<const nn::MajorityChainDense *>(&l)) {
            if (li + 1 != n_layers)
                throw std::invalid_argument(
                    "ScNetworkEngine: MajorityChainDense must be last");
            DenseGeometry g;
            g.inFeatures = chain->inFeatures();
            g.outFeatures = chain->outFeatures();
            if (!factories.output)
                throwIncomplete(backend, "output");
            const ScEngineConfig scfg = stageCfg();
            stages.push_back(factories.output(
                g, WeightedStageInit{
                       internStageState(
                           StageKind::Output,
                           {g.inFeatures, g.outFeatures, 0, 0, 0, 0, 0},
                           FusedActivation::None, true, backend, scfg,
                           rng, chain->weights(), chain->biases(),
                           want_streams),
                       chain->weights(), chain->biases(),
                       FusedActivation::None, true, scfg}));
            continue;
        }

        if (const auto *fc = dynamic_cast<const nn::Dense *>(&l)) {
            const bool has_act =
                li + 1 < n_layers && isScActivation(net.layer(li + 1));
            DenseGeometry g;
            g.inFeatures = fc->inFeatures();
            g.outFeatures = fc->outFeatures();
            const FusedActivation act =
                has_act ? activationKind(net.layer(li + 1))
                        : FusedActivation::None;
            const ScEngineConfig scfg = stageCfg();
            auto shared = internStageState(
                has_act ? StageKind::Dense : StageKind::Output,
                {g.inFeatures, g.outFeatures, 0, 0, 0, 0, 0}, act, false,
                backend, scfg, rng, fc->weights(), fc->biases(),
                want_streams);
            if (has_act) {
                if (!factories.dense)
                    throwIncomplete(backend, "dense");
                stages.push_back(factories.dense(
                    g, WeightedStageInit{std::move(shared), fc->weights(),
                                         fc->biases(), act, false, scfg}));
                ++li;
            } else {
                if (li + 1 != n_layers)
                    throw std::invalid_argument(
                        "ScNetworkEngine: activation-free Dense must be "
                        "last");
                if (!factories.output)
                    throwIncomplete(backend, "output");
                stages.push_back(factories.output(
                    g, WeightedStageInit{std::move(shared), fc->weights(),
                                         fc->biases(),
                                         FusedActivation::None, false,
                                         scfg}));
            }
            continue;
        }

        throw std::invalid_argument("ScNetworkEngine: unmappable layer " +
                                    l.name());
    }

    if (stages.empty() || !stages.back()->terminal())
        throw std::invalid_argument(
            "ScNetworkEngine: network must end in an output Dense layer");

    // Graph-level buffer plan: stage s writes ping-pong buffer s % 2, so
    // record each parity's high-water row count and stream length —
    // workspaces allocate their arenas once from these and never grow
    // afterwards.
    ExecutionPlan plan;
    plan.streamLen = lens.front();
    plan.stageStreamLens = lens;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        plan.bufferRows[s % 2] = std::max(
            plan.bufferRows[s % 2], stages[s]->footprint().outputRows);
        plan.bufferLen[s % 2] = std::max(plan.bufferLen[s % 2], lens[s]);
        plan.resumable = plan.resumable && stages[s]->resumable();
    }
    plan.stages = std::move(stages);
    return plan;
}

} // namespace aqfpsc::core::stages
