#include "stage_compiler.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "core/backend_registry.h"
#include "sc/rng.h"

namespace aqfpsc::core::stages {

namespace {

/** Layers the feature-extraction block's activation can stand in for. */
bool
isScActivation(const nn::Layer &l)
{
    return dynamic_cast<const nn::HardTanh *>(&l) != nullptr ||
           dynamic_cast<const nn::SorterTanh *>(&l) != nullptr;
}

FusedActivation
activationKind(const nn::Layer &l)
{
    if (dynamic_cast<const nn::SorterTanh *>(&l) != nullptr)
        return FusedActivation::SorterTanh;
    if (dynamic_cast<const nn::HardTanh *>(&l) != nullptr)
        return FusedActivation::HardTanh;
    return FusedActivation::None;
}

/**
 * Generate the parameter streams of one weighted stage.  The shared
 * @p rng is consumed in (weights, biases) order, matching the layer walk
 * so that stream contents are a function of the engine seed alone.
 * Backends whose traits opt out of parameter streams get an empty
 * bundle (the whole graph is one backend, so the skipped draws cannot
 * desynchronize anything).
 */
FeatureStreams
makeStreams(const std::vector<float> &weights,
            const std::vector<float> &biases, const ScEngineConfig &cfg,
            sc::RandomSource &rng, bool wanted)
{
    FeatureStreams s;
    if (!wanted)
        return s;
    const std::size_t len = cfg.streamLen;
    s.weights = sc::StreamMatrix(weights.size(), len);
    for (std::size_t i = 0; i < weights.size(); ++i)
        s.weights.fillBipolar(i, weights[i], cfg.rngBits, rng);
    s.biases = sc::StreamMatrix(biases.size(), len);
    for (std::size_t i = 0; i < biases.size(); ++i)
        s.biases.fillBipolar(i, biases[i], cfg.rngBits, rng);
    s.neutral = sc::StreamMatrix(1, len);
    s.neutral.fillNeutral(0);
    return s;
}

[[noreturn]] void
throwIncomplete(const std::string &backend, const char *kind)
{
    throw std::invalid_argument("backend '" + backend +
                                "' registers no " + kind + " stage");
}

} // namespace

ExecutionPlan
compileNetwork(const nn::Network &net, const ScEngineConfig &cfg)
{
    const std::string backend = cfg.resolvedBackend();
    // entry() throws the documented unknown-backend message.
    const BackendEntry &factories =
        BackendRegistry::instance().entry(backend);
    const bool want_streams = factories.traits.wantsParamStreams;

    std::vector<std::unique_ptr<ScStage>> stages;
    sc::Xoshiro256StarStar rng(cfg.seed);

    // Walk the float network and fuse (Conv|Dense) + activation pairs.
    int in_c = 0, in_h = 0, in_w = 0; // tracked spatial shape
    bool shape_known = false;

    const std::size_t n_layers = net.layerCount();
    for (std::size_t li = 0; li < n_layers; ++li) {
        const nn::Layer &l = net.layer(li);

        if (const auto *conv = dynamic_cast<const nn::Conv2D *>(&l)) {
            if (li + 1 >= n_layers || !isScActivation(net.layer(li + 1))) {
                throw std::invalid_argument(
                    "ScNetworkEngine: Conv2D needs a following activation");
            }
            if (!shape_known) {
                // First layer fixes the input geometry to 28x28.
                in_c = conv->inChannels();
                in_h = 28;
                in_w = 28;
                shape_known = true;
            }
            ConvGeometry g;
            g.inC = conv->inChannels();
            g.inH = in_h;
            g.inW = in_w;
            g.outC = conv->outChannels();
            g.outH = in_h;
            g.outW = in_w;
            g.kernel = conv->kernel();
            if (!factories.conv)
                throwIncomplete(backend, "conv");
            stages.push_back(factories.conv(
                g, WeightedStageInit{
                       makeStreams(conv->weights(), conv->biases(), cfg,
                                   rng, want_streams),
                       conv->weights(), conv->biases(),
                       activationKind(net.layer(li + 1)), false, cfg}));
            in_c = conv->outChannels();
            ++li; // consume the activation
            continue;
        }

        if (dynamic_cast<const nn::AvgPool2 *>(&l) != nullptr) {
            assert(shape_known && in_h % 2 == 0 && in_w % 2 == 0);
            PoolGeometry g;
            g.channels = in_c;
            g.inH = in_h;
            g.inW = in_w;
            g.outH = in_h / 2;
            g.outW = in_w / 2;
            if (!factories.pool)
                throwIncomplete(backend, "pool");
            stages.push_back(factories.pool(g, cfg));
            in_h /= 2;
            in_w /= 2;
            continue;
        }

        if (const auto *chain =
                dynamic_cast<const nn::MajorityChainDense *>(&l)) {
            if (li + 1 != n_layers)
                throw std::invalid_argument(
                    "ScNetworkEngine: MajorityChainDense must be last");
            DenseGeometry g;
            g.inFeatures = chain->inFeatures();
            g.outFeatures = chain->outFeatures();
            if (!factories.output)
                throwIncomplete(backend, "output");
            stages.push_back(factories.output(
                g, WeightedStageInit{
                       makeStreams(chain->weights(), chain->biases(), cfg,
                                   rng, want_streams),
                       chain->weights(), chain->biases(),
                       FusedActivation::None, true, cfg}));
            continue;
        }

        if (const auto *fc = dynamic_cast<const nn::Dense *>(&l)) {
            const bool has_act =
                li + 1 < n_layers && isScActivation(net.layer(li + 1));
            DenseGeometry g;
            g.inFeatures = fc->inFeatures();
            g.outFeatures = fc->outFeatures();
            FeatureStreams s = makeStreams(fc->weights(), fc->biases(),
                                           cfg, rng, want_streams);
            if (has_act) {
                if (!factories.dense)
                    throwIncomplete(backend, "dense");
                stages.push_back(factories.dense(
                    g, WeightedStageInit{
                           std::move(s), fc->weights(), fc->biases(),
                           activationKind(net.layer(li + 1)), false, cfg}));
                ++li;
            } else {
                if (li + 1 != n_layers)
                    throw std::invalid_argument(
                        "ScNetworkEngine: activation-free Dense must be "
                        "last");
                if (!factories.output)
                    throwIncomplete(backend, "output");
                stages.push_back(factories.output(
                    g, WeightedStageInit{std::move(s), fc->weights(),
                                         fc->biases(),
                                         FusedActivation::None, false,
                                         cfg}));
            }
            continue;
        }

        throw std::invalid_argument("ScNetworkEngine: unmappable layer " +
                                    l.name());
    }

    if (stages.empty() || !stages.back()->terminal())
        throw std::invalid_argument(
            "ScNetworkEngine: network must end in an output Dense layer");

    // Graph-level buffer plan: stage s writes ping-pong buffer s % 2, so
    // record each parity's high-water row count — workspaces allocate
    // their arenas once from these and never grow afterwards.
    ExecutionPlan plan;
    plan.streamLen = cfg.streamLen;
    for (std::size_t s = 0; s < stages.size(); ++s) {
        plan.bufferRows[s % 2] = std::max(
            plan.bufferRows[s % 2], stages[s]->footprint().outputRows);
        plan.resumable = plan.resumable && stages[s]->resumable();
    }
    plan.stages = std::move(stages);
    return plan;
}

} // namespace aqfpsc::core::stages
