#include "aqfp_output_stage.h"

#include <bit>
#include <cassert>

#include "core/backend_registry.h"

namespace aqfpsc::core::stages {

namespace {

const OutputStageRegistration kRegistration{
    "aqfp-sorter", [](const DenseGeometry &g, WeightedStageInit init) {
        return std::make_unique<AqfpOutputStage>(g,
                                                 std::move(init.shared));
    }};

std::uint64_t
majWord(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return (a & b) | (a & c) | (b & c);
}

} // namespace

std::string
AqfpOutputStage::name() const
{
    return "AqfpOutput " + std::to_string(geom_.inFeatures) + "->" +
           std::to_string(geom_.outFeatures);
}

std::unique_ptr<StageScratch>
AqfpOutputStage::makeScratch() const
{
    return std::make_unique<OnesScratch<std::size_t>>(
        static_cast<std::size_t>(geom_.outFeatures));
}

void
AqfpOutputStage::runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                         StageContext &ctx, StageScratch *scratch) const
{
    runSpan(in, out, ctx, scratch, 0, streams().weights.streamLen());
}

void
AqfpOutputStage::runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &,
                         StageContext &ctx, StageScratch *scratch,
                         std::size_t begin, std::size_t end) const
{
    assert(static_cast<int>(in.rows()) == geom_.inFeatures);
    const std::size_t len = streams().weights.streamLen();
    assert(begin % 64 == 0 && begin < end && end <= len);
    assert(in.streamLen() >= len); // prefix consumption: input may be longer
    // Weight-row stride and tail-mask trigger come from the stage's own
    // streams — the input may carry a longer upstream stream.
    const std::size_t wpr = streams().weights.wordsPerRow();
    const std::size_t w0 = begin / 64;
    const std::size_t w1 = (end + 63) / 64;

    auto &ws = *static_cast<OnesScratch<std::size_t> *>(scratch);
    if (begin == 0)
        ws.rearm();
    ctx.scores.assign(static_cast<std::size_t>(geom_.outFeatures), 0.0);
    const std::uint64_t *neutral = streams().neutral.row(0);

    for (int o = 0; o < geom_.outFeatures; ++o) {
        // Majority chain folded word-parallel over the product streams
        // (bias as the final product; neutral pad keeps the chain's
        // 2-per-stage consumption aligned).  Weight-row base and bias
        // row are loop-invariant per output class.
        const int k_total = geom_.inFeatures + 1;
        const std::uint64_t *bias =
            streams().biases.row(static_cast<std::size_t>(o));
        const std::uint64_t *wbase = streams().weights.row(
            static_cast<std::size_t>(o) * geom_.inFeatures);
        std::size_t ones = ws.ones[static_cast<std::size_t>(o)];
        for (std::size_t wi = w0; wi < w1; ++wi) {
            auto product = [&](int j) -> std::uint64_t {
                if (j < geom_.inFeatures) {
                    return ~(in.row(static_cast<std::size_t>(j))[wi] ^
                             wbase[static_cast<std::size_t>(j) * wpr + wi]);
                }
                if (j == geom_.inFeatures)
                    return bias[wi];
                return neutral[wi]; // padding
            };
            std::uint64_t acc = majWord(product(0), product(1), product(2));
            int j = 3;
            while (j < k_total) {
                const std::uint64_t p1 = product(j);
                const std::uint64_t p2 =
                    j + 1 < k_total ? product(j + 1) : neutral[wi];
                acc = majWord(acc, p1, p2);
                j += 2;
            }
            if (wi == wpr - 1)
                acc &= lastWordMask(len);
            ones += static_cast<std::size_t>(std::popcount(acc));
        }
        ws.ones[static_cast<std::size_t>(o)] = ones;
        // Scores over the cycles consumed so far; at end == len this is
        // the full-stream bipolar value, bit-identical to one pass.
        ctx.scores[static_cast<std::size_t>(o)] =
            2.0 * static_cast<double>(ones) / static_cast<double>(end) -
            1.0;
    }
}

} // namespace aqfpsc::core::stages
