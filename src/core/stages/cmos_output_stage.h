/**
 * @file
 * Terminal categorization stage on the CMOS SC-DCNN baseline: exact APC
 * counts of every product stream accumulate into a binary class score.
 */

#ifndef AQFPSC_CORE_STAGES_CMOS_OUTPUT_STAGE_H
#define AQFPSC_CORE_STAGES_CMOS_OUTPUT_STAGE_H

#include <cassert>

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Linear APC accumulation categorization. */
class CmosOutputStage final : public ScStage
{
  public:
    CmosOutputStage(const DenseGeometry &geom,
                    std::shared_ptr<const StageShared> shared)
        : geom_(geom), shared_(std::move(shared))
    {
        assert(shared_ != nullptr);
    }

    const StageShared *sharedState() const override
    {
        return shared_.get();
    }

    std::string name() const override;

    bool terminal() const override { return true; }

    std::unique_ptr<StageScratch> makeScratch() const override;

    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

    bool resumable() const override { return true; }

    void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const override;

    double scoreMargin(const StageContext &ctx,
                       std::size_t cycles) const override;

  private:
    /** The interned read-only compile product (possibly shared). */
    const FeatureStreams &streams() const { return shared_->streams; }

    DenseGeometry geom_;
    std::shared_ptr<const StageShared> shared_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_CMOS_OUTPUT_STAGE_H
