/**
 * @file
 * 2x2 average pooling on the AQFP sorter backend (Algorithm 2, counter
 * form): the sorter + half-feedback loop emits the exact running average
 * of the four pooled streams.
 */

#ifndef AQFPSC_CORE_STAGES_AQFP_POOL_STAGE_H
#define AQFPSC_CORE_STAGES_AQFP_POOL_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Sorter-based 2x2 average pooling. */
class AqfpPoolStage final : public ScStage
{
  public:
    explicit AqfpPoolStage(const PoolGeometry &geom) : geom_(geom) {}

    std::string name() const override;

    sc::StreamMatrix run(const sc::StreamMatrix &in,
                         StageContext &ctx) const override;

  private:
    PoolGeometry geom_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_AQFP_POOL_STAGE_H
