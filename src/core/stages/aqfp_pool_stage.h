/**
 * @file
 * 2x2 average pooling on the AQFP sorter backend (Algorithm 2, counter
 * form): the sorter + half-feedback loop emits the exact running average
 * of the four pooled streams.
 */

#ifndef AQFPSC_CORE_STAGES_AQFP_POOL_STAGE_H
#define AQFPSC_CORE_STAGES_AQFP_POOL_STAGE_H

#include "stage.h"
#include "stage_common.h"

namespace aqfpsc::core::stages {

/** Sorter-based 2x2 average pooling. */
class AqfpPoolStage final : public ScStage
{
  public:
    /** @param stream_len Engine stream length (sizes the scratch). */
    AqfpPoolStage(const PoolGeometry &geom, std::size_t stream_len)
        : geom_(geom), streamLen_(stream_len)
    {
    }

    std::string name() const override;

    StageFootprint footprint() const override;

    std::unique_ptr<StageScratch> makeScratch() const override;

    void runInto(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch) const override;

    bool resumable() const override { return true; }

    void runSpan(const sc::StreamMatrix &in, sc::StreamMatrix &out,
                 StageContext &ctx, StageScratch *scratch,
                 std::size_t begin, std::size_t end) const override;

  private:
    PoolGeometry geom_;
    std::size_t streamLen_;
};

} // namespace aqfpsc::core::stages

#endif // AQFPSC_CORE_STAGES_AQFP_POOL_STAGE_H
