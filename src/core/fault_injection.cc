#include "core/fault_injection.h"

#include <string>
#include <thread>

namespace aqfpsc::core {

namespace {

/// splitmix64 finalizer: the same stateless mixer the bitstream RNG
/// family uses; good enough to turn (seed, site, key) into an unbiased
/// uniform 64-bit value.
std::uint64_t mix64(std::uint64_t x)
{
    x += 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return x ^ (x >> 31);
}

std::atomic<FaultPlan *> g_plan{nullptr};

} // namespace

const char *faultSiteName(FaultSite site)
{
    switch (site) {
    case FaultSite::WorkerException:
        return "worker-exception";
    case FaultSite::WorkerHang:
        return "worker-hang";
    case FaultSite::WorkerSlowdown:
        return "worker-slowdown";
    case FaultSite::WorkerCrash:
        return "worker-crash";
    case FaultSite::EngineCompile:
        return "engine-compile";
    case FaultSite::ModelLoadCorrupt:
        return "model-load-corrupt";
    case FaultSite::kCount:
        break;
    }
    return "unknown";
}

FaultPlan &FaultPlan::arm(FaultSite site, double probability,
                          std::chrono::milliseconds delay,
                          std::uint64_t maxFires)
{
    SiteState &state = sites_[static_cast<int>(site)];
    state.probability = probability;
    state.delay = delay;
    state.maxFires = maxFires;
    return *this;
}

bool FaultPlan::decides(FaultSite site, std::uint64_t key) const
{
    const SiteState &state = sites_[static_cast<int>(site)];
    if (state.probability <= 0.0)
        return false;
    if (state.probability >= 1.0)
        return true;
    const std::uint64_t h =
        mix64(seed_ ^ mix64((static_cast<std::uint64_t>(site) + 1) * 0x9E3779B97F4A7C15ull ^ key));
    // Map the top 53 bits to [0, 1) — exact in double.
    const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
    return u < state.probability;
}

bool FaultPlan::tryFire(FaultSite site, std::uint64_t key)
{
    if (!decides(site, key))
        return false;
    SiteState &state = sites_[static_cast<int>(site)];
    if (state.maxFires > 0) {
        // CAS loop so fired() counts actual fires: a capped-out attempt
        // must not advance the counter past maxFires.
        std::uint64_t n = state.fired.load();
        while (n < state.maxFires) {
            if (state.fired.compare_exchange_weak(n, n + 1))
                return true;
        }
        return false;
    }
    state.fired.fetch_add(1);
    return true;
}

std::chrono::milliseconds FaultPlan::delay(FaultSite site) const
{
    return sites_[static_cast<int>(site)].delay;
}

std::uint64_t FaultPlan::fired(FaultSite site) const
{
    return sites_[static_cast<int>(site)].fired.load();
}

namespace fault {

void install(FaultPlan *plan) { g_plan.store(plan, std::memory_order_release); }

FaultPlan *activePlan() { return g_plan.load(std::memory_order_acquire); }

bool shouldFire(FaultSite site, std::uint64_t key)
{
    FaultPlan *plan = activePlan();
    return plan != nullptr && plan->tryFire(site, key);
}

void injectThrow(FaultSite site, std::uint64_t key)
{
    if (!shouldFire(site, key))
        return;
    const std::string what = std::string("injected fault at site '") +
                             faultSiteName(site) + "' (key " +
                             std::to_string(key) + ")";
    switch (site) {
    case FaultSite::WorkerCrash:
        throw StatusError(StatusCode::WorkerCrashed, what);
    case FaultSite::EngineCompile:
        throw StatusError(StatusCode::EngineCompileFailed, what);
    default:
        throw StatusError(StatusCode::ExecutionFailed, what);
    }
}

void injectDelay(FaultSite site, std::uint64_t key, const RunControl *control)
{
    FaultPlan *plan = activePlan();
    if (plan == nullptr || !plan->tryFire(site, key))
        return;
    const auto total = plan->delay(site);
    const auto started = std::chrono::steady_clock::now();
    const auto slice = std::chrono::milliseconds{1};
    while (std::chrono::steady_clock::now() - started < total) {
        if (control != nullptr) {
            // Deliberately no poll(): a hung worker must look frozen to
            // the watchdog's beat-based stall detector.
            if (control->cancelRequested())
                throw StatusError(
                    StatusCode::ExecutionFailed,
                    std::string("injected ") + faultSiteName(site) +
                        " aborted by cancellation (key " + std::to_string(key) +
                        ")");
            if (control->expired())
                throw StatusError(
                    StatusCode::Timeout,
                    std::string("request deadline elapsed inside injected ") +
                        faultSiteName(site) + " (key " + std::to_string(key) +
                        ")");
        }
        std::this_thread::sleep_for(slice);
    }
}

} // namespace fault

} // namespace aqfpsc::core
