#include "model_zoo.h"

#include <memory>
#include <stdexcept>

namespace aqfpsc::core {

using nn::AvgPool2;
using nn::Conv2D;
using nn::Dense;
using nn::MajorityChainDense;
using nn::SorterTanh;
using nn::Network;

Network
buildSnn(unsigned seed)
{
    Network net;
    net.add(std::make_unique<Conv2D>(1, 32, 3, seed + 11));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<AvgPool2>());
    net.add(std::make_unique<Conv2D>(32, 32, 3, seed + 22));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<AvgPool2>());
    net.add(std::make_unique<Dense>(7 * 7 * 32, 500, seed + 33));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<Dense>(500, 800, seed + 44));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<MajorityChainDense>(800, 10, seed + 55));
    return net;
}

Network
buildDnn(unsigned seed)
{
    Network net;
    net.add(std::make_unique<Conv2D>(1, 32, 3, seed + 11));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<Conv2D>(32, 32, 3, seed + 22));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<AvgPool2>());
    net.add(std::make_unique<Conv2D>(32, 32, 5, seed + 33));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<Conv2D>(32, 32, 5, seed + 44));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<AvgPool2>());
    net.add(std::make_unique<Conv2D>(32, 64, 7, seed + 55));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<Dense>(7 * 7 * 64, 500, seed + 66));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<Dense>(500, 800, seed + 77));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<MajorityChainDense>(800, 10, seed + 88));
    return net;
}

Network
buildTinyCnn(unsigned seed)
{
    Network net;
    net.add(std::make_unique<Conv2D>(1, 8, 3, seed + 11));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<AvgPool2>());
    net.add(std::make_unique<AvgPool2>());
    // A hidden FC ahead of the chain mirrors the paper's FC800->OutLayer
    // structure: the majority chain's exponentially decaying input
    // weighting needs fully connected features in front of it.
    net.add(std::make_unique<Dense>(7 * 7 * 8, 64, seed + 22));
    net.add(std::make_unique<SorterTanh>());
    net.add(std::make_unique<MajorityChainDense>(64, 10, seed + 33));
    return net;
}

const std::vector<std::string> &
modelNames()
{
    static const std::vector<std::string> names = {"dnn", "snn", "tiny"};
    return names;
}

nn::Network
buildModel(const std::string &name, unsigned seed)
{
    if (name == "snn")
        return buildSnn(seed);
    if (name == "dnn")
        return buildDnn(seed);
    if (name == "tiny")
        return buildTinyCnn(seed);
    std::string msg = "unknown model '" + name + "'; available models: ";
    bool first = true;
    for (const auto &n : modelNames()) {
        if (!first)
            msg += ", ";
        msg += n;
        first = false;
    }
    throw std::invalid_argument(msg);
}

} // namespace aqfpsc::core
