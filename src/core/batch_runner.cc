#include "batch_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <exception>
#include <mutex>
#include <thread>

#include "core/stages/stage_compiler.h"
#include "core/workspace.h"

namespace aqfpsc::core {

namespace {

int
resolveThreadCount(int requested)
{
    if (requested <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        requested = hw == 0 ? 1 : static_cast<int>(hw);
    }
    return std::clamp(requested, 1, 256);
}

} // namespace

BatchRunner::BatchRunner(const ScNetworkEngine &engine, int threads,
                         int cohort)
    : engine_(engine), threads_(resolveThreadCount(threads)),
      cohort_(std::clamp(cohort, 1,
                         static_cast<int>(kMaxCohortImages)))
{
}

void
BatchRunner::forEachCohort(
    std::size_t n, bool progress,
    const std::function<void(CohortWorkspace &, std::size_t, std::size_t)>
        &fn) const
{
    if (n == 0)
        return;

    const std::size_t cohort = static_cast<std::size_t>(cohort_);
    std::atomic<std::size_t> next{0};
    std::atomic<std::size_t> completed{0};
    std::atomic<bool> failed{false};
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex print_mutex;

    // Capture the first failure instead of letting it escape a pooled
    // thread (which would std::terminate the process); rethrown to the
    // caller after the join, matching single-thread semantics.
    auto worker = [&]() {
        try {
            // One arena per worker: scratch + stream buffers are built
            // once here, so the per-cohort loop below never allocates
            // inside the stage pipeline.
            CohortWorkspace workspace(engine_, cohort);
            for (;;) {
                const std::size_t base =
                    next.fetch_add(cohort, std::memory_order_relaxed);
                if (base >= n || failed.load(std::memory_order_relaxed))
                    return;
                const std::size_t count = std::min(cohort, n - base);
                fn(workspace, base, count);
                const std::size_t done =
                    completed.fetch_add(count,
                                        std::memory_order_relaxed) +
                    count;
                if (progress && done / 10 != (done - count) / 10) {
                    const std::lock_guard<std::mutex> lock(print_mutex);
                    std::printf(".");
                    std::fflush(stdout);
                }
            }
        } catch (...) {
            failed.store(true, std::memory_order_relaxed);
            const std::lock_guard<std::mutex> lock(error_mutex);
            if (!error)
                error = std::current_exception();
        }
    };

    const std::size_t cohorts = (n + cohort - 1) / cohort;
    const int workers = static_cast<int>(std::min<std::size_t>(
        static_cast<std::size_t>(threads_), cohorts));
    if (workers <= 1) {
        worker();
    } else {
        std::vector<std::thread> pool;
        pool.reserve(static_cast<std::size_t>(workers));
        for (int t = 0; t < workers; ++t)
            pool.emplace_back(worker);
        for (auto &th : pool)
            th.join();
    }
    if (error)
        std::rethrow_exception(error);
    if (progress)
        std::printf("\n");
}

namespace {

std::size_t
resolveLimit(const std::vector<nn::Sample> &samples, int limit)
{
    return limit < 0 ? samples.size()
                     : std::min<std::size_t>(
                           samples.size(), static_cast<std::size_t>(limit));
}

/** Per-cohort pointer/index tables of the engine cohort entry points. */
struct CohortArgs
{
    const nn::Tensor *images[kMaxCohortImages];
    std::size_t indices[kMaxCohortImages];

    CohortArgs(const std::vector<nn::Sample> &samples, std::size_t base,
               std::size_t count)
    {
        for (std::size_t j = 0; j < count; ++j) {
            images[j] = &samples[base + j].image;
            indices[j] = base + j;
        }
    }
};

} // namespace

std::vector<ScPrediction>
BatchRunner::run(const std::vector<nn::Sample> &samples, int limit,
                 bool progress) const
{
    const std::size_t n = resolveLimit(samples, limit);
    std::vector<ScPrediction> predictions(n);
    forEachCohort(n, progress,
                  [&](CohortWorkspace &workspace, std::size_t base,
                      std::size_t count) {
                      const CohortArgs args(samples, base, count);
                      engine_.inferCohort(args.images, args.indices, count,
                                          workspace, &predictions[base]);
                  });
    return predictions;
}

std::vector<AdaptivePrediction>
BatchRunner::runAdaptive(const std::vector<nn::Sample> &samples,
                         const AdaptivePolicy &policy, int limit,
                         bool progress) const
{
    const std::size_t n = resolveLimit(samples, limit);
    std::vector<AdaptivePrediction> predictions(n);
    forEachCohort(n, progress,
                  [&](CohortWorkspace &workspace, std::size_t base,
                      std::size_t count) {
                      const CohortArgs args(samples, base, count);
                      engine_.inferAdaptiveCohort(args.images, args.indices,
                                                  count, workspace, policy,
                                                  &predictions[base]);
                  });
    return predictions;
}

AdaptiveEvalStats
BatchRunner::evaluateAdaptive(const std::vector<nn::Sample> &samples,
                              const AdaptivePolicy &policy, int limit,
                              bool progress) const
{
    const auto start = std::chrono::steady_clock::now();
    const std::vector<AdaptivePrediction> predictions =
        runAdaptive(samples, policy, limit, progress);
    const auto stop = std::chrono::steady_clock::now();

    AdaptiveEvalStats result;
    result.stats.images = predictions.size();
    result.stats.wallSeconds =
        std::chrono::duration<double>(stop - start).count();
    if (predictions.empty())
        return result;

    std::size_t correct = 0;
    std::size_t cycles = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        if (predictions[i].prediction.label == samples[i].label)
            ++correct;
        cycles += predictions[i].consumedCycles;
        if (predictions[i].exitedEarly)
            ++result.earlyExits;
    }
    result.stats.accuracy = static_cast<double>(correct) /
                            static_cast<double>(predictions.size());
    result.stats.imagesPerSec =
        result.stats.wallSeconds > 0.0
            ? static_cast<double>(predictions.size()) /
                  result.stats.wallSeconds
            : 0.0;
    result.avgConsumedCycles =
        static_cast<double>(cycles) /
        static_cast<double>(predictions.size());
    if (progress) {
        std::printf("accuracy %.4f (%zu images, %.2f img/s, %d threads, "
                    "avg %.0f/%zu cycles, %zu early exits)\n",
                    result.stats.accuracy, result.stats.images,
                    result.stats.imagesPerSec, threads_,
                    result.avgConsumedCycles,
                    engine_.plan().fullRunCycles(), result.earlyExits);
        std::fflush(stdout);
    }
    return result;
}

ScEvalStats
BatchRunner::evaluate(const std::vector<nn::Sample> &samples, int limit,
                      bool progress) const
{
    const auto start = std::chrono::steady_clock::now();
    const std::vector<ScPrediction> predictions =
        run(samples, limit, progress);
    const auto stop = std::chrono::steady_clock::now();

    ScEvalStats stats;
    stats.images = predictions.size();
    stats.wallSeconds =
        std::chrono::duration<double>(stop - start).count();
    if (stats.images == 0)
        return stats;

    std::size_t correct = 0;
    for (std::size_t i = 0; i < predictions.size(); ++i) {
        if (predictions[i].label == samples[i].label)
            ++correct;
    }
    stats.accuracy = static_cast<double>(correct) /
                     static_cast<double>(stats.images);
    stats.imagesPerSec =
        stats.wallSeconds > 0.0
            ? static_cast<double>(stats.images) / stats.wallSeconds
            : 0.0;
    if (progress) {
        std::printf("accuracy %.4f (%zu images, %.2f img/s, %d threads)\n",
                    stats.accuracy, stats.images, stats.imagesPerSec,
                    threads_);
        std::fflush(stdout);
    }
    return stats;
}

} // namespace aqfpsc::core
