#include "precision_tuner.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "core/sc_engine.h"
#include "core/stages/stage_compiler.h"

namespace aqfpsc::core {

namespace {

std::size_t
floorTo64(std::size_t v)
{
    return v / 64 * 64;
}

std::size_t
ceilTo64(std::size_t v)
{
    return (v + 63) / 64 * 64;
}

std::string
lensToString(const std::vector<std::size_t> &lens)
{
    std::string s = "[";
    for (std::size_t i = 0; i < lens.size(); ++i) {
        if (i > 0)
            s += ',';
        s += std::to_string(lens[i]);
    }
    return s + "]";
}

} // namespace

std::vector<std::string>
TuneOptions::validate() const
{
    std::vector<std::string> errors;
    if (std::isnan(maxAccuracyDrop) || maxAccuracyDrop < 0.0 ||
        maxAccuracyDrop > 1.0) {
        errors.push_back(
            "maxAccuracyDrop must be a fraction in [0, 1] (0.005 = 0.5 "
            "percentage points of calibration accuracy)");
    }
    if (minStageLen == 0 ||
        minStageLen > EngineOptions::kMaxStreamLen) {
        errors.push_back(
            "minStageLen " + std::to_string(minStageLen) +
            " out of [1, " +
            std::to_string(EngineOptions::kMaxStreamLen) +
            "]: the floor every stage length is clamped to (rounded up "
            "to a multiple of 64)");
    }
    if (maxPasses < 1) {
        errors.push_back(
            "maxPasses must be >= 1: the search needs at least one "
            "coordinate-descent pass to try any move");
    }
    return errors;
}

PrecisionTuner::PrecisionTuner(const nn::Network &net, EngineOptions opts)
    : net_(net), opts_(std::move(opts))
{
    opts_.validateOrThrow();
}

TuneResult
PrecisionTuner::tune(const std::vector<nn::Sample> &calibration,
                     const TuneOptions &topts) const
{
    {
        const std::vector<std::string> errors = topts.validate();
        if (!errors.empty()) {
            std::string msg = "invalid TuneOptions: ";
            for (std::size_t i = 0; i < errors.size(); ++i)
                msg += (i ? "; " : "") + errors[i];
            throw std::invalid_argument(msg);
        }
    }
    if (calibration.empty())
        throw std::invalid_argument(
            "PrecisionTuner::tune: calibration set is empty — accuracy "
            "moves cannot be judged without samples");

    EvalOptions eo;
    eo.limit = topts.limit;

    TuneResult result;

    // Uniform baseline: the session options as-is (scalar streamLen or
    // an explicit starting vector).  Its accuracy anchors the budget and
    // its throughput the reported speedup.
    const ScEngineConfig baseCfg = opts_.toConfig();
    const ScEvalStats baseStats = [&] {
        const ScNetworkEngine baseline(net_, baseCfg);
        result.baselineStageStreamLens = baseline.plan().stageStreamLens;
        return baseline.evaluate(calibration, eo);
    }();
    ++result.evaluations;
    result.baselineAccuracy = baseStats.accuracy;
    result.baselineImagesPerSec = baseStats.imagesPerSec;

    const std::size_t minLen =
        std::max<std::size_t>(64, ceilTo64(topts.minStageLen));

    // Starting point: the resolved baseline vector, floored to word
    // alignment so every candidate is a valid explicit vector (a scalar
    // streamLen need not be a multiple of 64; explicit vectors must be).
    std::vector<std::size_t> cur = result.baselineStageStreamLens;
    for (std::size_t &l : cur)
        l = std::max(minLen, floorTo64(l));
    for (std::size_t s = 1; s < cur.size(); ++s)
        cur[s] = std::min(cur[s], cur[s - 1]);

    const auto evaluate = [&](const std::vector<std::size_t> &lens) {
        ScEngineConfig cfg = baseCfg;
        cfg.streamLen = lens.front();
        cfg.stageStreamLens = lens;
        const ScNetworkEngine engine(net_, cfg);
        ++result.evaluations;
        return engine.evaluate(calibration, eo);
    };

    double curAcc = baseStats.accuracy;
    double curImagesPerSec = baseStats.imagesPerSec;
    if (cur != result.baselineStageStreamLens) {
        const ScEvalStats s = evaluate(cur);
        curAcc = s.accuracy;
        curImagesPerSec = s.imagesPerSec;
    }

    // Coordinate descent: per stage, try halving (downstream entries cap
    // to the new value to keep the vector non-increasing); accept when
    // calibration accuracy stays within the budget of the baseline.
    // Halving only ever shortens streams, so accepted moves are
    // monotonically faster — accuracy is the lone acceptance test.
    const double budget = topts.maxAccuracyDrop + 1e-12;
    for (int pass = 0; pass < topts.maxPasses; ++pass) {
        bool accepted = false;
        for (std::size_t s = 0; s < cur.size(); ++s) {
            std::size_t halved = floorTo64(cur[s] / 2);
            if (halved < minLen)
                halved = minLen;
            if (halved >= cur[s])
                continue;
            std::vector<std::size_t> cand = cur;
            cand[s] = halved;
            for (std::size_t t = s + 1; t < cand.size(); ++t)
                cand[t] = std::min(cand[t], halved);
            const ScEvalStats stats = evaluate(cand);
            const bool keep =
                result.baselineAccuracy - stats.accuracy <= budget;
            if (topts.verbose) {
                std::printf("tune: pass %d stage %zu %s acc %.4f "
                            "(baseline %.4f) -> %s\n",
                            pass + 1, s, lensToString(cand).c_str(),
                            stats.accuracy, result.baselineAccuracy,
                            keep ? "accept" : "reject");
                std::fflush(stdout);
            }
            if (keep) {
                cur = std::move(cand);
                curAcc = stats.accuracy;
                curImagesPerSec = stats.imagesPerSec;
                accepted = true;
            }
        }
        ++result.passes;
        if (!accepted)
            break;
    }

    result.stageStreamLens = std::move(cur);
    result.tunedAccuracy = curAcc;
    result.tunedImagesPerSec = curImagesPerSec;
    result.speedup = result.baselineImagesPerSec > 0.0
                         ? result.tunedImagesPerSec /
                               result.baselineImagesPerSec
                         : 1.0;
    return result;
}

TuneResult
InferenceSession::tune(const std::vector<nn::Sample> &calibration,
                       const TuneOptions &opts,
                       const std::string &backend) const
{
    EngineOptions engineOpts = opts_;
    if (!backend.empty())
        engineOpts.backend = backend;
    return PrecisionTuner(net_, engineOpts).tune(calibration, opts);
}

} // namespace aqfpsc::core
