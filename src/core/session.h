/**
 * @file
 * InferenceSession: the serving façade of the framework.
 *
 * A session owns one trained model (an nn::Network, typically loaded
 * from a saveModel artifact) plus lazily-compiled per-backend engines,
 * so the same model can be served on "aqfp-sorter", "cmos-apc",
 * "float-ref" or any backend registered in core::BackendRegistry without
 * recompiling more than once per backend.  Callers never wire
 * train -> quantize -> ScEngineConfig -> ScNetworkEngine -> BatchRunner
 * by hand any more:
 *
 *   core::EngineOptions opts;
 *   opts.backend = "aqfp-sorter";
 *   opts.threads = 0; // one worker per hardware thread
 *   core::InferenceSession session(std::move(net), opts);
 *   core::ScEvalStats s = session.evaluate(test, {.limit = 60});
 *   core::ScPrediction p = session.infer(image, "cmos-apc");
 *
 * EngineOptions::validate() front-loads configuration errors with
 * actionable messages (unknown backend -> the registered names; bad
 * streamLen/rngBits/threads -> why the value is out of range).
 *
 * Thread safety: all const methods — infer/predict/evaluate, the
 * adaptive variants, engine(), compiledBackends() — may be called
 * concurrently from any number of threads; first-use engine compilation
 * is internally synchronized (two racing compiles of one backend both
 * run, the first registration wins).  Construction/destruction must not
 * overlap other calls.
 *
 * Determinism: every prediction is a pure function of (model, options,
 * backend, image, image index) — independent of thread count, batch
 * size, call order, and which entry point computed it.  Adaptive calls
 * with a deterministic policy are bit-identical to the non-adaptive
 * path over the cycles they consume (see AdaptivePolicy).
 */

#ifndef AQFPSC_CORE_SESSION_H
#define AQFPSC_CORE_SESSION_H

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/plan_cache.h"
#include "core/sc_engine.h"
#include "nn/network.h"

namespace aqfpsc::core {

struct TuneOptions;
struct TuneResult;

/**
 * Validated session/engine configuration, keyed by backend registry
 * name.  The one source of truth for worker threads: engines compile
 * with EngineOptions::threads and evaluate() uses it unless an
 * EvalOptions override asks otherwise.
 */
struct EngineOptions
{
    std::string backend = "aqfp-sorter"; ///< BackendRegistry name
    std::size_t streamLen = 1024;        ///< stochastic stream length N
    /** Per-stage stream lengths (mixed stream-length precision).  Empty
     *  = uniform at streamLen (bit-identical to the scalar config).
     *  Non-empty vectors must be word-aligned (multiples of 64) and
     *  non-increasing in execution order — stages consume the prefix of
     *  longer upstream streams — with one entry per compiled stage (the
     *  stage-count check happens at compile time, when the network is
     *  known).  Produced by core::PrecisionTuner / InferenceSession::
     *  tune(), or set by hand (CLI --stage-lens). */
    std::vector<std::size_t> stageStreamLens;
    int rngBits = 10;                    ///< SNG code width
    std::uint64_t seed = 123;            ///< randomness seed
    int threads = 1;                     ///< workers (0 = one per hw thread)
    /** Images per stage-major execution cohort: each worker pushes up to
     *  this many images through every stage together, amortizing weight-
     *  stream traversal.  Bit-identical results at any value. */
    int cohort = 1;
    bool approximateApc = false;         ///< cmos-apc: OR-pair first layer
    /** Early-exit policy of the session's adaptive entry points
     *  (inferAdaptive/evaluateAdaptive, core::InferenceServer);
     *  non-adaptive calls ignore it.  Validated with the rest. */
    AdaptivePolicy adaptive;

    /** Hard bounds validate() enforces. */
    static constexpr std::size_t kMinStreamLen = 8;
    static constexpr std::size_t kMaxStreamLen = std::size_t{1} << 22;
    static constexpr int kMaxRngBits = 24;
    static constexpr int kMaxThreads = 256; ///< BatchRunner's clamp
    static constexpr int kMaxCohort = 64;   ///< == stages' kMaxCohortImages

    /**
     * All configuration errors, each one actionable; empty means valid.
     * Unknown backends list the registered names; numeric violations
     * say which bound was broken and why it exists.
     */
    std::vector<std::string> validate() const;

    /** @throws std::invalid_argument joining validate() errors. */
    void validateOrThrow() const;

    /** Lower to the engine config, optionally overriding the backend. */
    ScEngineConfig toConfig(const std::string &backendOverride = {}) const;
};

/** One trained model served through lazily-compiled per-backend engines. */
class InferenceSession
{
  public:
    /**
     * Take ownership of @p net and validate @p opts.
     * @throws std::invalid_argument on invalid options.
     */
    explicit InferenceSession(nn::Network net, EngineOptions opts = {});

    /** Serve a saveModel artifact.  @throws std::runtime_error on bad
     *  files, std::invalid_argument on bad options. */
    static InferenceSession fromFile(const std::string &path,
                                     EngineOptions opts = {});

    /** Serve a freshly built (untrained) zoo model ("snn", "dnn",
     *  "tiny").  @throws std::invalid_argument on unknown names. */
    static InferenceSession fromZoo(const std::string &model,
                                    EngineOptions opts = {},
                                    unsigned buildSeed = 1);

    InferenceSession(const InferenceSession &) = delete;
    InferenceSession &operator=(const InferenceSession &) = delete;

    /** The owned model. */
    const nn::Network &network() const { return net_; }

    /** Session options (every engine compiles from these). */
    const EngineOptions &options() const { return opts_; }

    /**
     * Run one image (engine seed, batch index 0).
     * @param backend Registry name; empty = options().backend.
     */
    ScPrediction infer(const nn::Tensor &image,
                       const std::string &backend = {}) const;

    /** Batched per-image predictions in sample order. */
    std::vector<ScPrediction>
    predict(const std::vector<nn::Sample> &samples,
            const EvalOptions &opts = {},
            const std::string &backend = {}) const;

    /**
     * THE evaluation entry point: accuracy + timing over (a prefix of)
     * @p samples, fanned across options().threads workers unless
     * @p opts overrides.
     */
    ScEvalStats evaluate(const std::vector<nn::Sample> &samples,
                         const EvalOptions &opts = {},
                         const std::string &backend = {}) const;

    /**
     * Adaptive early-exit inference of one image under
     * options().adaptive (engine seed, batch index 0).  Thread-safe.
     * @throws std::invalid_argument if the backend has non-resumable
     *         stages (e.g. "float-ref").
     */
    AdaptivePrediction inferAdaptive(const nn::Tensor &image,
                                     const std::string &backend = {}) const;

    /**
     * Batched adaptive evaluation under options().adaptive: evaluate()
     * plus mean consumed stream cycles and the early-exit count.
     * Deterministic policies are bit-identical for any thread count.
     * @throws std::invalid_argument like inferAdaptive().
     */
    AdaptiveEvalStats
    evaluateAdaptive(const std::vector<nn::Sample> &samples,
                     const EvalOptions &opts = {},
                     const std::string &backend = {}) const;

    /**
     * The compiled engine of @p backend (empty = options().backend),
     * compiling it on first use.  Thread-safe; the reference stays valid
     * for the session's lifetime.
     * @throws std::invalid_argument for unregistered backends.
     */
    const ScNetworkEngine &engine(const std::string &backend = {}) const;

    /** Backends compiled so far (sorted). */
    std::vector<std::string> compiledBackends() const;

    /**
     * Search a per-stage stream-length vector that maximizes throughput
     * within @p opts 's accuracy budget on @p calibration, starting from
     * this session's options (see core::PrecisionTuner for the
     * coordinate-descent algorithm).  The session itself is not
     * modified — apply the result by constructing a new session (or
     * engine) with EngineOptions::stageStreamLens = result vector.
     * Thread-safe like the evaluation entry points.
     * @throws std::invalid_argument on empty calibration sets or
     *         non-resumable backends being asked for adaptive scoring.
     */
    TuneResult tune(const std::vector<nn::Sample> &calibration,
                    const TuneOptions &opts,
                    const std::string &backend = {}) const;

    /**
     * Counters of the process-wide core::PlanCache every session's
     * engine compiles route through (a convenience forward of
     * PlanCache::instance().stats(): the cache is shared by all
     * sessions, not per-session).  Serving health endpoints surface
     * these to show cross-tenant plan/weight sharing.
     */
    static PlanCacheStats planCacheStats();

    /** Persist the model as a versioned artifact.  @return success. */
    bool save(const std::string &path) const
    {
        return net_.saveModel(path);
    }

  private:
    nn::Network net_;
    EngineOptions opts_;
    mutable std::mutex mutex_;
    mutable std::map<std::string, std::unique_ptr<ScNetworkEngine>>
        engines_;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_SESSION_H
