#include "plan_cache.h"

#include <cstdlib>
#include <cstring>

#include "core/stages/stage_compiler.h"

namespace aqfpsc::core {

namespace {

/** FNV-1a over a byte range. */
std::size_t
fnv1a(const void *data, std::size_t n, std::size_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001B3ULL;
    }
    return h;
}

constexpr std::size_t kFnvBasis = 0xCBF29CE484222325ULL;

/**
 * Hash a float sequence consistently with vector<float> equality:
 * +0.0f and -0.0f compare equal but differ in bits, so zeros hash as
 * +0.0f.  (NaN payloads never compare equal, so their hashes are free.)
 */
std::size_t
hashFloats(const std::vector<float> &v, std::size_t h)
{
    for (float f : v) {
        const float canon = f == 0.0f ? 0.0f : f;
        std::uint32_t bits;
        std::memcpy(&bits, &canon, sizeof bits);
        h = fnv1a(&bits, sizeof bits, h);
    }
    return h;
}

std::size_t
hashString(const std::string &s, std::size_t h)
{
    return fnv1a(s.data(), s.size(), h);
}

bool
envDisabled()
{
    const char *v = std::getenv("AQFPSC_DISABLE_PLAN_CACHE");
    return v != nullptr && v[0] != '\0' &&
           !(v[0] == '0' && v[1] == '\0');
}

} // namespace

std::size_t
PlanCache::StageSpecHash::operator()(const StageSpec &s) const
{
    std::size_t h = kFnvBasis;
    h = hashString(s.backend, h);
    const std::uint8_t kind = static_cast<std::uint8_t>(s.kind);
    h = fnv1a(&kind, sizeof kind, h);
    h = fnv1a(s.dims.data(), s.dims.size() * sizeof(int), h);
    h = fnv1a(&s.activation, sizeof s.activation, h);
    const std::uint8_t flags = static_cast<std::uint8_t>(
        (s.majorityChain ? 1 : 0) | (s.approximateApc ? 2 : 0));
    h = fnv1a(&flags, sizeof flags, h);
    h = fnv1a(&s.streamLen, sizeof s.streamLen, h);
    h = fnv1a(&s.rngBits, sizeof s.rngBits, h);
    h = fnv1a(s.rngState.data(),
              s.rngState.size() * sizeof(std::uint64_t), h);
    h = hashFloats(s.weights, h);
    h = hashFloats(s.biases, h);
    return h;
}

std::size_t
PlanCache::PlanSpecHash::operator()(const PlanSpec &s) const
{
    std::size_t h = kFnvBasis;
    h = hashString(s.backend, h);
    h = fnv1a(&s.streamLen, sizeof s.streamLen, h);
    const std::uint64_t nLens = s.stageStreamLens.size();
    h = fnv1a(&nLens, sizeof nLens, h);
    h = fnv1a(s.stageStreamLens.data(),
              s.stageStreamLens.size() * sizeof(std::uint64_t), h);
    h = fnv1a(&s.rngBits, sizeof s.rngBits, h);
    h = fnv1a(&s.seed, sizeof s.seed, h);
    const std::uint8_t flags = s.approximateApc ? 1 : 0;
    h = fnv1a(&flags, sizeof flags, h);
    h = hashString(s.architecture, h);
    h = hashFloats(s.params, h);
    return h;
}

PlanCache::PlanCache() : enabled_(!envDisabled()) {}

PlanCache &
PlanCache::instance()
{
    static PlanCache cache;
    return cache;
}

bool
PlanCache::enabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return enabled_;
}

void
PlanCache::setEnabled(bool enabled)
{
    std::lock_guard<std::mutex> lock(mu_);
    enabled_ = enabled;
}

template <typename Map>
void
PlanCache::purgeExpired(Map &map)
{
    for (auto it = map.begin(); it != map.end();) {
        if (it->second.expired()) {
            it = map.erase(it);
            ++evictions_;
        } else {
            ++it;
        }
    }
}

std::shared_ptr<const stages::StageShared>
PlanCache::internStage(
    const StageSpec &spec,
    const std::function<std::shared_ptr<const stages::StageShared>()>
        &build)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (enabled_) {
            auto it = stageMap_.find(spec);
            if (it != stageMap_.end()) {
                if (auto live = it->second.lock()) {
                    ++stageHits_;
                    return live;
                }
                stageMap_.erase(it);
                ++evictions_;
            }
        }
    }
    // Build outside the lock: stream generation is the expensive part,
    // and a plan build re-enters the cache for its stages.
    auto built = build();
    std::lock_guard<std::mutex> lock(mu_);
    ++stageMisses_;
    if (!enabled_)
        return built;
    auto [it, inserted] = stageMap_.emplace(spec, built);
    if (!inserted) {
        // Raced an identical build: adopt the first-inserted object so
        // equal specs always yield pointer-equal shared state.
        if (auto live = it->second.lock())
            return live;
        it->second = built;
    }
    return built;
}

std::shared_ptr<const stages::ExecutionPlan>
PlanCache::internPlan(
    const PlanSpec &spec,
    const std::function<std::shared_ptr<const stages::ExecutionPlan>()>
        &build)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (enabled_) {
            auto it = planMap_.find(spec);
            if (it != planMap_.end()) {
                if (auto live = it->second.lock()) {
                    ++planHits_;
                    return live;
                }
                planMap_.erase(it);
                ++evictions_;
            }
        }
    }
    auto built = build();
    std::lock_guard<std::mutex> lock(mu_);
    ++planMisses_;
    if (!enabled_)
        return built;
    auto [it, inserted] = planMap_.emplace(spec, built);
    if (!inserted) {
        if (auto live = it->second.lock())
            return live;
        it->second = built;
    }
    return built;
}

PlanCacheStats
PlanCache::stats()
{
    std::lock_guard<std::mutex> lock(mu_);
    purgeExpired(stageMap_);
    purgeExpired(planMap_);
    PlanCacheStats s;
    s.planHits = planHits_;
    s.planMisses = planMisses_;
    s.stageHits = stageHits_;
    s.stageMisses = stageMisses_;
    s.hits = planHits_ + stageHits_;
    s.misses = planMisses_ + stageMisses_;
    s.evictions = evictions_;
    s.residentPlans = planMap_.size();
    s.residentStages = stageMap_.size();
    for (const auto &[spec, weak] : stageMap_) {
        if (auto live = weak.lock())
            s.residentBytes += live->bytes;
    }
    return s;
}

void
PlanCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    stageMap_.clear();
    planMap_.clear();
    planHits_ = planMisses_ = stageHits_ = stageMisses_ = evictions_ = 0;
}

} // namespace aqfpsc::core
