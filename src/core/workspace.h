/**
 * @file
 * Per-thread inference arenas: all mutable buffers a worker needs to
 * push images through a compiled stage graph without allocating.
 *
 * Both arenas are sized up front from the engine's ExecutionPlan (the
 * graph-level buffer plan compileNetwork emits): each image slot owns
 *
 *  - the SNG-encoded input stream matrix,
 *  - two ping-pong activation StreamMatrix buffers (stage s reads what
 *    stage s-1 wrote and overwrites the other buffer; rows come from the
 *    plan's per-parity high-water marks, so even the first image
 *    allocates nothing for them),
 *  - one StageScratch per stage (column counters, feedback units, ...),
 *  - a reusable StageContext.
 *
 * StageWorkspace is the single-image arena of the per-image entry
 * points; CohortWorkspace holds capacity() slots plus the slot-view
 * table stage-major cohort execution (ScNetworkEngine::inferCohort /
 * inferAdaptiveCohort) threads through ScStage::runCohortSpan.
 *
 * Thread safety: an arena is NOT thread-safe — one arena per worker
 * thread (core::BatchRunner and core::InferenceServer construct exactly
 * that), at most one inference/cohort through it at a time.  Distinct
 * arenas of one engine run concurrently without restriction.
 *
 * Determinism: results never depend on arena reuse, on which arena
 * served an image, or on which slot of a cohort an image occupied —
 * every row of every buffer (and every per-stage scratch) is fully
 * overwritten or re-armed before it is read, for full-stream,
 * checkpointed (adaptive) and cohort execution alike.
 */

#ifndef AQFPSC_CORE_WORKSPACE_H
#define AQFPSC_CORE_WORKSPACE_H

#include <memory>
#include <vector>

#include "core/stages/stage.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core {

class ScNetworkEngine;

/** Reusable per-worker buffers of one engine's single-image loop. */
class StageWorkspace
{
  public:
    /** Build scratch for every stage of @p engine and pre-size the
     *  ping-pong buffers from the execution plan.
     *  @param engine Must outlive the workspace. */
    explicit StageWorkspace(const ScNetworkEngine &engine);

    StageWorkspace(const StageWorkspace &) = delete;
    StageWorkspace &operator=(const StageWorkspace &) = delete;

    /** The engine this workspace serves. */
    const ScNetworkEngine &engine() const { return engine_; }

  private:
    friend class ScNetworkEngine;

    const ScNetworkEngine &engine_;
    sc::StreamMatrix input_;            ///< per-image SNG input streams
    sc::StreamMatrix pingPong_[2];      ///< stage activation buffers
    std::vector<std::unique_ptr<StageScratch>> scratch_; ///< per stage
    StageContext ctx_;                  ///< reused per-image context
};

/**
 * Per-worker arena of stage-major cohort execution: capacity() image
 * slots, each a full single-image arena (input + ping-pong buffers +
 * per-stage scratch + context), built once from the execution plan.
 */
class CohortWorkspace
{
  public:
    /**
     * @param engine Must outlive the workspace.
     * @param capacity Image slots, clamped to [1, kMaxCohortImages].
     */
    CohortWorkspace(const ScNetworkEngine &engine, std::size_t capacity);

    CohortWorkspace(const CohortWorkspace &) = delete;
    CohortWorkspace &operator=(const CohortWorkspace &) = delete;

    /** The engine this workspace serves. */
    const ScNetworkEngine &engine() const { return engine_; }

    /** Largest cohort one inferCohort() call may execute. */
    std::size_t capacity() const { return slots_.size(); }

  private:
    friend class ScNetworkEngine;

    /** One image's buffers and state. */
    struct Slot
    {
        sc::StreamMatrix input;
        sc::StreamMatrix pingPong[2];
        std::vector<std::unique_ptr<StageScratch>> scratch; ///< per stage
        StageContext ctx;
    };

    const ScNetworkEngine &engine_;
    std::vector<Slot> slots_;
    /** Per-stage slot views, rebuilt per dispatch (capacity() entries). */
    std::vector<CohortSlot> views_;
    /** Active slot indices of an adaptive cohort (in-place compaction). */
    std::vector<std::size_t> active_;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_WORKSPACE_H
