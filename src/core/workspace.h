/**
 * @file
 * Per-thread inference arena: all mutable buffers one worker needs to
 * push images through a compiled stage graph without allocating.
 *
 * A StageWorkspace is bound to one ScNetworkEngine.  It owns
 *
 *  - the SNG-encoded input stream matrix,
 *  - two ping-pong activation StreamMatrix buffers that stages
 *    runInto() alternately (pre-sized from the stages' declared
 *    footprints, so even the first image allocates nothing for them),
 *  - one StageScratch per stage (column counters, feedback units, ...),
 *  - the reusable StageContext.
 *
 * Buffers only ever grow; after the first image every
 * ScNetworkEngine::inferIndexed(image, index, workspace) call is
 * heap-allocation-free through the whole stage pipeline.
 *
 * Thread safety: a workspace is NOT thread-safe — one workspace per
 * worker thread (core::BatchRunner and core::InferenceServer construct
 * exactly that), and at most one inference may run through it at a
 * time.  Distinct workspaces of one engine run concurrently without
 * restriction.
 *
 * Determinism: results never depend on workspace reuse or on which
 * workspace served an image — every row of every buffer (and every
 * per-stage scratch) is fully overwritten or re-armed before it is
 * read, for both full-stream and checkpointed (adaptive) execution.
 * Interleaving adaptive and non-adaptive calls through one workspace is
 * equally clean (tests/test_adaptive.cc).
 */

#ifndef AQFPSC_CORE_WORKSPACE_H
#define AQFPSC_CORE_WORKSPACE_H

#include <memory>
#include <vector>

#include "core/stages/stage.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core {

class ScNetworkEngine;

/** Reusable per-worker buffers of one engine's inference loop. */
class StageWorkspace
{
  public:
    /** Build scratch for every stage of @p engine and pre-size the
     *  ping-pong buffers from the declared stage footprints.
     *  @param engine Must outlive the workspace. */
    explicit StageWorkspace(const ScNetworkEngine &engine);

    StageWorkspace(const StageWorkspace &) = delete;
    StageWorkspace &operator=(const StageWorkspace &) = delete;

    /** The engine this workspace serves. */
    const ScNetworkEngine &engine() const { return engine_; }

  private:
    friend class ScNetworkEngine;

    const ScNetworkEngine &engine_;
    sc::StreamMatrix input_;            ///< per-image SNG input streams
    sc::StreamMatrix pingPong_[2];      ///< stage activation buffers
    std::vector<std::unique_ptr<StageScratch>> scratch_; ///< per stage
    StageContext ctx_;                  ///< reused per-image context
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_WORKSPACE_H
