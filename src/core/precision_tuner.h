/**
 * @file
 * PrecisionTuner: accuracy-targeted search over per-stage stream lengths.
 *
 * The SC stream-length trade-off (error ~ 1/sqrt(N), latency ~ N) is a
 * per-stage knob once the ExecutionPlan carries a length vector
 * (ScEngineConfig::stageStreamLens): early feature-extraction stages
 * tolerate far shorter streams than the terminal categorization stage.
 * The tuner automates the search: starting from the uniform vector of
 * the session's streamLen, a coordinate-descent loop repeatedly tries to
 * halve one stage's length (capping every downstream entry to keep the
 * vector non-increasing, as the prefix-consumption contract requires),
 * keeps the move when calibration accuracy stays within the caller's
 * budget, and stops after a full pass with no accepted move (or
 * TuneOptions::maxPasses).  Halving a word-aligned length preserves
 * word alignment down to the 64-cycle floor, so every candidate is a
 * valid EngineOptions::stageStreamLens value.
 *
 * Candidate evaluation compiles a throwaway engine per vector; the
 * process-wide core::PlanCache interns each stage's weight streams by
 * (spec, length), so candidates sharing stage lengths — which
 * coordinate descent produces constantly — reuse each other's streams
 * and candidate compiles stay cheap.
 *
 * Determinism: with a fixed calibration set the search is a pure
 * function of (network, options, TuneOptions) — evaluation is the
 * bit-deterministic engine path, so the same inputs always return the
 * same vector.
 *
 * Entry points: PrecisionTuner::tune() here, InferenceSession::tune()
 * as the session-level convenience, and the CLI `tune` subcommand.
 */

#ifndef AQFPSC_CORE_PRECISION_TUNER_H
#define AQFPSC_CORE_PRECISION_TUNER_H

#include <cstddef>
#include <string>
#include <vector>

#include "core/session.h"
#include "nn/network.h"

namespace aqfpsc::core {

/** Search budget and acceptance policy of a tuner run. */
struct TuneOptions
{
    /**
     * Largest tolerated calibration-accuracy drop versus the uniform
     * baseline, as a fraction (0.005 = 0.5 percentage points).  A move
     * that drops accuracy further is rejected and the stage keeps its
     * previous length.
     */
    double maxAccuracyDrop = 0.005;

    /** Shortest length the search will assign any stage (clamped to a
     *  positive multiple of 64, the word-aligned floor). */
    std::size_t minStageLen = 64;

    /** Upper bound on full coordinate-descent passes; the search also
     *  stops at the first pass with no accepted move. */
    int maxPasses = 8;

    /** Calibration prefix to evaluate per candidate (-1 = all). */
    int limit = -1;

    /** Print per-move progress lines to stdout. */
    bool verbose = false;

    /** All option errors, each actionable; empty means valid. */
    std::vector<std::string> validate() const;
};

/** Outcome of a tuner run.  Accuracies are fractions in [0, 1]. */
struct TuneResult
{
    /** The tuned per-stage length vector (word-aligned,
     *  non-increasing); feed it to EngineOptions::stageStreamLens. */
    std::vector<std::size_t> stageStreamLens;
    /** The uniform starting vector the search descended from. */
    std::vector<std::size_t> baselineStageStreamLens;
    double baselineAccuracy = 0.0; ///< uniform baseline on calibration
    double tunedAccuracy = 0.0;    ///< tuned vector on calibration
    double baselineImagesPerSec = 0.0;
    double tunedImagesPerSec = 0.0;
    /** tunedImagesPerSec / baselineImagesPerSec (1.0 when unmeasured). */
    double speedup = 1.0;
    std::size_t evaluations = 0; ///< candidate engines evaluated
    int passes = 0;              ///< coordinate-descent passes completed
};

/**
 * The coordinate-descent searcher.  Borrows the network (the caller —
 * typically an InferenceSession — must keep it alive for the tuner's
 * lifetime) and copies the options; tune() is const and
 * thread-compatible (distinct tuners may run concurrently — they share
 * only the thread-safe PlanCache).
 */
class PrecisionTuner
{
  public:
    /** @throws std::invalid_argument on invalid @p opts (the same
     *  validation InferenceSession applies). */
    PrecisionTuner(const nn::Network &net, EngineOptions opts);

    /**
     * Run the search on @p calibration and return the fastest vector
     * found within the accuracy budget (plus the measurements the
     * decision was based on).
     * @throws std::invalid_argument on empty calibration sets or
     *         invalid @p topts.
     */
    TuneResult tune(const std::vector<nn::Sample> &calibration,
                    const TuneOptions &topts = {}) const;

  private:
    const nn::Network &net_;
    EngineOptions opts_;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_PRECISION_TUNER_H
