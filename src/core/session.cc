#include "session.h"

#include <stdexcept>
#include <utility>

#include "core/backend_registry.h"
#include "core/model_zoo.h"

namespace aqfpsc::core {

// validate() promises exactly the bound the execution layer clamps to.
static_assert(EngineOptions::kMaxCohort ==
                  static_cast<int>(kMaxCohortImages),
              "EngineOptions::kMaxCohort must match stage.h's "
              "kMaxCohortImages");

std::vector<std::string>
EngineOptions::validate() const
{
    std::vector<std::string> errors;
    const BackendRegistry &registry = BackendRegistry::instance();
    if (!registry.has(backend))
        errors.push_back(registry.unknownBackendMessage(backend));
    if (streamLen < kMinStreamLen || streamLen > kMaxStreamLen) {
        errors.push_back(
            "streamLen " + std::to_string(streamLen) + " out of [" +
            std::to_string(kMinStreamLen) + ", " +
            std::to_string(kMaxStreamLen) +
            "]: below the minimum a stream cannot resolve bipolar values "
            "(SC error scales as 1/sqrt(N)); above the maximum the "
            "per-layer stream matrices exhaust memory");
    }
    if (rngBits < 1 || rngBits > kMaxRngBits) {
        errors.push_back(
            "rngBits " + std::to_string(rngBits) + " out of [1, " +
            std::to_string(kMaxRngBits) +
            "]: the SNG quantizes values to a 2^bits code compared "
            "against a bits-wide RNG draw each cycle");
    }
    if (threads < 0 || threads > kMaxThreads) {
        errors.push_back(
            "threads " + std::to_string(threads) + " out of [0, " +
            std::to_string(kMaxThreads) +
            "]: 0 means one worker per hardware thread; the batch "
            "runner clamps worker pools at " + std::to_string(kMaxThreads));
    }
    if (cohort < 1 || cohort > kMaxCohort) {
        errors.push_back(
            "cohort " + std::to_string(cohort) + " out of [1, " +
            std::to_string(kMaxCohort) +
            "]: the stage-major kernel cores keep per-cohort pointer "
            "tables on the stack, so cohorts are bounded; larger batches "
            "simply run as several cohorts");
    }
    for (std::size_t s = 0; s < stageStreamLens.size(); ++s) {
        const std::size_t len = stageStreamLens[s];
        if (len == 0 || len % 64 != 0) {
            errors.push_back(
                "stageStreamLens[" + std::to_string(s) + "] = " +
                std::to_string(len) +
                " must be a positive multiple of 64: checkpointed spans "
                "and the packed-stream kernels work in 64-bit words");
            continue;
        }
        if (len > kMaxStreamLen) {
            errors.push_back(
                "stageStreamLens[" + std::to_string(s) + "] = " +
                std::to_string(len) + " exceeds the maximum stream "
                "length " + std::to_string(kMaxStreamLen) +
                ": per-layer stream matrices exhaust memory beyond it");
        }
        if (s > 0 && len > stageStreamLens[s - 1]) {
            errors.push_back(
                "stageStreamLens must be non-increasing in execution "
                "order (a stage consumes the prefix of longer upstream "
                "streams, so no stage may outlive its producer); entry " +
                std::to_string(s) + " = " + std::to_string(len) +
                " exceeds entry " + std::to_string(s - 1) + " = " +
                std::to_string(stageStreamLens[s - 1]));
        }
    }
    for (const std::string &e : adaptive.validate())
        errors.push_back("adaptive: " + e);
    return errors;
}

void
EngineOptions::validateOrThrow() const
{
    const std::vector<std::string> errors = validate();
    if (errors.empty())
        return;
    std::string msg = "invalid EngineOptions: ";
    for (std::size_t i = 0; i < errors.size(); ++i) {
        if (i > 0)
            msg += "; ";
        msg += errors[i];
    }
    throw std::invalid_argument(msg);
}

ScEngineConfig
EngineOptions::toConfig(const std::string &backendOverride) const
{
    ScEngineConfig cfg;
    cfg.streamLen = streamLen;
    cfg.stageStreamLens = stageStreamLens;
    cfg.rngBits = rngBits;
    cfg.seed = seed;
    cfg.threads = threads;
    cfg.cohort = cohort;
    cfg.approximateApc = approximateApc;
    cfg.backendName = backendOverride.empty() ? backend : backendOverride;
    return cfg;
}

InferenceSession::InferenceSession(nn::Network net, EngineOptions opts)
    : net_(std::move(net)), opts_(std::move(opts))
{
    opts_.validateOrThrow();
}

InferenceSession
InferenceSession::fromFile(const std::string &path, EngineOptions opts)
{
    return InferenceSession(nn::Network::loadModel(path), std::move(opts));
}

InferenceSession
InferenceSession::fromZoo(const std::string &model, EngineOptions opts,
                          unsigned buildSeed)
{
    return InferenceSession(buildModel(model, buildSeed), std::move(opts));
}

const ScNetworkEngine &
InferenceSession::engine(const std::string &backend) const
{
    const std::string name = backend.empty() ? opts_.backend : backend;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = engines_.find(name);
        if (it != engines_.end())
            return *it->second;
    }
    if (!BackendRegistry::instance().has(name))
        throw std::invalid_argument(
            BackendRegistry::instance().unknownBackendMessage(name));
    // Compile outside the lock: stream generation for a large network
    // takes seconds, and serving calls on already-compiled backends must
    // not stall behind it.  Two threads racing on the same first use
    // both compile; emplace keeps the first and drops the duplicate.
    auto compiled =
        std::make_unique<ScNetworkEngine>(net_, opts_.toConfig(name));
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto [it, inserted] =
        engines_.emplace(name, std::move(compiled));
    (void)inserted;
    return *it->second;
}

std::vector<std::string>
InferenceSession::compiledBackends() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(engines_.size());
    for (const auto &kv : engines_)
        out.push_back(kv.first);
    return out;
}

PlanCacheStats
InferenceSession::planCacheStats()
{
    return PlanCache::instance().stats();
}

ScPrediction
InferenceSession::infer(const nn::Tensor &image,
                        const std::string &backend) const
{
    return engine(backend).infer(image);
}

std::vector<ScPrediction>
InferenceSession::predict(const std::vector<nn::Sample> &samples,
                          const EvalOptions &opts,
                          const std::string &backend) const
{
    return engine(backend).predict(samples, opts);
}

ScEvalStats
InferenceSession::evaluate(const std::vector<nn::Sample> &samples,
                           const EvalOptions &opts,
                           const std::string &backend) const
{
    return engine(backend).evaluate(samples, opts);
}

AdaptivePrediction
InferenceSession::inferAdaptive(const nn::Tensor &image,
                                const std::string &backend) const
{
    return engine(backend).inferAdaptive(image, 0, opts_.adaptive);
}

AdaptiveEvalStats
InferenceSession::evaluateAdaptive(const std::vector<nn::Sample> &samples,
                                   const EvalOptions &opts,
                                   const std::string &backend) const
{
    return engine(backend).evaluateAdaptive(samples, opts_.adaptive, opts);
}

} // namespace aqfpsc::core
