#include "core/status.h"

namespace aqfpsc::core {

const char *statusCodeName(StatusCode code)
{
    switch (code) {
    case StatusCode::Ok:
        return "OK";
    case StatusCode::InvalidArgument:
        return "INVALID_ARGUMENT";
    case StatusCode::Timeout:
        return "TIMEOUT";
    case StatusCode::Cancelled:
        return "CANCELLED";
    case StatusCode::Overloaded:
        return "OVERLOADED";
    case StatusCode::Shutdown:
        return "SHUTDOWN";
    case StatusCode::WorkerCrashed:
        return "WORKER_CRASHED";
    case StatusCode::ExecutionFailed:
        return "EXECUTION_FAILED";
    case StatusCode::Quarantined:
        return "QUARANTINED";
    case StatusCode::ModelTruncated:
        return "MODEL_TRUNCATED";
    case StatusCode::ModelCorrupted:
        return "MODEL_CORRUPTED";
    case StatusCode::EngineCompileFailed:
        return "ENGINE_COMPILE_FAILED";
    case StatusCode::IoError:
        return "IO_ERROR";
    case StatusCode::Internal:
        return "INTERNAL";
    }
    return "UNKNOWN";
}

bool statusCodeTransient(StatusCode code)
{
    return code == StatusCode::WorkerCrashed ||
           code == StatusCode::ExecutionFailed;
}

std::string Status::toString() const
{
    std::string text = statusCodeName(code);
    if (!message.empty()) {
        text += ": ";
        text += message;
    }
    return text;
}

Status Status::fromCurrentException()
{
    try {
        throw;
    } catch (const StatusError &err) {
        return err.status();
    } catch (const std::invalid_argument &err) {
        return Status{StatusCode::InvalidArgument, err.what()};
    } catch (const std::exception &err) {
        return Status{StatusCode::ExecutionFailed, err.what()};
    } catch (...) {
        return Status{StatusCode::Internal, "unknown exception type"};
    }
}

std::exception_ptr StatusError::wrapCurrentException()
{
    return std::make_exception_ptr(StatusError(Status::fromCurrentException()));
}

} // namespace aqfpsc::core
