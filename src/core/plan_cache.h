/**
 * @file
 * Process-wide spec-keyed cache of compiled execution plans and interned
 * per-stage weight state.
 *
 * Every ScNetworkEngine compile used to rebuild its per-stage immutable
 * state (weight bit-plane streams, bias/neutral rows) from scratch, so a
 * multi-model, multi-backend serving deployment paid
 * O(engines x layers) memory and warm-up.  The PlanCache removes that
 * cost the way poplibs memoizes convolution implementations: compile
 * products are interned under a canonical spec tuple, and identical
 * specs — repeated engines across sessions, tenants sharing a model in
 * serving::ServingFrontend, models sharing a layer — reference one copy.
 *
 * Two levels are interned, both held by weak_ptr (the cache never keeps
 * anything alive; entries expire with their last engine):
 *
 *  - StageSpec -> stages::StageShared: one weighted stage's parameter
 *    streams.  The key is the full content tuple (backend, layer kind,
 *    geometry, fused activation, engine options, stream length, SNG code
 *    width) plus the float weights/biases themselves and the compiler
 *    RNG state at generation time — equality is exact content equality,
 *    so a hash collision can never alias two different stages.
 *  - PlanSpec -> stages::ExecutionPlan: a whole compiled stage graph,
 *    keyed by backend, engine options, and the network architecture +
 *    flattened parameters.
 *
 * Bit-identity: parameter streams are drawn from one compiler RNG walked
 * in layer order, so skipping regeneration would ordinarily desync every
 * downstream layer.  The StageSpec therefore keys on the RNG state
 * *before* generation, and the interned StageShared records the state
 * *after* it; on a hit the compiler fast-forwards its RNG to the stored
 * post-state.  A cache-hit compile is thereby indistinguishable from a
 * cold compile — same streams, same RNG sequence, same scores — which
 * the differential suite in tests/test_plan_cache.cc pins against the
 * golden score hashes.
 *
 * The cache is enabled by default; set AQFPSC_DISABLE_PLAN_CACHE=1 in
 * the environment (or call setEnabled(false)) to compile everything
 * cold.  Results are identical either way — only memory and warm-up
 * time change.
 */

#ifndef AQFPSC_CORE_PLAN_CACHE_H
#define AQFPSC_CORE_PLAN_CACHE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/stages/stage_common.h"

namespace aqfpsc::core::stages {
struct ExecutionPlan;
} // namespace aqfpsc::core::stages

namespace aqfpsc::core {

/** Layer-kind discriminator of a StageSpec. */
enum class StageKind : std::uint8_t
{
    Conv = 1,   ///< fused Conv2D + activation
    Dense = 2,  ///< fused hidden Dense + activation
    Output = 3, ///< terminal categorization stage
};

/**
 * Canonical identity of one weighted stage's compile product.  Two specs
 * compare equal exactly when a cold compile would produce bit-identical
 * StageShared contents for both (same geometry, options, parameters, and
 * compiler RNG position), so interning by StageSpec is always safe.
 */
struct StageSpec
{
    std::string backend;              ///< resolved registry name
    StageKind kind = StageKind::Conv; ///< layer kind
    /** Geometry: conv uses all 7 (inC,inH,inW,outC,outH,outW,kernel);
     *  dense/output use the first two (inFeatures, outFeatures). */
    std::array<int, 7> dims{};
    int activation = 0;         ///< FusedActivation as int
    bool majorityChain = false; ///< output stages: from MajorityChainDense
    bool approximateApc = false;
    std::uint64_t streamLen = 0;
    int rngBits = 0;
    /** Compiler RNG state immediately before stream generation. */
    std::array<std::uint64_t, 4> rngState{};
    std::vector<float> weights;
    std::vector<float> biases;

    bool operator==(const StageSpec &) const = default;
};

/**
 * Canonical identity of a whole compiled plan: backend + engine options
 * + network architecture + flattened parameters.  Excludes threads and
 * cohort, which configure execution, not the compile product.
 */
struct PlanSpec
{
    std::string backend;
    std::uint64_t streamLen = 0;
    /** Resolved per-stage stream lengths (scalar configs are
     *  canonicalized to a uniform vector before keying, so the scalar
     *  and explicit-uniform spellings intern to one entry). */
    std::vector<std::uint64_t> stageStreamLens;
    int rngBits = 0;
    std::uint64_t seed = 0;
    bool approximateApc = false;
    /** Canonical layer-spec encoding, quantization grid included. */
    std::string architecture;
    /** All layer parameters, flattened in layer (weights, biases) order. */
    std::vector<float> params;

    bool operator==(const PlanSpec &) const = default;
};

/** Point-in-time cache counters (monotonic except the resident gauges). */
struct PlanCacheStats
{
    std::uint64_t hits = 0;      ///< planHits + stageHits
    std::uint64_t misses = 0;    ///< planMisses + stageMisses
    std::uint64_t evictions = 0; ///< expired weak entries purged
    std::uint64_t planHits = 0;
    std::uint64_t planMisses = 0;
    std::uint64_t stageHits = 0;
    std::uint64_t stageMisses = 0;
    std::size_t residentPlans = 0;  ///< live interned plans
    std::size_t residentStages = 0; ///< live interned stage states
    /** Packed stream bytes of all live interned stage states. */
    std::size_t residentBytes = 0;
};

/**
 * The process-wide plan/weight-state cache.  Thread-safe; the intern
 * entry points run their build callbacks outside the cache lock (a plan
 * build interns its stages through the same cache), and a build that
 * races an identical insert adopts the first-inserted object so pointer
 * equality of equal specs holds even under contention.
 */
class PlanCache
{
  public:
    /** The singleton cache. */
    static PlanCache &instance();

    /** Whether interning is active (AQFPSC_DISABLE_PLAN_CACHE unset and
     *  not switched off via setEnabled).  When disabled every intern
     *  call builds cold and stores nothing. */
    bool enabled() const;

    /** Switch interning on/off at runtime (benches comparing cache-on
     *  vs. cache-off in one process).  Disabling does not drop existing
     *  entries; clear() does. */
    void setEnabled(bool enabled);

    /**
     * Return the live StageShared interned under @p spec, or run
     * @p build (outside the lock), intern its result, and return it.
     * Exactly one of {hit, miss} is counted per call.
     */
    std::shared_ptr<const stages::StageShared>
    internStage(const StageSpec &spec,
                const std::function<std::shared_ptr<const stages::StageShared>()>
                    &build);

    /** Plan-level intern; the contract mirrors internStage(). */
    std::shared_ptr<const stages::ExecutionPlan>
    internPlan(const PlanSpec &spec,
               const std::function<std::shared_ptr<const stages::ExecutionPlan>()>
                   &build);

    /** Counters plus resident gauges; sweeps expired entries (counted
     *  as evictions) so the gauges reflect live objects only. */
    PlanCacheStats stats();

    /** Drop every entry and reset all counters (test isolation). */
    void clear();

  private:
    PlanCache();

    struct StageSpecHash
    {
        std::size_t operator()(const StageSpec &s) const;
    };
    struct PlanSpecHash
    {
        std::size_t operator()(const PlanSpec &s) const;
    };

    /** Purge expired entries of @p map, counting them as evictions.
     *  Caller holds mu_. */
    template <typename Map> void purgeExpired(Map &map);

    mutable std::mutex mu_;
    bool enabled_ = true;
    std::unordered_map<StageSpec,
                       std::weak_ptr<const stages::StageShared>,
                       StageSpecHash>
        stageMap_;
    std::unordered_map<PlanSpec,
                       std::weak_ptr<const stages::ExecutionPlan>,
                       PlanSpecHash>
        planMap_;
    std::uint64_t planHits_ = 0;
    std::uint64_t planMisses_ = 0;
    std::uint64_t stageHits_ = 0;
    std::uint64_t stageMisses_ = 0;
    std::uint64_t evictions_ = 0;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_PLAN_CACHE_H
