/**
 * @file
 * Open, string-keyed backend registry for the SC stage compiler.
 *
 * A backend is a named set of per-layer-kind stage factories
 * ("aqfp-sorter", "cmos-apc", "float-ref", ...).  Stage TUs self-register
 * their factories at static-initialization time through the
 * *Registration helpers below, and stages::compileNetwork looks them up
 * by ScEngineConfig's resolved backend name — adding a backend therefore
 * requires no edits to the compiler, only a new TU linked into the
 * binary.  (The build links the aqfpsc archive with WHOLE_ARCHIVE so the
 * linker never drops self-registering objects.)
 *
 * Factories receive the layer geometry plus a WeightedStageInit bundle:
 * the pre-generated SC parameter streams, the float parameters they were
 * generated from (for value-domain backends such as "float-ref"), the
 * activation the compiler fused into the stage, and the engine config.
 * Stream generation itself stays in the compiler so that every
 * stream-domain backend sees bit-identical parameter streams for the
 * same seed.
 */

#ifndef AQFPSC_CORE_BACKEND_REGISTRY_H
#define AQFPSC_CORE_BACKEND_REGISTRY_H

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/sc_engine.h"
#include "core/stages/stage.h"
#include "core/stages/stage_common.h"

namespace aqfpsc::core {

/** Activation the compiler fused into a weighted stage. */
enum class FusedActivation
{
    None,       ///< output layers: no activation
    HardTanh,   ///< trained with the idealized clip
    SorterTanh, ///< trained with the measured sorter response tanh(0.8z)
};

/** Everything a weighted-stage factory may consume. */
struct WeightedStageInit
{
    /** Interned immutable compile product holding the pre-generated
     *  parameter streams — possibly shared with other engines through
     *  core::PlanCache (null when the backend's traits set
     *  wantsParamStreams = false).  Stream-domain stages keep the
     *  shared_ptr; value-domain stages ignore it. */
    std::shared_ptr<const stages::StageShared> shared;
    /** Float parameters the streams were generated from.  Only valid
     *  during the factory call — value-domain stages must copy. */
    const std::vector<float> &weights;
    const std::vector<float> &biases;
    /** Activation fused into this stage (None for output stages). */
    FusedActivation activation = FusedActivation::None;
    /** Output stages: true when the source layer is MajorityChainDense. */
    bool majorityChainOutput = false;
    /** Engine configuration (backend-specific knobs, streamLen, ...). */
    const ScEngineConfig &cfg;
};

using ConvStageFactory = std::function<std::unique_ptr<ScStage>(
    const stages::ConvGeometry &, WeightedStageInit)>;
using DenseStageFactory = std::function<std::unique_ptr<ScStage>(
    const stages::DenseGeometry &, WeightedStageInit)>;
using PoolStageFactory = std::function<std::unique_ptr<ScStage>(
    const stages::PoolGeometry &, const ScEngineConfig &)>;
using OutputStageFactory = std::function<std::unique_ptr<ScStage>(
    const stages::DenseGeometry &, WeightedStageInit)>;

/** Compile/runtime behaviour switches of one backend. */
struct BackendTraits
{
    /** Generate weight/bias streams at engine compile time. */
    bool wantsParamStreams = true;
    /** Encode the input image into SNG streams for every inference. */
    bool wantsInputStreams = true;
};

/** One backend's registered factories. */
struct BackendEntry
{
    ConvStageFactory conv;
    DenseStageFactory dense;
    PoolStageFactory pool;
    OutputStageFactory output;
    BackendTraits traits;
};

/**
 * Process-wide backend name -> stage-factory table.
 *
 * Thread safety: registration normally happens during static
 * initialization (before main), so lookups never race with it; all
 * const lookups (has/names/entry/traits) are safe to call concurrently
 * once main has started.  Later programmatic registration is allowed
 * but must not run concurrently with lookups or compiles.
 *
 * Determinism: the registry only resolves names to factories — stream
 * generation stays in the stage compiler, so every stream-domain
 * backend sees bit-identical parameter streams for the same seed, and
 * backend lookup order never influences results.
 */
class BackendRegistry
{
  public:
    /** The singleton table. */
    static BackendRegistry &instance();

    /** Register one stage factory.  @throws std::logic_error if the
     *  backend already registered that stage kind. */
    void registerConv(const std::string &backend, ConvStageFactory f);
    void registerDense(const std::string &backend, DenseStageFactory f);
    void registerPool(const std::string &backend, PoolStageFactory f);
    void registerOutput(const std::string &backend, OutputStageFactory f);

    /** Override the default traits of @p backend. */
    void registerTraits(const std::string &backend, BackendTraits traits);

    /** Whether @p backend has any registration. */
    bool has(const std::string &backend) const;

    /** Registered backend names, sorted. */
    std::vector<std::string> names() const;

    /**
     * Factory table of @p backend.
     * @throws std::invalid_argument listing the registered names when
     *         @p backend is unknown.
     */
    const BackendEntry &entry(const std::string &backend) const;

    /** Traits of @p backend (throws like entry()). */
    BackendTraits traits(const std::string &backend) const;

    /** The documented unknown-backend error text for @p backend. */
    std::string unknownBackendMessage(const std::string &backend) const;

  private:
    BackendRegistry() = default;
    std::map<std::string, BackendEntry> entries_;
};

/**
 * Self-registration helpers: define one at namespace scope in the stage
 * TU, e.g.
 *
 *   namespace {
 *   const core::ConvStageRegistration kReg{
 *       "aqfp-sorter",
 *       [](const ConvGeometry &g, core::WeightedStageInit init) {
 *           return std::make_unique<AqfpConvStage>(g,
 *                                                  std::move(init.shared));
 *       }};
 *   } // namespace
 */
struct ConvStageRegistration
{
    ConvStageRegistration(const std::string &backend, ConvStageFactory f);
};
struct DenseStageRegistration
{
    DenseStageRegistration(const std::string &backend, DenseStageFactory f);
};
struct PoolStageRegistration
{
    PoolStageRegistration(const std::string &backend, PoolStageFactory f);
};
struct OutputStageRegistration
{
    OutputStageRegistration(const std::string &backend,
                            OutputStageFactory f);
};
struct BackendTraitsRegistration
{
    BackendTraitsRegistration(const std::string &backend,
                              BackendTraits traits);
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_BACKEND_REGISTRY_H
