#include "backend_registry.h"

#include <stdexcept>

namespace aqfpsc::core {

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry;
    return registry;
}

namespace {

[[noreturn]] void
throwDuplicate(const std::string &backend, const char *kind)
{
    throw std::logic_error("BackendRegistry: backend '" + backend +
                           "' already registered a " + kind + " stage");
}

} // namespace

void
BackendRegistry::registerConv(const std::string &backend,
                              ConvStageFactory f)
{
    BackendEntry &e = entries_[backend];
    if (e.conv)
        throwDuplicate(backend, "conv");
    e.conv = std::move(f);
}

void
BackendRegistry::registerDense(const std::string &backend,
                               DenseStageFactory f)
{
    BackendEntry &e = entries_[backend];
    if (e.dense)
        throwDuplicate(backend, "dense");
    e.dense = std::move(f);
}

void
BackendRegistry::registerPool(const std::string &backend,
                              PoolStageFactory f)
{
    BackendEntry &e = entries_[backend];
    if (e.pool)
        throwDuplicate(backend, "pool");
    e.pool = std::move(f);
}

void
BackendRegistry::registerOutput(const std::string &backend,
                                OutputStageFactory f)
{
    BackendEntry &e = entries_[backend];
    if (e.output)
        throwDuplicate(backend, "output");
    e.output = std::move(f);
}

void
BackendRegistry::registerTraits(const std::string &backend,
                                BackendTraits traits)
{
    entries_[backend].traits = traits;
}

bool
BackendRegistry::has(const std::string &backend) const
{
    return entries_.find(backend) != entries_.end();
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &kv : entries_)
        out.push_back(kv.first); // std::map keeps them sorted
    return out;
}

std::string
BackendRegistry::unknownBackendMessage(const std::string &backend) const
{
    std::string msg = "unknown backend '" + backend +
                      "'; registered backends: ";
    bool first = true;
    for (const auto &kv : entries_) {
        if (!first)
            msg += ", ";
        msg += kv.first;
        first = false;
    }
    if (first)
        msg += "(none)";
    return msg;
}

const BackendEntry &
BackendRegistry::entry(const std::string &backend) const
{
    const auto it = entries_.find(backend);
    if (it == entries_.end())
        throw std::invalid_argument(unknownBackendMessage(backend));
    return it->second;
}

BackendTraits
BackendRegistry::traits(const std::string &backend) const
{
    return entry(backend).traits;
}

ConvStageRegistration::ConvStageRegistration(const std::string &backend,
                                             ConvStageFactory f)
{
    BackendRegistry::instance().registerConv(backend, std::move(f));
}

DenseStageRegistration::DenseStageRegistration(const std::string &backend,
                                               DenseStageFactory f)
{
    BackendRegistry::instance().registerDense(backend, std::move(f));
}

PoolStageRegistration::PoolStageRegistration(const std::string &backend,
                                             PoolStageFactory f)
{
    BackendRegistry::instance().registerPool(backend, std::move(f));
}

OutputStageRegistration::OutputStageRegistration(
    const std::string &backend, OutputStageFactory f)
{
    BackendRegistry::instance().registerOutput(backend, std::move(f));
}

BackendTraitsRegistration::BackendTraitsRegistration(
    const std::string &backend, BackendTraits traits)
{
    BackendRegistry::instance().registerTraits(backend, traits);
}

} // namespace aqfpsc::core
