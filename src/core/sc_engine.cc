#include "sc_engine.h"

#include <cassert>

#include "core/backend_registry.h"
#include "core/batch_runner.h"
#include "core/stages/stage.h"
#include "core/stages/stage_compiler.h"
#include "core/workspace.h"
#include "sc/rng.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core {

const char *
scBackendName(ScBackend backend)
{
    switch (backend) {
      case ScBackend::AqfpSorter:
        return "aqfp-sorter";
      case ScBackend::CmosApc:
        return "cmos-apc";
    }
    return "aqfp-sorter";
}

ScNetworkEngine::~ScNetworkEngine() = default;

ScNetworkEngine::ScNetworkEngine(const nn::Network &net,
                                 const ScEngineConfig &cfg)
    : cfg_(cfg), backendName_(cfg.resolvedBackend()),
      encodeInputStreams_(
          BackendRegistry::instance().traits(backendName_).wantsInputStreams),
      stages_(stages::compileNetwork(net, cfg))
{
}

ScPrediction
ScNetworkEngine::infer(const nn::Tensor &image) const
{
    return inferIndexed(image, 0);
}

ScPrediction
ScNetworkEngine::inferIndexed(const nn::Tensor &image,
                              std::size_t index) const
{
    StageWorkspace workspace(*this);
    return inferIndexed(image, index, workspace);
}

ScPrediction
ScNetworkEngine::inferIndexed(const nn::Tensor &image, std::size_t index,
                              StageWorkspace &ws) const
{
    assert(&ws.engine_ == this &&
           "workspace belongs to a different engine");
    const std::size_t len = cfg_.streamLen;

    StageContext &ctx = ws.ctx_;
    ctx.imageSeed = sc::deriveStreamSeed(cfg_.seed, index);
    ctx.image = &image;
    ctx.values.clear();
    // Match fresh-context semantics: a pipeline whose terminal stage
    // never assigns scores must not inherit the previous image's.
    // clear() keeps capacity, so the steady state still allocates
    // nothing.
    ctx.scores.clear();

    // Per-image input SNGs; a fresh substream keeps images independent.
    // Value-domain backends (traits.wantsInputStreams == false) read the
    // image through the context instead and get an empty matrix — no
    // per-image work on the fast accuracy-debugging path.
    if (encodeInputStreams_) {
        ws.input_.reset(image.size(), len);
        sc::Xoshiro256StarStar rng(ctx.imageSeed ^ 0xABCDEF12345ULL);
        for (std::size_t i = 0; i < image.size(); ++i)
            ws.input_.fillBipolar(i, image[i], cfg_.rngBits, rng);
    } else {
        ws.input_.reset(0, 0);
    }

    // Ping-pong the activation buffers: stage s reads what stage s-1
    // wrote and overwrites the other buffer, so no stream is ever copied
    // and steady-state stage execution allocates nothing.
    const sc::StreamMatrix *cur = &ws.input_;
    int flip = 0;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const ScStage &stage = *stages_[s];
        sc::StreamMatrix &out = ws.pingPong_[flip];
        stage.runInto(*cur, out, ctx, ws.scratch_[s].get());
        if (stage.terminal())
            break;
        cur = &out;
        flip ^= 1;
    }

    ScPrediction pred;
    pred.scores = ctx.scores; // copy: ctx keeps its capacity for reuse
    pred.label = 0;
    for (std::size_t i = 1; i < pred.scores.size(); ++i) {
        if (pred.scores[i] >
            pred.scores[static_cast<std::size_t>(pred.label)])
            pred.label = static_cast<int>(i);
    }
    return pred;
}

ScEvalStats
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples,
                          const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    return BatchRunner(*this, threads)
        .evaluate(samples, opts.limit, opts.progress);
}

std::vector<ScPrediction>
ScNetworkEngine::predict(const std::vector<nn::Sample> &samples,
                         const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    return BatchRunner(*this, threads)
        .run(samples, opts.limit, opts.progress);
}

double
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples, int limit,
                          bool progress) const
{
    EvalOptions opts;
    opts.limit = limit;
    opts.progress = progress;
    return evaluate(samples, opts).accuracy;
}

ScEvalStats
ScNetworkEngine::evaluateBatch(const std::vector<nn::Sample> &samples,
                               int limit, int threads, bool progress) const
{
    EvalOptions opts;
    opts.limit = limit;
    opts.threads = threads;
    opts.progress = progress;
    return evaluate(samples, opts);
}

} // namespace aqfpsc::core
