#include "sc_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/backend_registry.h"
#include "core/batch_runner.h"
#include "core/stages/stage.h"
#include "core/stages/stage_compiler.h"
#include "core/workspace.h"
#include "sc/rng.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core {

namespace {

/** Argmax over per-class scores (first index wins ties). */
int
argmaxLabel(const std::vector<double> &scores)
{
    int label = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] > scores[static_cast<std::size_t>(label)])
            label = static_cast<int>(i);
    }
    return label;
}

} // namespace

std::vector<std::string>
AdaptivePolicy::validate() const
{
    std::vector<std::string> errors;
    if (checkpointCycles == 0 || checkpointCycles % 64 != 0) {
        errors.push_back(
            "checkpointCycles must be a positive multiple of 64 (spans "
            "are aligned to the packed-stream word size); got " +
            std::to_string(checkpointCycles));
    }
    if (std::isnan(exitMargin) || exitMargin < 0.0) {
        errors.push_back(
            "exitMargin must be >= 0 (a normalized top-1 score margin; "
            "0 exits at the first checkpoint, infinity never exits)");
    }
    return errors;
}

const char *
scBackendName(ScBackend backend)
{
    switch (backend) {
      case ScBackend::AqfpSorter:
        return "aqfp-sorter";
      case ScBackend::CmosApc:
        return "cmos-apc";
    }
    return "aqfp-sorter";
}

ScNetworkEngine::~ScNetworkEngine() = default;

ScNetworkEngine::ScNetworkEngine(const nn::Network &net,
                                 const ScEngineConfig &cfg)
    : cfg_(cfg), backendName_(cfg.resolvedBackend()),
      encodeInputStreams_(
          BackendRegistry::instance().traits(backendName_).wantsInputStreams),
      stages_(stages::compileNetwork(net, cfg))
{
}

ScPrediction
ScNetworkEngine::infer(const nn::Tensor &image) const
{
    return inferIndexed(image, 0);
}

ScPrediction
ScNetworkEngine::inferIndexed(const nn::Tensor &image,
                              std::size_t index) const
{
    StageWorkspace workspace(*this);
    return inferIndexed(image, index, workspace);
}

ScPrediction
ScNetworkEngine::inferIndexed(const nn::Tensor &image, std::size_t index,
                              StageWorkspace &ws) const
{
    assert(&ws.engine_ == this &&
           "workspace belongs to a different engine");
    const std::size_t len = cfg_.streamLen;

    StageContext &ctx = ws.ctx_;
    ctx.imageSeed = sc::deriveStreamSeed(cfg_.seed, index);
    ctx.image = &image;
    ctx.values.clear();
    // Match fresh-context semantics: a pipeline whose terminal stage
    // never assigns scores must not inherit the previous image's.
    // clear() keeps capacity, so the steady state still allocates
    // nothing.
    ctx.scores.clear();

    // Per-image input SNGs; a fresh substream keeps images independent.
    // Value-domain backends (traits.wantsInputStreams == false) read the
    // image through the context instead and get an empty matrix — no
    // per-image work on the fast accuracy-debugging path.
    if (encodeInputStreams_) {
        ws.input_.reset(image.size(), len);
        sc::Xoshiro256StarStar rng(ctx.imageSeed ^ 0xABCDEF12345ULL);
        for (std::size_t i = 0; i < image.size(); ++i)
            ws.input_.fillBipolar(i, image[i], cfg_.rngBits, rng);
    } else {
        ws.input_.reset(0, 0);
    }

    // Ping-pong the activation buffers: stage s reads what stage s-1
    // wrote and overwrites the other buffer, so no stream is ever copied
    // and steady-state stage execution allocates nothing.
    const sc::StreamMatrix *cur = &ws.input_;
    int flip = 0;
    for (std::size_t s = 0; s < stages_.size(); ++s) {
        const ScStage &stage = *stages_[s];
        sc::StreamMatrix &out = ws.pingPong_[flip];
        stage.runInto(*cur, out, ctx, ws.scratch_[s].get());
        if (stage.terminal())
            break;
        cur = &out;
        flip ^= 1;
    }

    ScPrediction pred;
    pred.scores = ctx.scores; // copy: ctx keeps its capacity for reuse
    pred.label = argmaxLabel(pred.scores);
    return pred;
}

bool
ScNetworkEngine::supportsAdaptive(std::string *why_not) const
{
    for (const auto &stage : stages_) {
        if (!stage->resumable()) {
            if (why_not != nullptr)
                *why_not = stage->name();
            return false;
        }
    }
    return true;
}

AdaptivePrediction
ScNetworkEngine::inferAdaptive(const nn::Tensor &image, std::size_t index,
                               StageWorkspace &ws,
                               const AdaptivePolicy &policy) const
{
    assert(&ws.engine_ == this &&
           "workspace belongs to a different engine");
    {
        const std::vector<std::string> errors = policy.validate();
        if (!errors.empty()) {
            std::string joined = "invalid AdaptivePolicy: ";
            for (std::size_t i = 0; i < errors.size(); ++i)
                joined += (i ? "; " : "") + errors[i];
            throw std::invalid_argument(joined);
        }
    }
    std::string why_not;
    if (!supportsAdaptive(&why_not)) {
        throw std::invalid_argument(
            "backend '" + backendName_ +
            "' does not support adaptive inference: stage '" + why_not +
            "' is not resumable");
    }

    const std::size_t len = cfg_.streamLen;
    StageContext &ctx = ws.ctx_;
    ctx.imageSeed = sc::deriveStreamSeed(cfg_.seed, index);
    ctx.image = &image;
    ctx.values.clear();
    ctx.scores.clear();
    ctx.deterministicSpans = policy.deterministic;

    if (encodeInputStreams_) {
        ws.input_.reset(image.size(), len);
        if (policy.deterministic) {
            // Full-length up-front SNG fill: the exact draws of the
            // non-adaptive path, so any exit point is a bit-exact
            // prefix.
            sc::Xoshiro256StarStar rng(ctx.imageSeed ^ 0xABCDEF12345ULL);
            for (std::size_t i = 0; i < image.size(); ++i)
                ws.input_.fillBipolar(i, image[i], cfg_.rngBits, rng);
        }
    } else {
        ws.input_.reset(0, 0);
    }

    const std::size_t block = std::min(policy.checkpointCycles, len);
    AdaptivePrediction result;
    const ScStage *terminalStage = nullptr;
    std::size_t begin = 0;
    for (;;) {
        const std::size_t end = std::min(begin + block, len);
        if (encodeInputStreams_ && !policy.deterministic) {
            // Lazy SNG: this block's input cycles from an own substream
            // — cycles past an early exit are never generated.  The
            // block index is spread by the golden-ratio constant so no
            // two (image, block) pairs share a seed in practice.
            sc::Xoshiro256StarStar rng(
                ctx.imageSeed ^
                (0xB10C5EEDULL + (begin / 64) * 0x9E3779B97F4A7C15ULL));
            for (std::size_t i = 0; i < image.size(); ++i)
                ws.input_.fillBipolarSpan(i, image[i], cfg_.rngBits, rng,
                                          begin, end);
        }

        const sc::StreamMatrix *cur = &ws.input_;
        int flip = 0;
        for (std::size_t s = 0; s < stages_.size(); ++s) {
            const ScStage &stage = *stages_[s];
            sc::StreamMatrix &out = ws.pingPong_[flip];
            stage.runSpan(*cur, out, ctx, ws.scratch_[s].get(), begin,
                          end);
            if (stage.terminal()) {
                terminalStage = &stage;
                break;
            }
            cur = &out;
            flip ^= 1;
        }

        ++result.checkpoints;
        result.consumedCycles = end;
        if (end >= len)
            break;
        if (end >= policy.minCycles && terminalStage != nullptr &&
            terminalStage->scoreMargin(ctx, end) >= policy.exitMargin) {
            result.exitedEarly = true;
            break;
        }
        begin = end;
    }

    result.prediction.scores = ctx.scores;
    result.prediction.label = argmaxLabel(result.prediction.scores);
    return result;
}

AdaptivePrediction
ScNetworkEngine::inferAdaptive(const nn::Tensor &image, std::size_t index,
                               const AdaptivePolicy &policy) const
{
    StageWorkspace workspace(*this);
    return inferAdaptive(image, index, workspace, policy);
}

ScEvalStats
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples,
                          const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    return BatchRunner(*this, threads)
        .evaluate(samples, opts.limit, opts.progress);
}

AdaptiveEvalStats
ScNetworkEngine::evaluateAdaptive(const std::vector<nn::Sample> &samples,
                                  const AdaptivePolicy &policy,
                                  const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    return BatchRunner(*this, threads)
        .evaluateAdaptive(samples, policy, opts.limit, opts.progress);
}

std::vector<ScPrediction>
ScNetworkEngine::predict(const std::vector<nn::Sample> &samples,
                         const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    return BatchRunner(*this, threads)
        .run(samples, opts.limit, opts.progress);
}

double
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples, int limit,
                          bool progress) const
{
    EvalOptions opts;
    opts.limit = limit;
    opts.progress = progress;
    return evaluate(samples, opts).accuracy;
}

ScEvalStats
ScNetworkEngine::evaluateBatch(const std::vector<nn::Sample> &samples,
                               int limit, int threads, bool progress) const
{
    EvalOptions opts;
    opts.limit = limit;
    opts.threads = threads;
    opts.progress = progress;
    return evaluate(samples, opts);
}

} // namespace aqfpsc::core
