#include "sc_engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>

#include "core/backend_registry.h"
#include "core/batch_runner.h"
#include "core/fault_injection.h"
#include "core/stages/stage.h"
#include "core/stages/stage_compiler.h"
#include "core/workspace.h"
#include "sc/rng.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core {

namespace {

/** Argmax over per-class scores (first index wins ties). */
int
argmaxLabel(const std::vector<double> &scores)
{
    int label = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] > scores[static_cast<std::size_t>(label)])
            label = static_cast<int>(i);
    }
    return label;
}

/**
 * Re-arm a (possibly reused) context for a new image.  clear() keeps
 * capacity, so the steady state still allocates nothing; a pipeline
 * whose terminal stage never assigns scores must not inherit the
 * previous image's.
 */
void
armContext(StageContext &ctx, std::uint64_t engine_seed, std::size_t index,
           const nn::Tensor &image, bool deterministic_spans)
{
    ctx.imageSeed = sc::deriveStreamSeed(engine_seed, index);
    ctx.image = &image;
    ctx.values.clear();
    ctx.scores.clear();
    ctx.deterministicSpans = deterministic_spans;
}

/** Per-image input SNGs; a fresh substream keeps images independent.
 *  @p len is the plan's input length (stageStreamLens[0]) — with mixed
 *  per-stage lengths the encoding runs at the first stage's length. */
void
fillInputStreams(sc::StreamMatrix &input, const nn::Tensor &image,
                 const ScEngineConfig &cfg, std::size_t len,
                 std::uint64_t image_seed)
{
    input.reset(image.size(), len);
    sc::Xoshiro256StarStar rng(image_seed ^ 0xABCDEF12345ULL);
    for (std::size_t i = 0; i < image.size(); ++i)
        input.fillBipolar(i, image[i], cfg.rngBits, rng);
}

} // namespace

std::vector<std::string>
AdaptivePolicy::validate() const
{
    std::vector<std::string> errors;
    if (checkpointCycles == 0 || checkpointCycles % 64 != 0) {
        errors.push_back(
            "checkpointCycles must be a positive multiple of 64 (spans "
            "are aligned to the packed-stream word size); got " +
            std::to_string(checkpointCycles));
    }
    if (std::isnan(exitMargin) || exitMargin < 0.0) {
        errors.push_back(
            "exitMargin must be >= 0 (a normalized top-1 score margin; "
            "0 exits at the first checkpoint, infinity never exits)");
    }
    return errors;
}

ScNetworkEngine::~ScNetworkEngine() = default;

ScNetworkEngine::ScNetworkEngine(const nn::Network &net,
                                 const ScEngineConfig &cfg)
    : cfg_(cfg), backendName_(cfg.resolvedBackend()),
      encodeInputStreams_(
          BackendRegistry::instance().traits(backendName_).wantsInputStreams),
      plan_(stages::compileNetwork(net, cfg))
{
    // Chaos-test hook: lets tests exercise the "engine failed to
    // compile" error path without crafting an uncompilable network.
    fault::injectThrow(FaultSite::EngineCompile, cfg.seed);
}

std::size_t
ScNetworkEngine::stageCount() const
{
    return plan_->stageCount();
}

const ScStage &
ScNetworkEngine::stage(std::size_t i) const
{
    return plan_->stage(i);
}

ScPrediction
ScNetworkEngine::infer(const nn::Tensor &image) const
{
    return inferIndexed(image, 0);
}

ScPrediction
ScNetworkEngine::inferIndexed(const nn::Tensor &image,
                              std::size_t index) const
{
    StageWorkspace workspace(*this);
    return inferIndexed(image, index, workspace);
}

ScPrediction
ScNetworkEngine::inferIndexed(const nn::Tensor &image, std::size_t index,
                              StageWorkspace &ws) const
{
    assert(&ws.engine_ == this &&
           "workspace belongs to a different engine");

    StageContext &ctx = ws.ctx_;
    armContext(ctx, cfg_.seed, index, image, true);

    // Value-domain backends (traits.wantsInputStreams == false) read the
    // image through the context instead and get an empty matrix — no
    // per-image work on the fast accuracy-debugging path.
    if (encodeInputStreams_)
        fillInputStreams(ws.input_, image, cfg_, plan_->streamLen,
                         ctx.imageSeed);
    else
        ws.input_.reset(0, 0);

    // Ping-pong the activation buffers: stage s reads what stage s-1
    // wrote and overwrites the other buffer, so no stream is ever copied
    // and steady-state stage execution allocates nothing.
    const sc::StreamMatrix *cur = &ws.input_;
    int flip = 0;
    for (std::size_t s = 0; s < plan_->stageCount(); ++s) {
        const ScStage &stage = plan_->stage(s);
        sc::StreamMatrix &out = ws.pingPong_[flip];
        stage.runInto(*cur, out, ctx, ws.scratch_[s].get());
        if (stage.terminal())
            break;
        cur = &out;
        flip ^= 1;
    }

    ScPrediction pred;
    pred.scores = ctx.scores; // copy: ctx keeps its capacity for reuse
    pred.label = argmaxLabel(pred.scores);
    return pred;
}

void
ScNetworkEngine::inferCohort(const nn::Tensor *const images[],
                             const std::size_t indices[], std::size_t count,
                             CohortWorkspace &ws, ScPrediction out[]) const
{
    assert(&ws.engine_ == this &&
           "workspace belongs to a different engine");
    assert(count <= ws.capacity());
    if (count == 0)
        return;

    for (std::size_t c = 0; c < count; ++c) {
        CohortWorkspace::Slot &slot = ws.slots_[c];
        armContext(slot.ctx, cfg_.seed, indices[c], *images[c], true);
        if (encodeInputStreams_)
            fillInputStreams(slot.input, *images[c], cfg_,
                             plan_->streamLen, slot.ctx.imageSeed);
        else
            slot.input.reset(0, 0);
    }

    // Stage-major sweep: one dispatch per stage pushes the whole cohort
    // through it, so the stage's weight streams are traversed once per
    // cohort.  Each slot ping-pongs its own pair of activation buffers
    // exactly like the single-image path.
    int flip = 0;
    for (std::size_t s = 0; s < plan_->stageCount(); ++s) {
        const ScStage &stage = plan_->stage(s);
        for (std::size_t c = 0; c < count; ++c) {
            CohortWorkspace::Slot &slot = ws.slots_[c];
            ws.views_[c] =
                CohortSlot{s == 0 ? &slot.input : &slot.pingPong[flip ^ 1],
                           &slot.pingPong[flip], &slot.ctx,
                           slot.scratch[s].get()};
        }
        stage.runCohortSpan(ws.views_.data(), count, 0,
                            plan_->stageStreamLens[s]);
        if (stage.terminal())
            break;
        flip ^= 1;
    }

    for (std::size_t c = 0; c < count; ++c) {
        out[c].scores = ws.slots_[c].ctx.scores;
        out[c].label = argmaxLabel(out[c].scores);
    }
}

bool
ScNetworkEngine::supportsAdaptive(std::string *why_not) const
{
    if (plan_->resumable)
        return true;
    for (std::size_t s = 0; s < plan_->stageCount(); ++s) {
        if (!plan_->stage(s).resumable()) {
            if (why_not != nullptr)
                *why_not = plan_->stage(s).name();
            return false;
        }
    }
    return false;
}

namespace {

/** Shared argument validation of the adaptive entry points. */
void
requireAdaptive(const ScNetworkEngine &engine, const AdaptivePolicy &policy)
{
    const std::vector<std::string> errors = policy.validate();
    if (!errors.empty()) {
        std::string joined = "invalid AdaptivePolicy: ";
        for (std::size_t i = 0; i < errors.size(); ++i)
            joined += (i ? "; " : "") + errors[i];
        throw std::invalid_argument(joined);
    }
    std::string why_not;
    if (!engine.supportsAdaptive(&why_not)) {
        throw std::invalid_argument(
            "backend '" + engine.backendName() +
            "' does not support adaptive inference: stage '" + why_not +
            "' is not resumable");
    }
}

/**
 * The cooperative-cancellation point: called once per checkpoint block.
 * poll() beats (liveness for the watchdog) and reports whether the run
 * must abort; the throw unwinds out of the engine, leaving the
 * workspace reusable after the next arm.
 */
void
pollControl(const RunControl *control, std::size_t cycle)
{
    if (control == nullptr)
        return;
    const StatusCode code = control->poll();
    if (code == StatusCode::Ok)
        return;
    const char *why = code == StatusCode::Cancelled
                          ? "run cancelled at checkpoint (cycle "
                          : "request deadline elapsed at checkpoint (cycle ";
    throw StatusError(code, why + std::to_string(cycle) + ")");
}

} // namespace

AdaptivePrediction
ScNetworkEngine::inferAdaptive(const nn::Tensor &image, std::size_t index,
                               StageWorkspace &ws,
                               const AdaptivePolicy &policy,
                               const RunControl *control) const
{
    assert(&ws.engine_ == this &&
           "workspace belongs to a different engine");
    requireAdaptive(*this, policy);

    const std::size_t len = plan_->streamLen;
    const std::vector<std::size_t> &lens = plan_->stageStreamLens;
    StageContext &ctx = ws.ctx_;
    armContext(ctx, cfg_.seed, index, image, policy.deterministic);

    if (encodeInputStreams_) {
        if (policy.deterministic) {
            // Full-length up-front SNG fill: the exact draws of the
            // non-adaptive path, so any exit point is a bit-exact
            // prefix.
            fillInputStreams(ws.input_, image, cfg_, len, ctx.imageSeed);
        } else {
            ws.input_.reset(image.size(), len);
        }
    } else {
        ws.input_.reset(0, 0);
    }

    const std::size_t block = std::min(policy.checkpointCycles, len);
    AdaptivePrediction result;
    const ScStage *terminalStage = nullptr;
    std::size_t begin = 0;
    for (;;) {
        pollControl(control, begin);
        const std::size_t end = std::min(begin + block, len);
        if (encodeInputStreams_ && !policy.deterministic) {
            // Lazy SNG: this block's input cycles from an own substream
            // — cycles past an early exit are never generated.  The
            // block index is spread by the golden-ratio constant so no
            // two (image, block) pairs share a seed in practice.
            sc::Xoshiro256StarStar rng(
                ctx.imageSeed ^
                (0xB10C5EEDULL + (begin / 64) * 0x9E3779B97F4A7C15ULL));
            for (std::size_t i = 0; i < image.size(); ++i)
                ws.input_.fillBipolarSpan(i, image[i], cfg_.rngBits, rng,
                                          begin, end);
        }

        const sc::StreamMatrix *cur = &ws.input_;
        int flip = 0;
        for (std::size_t s = 0; s < plan_->stageCount(); ++s) {
            const ScStage &stage = plan_->stage(s);
            sc::StreamMatrix &out = ws.pingPong_[flip];
            // Per-stage clamp: a stage whose own (non-increasing) length
            // is already exhausted is skipped — its completed output
            // persists in the ping-pong buffer within this image, and
            // every downstream stage (shorter still) skips with it.
            const std::size_t sEnd = std::min(end, lens[s]);
            if (begin < sEnd)
                stage.runSpan(*cur, out, ctx, ws.scratch_[s].get(), begin,
                              sEnd);
            if (stage.terminal()) {
                terminalStage = &stage;
                break;
            }
            cur = &out;
            flip ^= 1;
        }

        ++result.checkpoints;
        result.consumedCycles = end;
        if (end >= len)
            break;
        if (end >= policy.minCycles && terminalStage != nullptr &&
            terminalStage->scoreMargin(ctx, std::min(end, lens.back())) >=
                policy.exitMargin) {
            result.exitedEarly = true;
            break;
        }
        begin = end;
    }

    result.prediction.scores = ctx.scores;
    result.prediction.label = argmaxLabel(result.prediction.scores);
    return result;
}

AdaptivePrediction
ScNetworkEngine::inferAdaptive(const nn::Tensor &image, std::size_t index,
                               const AdaptivePolicy &policy) const
{
    StageWorkspace workspace(*this);
    return inferAdaptive(image, index, workspace, policy);
}

void
ScNetworkEngine::inferAdaptiveCohort(const nn::Tensor *const images[],
                                     const std::size_t indices[],
                                     std::size_t count, CohortWorkspace &ws,
                                     const AdaptivePolicy &policy,
                                     AdaptivePrediction out[],
                                     const RunControl *control) const
{
    assert(&ws.engine_ == this &&
           "workspace belongs to a different engine");
    assert(count <= ws.capacity());
    requireAdaptive(*this, policy);
    if (count == 0)
        return;
    const std::size_t len = plan_->streamLen;
    const std::vector<std::size_t> &lens = plan_->stageStreamLens;

    ws.active_.clear();
    for (std::size_t c = 0; c < count; ++c) {
        CohortWorkspace::Slot &slot = ws.slots_[c];
        armContext(slot.ctx, cfg_.seed, indices[c], *images[c],
                   policy.deterministic);
        if (encodeInputStreams_) {
            if (policy.deterministic)
                fillInputStreams(slot.input, *images[c], cfg_, len,
                                 slot.ctx.imageSeed);
            else
                slot.input.reset(images[c]->size(), len);
        } else {
            slot.input.reset(0, 0);
        }
        out[c] = AdaptivePrediction{};
        ws.active_.push_back(c);
    }

    // The cohort advances through checkpoint blocks together: every
    // still-active image executes the same span sequence (and therefore
    // the same per-image state transitions) as the single-image adaptive
    // path, so results are bit-identical to inferAdaptive() per image.
    // Retired images are compacted out in place, shrinking the cohort a
    // stage dispatch serves.
    const std::size_t block = std::min(policy.checkpointCycles, len);
    std::size_t begin = 0;
    while (!ws.active_.empty()) {
        pollControl(control, begin);
        const std::size_t end = std::min(begin + block, len);
        if (encodeInputStreams_ && !policy.deterministic) {
            for (const std::size_t c : ws.active_) {
                CohortWorkspace::Slot &slot = ws.slots_[c];
                sc::Xoshiro256StarStar rng(
                    slot.ctx.imageSeed ^
                    (0xB10C5EEDULL + (begin / 64) * 0x9E3779B97F4A7C15ULL));
                for (std::size_t i = 0; i < images[c]->size(); ++i)
                    slot.input.fillBipolarSpan(i, (*images[c])[i],
                                               cfg_.rngBits, rng, begin,
                                               end);
            }
        }

        const ScStage *terminalStage = nullptr;
        int flip = 0;
        for (std::size_t s = 0; s < plan_->stageCount(); ++s) {
            const ScStage &stage = plan_->stage(s);
            // Per-stage clamp, as in inferAdaptive(): exhausted stages
            // (and everything downstream — lengths are non-increasing)
            // are skipped; completed outputs persist per slot.
            const std::size_t sEnd = std::min(end, lens[s]);
            if (begin < sEnd) {
                for (std::size_t k = 0; k < ws.active_.size(); ++k) {
                    CohortWorkspace::Slot &slot = ws.slots_[ws.active_[k]];
                    ws.views_[k] = CohortSlot{
                        s == 0 ? &slot.input : &slot.pingPong[flip ^ 1],
                        &slot.pingPong[flip], &slot.ctx,
                        slot.scratch[s].get()};
                }
                stage.runCohortSpan(ws.views_.data(), ws.active_.size(),
                                    begin, sEnd);
            }
            if (stage.terminal()) {
                terminalStage = &stage;
                break;
            }
            flip ^= 1;
        }

        std::size_t keep = 0;
        for (std::size_t k = 0; k < ws.active_.size(); ++k) {
            const std::size_t c = ws.active_[k];
            AdaptivePrediction &r = out[c];
            ++r.checkpoints;
            r.consumedCycles = end;
            bool retire = end >= len;
            if (!retire && end >= policy.minCycles &&
                terminalStage != nullptr &&
                terminalStage->scoreMargin(ws.slots_[c].ctx,
                                           std::min(end, lens.back())) >=
                    policy.exitMargin) {
                retire = true;
                r.exitedEarly = true;
            }
            if (retire) {
                r.prediction.scores = ws.slots_[c].ctx.scores;
                r.prediction.label = argmaxLabel(r.prediction.scores);
            } else {
                ws.active_[keep++] = c;
            }
        }
        ws.active_.resize(keep);
        begin = end;
    }
}

ScEvalStats
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples,
                          const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    const int cohort = opts.cohort <= 0 ? cfg_.cohort : opts.cohort;
    return BatchRunner(*this, threads, cohort)
        .evaluate(samples, opts.limit, opts.progress);
}

AdaptiveEvalStats
ScNetworkEngine::evaluateAdaptive(const std::vector<nn::Sample> &samples,
                                  const AdaptivePolicy &policy,
                                  const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    const int cohort = opts.cohort <= 0 ? cfg_.cohort : opts.cohort;
    return BatchRunner(*this, threads, cohort)
        .evaluateAdaptive(samples, policy, opts.limit, opts.progress);
}

std::vector<ScPrediction>
ScNetworkEngine::predict(const std::vector<nn::Sample> &samples,
                         const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    const int cohort = opts.cohort <= 0 ? cfg_.cohort : opts.cohort;
    return BatchRunner(*this, threads, cohort)
        .run(samples, opts.limit, opts.progress);
}

} // namespace aqfpsc::core
