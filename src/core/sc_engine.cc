#include "sc_engine.h"

#include "core/batch_runner.h"
#include "core/stages/stage.h"
#include "core/stages/stage_compiler.h"
#include "sc/rng.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core {

ScNetworkEngine::~ScNetworkEngine() = default;

ScNetworkEngine::ScNetworkEngine(const nn::Network &net,
                                 const ScEngineConfig &cfg)
    : cfg_(cfg), stages_(stages::compileNetwork(net, cfg))
{
}

ScPrediction
ScNetworkEngine::infer(const nn::Tensor &image) const
{
    return inferIndexed(image, 0);
}

ScPrediction
ScNetworkEngine::inferIndexed(const nn::Tensor &image,
                              std::size_t index) const
{
    const std::size_t len = cfg_.streamLen;

    StageContext ctx;
    ctx.imageSeed = sc::deriveStreamSeed(cfg_.seed, index);

    // Per-image input SNGs; a fresh substream keeps images independent.
    sc::Xoshiro256StarStar rng(ctx.imageSeed ^ 0xABCDEF12345ULL);
    sc::StreamMatrix cur(image.size(), len);
    for (std::size_t i = 0; i < image.size(); ++i)
        cur.fillBipolar(i, image[i], cfg_.rngBits, rng);

    for (const auto &stage : stages_) {
        if (stage->terminal()) {
            stage->run(cur, ctx);
            break;
        }
        cur = stage->run(cur, ctx);
    }

    ScPrediction pred;
    pred.scores = std::move(ctx.scores);
    pred.label = 0;
    for (std::size_t i = 1; i < pred.scores.size(); ++i) {
        if (pred.scores[i] >
            pred.scores[static_cast<std::size_t>(pred.label)])
            pred.label = static_cast<int>(i);
    }
    return pred;
}

double
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples, int limit,
                          bool progress) const
{
    return evaluateBatch(samples, limit, cfg_.threads, progress).accuracy;
}

ScEvalStats
ScNetworkEngine::evaluateBatch(const std::vector<nn::Sample> &samples,
                               int limit, int threads, bool progress) const
{
    return BatchRunner(*this, threads).evaluate(samples, limit, progress);
}

} // namespace aqfpsc::core
