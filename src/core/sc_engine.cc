#include "sc_engine.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <stdexcept>

#include "baseline/sc_dcnn.h"
#include "blocks/feedback_unit.h"
#include "sc/apc.h"
#include "sc/rng.h"

namespace aqfpsc::core {

namespace {

std::uint64_t
majWord(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    return (a & b) | (a & c) | (b & c);
}

/** Layers the feature-extraction block's activation can stand in for. */
bool
isScActivation(const nn::Layer &l)
{
    return dynamic_cast<const nn::HardTanh *>(&l) != nullptr ||
           dynamic_cast<const nn::SorterTanh *>(&l) != nullptr;
}

} // namespace

/** One compiled pipeline stage. */
struct ScNetworkEngine::Stage
{
    enum class Kind
    {
        Conv,   ///< feature extraction over a conv window
        Pool,   ///< 2x2 average pooling
        Dense,  ///< feature extraction over a flat input
        Output, ///< categorization (class scores)
    };

    Kind kind = Kind::Dense;

    // Spatial geometry (Conv/Pool).
    int inC = 0, inH = 0, inW = 0;
    int outC = 0, outH = 0, outW = 0;
    int kernel = 0;

    // Flat geometry (Dense/Output).
    int inFeatures = 0;
    int outFeatures = 0;

    sc::StreamMatrix weights; ///< rows follow the float layer's layout
    sc::StreamMatrix biases;  ///< one row per output neuron/channel
    sc::StreamMatrix neutral; ///< single neutral row for odd padding
};

ScNetworkEngine::~ScNetworkEngine() = default;

ScNetworkEngine::ScNetworkEngine(const nn::Network &net,
                                 const ScEngineConfig &cfg)
    : cfg_(cfg)
{
    sc::Xoshiro256StarStar rng(cfg.seed);
    const std::size_t len = cfg.streamLen;

    // Walk the float network and fuse (Conv|Dense) + HardTanh pairs.
    int in_c = 0, in_h = 0, in_w = 0; // tracked spatial shape
    bool shape_known = false;

    const std::size_t n_layers = net.layerCount();
    for (std::size_t li = 0; li < n_layers; ++li) {
        const nn::Layer &l = net.layer(li);

        if (const auto *conv = dynamic_cast<const nn::Conv2D *>(&l)) {
            if (li + 1 >= n_layers ||
                !isScActivation(net.layer(li + 1))) {
                throw std::invalid_argument(
                    "ScNetworkEngine: Conv2D needs a following activation");
            }
            if (!shape_known) {
                // First layer fixes the input geometry to 28x28.
                in_c = conv->inChannels();
                in_h = 28;
                in_w = 28;
                shape_known = true;
            }
            Stage s;
            s.kind = Stage::Kind::Conv;
            s.inC = conv->inChannels();
            s.inH = in_h;
            s.inW = in_w;
            s.outC = conv->outChannels();
            s.outH = in_h;
            s.outW = in_w;
            s.kernel = conv->kernel();

            const auto &w = conv->weights();
            s.weights = sc::StreamMatrix(w.size(), len);
            for (std::size_t i = 0; i < w.size(); ++i)
                s.weights.fillBipolar(i, w[i], cfg.rngBits, rng);
            const auto &b = conv->biases();
            s.biases = sc::StreamMatrix(b.size(), len);
            for (std::size_t i = 0; i < b.size(); ++i)
                s.biases.fillBipolar(i, b[i], cfg.rngBits, rng);
            s.neutral = sc::StreamMatrix(1, len);
            s.neutral.fillNeutral(0);

            stages_.push_back(std::move(s));
            in_c = conv->outChannels();
            ++li; // consume the HardTanh
            continue;
        }

        if (dynamic_cast<const nn::AvgPool2 *>(&l) != nullptr) {
            assert(shape_known && in_h % 2 == 0 && in_w % 2 == 0);
            Stage s;
            s.kind = Stage::Kind::Pool;
            s.inC = in_c;
            s.inH = in_h;
            s.inW = in_w;
            s.outC = in_c;
            s.outH = in_h / 2;
            s.outW = in_w / 2;
            stages_.push_back(std::move(s));
            in_h /= 2;
            in_w /= 2;
            continue;
        }

        if (const auto *chain =
                dynamic_cast<const nn::MajorityChainDense *>(&l)) {
            if (li + 1 != n_layers)
                throw std::invalid_argument(
                    "ScNetworkEngine: MajorityChainDense must be last");
            Stage s;
            s.kind = Stage::Kind::Output;
            s.inFeatures = chain->inFeatures();
            s.outFeatures = chain->outFeatures();
            const auto &w = chain->weights();
            s.weights = sc::StreamMatrix(w.size(), len);
            for (std::size_t i = 0; i < w.size(); ++i)
                s.weights.fillBipolar(i, w[i], cfg.rngBits, rng);
            const auto &b = chain->biases();
            s.biases = sc::StreamMatrix(b.size(), len);
            for (std::size_t i = 0; i < b.size(); ++i)
                s.biases.fillBipolar(i, b[i], cfg.rngBits, rng);
            s.neutral = sc::StreamMatrix(1, len);
            s.neutral.fillNeutral(0);
            stages_.push_back(std::move(s));
            continue;
        }

        if (const auto *fc = dynamic_cast<const nn::Dense *>(&l)) {
            const bool has_act =
                li + 1 < n_layers && isScActivation(net.layer(li + 1));
            Stage s;
            s.kind = has_act ? Stage::Kind::Dense : Stage::Kind::Output;
            s.inFeatures = fc->inFeatures();
            s.outFeatures = fc->outFeatures();

            const auto &w = fc->weights();
            s.weights = sc::StreamMatrix(w.size(), len);
            for (std::size_t i = 0; i < w.size(); ++i)
                s.weights.fillBipolar(i, w[i], cfg.rngBits, rng);
            const auto &b = fc->biases();
            s.biases = sc::StreamMatrix(b.size(), len);
            for (std::size_t i = 0; i < b.size(); ++i)
                s.biases.fillBipolar(i, b[i], cfg.rngBits, rng);
            s.neutral = sc::StreamMatrix(1, len);
            s.neutral.fillNeutral(0);

            stages_.push_back(std::move(s));
            if (has_act)
                ++li;
            else if (li + 1 != n_layers)
                throw std::invalid_argument(
                    "ScNetworkEngine: activation-free Dense must be last");
            continue;
        }

        throw std::invalid_argument("ScNetworkEngine: unmappable layer " +
                                    l.name());
    }

    if (stages_.empty() || stages_.back().kind != Stage::Kind::Output)
        throw std::invalid_argument(
            "ScNetworkEngine: network must end in an output Dense layer");
}

sc::StreamMatrix
ScNetworkEngine::runStage(const Stage &stage, const sc::StreamMatrix &in,
                          std::vector<double> *scores_out)
{
    const std::size_t len = cfg_.streamLen;
    const std::size_t wpr = in.wordsPerRow();
    const bool aqfp = cfg_.backend == ScBackend::AqfpSorter;

    std::vector<std::uint64_t> prod(wpr);
    std::vector<std::uint64_t> prev_prod(wpr);
    std::vector<int> col;
    std::vector<int> over_col;

    switch (stage.kind) {
      case Stage::Kind::Pool: {
        sc::StreamMatrix out(
            static_cast<std::size_t>(stage.outC) * stage.outH * stage.outW,
            len);
        sc::Xoshiro256StarStar mux_rng(cfg_.seed ^ 0x9E3779B9ULL);
        sc::ColumnCounts counts(len, 4);
        for (int c = 0; c < stage.outC; ++c) {
            for (int y = 0; y < stage.outH; ++y) {
                for (int x = 0; x < stage.outW; ++x) {
                    const std::size_t out_row =
                        (static_cast<std::size_t>(c) * stage.outH + y) *
                            stage.outW + x;
                    const std::uint64_t *rows[4];
                    for (int dy = 0; dy < 2; ++dy) {
                        for (int dx = 0; dx < 2; ++dx) {
                            rows[2 * dy + dx] = in.row(
                                (static_cast<std::size_t>(c) * stage.inH +
                                 (2 * y + dy)) * stage.inW + (2 * x + dx));
                        }
                    }
                    std::uint64_t *dst = out.row(out_row);
                    if (aqfp) {
                        counts.clear();
                        for (const auto *r : rows)
                            counts.addWords(r, wpr);
                        counts.extract(col);
                        blocks::PoolingFeedbackUnit unit(4);
                        for (std::size_t i = 0; i < len; ++i) {
                            if (unit.step(col[i]))
                                dst[i / 64] |= 1ULL << (i % 64);
                        }
                    } else {
                        // CMOS MUX pooling: random input per cycle.
                        for (std::size_t i = 0; i < len; ++i) {
                            const std::uint64_t sel = mux_rng.nextBits(2);
                            const std::uint64_t bit =
                                (rows[sel][i / 64] >> (i % 64)) & 1ULL;
                            dst[i / 64] |= bit << (i % 64);
                        }
                    }
                }
            }
        }
        return out;
      }

      case Stage::Kind::Conv: {
        sc::StreamMatrix out(
            static_cast<std::size_t>(stage.outC) * stage.outH * stage.outW,
            len);
        const int k = stage.kernel;
        const int r = k / 2;
        // Interior window + bias + possible neutral bounds the counts.
        const int max_m = stage.inC * k * k + 2;
        sc::ColumnCounts counts(len, max_m);
        sc::ColumnCounts over(len, max_m / 2 + 1);

        for (int oc = 0; oc < stage.outC; ++oc) {
            for (int y = 0; y < stage.outH; ++y) {
                for (int x = 0; x < stage.outW; ++x) {
                    counts.clear();
                    if (!aqfp)
                        over.clear();
                    int m = 0;
                    bool have_prev = false;
                    auto add_product = [&](const std::uint64_t *xr,
                                           const std::uint64_t *wr) {
                        for (std::size_t wi = 0; wi < wpr; ++wi)
                            prod[wi] = ~(xr[wi] ^ wr[wi]);
                        counts.addWords(prod.data(), wpr);
                        ++m;
                        if (!aqfp && cfg_.approximateApc) {
                            if (have_prev) {
                                for (std::size_t wi = 0; wi < wpr; ++wi)
                                    prev_prod[wi] &= prod[wi];
                                over.addWords(prev_prod.data(), wpr);
                                have_prev = false;
                            } else {
                                prev_prod = prod;
                                have_prev = true;
                            }
                        }
                    };

                    for (int ic = 0; ic < stage.inC; ++ic) {
                        for (int ky = 0; ky < k; ++ky) {
                            const int sy = y + ky - r;
                            if (sy < 0 || sy >= stage.inH)
                                continue;
                            for (int kx = 0; kx < k; ++kx) {
                                const int sx = x + kx - r;
                                if (sx < 0 || sx >= stage.inW)
                                    continue;
                                add_product(
                                    in.row((static_cast<std::size_t>(ic) *
                                            stage.inH + sy) * stage.inW +
                                           sx),
                                    stage.weights.row(
                                        ((static_cast<std::size_t>(oc) *
                                          stage.inC + ic) * k + ky) * k +
                                        kx));
                            }
                        }
                    }
                    // Bias enters the sum as one more product stream of
                    // fixed value (its "input" is the constant 1 stream).
                    counts.addWords(stage.biases.row(
                                        static_cast<std::size_t>(oc)), wpr);
                    ++m;

                    const std::size_t out_row =
                        (static_cast<std::size_t>(oc) * stage.outH + y) *
                            stage.outW + x;
                    std::uint64_t *dst = out.row(out_row);

                    if (aqfp) {
                        int eff_m = m;
                        if (m % 2 == 0) {
                            counts.addWords(stage.neutral.row(0), wpr);
                            eff_m = m + 1;
                        }
                        counts.extract(col);
                        blocks::FeatureFeedbackUnit unit(eff_m);
                        for (std::size_t i = 0; i < len; ++i) {
                            if (unit.step(col[i]))
                                dst[i / 64] |= 1ULL << (i % 64);
                        }
                    } else {
                        counts.extract(col);
                        if (cfg_.approximateApc) {
                            over.extract(over_col);
                            for (std::size_t i = 0; i < len; ++i) {
                                col[i] += over_col[i];
                                if (col[i] > m)
                                    col[i] = m;
                            }
                        }
                        int state = m; // s_max / 2 with s_max = 2m
                        for (std::size_t i = 0; i < len; ++i) {
                            if (baseline::ApcFeatureExtraction::btanhStep(
                                    state, col[i], m, 2 * m)) {
                                dst[i / 64] |= 1ULL << (i % 64);
                            }
                        }
                    }
                }
            }
        }
        return out;
      }

      case Stage::Kind::Dense: {
        assert(static_cast<int>(in.rows()) == stage.inFeatures);
        sc::StreamMatrix out(static_cast<std::size_t>(stage.outFeatures),
                             len);
        const int m_total = stage.inFeatures + 1; // + bias
        sc::ColumnCounts counts(len, m_total + 1);
        sc::ColumnCounts over(len, m_total / 2 + 1);

        for (int o = 0; o < stage.outFeatures; ++o) {
            counts.clear();
            if (!aqfp)
                over.clear();
            bool have_prev = false;
            for (int j = 0; j < stage.inFeatures; ++j) {
                const std::uint64_t *xr =
                    in.row(static_cast<std::size_t>(j));
                const std::uint64_t *wr = stage.weights.row(
                    static_cast<std::size_t>(o) * stage.inFeatures + j);
                for (std::size_t wi = 0; wi < wpr; ++wi)
                    prod[wi] = ~(xr[wi] ^ wr[wi]);
                counts.addWords(prod.data(), wpr);
                if (!aqfp && cfg_.approximateApc) {
                    if (have_prev) {
                        for (std::size_t wi = 0; wi < wpr; ++wi)
                            prev_prod[wi] &= prod[wi];
                        over.addWords(prev_prod.data(), wpr);
                        have_prev = false;
                    } else {
                        prev_prod = prod;
                        have_prev = true;
                    }
                }
            }
            counts.addWords(stage.biases.row(static_cast<std::size_t>(o)),
                            wpr);

            std::uint64_t *dst = out.row(static_cast<std::size_t>(o));
            if (aqfp) {
                int eff_m = m_total;
                if (eff_m % 2 == 0) {
                    counts.addWords(stage.neutral.row(0), wpr);
                    ++eff_m;
                }
                counts.extract(col);
                blocks::FeatureFeedbackUnit unit(eff_m);
                for (std::size_t i = 0; i < len; ++i) {
                    if (unit.step(col[i]))
                        dst[i / 64] |= 1ULL << (i % 64);
                }
            } else {
                counts.extract(col);
                if (cfg_.approximateApc) {
                    over.extract(over_col);
                    for (std::size_t i = 0; i < len; ++i) {
                        col[i] += over_col[i];
                        if (col[i] > m_total)
                            col[i] = m_total;
                    }
                }
                int state = m_total;
                for (std::size_t i = 0; i < len; ++i) {
                    if (baseline::ApcFeatureExtraction::btanhStep(
                            state, col[i], m_total, 2 * m_total)) {
                        dst[i / 64] |= 1ULL << (i % 64);
                    }
                }
            }
        }
        return out;
      }

      case Stage::Kind::Output: {
        assert(static_cast<int>(in.rows()) == stage.inFeatures);
        assert(scores_out != nullptr);
        scores_out->assign(static_cast<std::size_t>(stage.outFeatures),
                           0.0);

        for (int o = 0; o < stage.outFeatures; ++o) {
            if (aqfp) {
                // Majority chain folded word-parallel over the product
                // streams (bias as the final product; neutral pad keeps
                // the chain's 2-per-stage consumption aligned).
                const int k_total = stage.inFeatures + 1;
                std::size_t ones = 0;
                for (std::size_t wi = 0; wi < wpr; ++wi) {
                    auto product = [&](int j) -> std::uint64_t {
                        if (j < stage.inFeatures) {
                            return ~(in.row(static_cast<std::size_t>(j))[wi] ^
                                     stage.weights.row(
                                         static_cast<std::size_t>(o) *
                                             stage.inFeatures + j)[wi]);
                        }
                        if (j == stage.inFeatures)
                            return stage.biases.row(
                                static_cast<std::size_t>(o))[wi];
                        return stage.neutral.row(0)[wi]; // padding
                    };
                    std::uint64_t acc =
                        majWord(product(0), product(1), product(2));
                    int j = 3;
                    while (j < k_total) {
                        const std::uint64_t p1 = product(j);
                        const std::uint64_t p2 =
                            j + 1 < k_total ? product(j + 1)
                                            : stage.neutral.row(0)[wi];
                        acc = majWord(acc, p1, p2);
                        j += 2;
                    }
                    if (wi == wpr - 1 && len % 64 != 0)
                        acc &= (1ULL << (len % 64)) - 1;
                    ones += static_cast<std::size_t>(std::popcount(acc));
                }
                (*scores_out)[static_cast<std::size_t>(o)] =
                    2.0 * static_cast<double>(ones) /
                        static_cast<double>(len) - 1.0;
            } else {
                // CMOS: APC counts accumulated into an exact binary score.
                long long ones = 0;
                for (int j = 0; j < stage.inFeatures; ++j) {
                    const std::uint64_t *xr =
                        in.row(static_cast<std::size_t>(j));
                    const std::uint64_t *wr = stage.weights.row(
                        static_cast<std::size_t>(o) * stage.inFeatures + j);
                    for (std::size_t wi = 0; wi < wpr; ++wi) {
                        std::uint64_t p = ~(xr[wi] ^ wr[wi]);
                        if (wi == wpr - 1 && len % 64 != 0)
                            p &= (1ULL << (len % 64)) - 1;
                        ones += std::popcount(p);
                    }
                }
                ones += static_cast<long long>(stage.biases.countOnes(
                    static_cast<std::size_t>(o)));
                (*scores_out)[static_cast<std::size_t>(o)] =
                    static_cast<double>(ones);
            }
        }
        return sc::StreamMatrix(); // terminal stage
      }
    }
    return sc::StreamMatrix();
}

ScPrediction
ScNetworkEngine::infer(const nn::Tensor &image)
{
    const std::size_t len = cfg_.streamLen;
    // Per-image input SNGs; a fresh substream keeps images independent.
    sc::Xoshiro256StarStar rng(cfg_.seed ^ 0xABCDEF12345ULL);

    sc::StreamMatrix cur(image.size(), len);
    for (std::size_t i = 0; i < image.size(); ++i)
        cur.fillBipolar(i, image[i], cfg_.rngBits, rng);

    ScPrediction pred;
    for (const auto &stage : stages_) {
        if (stage.kind == Stage::Kind::Output) {
            runStage(stage, cur, &pred.scores);
            break;
        }
        cur = runStage(stage, cur, nullptr);
    }

    pred.label = 0;
    for (std::size_t i = 1; i < pred.scores.size(); ++i) {
        if (pred.scores[i] > pred.scores[static_cast<std::size_t>(pred.label)])
            pred.label = static_cast<int>(i);
    }
    return pred;
}

double
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples, int limit,
                          bool progress)
{
    const std::size_t n =
        limit < 0 ? samples.size()
                  : std::min<std::size_t>(samples.size(),
                                          static_cast<std::size_t>(limit));
    if (n == 0)
        return 0.0;
    int correct = 0;
    for (std::size_t i = 0; i < n; ++i) {
        if (infer(samples[i].image).label == samples[i].label)
            ++correct;
        if (progress && (i + 1) % 10 == 0) {
            std::printf(".");
            std::fflush(stdout);
        }
    }
    if (progress)
        std::printf("\n");
    return static_cast<double>(correct) / static_cast<double>(n);
}

} // namespace aqfpsc::core
