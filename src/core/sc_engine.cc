#include "sc_engine.h"

#include "core/backend_registry.h"
#include "core/batch_runner.h"
#include "core/stages/stage.h"
#include "core/stages/stage_compiler.h"
#include "sc/rng.h"
#include "sc/stream_matrix.h"

namespace aqfpsc::core {

const char *
scBackendName(ScBackend backend)
{
    switch (backend) {
      case ScBackend::AqfpSorter:
        return "aqfp-sorter";
      case ScBackend::CmosApc:
        return "cmos-apc";
    }
    return "aqfp-sorter";
}

ScNetworkEngine::~ScNetworkEngine() = default;

ScNetworkEngine::ScNetworkEngine(const nn::Network &net,
                                 const ScEngineConfig &cfg)
    : cfg_(cfg), backendName_(cfg.resolvedBackend()),
      encodeInputStreams_(
          BackendRegistry::instance().traits(backendName_).wantsInputStreams),
      stages_(stages::compileNetwork(net, cfg))
{
}

ScPrediction
ScNetworkEngine::infer(const nn::Tensor &image) const
{
    return inferIndexed(image, 0);
}

ScPrediction
ScNetworkEngine::inferIndexed(const nn::Tensor &image,
                              std::size_t index) const
{
    const std::size_t len = cfg_.streamLen;

    StageContext ctx;
    ctx.imageSeed = sc::deriveStreamSeed(cfg_.seed, index);
    ctx.image = &image;

    // Per-image input SNGs; a fresh substream keeps images independent.
    // Value-domain backends (traits.wantsInputStreams == false) read the
    // image through the context instead and get an empty matrix — no
    // per-image allocation on the fast accuracy-debugging path.
    sc::StreamMatrix cur;
    if (encodeInputStreams_) {
        cur = sc::StreamMatrix(image.size(), len);
        sc::Xoshiro256StarStar rng(ctx.imageSeed ^ 0xABCDEF12345ULL);
        for (std::size_t i = 0; i < image.size(); ++i)
            cur.fillBipolar(i, image[i], cfg_.rngBits, rng);
    }

    for (const auto &stage : stages_) {
        if (stage->terminal()) {
            stage->run(cur, ctx);
            break;
        }
        cur = stage->run(cur, ctx);
    }

    ScPrediction pred;
    pred.scores = std::move(ctx.scores);
    pred.label = 0;
    for (std::size_t i = 1; i < pred.scores.size(); ++i) {
        if (pred.scores[i] >
            pred.scores[static_cast<std::size_t>(pred.label)])
            pred.label = static_cast<int>(i);
    }
    return pred;
}

ScEvalStats
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples,
                          const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    return BatchRunner(*this, threads)
        .evaluate(samples, opts.limit, opts.progress);
}

std::vector<ScPrediction>
ScNetworkEngine::predict(const std::vector<nn::Sample> &samples,
                         const EvalOptions &opts) const
{
    const int threads = opts.threads < 0 ? cfg_.threads : opts.threads;
    return BatchRunner(*this, threads)
        .run(samples, opts.limit, opts.progress);
}

double
ScNetworkEngine::evaluate(const std::vector<nn::Sample> &samples, int limit,
                          bool progress) const
{
    EvalOptions opts;
    opts.limit = limit;
    opts.progress = progress;
    return evaluate(samples, opts).accuracy;
}

ScEvalStats
ScNetworkEngine::evaluateBatch(const std::vector<nn::Sample> &samples,
                               int limit, int threads, bool progress) const
{
    EvalOptions opts;
    opts.limit = limit;
    opts.threads = threads;
    opts.progress = progress;
    return evaluate(samples, opts);
}

} // namespace aqfpsc::core
