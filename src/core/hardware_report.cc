#include "hardware_report.h"

#include <cassert>
#include <map>
#include <stdexcept>

#include "aqfp/passes.h"
#include "blocks/avg_pooling.h"
#include "blocks/categorization.h"
#include "blocks/feature_extraction.h"
#include "blocks/sng_block.h"
#include "sc/simd/simd.h"
#include "sorting/bitonic.h"

namespace aqfpsc::core {

namespace {

/** Cache of legalized block costs, keyed by (block kind, size). */
using CostCache = std::map<std::pair<char, int>, aqfp::HardwareCost>;

aqfp::HardwareCost
featureBlockCost(int m, const aqfp::AqfpTechnology &tech, bool fast,
                 CostCache &cache)
{
    const auto key = std::make_pair('F', m);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;

    aqfp::HardwareCost cost;
    if (fast && m > 600) {
        // Estimate from the sorting-network comparator counts plus the
        // buffer/splitter overhead ratio calibrated on an exactly
        // legalized mid-size block.
        static double overhead = 0.0;
        static int overhead_depth_extra = 0;
        if (overhead == 0.0) {
            const aqfp::Netlist small = aqfp::legalize(
                blocks::FeatureExtractionBlock::buildNetlist(401),
                /*with_synthesis=*/false);
            const auto exact = aqfp::analyzeNetlist(small, tech);
            const auto net =
                sorting::BitonicNetwork::sortThenMerge(401, 401);
            const long long logic_jj =
                6LL * (2 * net.compareCount() + 3 * 401);
            overhead = static_cast<double>(exact.jj) /
                       static_cast<double>(logic_jj);
            overhead_depth_extra = exact.depthPhases - net.depth();
        }
        const int eff_m = m % 2 == 0 ? m + 1 : m;
        const auto net =
            sorting::BitonicNetwork::sortThenMerge(eff_m, eff_m);
        const long long logic_jj =
            6LL * (2 * net.compareCount() + 3 * m);
        cost.jj = static_cast<long long>(logic_jj * overhead);
        cost.gates = static_cast<std::size_t>(cost.jj / 5);
        cost.depthPhases = net.depth() + overhead_depth_extra;
        cost.energyPerCycleJ =
            static_cast<double>(cost.jj) * tech.energyPerJjPerCycle;
        cost.latencySeconds = cost.depthPhases * tech.cycleSeconds();
    } else {
        // Exact: build, legalize (synthesis pays off only on small
        // blocks; skip it on big sorters to bound analysis time).
        const aqfp::Netlist net = aqfp::legalize(
            blocks::FeatureExtractionBlock::buildNetlist(m),
            /*with_synthesis=*/m <= 256);
        cost = aqfp::analyzeNetlist(net, tech);
    }
    cache.emplace(key, cost);
    return cost;
}

aqfp::HardwareCost
poolingBlockCost(int m, const aqfp::AqfpTechnology &tech, CostCache &cache)
{
    const auto key = std::make_pair('P', m);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    const aqfp::Netlist net =
        aqfp::legalize(blocks::AvgPoolingBlock::buildNetlist(m));
    const auto cost = aqfp::analyzeNetlist(net, tech);
    cache.emplace(key, cost);
    return cost;
}

aqfp::HardwareCost
categorizationBlockCost(int k, const aqfp::AqfpTechnology &tech,
                        CostCache &cache)
{
    const auto key = std::make_pair('C', k);
    auto it = cache.find(key);
    if (it != cache.end())
        return it->second;
    const aqfp::Netlist net = aqfp::legalize(
        blocks::CategorizationBlock::buildNetlist(k),
        /*with_synthesis=*/k <= 256);
    const auto cost = aqfp::analyzeNetlist(net, tech);
    cache.emplace(key, cost);
    return cost;
}

} // namespace

NetworkHardware
analyzeNetworkHardware(const nn::Network &net, std::size_t stream_len,
                       const aqfp::AqfpTechnology &aqfp_tech,
                       const baseline::CmosTechnology &cmos_tech, bool fast)
{
    NetworkHardware hw;
    hw.streamLen = stream_len;
    CostCache cache;

    int in_c = 0, in_h = 28, in_w = 28;
    bool shape_known = false;
    const int rng_bits = 10;

    const std::size_t n_layers = net.layerCount();
    for (std::size_t li = 0; li < n_layers; ++li) {
        const nn::Layer &l = net.layer(li);

        if (const auto *conv = dynamic_cast<const nn::Conv2D *>(&l)) {
            if (!shape_known) {
                in_c = conv->inChannels();
                shape_known = true;
            }
            LayerHardware lh;
            const int m = conv->inChannels() * conv->kernel() *
                              conv->kernel() + 1; // + bias
            lh.name = conv->name();
            lh.blockInputs = m;
            lh.instances = static_cast<long long>(conv->outChannels()) *
                           in_h * in_w;
            lh.aqfpPerBlock = featureBlockCost(m, aqfp_tech, fast, cache);
            lh.cmosPerBlock =
                baseline::cmosFeatureExtractionCost(m, cmos_tech);
            hw.layers.push_back(lh);
            hw.weightStreams += static_cast<long long>(conv->weights().size()) +
                                static_cast<long long>(conv->biases().size());
            in_c = conv->outChannels();
            ++li; // HardTanh
            continue;
        }
        if (dynamic_cast<const nn::AvgPool2 *>(&l) != nullptr) {
            LayerHardware lh;
            lh.name = "AvgPool2";
            lh.blockInputs = 4;
            lh.instances = static_cast<long long>(in_c) * (in_h / 2) *
                           (in_w / 2);
            lh.aqfpPerBlock = poolingBlockCost(4, aqfp_tech, cache);
            lh.cmosPerBlock = baseline::cmosMuxPoolingCost(4, cmos_tech);
            hw.layers.push_back(lh);
            in_h /= 2;
            in_w /= 2;
            continue;
        }
        if (const auto *chain =
                dynamic_cast<const nn::MajorityChainDense *>(&l)) {
            LayerHardware lh;
            const int m = chain->inFeatures() + 1;
            lh.name = chain->name();
            lh.blockInputs = m;
            lh.instances = chain->outFeatures();
            lh.aqfpPerBlock = categorizationBlockCost(m, aqfp_tech, cache);
            lh.cmosPerBlock =
                baseline::cmosCategorizationCost(m, cmos_tech);
            hw.layers.push_back(lh);
            hw.weightStreams +=
                static_cast<long long>(chain->weights().size()) +
                static_cast<long long>(chain->biases().size());
            continue;
        }
        if (const auto *fc = dynamic_cast<const nn::Dense *>(&l)) {
            const bool has_act =
                li + 1 < n_layers &&
                (dynamic_cast<const nn::HardTanh *>(&net.layer(li + 1)) !=
                     nullptr ||
                 dynamic_cast<const nn::SorterTanh *>(&net.layer(li + 1)) !=
                     nullptr);
            LayerHardware lh;
            const int m = fc->inFeatures() + 1;
            lh.name = fc->name();
            lh.blockInputs = m;
            lh.instances = fc->outFeatures();
            if (has_act) {
                lh.aqfpPerBlock =
                    featureBlockCost(m, aqfp_tech, fast, cache);
                lh.cmosPerBlock =
                    baseline::cmosFeatureExtractionCost(m, cmos_tech);
                ++li;
            } else {
                lh.aqfpPerBlock =
                    categorizationBlockCost(m, aqfp_tech, cache);
                lh.cmosPerBlock =
                    baseline::cmosCategorizationCost(m, cmos_tech);
            }
            hw.layers.push_back(lh);
            hw.weightStreams += static_cast<long long>(fc->weights().size()) +
                                static_cast<long long>(fc->biases().size());
            continue;
        }
        throw std::invalid_argument("analyzeNetworkHardware: unmappable " +
                                    l.name());
    }

    // Primary inputs: first layer geometry (28x28, single channel).
    hw.inputStreams = 28LL * 28LL;

    // AQFP totals.
    double aqfp_energy_cycle = 0.0;
    double latency = 0.0;
    for (const auto &lh : hw.layers) {
        hw.aqfpTotalJj += lh.instances * lh.aqfpPerBlock.jj;
        aqfp_energy_cycle += static_cast<double>(lh.instances) *
                             lh.aqfpPerBlock.energyPerCycleJ;
        latency += lh.aqfpPerBlock.latencySeconds;
    }
    const blocks::SngBankCost sng = blocks::analyzeSngBank(
        static_cast<int>(hw.weightStreams + hw.inputStreams), rng_bits,
        /*shared_matrix=*/true);
    hw.aqfpSngJj = sng.totalJj();
    hw.aqfpTotalJj += hw.aqfpSngJj;
    aqfp_energy_cycle += static_cast<double>(hw.aqfpSngJj) *
                         aqfp_tech.energyPerJjPerCycle;

    hw.aqfpEnergyPerImageJ =
        aqfp_energy_cycle * static_cast<double>(stream_len);
    hw.aqfpLatencySeconds =
        latency + static_cast<double>(stream_len) * aqfp_tech.cycleSeconds();
    hw.aqfpThroughputImagesPerSec =
        1.0 / (static_cast<double>(stream_len) * aqfp_tech.cycleSeconds());

    // CMOS totals.
    double cmos_energy_cycle = 0.0;
    for (const auto &lh : hw.layers) {
        cmos_energy_cycle += static_cast<double>(lh.instances) *
                             lh.cmosPerBlock.energyPerCycleJ;
    }
    const baseline::CmosBlockCost cmos_sng =
        baseline::cmosSngCost(rng_bits, cmos_tech);
    cmos_energy_cycle +=
        static_cast<double>(hw.weightStreams + hw.inputStreams) *
        cmos_sng.energyPerCycleJ;
    hw.cmosEnergyPerImageJ =
        cmos_energy_cycle * static_cast<double>(stream_len);
    hw.cmosThroughputImagesPerSec =
        cmos_tech.clockFrequencyHz /
        (static_cast<double>(stream_len) * cmos_tech.pipelineStallFactor);

    return hw;
}

HostSimdInfo
hostSimdInfo()
{
    HostSimdInfo info;
    info.detected = sc::simd::levelName(sc::simd::detectedLevel());
    info.active = sc::simd::levelName(sc::simd::activeLevel());
    info.variants = sc::simd::variantSummary();
    return info;
}

} // namespace aqfpsc::core
