/**
 * @file
 * Fixed-bucket latency histogram shared by the serving layers.
 *
 * Both core::InferenceServer and serving::ServingFrontend record queue
 * and service latencies into one of these: 16 logarithmic buckets with
 * upper bounds 0.25 ms * 2^i (i = 0..14) plus a final overflow bucket,
 * covering 0.25 ms .. 4.096 s — the whole useful range of this
 * framework's request latencies at a fixed, schema-stable bucket
 * layout, so histograms recorded by different PRs (and committed in
 * BENCH_*.json reports) stay directly comparable.
 *
 * The histogram is a trivially-copyable value type: stats snapshots
 * copy it wholesale under the owning component's lock.  percentileMs()
 * returns the *upper bound* of the bucket containing the requested
 * quantile — a conservative (never optimistic) estimate, which is the
 * right bias for latency SLO reporting.
 */

#ifndef AQFPSC_CORE_LATENCY_HISTOGRAM_H
#define AQFPSC_CORE_LATENCY_HISTOGRAM_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>

namespace aqfpsc::core {

/** Fixed log-bucket latency histogram (see the file comment). */
class LatencyHistogram
{
  public:
    /** Bucket count: 15 bounded buckets + 1 overflow. */
    static constexpr std::size_t kBuckets = 16;

    /** Upper bound of bucket @p i in milliseconds; the last bucket is
     *  unbounded (returns +infinity). */
    static double
    upperBoundMs(std::size_t i)
    {
        if (i + 1 >= kBuckets)
            return std::numeric_limits<double>::infinity();
        return 0.25 * static_cast<double>(std::uint64_t{1} << i);
    }

    /** Record one latency observation. */
    void
    record(double seconds)
    {
        const double ms = seconds * 1e3;
        std::size_t i = 0;
        while (i + 1 < kBuckets && ms > upperBoundMs(i))
            ++i;
        ++counts_[i];
        ++total_;
    }

    /** Observations recorded into bucket @p i. */
    std::uint64_t count(std::size_t i) const { return counts_[i]; }

    /** Total observations recorded. */
    std::uint64_t total() const { return total_; }

    /**
     * Upper bound (ms) of the bucket containing quantile @p q in
     * [0, 1] — a conservative percentile estimate.  Returns 0 when the
     * histogram is empty and +infinity when the quantile lands in the
     * overflow bucket.
     */
    double
    percentileMs(double q) const
    {
        if (total_ == 0)
            return 0.0;
        if (q < 0.0)
            q = 0.0;
        if (q > 1.0)
            q = 1.0;
        // Rank of the quantile observation, 1-based, ceiling: the
        // smallest rank r with r >= q * total.
        std::uint64_t rank = static_cast<std::uint64_t>(
            q * static_cast<double>(total_));
        if (rank * 1.0 < q * static_cast<double>(total_))
            ++rank;
        if (rank == 0)
            rank = 1;
        std::uint64_t seen = 0;
        for (std::size_t i = 0; i < kBuckets; ++i) {
            seen += counts_[i];
            if (seen >= rank)
                return upperBoundMs(i);
        }
        return upperBoundMs(kBuckets - 1);
    }

    /** One-line summary, e.g. "p50<=2ms p90<=8ms p99<=16ms (n=412)". */
    std::string
    summary() const
    {
        auto fmt = [](double ms) -> std::string {
            if (ms == std::numeric_limits<double>::infinity())
                return ">4096";
            if (ms < 1.0)
                return std::to_string(ms).substr(0, 4);
            return std::to_string(static_cast<long long>(ms));
        };
        return "p50<=" + fmt(percentileMs(0.50)) + "ms p90<=" +
               fmt(percentileMs(0.90)) + "ms p99<=" +
               fmt(percentileMs(0.99)) + "ms (n=" +
               std::to_string(total_) + ")";
    }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t total_ = 0;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_LATENCY_HISTOGRAM_H
