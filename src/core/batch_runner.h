/**
 * @file
 * Batched, thread-parallel SC inference over one compiled engine.
 *
 * The stage graph is immutable after compilation, so a batch of images
 * fans out across a pool of std::threads that pull *cohorts* — ranges
 * of consecutive image indices — from a shared atomic counter and push
 * each cohort through the stage-major execution path
 * (ScNetworkEngine::inferCohort).  Image i always runs with the seed
 * sc::deriveStreamSeed(engine seed, i), so predictions are bit-identical
 * for any thread count (1, 2, 8, ...), any cohort size and any
 * work-stealing schedule — parallelism and cohort batching change
 * wall-clock time only, never results.
 */

#ifndef AQFPSC_CORE_BATCH_RUNNER_H
#define AQFPSC_CORE_BATCH_RUNNER_H

#include <functional>
#include <vector>

#include "core/sc_engine.h"
#include "nn/network.h"

namespace aqfpsc::core {

class CohortWorkspace;

/** Fans a batch of images across a thread pool of SC inferences. */
class BatchRunner
{
  public:
    /**
     * @param engine Compiled engine; must outlive the runner.
     * @param threads Worker count; 0 selects one per hardware thread,
     *        values are clamped to [1, 256].
     * @param cohort Images per stage-major execution cohort; clamped to
     *        [1, kMaxCohortImages].
     */
    explicit BatchRunner(const ScNetworkEngine &engine, int threads = 0,
                         int cohort = 1);

    /** Resolved worker count. */
    int threads() const { return threads_; }

    /** Resolved cohort size. */
    int cohort() const { return cohort_; }

    /**
     * Predict the first @p limit samples (all if negative).
     * @param progress Thread-safe: print a dot every 10 completed images.
     * @return One prediction per image, in sample order.
     */
    std::vector<ScPrediction> run(const std::vector<nn::Sample> &samples,
                                  int limit = -1,
                                  bool progress = false) const;

    /**
     * Predict and score the first @p limit samples (all if negative),
     * timing the batch.  With @p progress, prints dots while running and
     * a final "accuracy ... (n images, ... img/s, T threads)" line.
     */
    ScEvalStats evaluate(const std::vector<nn::Sample> &samples,
                         int limit = -1, bool progress = false) const;

    /**
     * run() with per-image adaptive early exit under @p policy: a cohort
     * compacts in place as its images clear the margin, and cohorts
     * consume different amounts of work, which the atomic work-stealing
     * index absorbs naturally (an idle worker just pulls the next
     * cohort).  Deterministic policies keep every prediction bit-
     * identical for any thread count and cohort size, exactly like
     * run().
     */
    std::vector<AdaptivePrediction>
    runAdaptive(const std::vector<nn::Sample> &samples,
                const AdaptivePolicy &policy, int limit = -1,
                bool progress = false) const;

    /** evaluate() over runAdaptive(): accuracy/timing plus mean consumed
     *  cycles and the early-exit count. */
    AdaptiveEvalStats
    evaluateAdaptive(const std::vector<nn::Sample> &samples,
                     const AdaptivePolicy &policy, int limit = -1,
                     bool progress = false) const;

  private:
    /**
     * The shared worker pool: one CohortWorkspace per worker, cohorts of
     * consecutive image indices pulled from an atomic index, first
     * exception captured and rethrown after the join.  @p fn runs once
     * per cohort with [base, base + count) image indices.
     */
    void forEachCohort(
        std::size_t n, bool progress,
        const std::function<void(CohortWorkspace &, std::size_t,
                                 std::size_t)> &fn) const;

    const ScNetworkEngine &engine_;
    int threads_;
    int cohort_;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_BATCH_RUNNER_H
