/**
 * @file
 * InferenceServer: the async micro-batching serving front end.
 *
 * An InferenceSession answers synchronous calls; the server turns one
 * compiled engine into a request-at-a-time service for many concurrent
 * producers:
 *
 *   core::ServerOptions sopts;
 *   sopts.workers = 4;          // worker threads, each with own arena
 *   sopts.adaptive = true;      // early-exit under sopts.policy
 *   core::InferenceServer server(session, sopts);
 *   std::future<core::ServedPrediction> f = server.submit(image);
 *   ...
 *   core::ServedPrediction r = f.get();  // r.prediction, r.consumedCycles
 *
 * Design:
 *
 *  - **Bounded MPMC queue.**  submit() enqueues a request and returns a
 *    std::future; when queueCapacity requests are already waiting it
 *    blocks (backpressure) until a worker drains space or the server
 *    shuts down.  Any number of producer threads may submit
 *    concurrently.
 *  - **Micro-batching workers.**  Each worker pops up to maxBatch
 *    requests in one critical section and serves them as stage-major
 *    execution cohorts from its thread-local CohortWorkspace — queue
 *    lock traffic is amortized over the batch, and every stage's weight
 *    streams are traversed once per cohort instead of once per request,
 *    which is what the interleaved kernel cores want.  Per-request work
 *    may vary wildly (adaptive early exit compacts the cohort in
 *    place); idle workers simply pop the next batch.
 *  - **Deterministic identity.**  Every request gets a monotonically
 *    increasing requestId used as the inference image index, so a
 *    request's prediction is the pure function
 *    (model, options, image, requestId) — independent of worker count,
 *    batching and arrival interleaving — and equals
 *    engine.inferIndexed(image, requestId) / inferAdaptive(...) exactly.
 *  - **Lossless shutdown.**  shutdown() (also run by the destructor)
 *    stops new submissions (they throw StatusError{Shutdown}), drains
 *    every already-accepted request, and joins the workers: every future
 *    obtained from submit() is eventually satisfied — with a value, or
 *    with the exception the inference raised.  No future is ever lost or
 *    fulfilled twice (fuzzed under ASan/UBSan in tests/test_server.cc).
 *  - **Structured failures.**  A future never carries a raw foreign
 *    exception: every failure is a core::StatusError whose status().code
 *    says what happened (Timeout, ExecutionFailed, Shutdown, ...), so
 *    callers branch on the taxonomy instead of parsing what() strings.
 *  - **Per-request timeouts.**  With ServerOptions::timeoutSeconds > 0
 *    each request carries a hard deadline from submission.  Requests
 *    already expired at worker pickup fail immediately with
 *    StatusError{Timeout}; requests that expire mid-run are cancelled
 *    cooperatively at the next adaptive checkpoint block (non-adaptive
 *    serving is routed through the exitMargin=infinity adaptive path,
 *    which is bit-identical to full-length inference, whenever the
 *    backend supports checkpointed execution — so a timed-out request
 *    frees its worker instead of wedging it for the rest of the
 *    stream).  On backends without resumable stages the deadline is
 *    enforced at pickup only.
 *
 * Thread safety: submit()/trySubmit()/submitBatch()/stats()/accepting()
 * may be called from any thread at any time; shutdown() from any
 * thread, idempotently.  The referenced InferenceSession must outlive
 * the server.
 */

#ifndef AQFPSC_CORE_SERVER_H
#define AQFPSC_CORE_SERVER_H

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/latency_histogram.h"
#include "core/sc_engine.h"
#include "core/session.h"

namespace aqfpsc::core {

/** Configuration of one InferenceServer. */
struct ServerOptions
{
    int workers = 1;                 ///< worker threads (0 = one per hw thread)
    std::size_t queueCapacity = 256; ///< pending-request bound (backpressure)
    /** Max requests popped per worker wake; also the execution cohort
     *  size (clamped to kMaxCohortImages for the stage-major kernels). */
    int maxBatch = 8;
    /** Serve with adaptive early exit under @ref policy instead of
     *  full-length inference (requires a resumable backend). */
    bool adaptive = false;
    AdaptivePolicy policy;           ///< early-exit policy when adaptive
    std::string backend;             ///< registry name; empty = session default
    /** Hard per-request budget measured from submission; 0 disables.
     *  Expired requests fail with StatusError{Timeout} — at worker
     *  pickup, or mid-run at the next checkpoint block on resumable
     *  backends (see the file comment). */
    double timeoutSeconds = 0.0;

    /** Hard bound on queueCapacity (memory: pending requests own their
     *  image tensors). */
    static constexpr std::size_t kMaxQueueCapacity = std::size_t{1} << 20;

    /** All configuration errors, each actionable; empty means valid. */
    std::vector<std::string> validate() const;
};

/** One served request: the prediction plus serving metadata. */
struct ServedPrediction
{
    ScPrediction prediction;
    std::uint64_t requestId = 0;    ///< submission order = inference index
    std::size_t consumedCycles = 0; ///< stream cycles executed
    bool exitedEarly = false;       ///< adaptive early exit taken
    double queueSeconds = 0.0;      ///< submit -> worker pickup
    double serviceSeconds = 0.0;    ///< worker pickup -> done
};

/**
 * Counters since construction (monotonic, racy-read consistent).
 *
 * All counters are cohort-aware, i.e. per *image*: completed/failed/
 * earlyExits count individual requests and avgConsumedCycles averages
 * per-request cycles, no matter how many requests one cohort execution
 * served.  Only batches counts worker queue pops, so avgBatchSize =
 * images per pop — the micro-batching (and cohort) amortization factor.
 */
struct ServerStats
{
    std::uint64_t submitted = 0;    ///< requests accepted into the queue
    std::uint64_t completed = 0;    ///< futures satisfied with a value
    std::uint64_t failed = 0;       ///< futures satisfied with an exception
    std::uint64_t timedOut = 0;     ///< subset of failed: deadline expiry
    std::uint64_t earlyExits = 0;   ///< completed with exitedEarly
    std::uint64_t batches = 0;      ///< worker micro-batch pops
    double avgConsumedCycles = 0.0; ///< mean cycles over completed images
    double avgBatchSize = 0.0;      ///< images per pop: (completed + failed) / batches
    /** Deepest the pending queue has ever been (admission-control and
     *  capacity-planning signal; never exceeds queueCapacity). */
    std::size_t queueDepthHighWater = 0;
    /** submit -> worker pickup latency of completed requests. */
    LatencyHistogram queueHistogram;
    /** worker pickup -> completion latency of completed requests. */
    LatencyHistogram serviceHistogram;
};

/**
 * Async micro-batching inference server over one InferenceSession
 * backend (see the file comment for the full design contract).
 */
class InferenceServer
{
  public:
    /**
     * Compile the backend engine (first use), validate @p opts and start
     * the worker pool.
     * @param session Must outlive the server.
     * @throws std::invalid_argument on invalid options, unknown
     *         backends, or adaptive serving on a non-resumable backend.
     */
    explicit InferenceServer(const InferenceSession &session,
                             ServerOptions opts = {});

    /** shutdown(), then destroy. */
    ~InferenceServer();

    InferenceServer(const InferenceServer &) = delete;
    InferenceServer &operator=(const InferenceServer &) = delete;

    /**
     * Enqueue one image (copied into the request) and return the future
     * of its prediction.  Blocks while the queue is at capacity.
     * @throws StatusError{Shutdown} (a std::runtime_error) once
     *         shutdown has begun.
     */
    std::future<ServedPrediction> submit(nn::Tensor image);

    /**
     * Non-throwing, non-blocking admission-control variant of submit():
     * returns std::nullopt instead of blocking when the queue is at
     * capacity, and instead of throwing once shutdown has begun.
     * Callers implementing load shedding (serving::ServingFrontend,
     * open-loop load generators) use this to count rejects without
     * paying exception control flow on the overload path.
     */
    std::optional<std::future<ServedPrediction>> trySubmit(nn::Tensor image);

    /** submit() every image of @p images, in order (their requestIds are
     *  consecutive).  Same blocking/throwing behavior. */
    std::vector<std::future<ServedPrediction>>
    submitBatch(const std::vector<nn::Tensor> &images);

    /**
     * Stop accepting, serve every already-accepted request, join the
     * workers.  Idempotent; safe from any thread.  After return, every
     * future from submit() is ready.
     */
    void shutdown();

    /** True until shutdown() begins. */
    bool accepting() const;

    /** The worker count actually running. */
    int workers() const { return workerCount_; }

    /** Serving options (validated, backend resolved). */
    const ServerOptions &options() const { return opts_; }

    /** Counter snapshot. */
    ServerStats stats() const;

  private:
    struct Request
    {
        nn::Tensor image;
        std::promise<ServedPrediction> promise;
        std::uint64_t id = 0;
        std::chrono::steady_clock::time_point enqueued;
        /** Hard deadline (RunControl::kNoDeadline when untimed). */
        std::chrono::steady_clock::time_point expiry =
            RunControl::kNoDeadline;
    };

    void workerLoop();

    /** Serve batch[off, off + count) as one stage-major cohort. */
    void serveCohort(std::vector<Request> &batch, std::size_t off,
                     std::size_t count, CohortWorkspace &workspace);

    const InferenceSession &session_;
    ServerOptions opts_;
    const ScNetworkEngine *engine_ = nullptr; ///< compiled once, up front
    int workerCount_ = 0;
    /** Non-adaptive serving with a timeout goes through the
     *  exitMargin=infinity adaptive path (bit-identical to full-length
     *  inference) so the deadline can cancel at block granularity. */
    bool routeCancellable_ = false;
    AdaptivePolicy fullLengthPolicy_;

    mutable std::mutex mutex_;
    std::condition_variable notEmpty_; ///< workers wait: work or stop
    std::condition_variable notFull_;  ///< producers wait: space or stop
    std::deque<Request> queue_;
    bool stopping_ = false;
    std::uint64_t nextId_ = 0;

    /** Build one pending Request for @p image and hand back its future;
     *  must be called with mutex_ held and space available. */
    std::future<ServedPrediction> enqueueLocked(nn::Tensor image);

    // Stats (under mutex_).
    std::uint64_t completed_ = 0;
    std::uint64_t failed_ = 0;
    std::uint64_t timedOut_ = 0;
    std::uint64_t earlyExits_ = 0;
    std::uint64_t batches_ = 0;
    std::uint64_t consumedCycles_ = 0;
    std::size_t queueDepthHighWater_ = 0;
    LatencyHistogram queueHistogram_;
    LatencyHistogram serviceHistogram_;

    /** Serializes concurrent shutdown() callers around the joins. */
    std::mutex joinMutex_;
    std::vector<std::thread> threads_;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_SERVER_H
