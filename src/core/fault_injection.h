/**
 * @file
 * Deterministic, seed-driven fault injection for chaos testing.
 *
 * The serving stack's recovery paths (retry, quarantine, watchdog
 * respawn, checksum rejection) are worthless untested, and real faults
 * are too rare and too irreproducible to test against.  This framework
 * lets a test *arm* faults at well-known sites in the production code —
 * worker exceptions, artificial hangs and slowdowns, worker crashes,
 * engine-compile failures, model-load corruption — and have them fire
 * deterministically:
 *
 *  - Every fire decision is a pure hash of (plan seed, site, call key),
 *    so a given seed reproduces the same fault pattern regardless of
 *    thread interleaving, and two runs of a chaos round disagree only
 *    in timing, never in which request got which fault.
 *  - When no plan is installed (production), every hook is a single
 *    relaxed atomic load of a null pointer — zero allocations, no
 *    locks, no branches taken.
 *  - ScopedFaultPlan installs a plan for a test scope and guarantees
 *    removal on exit, so a throwing test cannot leak armed faults into
 *    the next one.
 *
 * Sites are *cooperative*: the production code calls
 * fault::injectThrow / fault::injectDelay / fault::shouldFire at the
 * site, and those calls are no-ops unless a plan armed that site.  An
 * injected hang sleeps in small slices watching RunControl::
 * cancelRequested() (without beating), which is exactly what makes it
 * kickable by the ServingFrontend watchdog.
 */

#ifndef AQFPSC_CORE_FAULT_INJECTION_H
#define AQFPSC_CORE_FAULT_INJECTION_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>

#include "core/status.h"

namespace aqfpsc::core {

/** Injectable failure sites in the serving stack. */
enum class FaultSite : int
{
    WorkerException = 0, ///< serve path throws (transient ExecutionFailed)
    WorkerHang,          ///< serve path blocks until cancelled/deadline
    WorkerSlowdown,      ///< serve path sleeps, then continues normally
    WorkerCrash,         ///< worker thread dies (batch requeued, respawn)
    EngineCompile,       ///< ScNetworkEngine construction fails
    ModelLoadCorrupt,    ///< loadModel flips a payload byte pre-verify
    kCount,
};

/** Stable lower-kebab name of @p site (e.g. "worker-hang"). */
const char *faultSiteName(FaultSite site);

/**
 * An armed set of fault sites with per-site probability, delay, and an
 * optional cap on how many times the site may fire.  Decisions are
 * deterministic in (seed, site, key); the fired() counters are the only
 * mutable state and are safe to read/advance from any thread.
 */
class FaultPlan
{
  public:
    explicit FaultPlan(std::uint64_t seed) : seed_(seed) {}

    /**
     * Arm @p site: each distinct @p key passed to the site's hook fires
     * with @p probability (deterministically — same seed/site/key, same
     * answer).  @p delay is how long hang/slowdown sites stall.
     * @p maxFires > 0 caps total fires of the site (0 = unlimited).
     * Returns *this for chaining.
     */
    FaultPlan &arm(FaultSite site, double probability,
                   std::chrono::milliseconds delay = std::chrono::milliseconds{0},
                   std::uint64_t maxFires = 0);

    /** Pure decision: would (seed, site, key) fire?  Ignores maxFires
     *  and does not count. */
    bool decides(FaultSite site, std::uint64_t key) const;

    /** Decision + maxFires gate + fired() accounting.  This is what the
     *  production hooks call. */
    bool tryFire(FaultSite site, std::uint64_t key);

    /** Armed stall duration of @p site. */
    std::chrono::milliseconds delay(FaultSite site) const;

    /** How many times @p site has fired so far. */
    std::uint64_t fired(FaultSite site) const;

  private:
    struct SiteState
    {
        double probability = 0.0;
        std::chrono::milliseconds delay{0};
        std::uint64_t maxFires = 0;
        std::atomic<std::uint64_t> fired{0};
    };

    std::uint64_t seed_ = 0;
    std::array<SiteState, static_cast<int>(FaultSite::kCount)> sites_;
};

namespace fault {

/** Install @p plan globally (nullptr disarms).  Prefer ScopedFaultPlan. */
void install(FaultPlan *plan);

/** The installed plan, or nullptr when injection is disabled. */
FaultPlan *activePlan();

/**
 * Decision hook: true when an installed plan fires @p site for @p key.
 * The disabled-path cost is one atomic null check.
 */
bool shouldFire(FaultSite site, std::uint64_t key);

/** Throw a transient/terminal StatusError if @p site fires for @p key
 *  (ExecutionFailed for WorkerException, WorkerCrashed for WorkerCrash,
 *  EngineCompileFailed for EngineCompile). */
void injectThrow(FaultSite site, std::uint64_t key);

/**
 * Stall if @p site fires for @p key: sleep the plan's armed delay in
 * ~1 ms slices.  Each slice checks @p control (when given) WITHOUT
 * beating — so the watchdog's stall detector sees a frozen worker — and
 * aborts with StatusError{Timeout} once the deadline passes or
 * StatusError{ExecutionFailed} once the run is cancelled (transient, so
 * a kicked hang is retried).
 */
void injectDelay(FaultSite site, std::uint64_t key,
                 const RunControl *control = nullptr);

} // namespace fault

/** RAII install/uninstall of a FaultPlan for one test scope. */
class ScopedFaultPlan
{
  public:
    explicit ScopedFaultPlan(FaultPlan &plan) { fault::install(&plan); }
    ~ScopedFaultPlan() { fault::install(nullptr); }

    ScopedFaultPlan(const ScopedFaultPlan &) = delete;
    ScopedFaultPlan &operator=(const ScopedFaultPlan &) = delete;
};

} // namespace aqfpsc::core

#endif // AQFPSC_CORE_FAULT_INJECTION_H
