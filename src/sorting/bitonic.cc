#include "bitonic.h"

#include <algorithm>
#include <cassert>

namespace aqfpsc::sorting {

namespace {

/** Largest power of two strictly less than n (n >= 2). */
int
greatestPowerOfTwoBelow(int n)
{
    int p = 1;
    while (p * 2 < n)
        p *= 2;
    return p;
}

} // namespace

BitonicNetwork
BitonicNetwork::sorter(int width, SortKind kind)
{
    assert(width >= 1);
    BitonicNetwork net(width);
    net.wireReady_.assign(static_cast<std::size_t>(width), 0);
    net.buildSort(0, width, /*descending=*/true, kind);
    return net;
}

BitonicNetwork
BitonicNetwork::sortThenMerge(int column, int sorted_prefix, SortKind kind)
{
    assert(column >= 1 && sorted_prefix >= 0);
    const int width = column + sorted_prefix;
    BitonicNetwork net(width);
    net.wireReady_.assign(static_cast<std::size_t>(width), 0);
    // Ascending column followed by the descending feedback forms a bitonic
    // sequence; a single merge then sorts the whole vector descending.
    net.buildSort(0, column, /*descending=*/false, kind);
    net.buildMerge(0, width, /*descending=*/true, kind);
    return net;
}

int
BitonicNetwork::opCount() const
{
    int n = 0;
    for (const auto &stage : stages_)
        n += static_cast<int>(stage.size());
    return n;
}

int
BitonicNetwork::compareCount() const
{
    int n = 0;
    for (const auto &stage : stages_) {
        for (const auto &op : stage)
            n += op.kind == OpKind::Sort3 ? 3 : 1;
    }
    return n;
}

void
BitonicNetwork::emit(SortOp op)
{
    int stage = wireReady_[static_cast<std::size_t>(op.a)];
    stage = std::max(stage, wireReady_[static_cast<std::size_t>(op.b)]);
    if (op.kind == OpKind::Sort3)
        stage = std::max(stage, wireReady_[static_cast<std::size_t>(op.c)]);

    if (stage >= static_cast<int>(stages_.size()))
        stages_.resize(static_cast<std::size_t>(stage) + 1);
    stages_[static_cast<std::size_t>(stage)].push_back(op);

    wireReady_[static_cast<std::size_t>(op.a)] = stage + 1;
    wireReady_[static_cast<std::size_t>(op.b)] = stage + 1;
    if (op.kind == OpKind::Sort3)
        wireReady_[static_cast<std::size_t>(op.c)] = stage + 1;
}

void
BitonicNetwork::buildSort(int lo, int n, bool descending, SortKind kind)
{
    if (n <= 1)
        return;
    if (n == 2) {
        emit({OpKind::CompareExchange, descending ? lo : lo + 1,
              descending ? lo + 1 : lo, -1});
        return;
    }
    if (n == 3 && kind == SortKind::ThreeSorterCells) {
        // The paper's three-input sorter cell: one AND (max), one OR (min)
        // and one majority gate (median), single stage.
        if (descending)
            emit({OpKind::Sort3, lo, lo + 1, lo + 2});
        else
            emit({OpKind::Sort3, lo + 2, lo + 1, lo});
        return;
    }
    const int m = n / 2;
    buildSort(lo, m, !descending, kind);
    buildSort(lo + m, n - m, descending, kind);
    buildMerge(lo, n, descending, kind);
}

void
BitonicNetwork::buildMerge(int lo, int n, bool descending, SortKind kind)
{
    if (n <= 1)
        return;
    if (n == 3 && kind == SortKind::ThreeSorterCells) {
        // A three-element bitonic sequence is fully sorted by one Sort3.
        if (descending)
            emit({OpKind::Sort3, lo, lo + 1, lo + 2});
        else
            emit({OpKind::Sort3, lo + 2, lo + 1, lo});
        return;
    }
    const int m = greatestPowerOfTwoBelow(n);
    for (int i = lo; i < lo + n - m; ++i) {
        emit({OpKind::CompareExchange, descending ? i : i + m,
              descending ? i + m : i, -1});
    }
    buildMerge(lo, m, descending, kind);
    buildMerge(lo + m, n - m, descending, kind);
}

template <typename T>
void
BitonicNetwork::applyImpl(std::vector<T> &values) const
{
    assert(static_cast<int>(values.size()) == width_);
    for (const auto &stage : stages_) {
        for (const auto &op : stage) {
            if (op.kind == OpKind::CompareExchange) {
                T &x = values[static_cast<std::size_t>(op.a)];
                T &y = values[static_cast<std::size_t>(op.b)];
                if (x < y)
                    std::swap(x, y);
            } else {
                T &x = values[static_cast<std::size_t>(op.a)];
                T &y = values[static_cast<std::size_t>(op.b)];
                T &z = values[static_cast<std::size_t>(op.c)];
                if (x < y)
                    std::swap(x, y);
                if (y < z)
                    std::swap(y, z);
                if (x < y)
                    std::swap(x, y);
            }
        }
    }
}

void
BitonicNetwork::apply(std::vector<int> &values) const
{
    applyImpl(values);
}

void
BitonicNetwork::apply(std::vector<bool> &values) const
{
    // std::vector<bool> proxies cannot bind to T&; evaluate via ints.
    std::vector<int> v(values.begin(), values.end());
    applyImpl(v);
    for (std::size_t i = 0; i < values.size(); ++i)
        values[i] = v[i] != 0;
}

} // namespace aqfpsc::sorting
