/**
 * @file
 * Bitonic sorting networks for arbitrary input counts.
 *
 * The paper's feature-extraction and pooling blocks are built around
 * binary bitonic sorters (Sec. 4.2, Figs. 10-12).  On single-bit values a
 * compare-exchange is just an OR (max) and an AND (min), so the whole
 * sorter is a two-gate-per-comparator combinational network -- a perfect
 * match for AQFP's gate-per-phase pipeline.
 *
 * Odd input counts are handled by the generalized bitonic network of
 * Liszka & Batcher (the paper's reference [25]), which recursively splits
 * any n into n/2 and n - n/2 and merges with power-of-two compare
 * distances.  The paper's odd-input refinement (Fig. 11(c)) introduces a
 * three-input sorter cell -- realizable in AQFP as one AND, one OR and one
 * majority gate, all in a single clock phase; SortKind::ThreeSorterCells
 * maps every width-3 base case of the recursion onto that cell, reducing
 * both depth and gate count relative to pure two-input comparators.
 *
 * A network is a list of stages of primitive ops on a wire vector, so the
 * same IR drives (a) a functional evaluator over arbitrary ordered values,
 * (b) the AQFP netlist emitter in blocks/, and (c) depth/size accounting
 * for the hardware model.
 */

#ifndef AQFPSC_SORTING_BITONIC_H
#define AQFPSC_SORTING_BITONIC_H

#include <vector>

namespace aqfpsc::sorting {

/** Primitive operation kinds of the sorting-network IR. */
enum class OpKind
{
    CompareExchange, ///< (a, b) -> wires[a] = max, wires[b] = min
    Sort3,           ///< (a, b, c) -> max, median, min in place
};

/** One primitive op on the wire vector. */
struct SortOp
{
    OpKind kind;
    int a = -1; ///< first wire
    int b = -1; ///< second wire
    int c = -1; ///< Sort3 only: third wire
};

/** Which construction to use. */
enum class SortKind
{
    Generalized,      ///< pure 2-input comparators (Liszka-Batcher)
    ThreeSorterCells, ///< width-3 base cases use the paper's Sort3 cell
};

/**
 * A bitonic sorting network over @c width wires, descending order
 * (wire 0 ends up holding the maximum).
 */
class BitonicNetwork
{
  public:
    /** Build a full sorter over @p width inputs (>= 1). */
    static BitonicNetwork sorter(int width,
                                 SortKind kind = SortKind::Generalized);

    /**
     * Build the feedback-block network of Fig. 12: sort a fresh column of
     * @p column wires, then bitonic-merge it with an already-sorted
     * feedback vector of @p sorted_prefix wires.
     *
     * Wire layout: [0, column) = fresh column (sorted ascending so that
     * column + feedback forms a bitonic sequence), [column, column +
     * sorted_prefix) = feedback, already descending.  The merge emits the
     * full vector in descending order.
     */
    static BitonicNetwork sortThenMerge(int column, int sorted_prefix,
                                        SortKind kind = SortKind::Generalized);

    /** Number of wires. */
    int width() const { return width_; }

    /** Stages of parallel ops (ops within a stage touch disjoint wires). */
    const std::vector<std::vector<SortOp>> &stages() const { return stages_; }

    /** Total primitive ops. */
    int opCount() const;

    /** Compare-exchange count with Sort3 weighted as 3 comparators. */
    int compareCount() const;

    /** Network depth in stages. */
    int depth() const { return static_cast<int>(stages_.size()); }

    /** Apply the network to an int vector in place (descending). */
    void apply(std::vector<int> &values) const;

    /** Apply on booleans (the binary case used by the SC blocks). */
    void apply(std::vector<bool> &values) const;

  private:
    explicit BitonicNetwork(int width) : width_(width) {}

    /** Append an op at the earliest stage where all its wires are free. */
    void emit(SortOp op);

    void buildSort(int lo, int n, bool descending, SortKind kind);
    void buildMerge(int lo, int n, bool descending, SortKind kind);

    template <typename T> void applyImpl(std::vector<T> &values) const;

    int width_;
    std::vector<std::vector<SortOp>> stages_;
    std::vector<int> wireReady_; ///< earliest free stage per wire
};

} // namespace aqfpsc::sorting

#endif // AQFPSC_SORTING_BITONIC_H
