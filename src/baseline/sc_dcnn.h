/**
 * @file
 * Functional models of the prior-art CMOS SC-DNN blocks (SC-DCNN,
 * Ren et al. ASPLOS'17 -- Fig. 5 of the paper), used as the accuracy
 * baseline in Table 9 and the pooling ablation.
 *
 *  - ApcFeatureExtraction: XNOR multipliers + (approximate) parallel
 *    counter + Btanh binary-counter activation.  The Btanh counter with
 *    s_max = 2m states approximates tanh of the pre-activation sum --
 *    close to, but not exactly, the hard-tanh the sorter block realizes,
 *    which is one source of the CMOS accuracy gap the paper reports.
 *  - MuxAveragePooling: selects one input stream per cycle at random;
 *    unbiased but with sampling noise that grows with the input count
 *    (the inaccuracy the paper's sorter-based pooling eliminates).
 */

#ifndef AQFPSC_BASELINE_SC_DCNN_H
#define AQFPSC_BASELINE_SC_DCNN_H

#include <vector>

#include "sc/bitstream.h"
#include "sc/rng.h"

namespace aqfpsc::baseline {

/** SC-DCNN feature-extraction block (APC + Btanh). */
class ApcFeatureExtraction
{
  public:
    /**
     * @param m Number of product inputs.
     * @param approximate_apc Use the OR-pair approximate counter layer.
     */
    explicit ApcFeatureExtraction(int m, bool approximate_apc = true);

    int m() const { return m_; }

    /** Btanh state count (2m). */
    int stateMax() const { return sMax_; }

    /** Run over product streams; returns the activated output stream. */
    sc::Bitstream run(const std::vector<sc::Bitstream> &products) const;

    /** XNOR-multiply then run. */
    sc::Bitstream runInnerProduct(const std::vector<sc::Bitstream> &x,
                                  const std::vector<sc::Bitstream> &w) const;

    /**
     * Stateless helper: per-cycle Btanh update.
     * @param state Current counter state in [0, s_max - 1].
     * @param count APC output for the cycle, in [0, m].
     * @param m Input count.
     * @param s_max State count.
     * @return Output bit; @p state is updated in place.
     */
    static bool btanhStep(int &state, int count, int m, int s_max);

  private:
    int m_;
    int sMax_;
    bool approx_;
};

/** MUX-based average pooling (random input subsampling). */
class MuxAveragePooling
{
  public:
    explicit MuxAveragePooling(int m) : m_(m) {}

    int m() const { return m_; }

    /** Run over input streams using @p rng for the select stream. */
    sc::Bitstream run(const std::vector<sc::Bitstream> &inputs,
                      sc::RandomSource &rng) const;

  private:
    int m_;
};

} // namespace aqfpsc::baseline

#endif // AQFPSC_BASELINE_SC_DCNN_H
