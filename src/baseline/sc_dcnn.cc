#include "sc_dcnn.h"

#include <cassert>

#include "sc/apc.h"

namespace aqfpsc::baseline {

ApcFeatureExtraction::ApcFeatureExtraction(int m, bool approximate_apc)
    : m_(m), sMax_(2 * m), approx_(approximate_apc)
{
    assert(m >= 1);
}

bool
ApcFeatureExtraction::btanhStep(int &state, int count, int m, int s_max)
{
    // Up/down by (2*count - m): the signed per-cycle sum of bipolar
    // product bits; saturate at the counter rails.
    state += 2 * count - m;
    if (state < 0)
        state = 0;
    if (state > s_max - 1)
        state = s_max - 1;
    return state >= s_max / 2;
}

sc::Bitstream
ApcFeatureExtraction::run(const std::vector<sc::Bitstream> &products) const
{
    assert(static_cast<int>(products.size()) == m_);
    const std::size_t len = products[0].size();

    // Exact per-cycle counts first...
    sc::ColumnCounts counts(len, m_);
    for (const auto &p : products) {
        assert(p.size() == len);
        counts.add(p);
    }
    std::vector<int> col;
    counts.extract(col);

    // ...then the APC approximation error: the OR first layer reads a
    // (1,1) pair as 2*(a AND b) + (a OR b) = a + b + (a AND b), so the
    // approximate count is the exact count plus the per-cycle number of
    // (1,1) pairs -- computable at word speed from the pair-AND streams.
    std::vector<int> apc_col(col.begin(), col.end());
    if (approx_ && m_ >= 2) {
        sc::ColumnCounts over(len, m_ / 2);
        for (int j = 0; j + 1 < m_; j += 2) {
            over.add(products[static_cast<std::size_t>(j)] &
                     products[static_cast<std::size_t>(j) + 1]);
        }
        std::vector<int> extra;
        over.extract(extra);
        for (std::size_t i = 0; i < len; ++i)
            apc_col[i] += extra[i];
    }

    sc::Bitstream out(len);
    int state = sMax_ / 2;
    for (std::size_t i = 0; i < len; ++i) {
        // The APC may overcount above m; clamp the counter input range.
        const int c = apc_col[i] > m_ ? m_ : apc_col[i];
        if (btanhStep(state, c, m_, sMax_))
            out.set(i, true);
    }
    return out;
}

sc::Bitstream
ApcFeatureExtraction::runInnerProduct(const std::vector<sc::Bitstream> &x,
                                      const std::vector<sc::Bitstream> &w) const
{
    assert(static_cast<int>(x.size()) == m_ && x.size() == w.size());
    std::vector<sc::Bitstream> products;
    products.reserve(x.size());
    for (std::size_t j = 0; j < x.size(); ++j)
        products.push_back(x[j].xnorWith(w[j]));
    return run(products);
}

sc::Bitstream
MuxAveragePooling::run(const std::vector<sc::Bitstream> &inputs,
                       sc::RandomSource &rng) const
{
    assert(static_cast<int>(inputs.size()) == m_);
    const std::size_t len = inputs[0].size();
    sc::Bitstream out(len);
    for (std::size_t i = 0; i < len; ++i) {
        const std::size_t sel = static_cast<std::size_t>(
            rng.nextWord() % static_cast<std::uint64_t>(m_));
        out.set(i, inputs[sel].get(i));
    }
    return out;
}

} // namespace aqfpsc::baseline
