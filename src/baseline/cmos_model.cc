#include "cmos_model.h"

#include <bit>
#include <cassert>
#include <cmath>

#include "sc/apc.h"

namespace aqfpsc::baseline {

namespace {

CmosBlockCost
finalize(int gates, int flops, int depth, const CmosTechnology &t)
{
    CmosBlockCost c;
    c.gates = gates;
    c.flops = flops;
    c.depthGates = depth;
    c.energyPerCycleJ = gates * t.energyPerGateOp +
                        flops * t.energyPerFlopCycle;
    c.latencySeconds = depth * t.gateDelaySeconds;
    return c;
}

/** ceil(log2(x)) for x >= 1. */
int
clog2(int x)
{
    assert(x >= 1);
    return x <= 1 ? 0
                  : std::bit_width(static_cast<unsigned>(x - 1));
}

} // namespace

CmosBlockCost
cmosSngCost(int rng_bits, const CmosTechnology &t)
{
    // LFSR: rng_bits DFFs + ~4 XOR taps.  Comparator: ~3 gates/bit
    // (lt/eq primitives) + tree combine (~2 gates per node).
    const int comparator = 3 * rng_bits + 2 * (rng_bits - 1);
    const int gates = 4 + comparator;
    const int flops = rng_bits;
    const int depth = 2 + 2 * clog2(rng_bits);
    return finalize(gates, flops, depth, t);
}

CmosBlockCost
cmosFeatureExtractionCost(int m, const CmosTechnology &t)
{
    // m XNOR multipliers (~2 gate eq each), the approximate parallel
    // counter of SC-DCNN, and the Btanh up/down counter (state width
    // clog2(2m) + adder + comparator, ~6 gate eq per state bit).
    const int multipliers = 2 * m;
    const int apc = sc::ApproximateParallelCounter(m).gateCount();
    const int state_bits = clog2(2 * m) + 1;
    const int counter_gates = 6 * state_bits;
    const int gates = multipliers + apc + counter_gates;
    const int flops = state_bits;
    const int depth = 2 + 2 * clog2(m) + state_bits;
    return finalize(gates, flops, depth, t);
}

CmosBlockCost
cmosMuxPoolingCost(int m, const CmosTechnology &t)
{
    // (m - 1) 2:1 MUXes (~3 gate eq each) + select LFSR of clog2(m) bits.
    const int sel_bits = clog2(m);
    const int gates = 3 * (m - 1) + 4;
    const int flops = sel_bits;
    const int depth = 3 * clog2(m);
    return finalize(gates, flops, std::max(depth, 1), t);
}

CmosBlockCost
cmosCategorizationCost(int k, const CmosTechnology &t)
{
    // k XNOR + APC + score accumulator (adder + register of
    // clog2(k) + clog2(N)-class width; we size for 16-bit scores).
    const int multipliers = 2 * k;
    const int apc = sc::ApproximateParallelCounter(k).gateCount();
    const int acc_bits = clog2(k) + 11; // count width + stream headroom
    const int adder = 5 * acc_bits;
    const int gates = multipliers + apc + adder;
    const int flops = acc_bits;
    const int depth = 2 + 2 * clog2(k) + acc_bits;
    return finalize(gates, flops, depth, t);
}

} // namespace aqfpsc::baseline
