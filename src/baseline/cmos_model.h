/**
 * @file
 * Analytical 40 nm CMOS cost model for the SC-DNN baseline.
 *
 * The paper synthesizes its CMOS comparison points with a 40 nm SMIC
 * process and Design Compiler; this repo has no synthesis flow, so block
 * energy/delay are computed from gate inventories and per-gate constants
 * (DESIGN.md Sec. 3).  Constants:
 *
 *  - energyPerGateOp = 1.5 fJ: switching + local wiring energy of a
 *    2-input gate at 40 nm, ~1 GHz, typical corner;
 *  - energyPerFlopCycle = 3 fJ: DFF clock + data energy per cycle;
 *  - gateDelay = 60 ps; clockFrequencyHz = 1 GHz;
 *  - pipelineStallFactor = 4: throughput derating of the counter/FSM-based
 *    activation datapath, calibrated against the paper's reported CMOS
 *    throughput (Table 9).
 *
 * Absolute CMOS numbers carry model uncertainty; the quantities the paper
 * evaluates -- AQFP/CMOS ratios of 1e4..1e6 and their scaling with block
 * size -- are robust to it (see EXPERIMENTS.md).
 */

#ifndef AQFPSC_BASELINE_CMOS_MODEL_H
#define AQFPSC_BASELINE_CMOS_MODEL_H

#include <cstddef>

namespace aqfpsc::baseline {

/** CMOS technology constants (40 nm class). */
struct CmosTechnology
{
    double energyPerGateOp = 1.5e-15; ///< J per 2-input gate per cycle
    double energyPerFlopCycle = 3e-15; ///< J per DFF per cycle
    double gateDelaySeconds = 60e-12;  ///< combinational gate delay
    double clockFrequencyHz = 1e9;
    double pipelineStallFactor = 4.0;  ///< counter/FSM throughput derating

    double cycleSeconds() const { return 1.0 / clockFrequencyHz; }
};

/** Energy/latency figures of one CMOS block. */
struct CmosBlockCost
{
    int gates = 0;   ///< combinational 2-input gate equivalents
    int flops = 0;   ///< DFFs
    int depthGates = 0; ///< combinational depth in gates

    double energyPerCycleJ = 0.0;
    double latencySeconds = 0.0; ///< one-cycle combinational latency

    /** Energy to process an n-cycle stream. */
    double
    energyPerStreamJ(std::size_t n) const
    {
        return energyPerCycleJ * static_cast<double>(n);
    }
};

/**
 * CMOS SNG: w-bit maximal LFSR + w-bit comparator (prior-art pseudo-RNG
 * SNG; the 40-60% RNG footprint problem cited in Sec. 3 of the paper).
 */
CmosBlockCost cmosSngCost(int rng_bits, const CmosTechnology &t = {});

/**
 * CMOS SC feature-extraction block (Fig. 5 of the paper = SC-DCNN):
 * m XNOR multipliers + approximate parallel counter + binary-counter
 * Btanh activation.
 */
CmosBlockCost cmosFeatureExtractionCost(int m, const CmosTechnology &t = {});

/** CMOS average pooling: m-to-1 MUX tree + select LFSR. */
CmosBlockCost cmosMuxPoolingCost(int m, const CmosTechnology &t = {});

/**
 * CMOS categorization (FC inner product): k XNOR + APC + score
 * accumulator (binary adder + register).
 */
CmosBlockCost cmosCategorizationCost(int k, const CmosTechnology &t = {});

} // namespace aqfpsc::baseline

#endif // AQFPSC_BASELINE_CMOS_MODEL_H
