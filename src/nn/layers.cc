#include "layers.h"

#include <algorithm>
#include <cmath>
#include <random>
#include <stdexcept>

namespace aqfpsc::nn {

namespace {

void
initUniform(std::vector<float> &w, float bound, unsigned seed)
{
    std::mt19937 gen(seed);
    std::uniform_real_distribution<float> dist(-bound, bound);
    for (auto &x : w)
        x = dist(gen);
}

void
sgdStep(std::vector<float> &w, std::vector<float> &g, std::vector<float> &v,
        float lr, float momentum)
{
    for (std::size_t i = 0; i < w.size(); ++i) {
        v[i] = momentum * v[i] + g[i];
        w[i] -= lr * v[i];
        // Bipolar SC cannot represent |w| > 1.
        w[i] = std::clamp(w[i], -1.0f, 1.0f);
        g[i] = 0.0f;
    }
}

} // namespace

Conv2D::Conv2D(int in_ch, int out_ch, int kernel, unsigned seed)
    : inCh_(in_ch), outCh_(out_ch), k_(kernel)
{
    assert(kernel % 2 == 1);
    const std::size_t wn = static_cast<std::size_t>(out_ch) * in_ch *
                           kernel * kernel;
    w_.assign(wn, 0.0f);
    b_.assign(static_cast<std::size_t>(out_ch), 0.0f);
    gw_.assign(wn, 0.0f);
    gb_.assign(b_.size(), 0.0f);
    vw_.assign(wn, 0.0f);
    vb_.assign(b_.size(), 0.0f);
    const float bound =
        std::sqrt(2.0f / (static_cast<float>(in_ch) * kernel * kernel));
    initUniform(w_, bound, seed);
}

Tensor
Conv2D::forward(const Tensor &x)
{
    assert(x.shape().size() == 3 && x.shape()[0] == inCh_);
    const int h = x.shape()[1], wd = x.shape()[2];
    lastIn_ = x;
    Tensor y({outCh_, h, wd});
    const int r = k_ / 2;
    for (int oc = 0; oc < outCh_; ++oc) {
        const float *wbase = &w_[static_cast<std::size_t>(oc) * inCh_ * k_ *
                                 k_];
        for (int yy = 0; yy < h; ++yy) {
            for (int xx = 0; xx < wd; ++xx) {
                float acc = b_[static_cast<std::size_t>(oc)];
                for (int ic = 0; ic < inCh_; ++ic) {
                    for (int ky = 0; ky < k_; ++ky) {
                        const int sy = yy + ky - r;
                        if (sy < 0 || sy >= h)
                            continue;
                        for (int kx = 0; kx < k_; ++kx) {
                            const int sx = xx + kx - r;
                            if (sx < 0 || sx >= wd)
                                continue;
                            acc += wbase[(static_cast<std::size_t>(ic) * k_ +
                                          ky) * k_ + kx] *
                                   x.at(ic, sy, sx);
                        }
                    }
                }
                y.at(oc, yy, xx) = acc;
            }
        }
    }
    return y;
}

Tensor
Conv2D::backward(const Tensor &grad_out)
{
    const Tensor &x = lastIn_;
    const int h = x.shape()[1], wd = x.shape()[2];
    const int r = k_ / 2;
    Tensor gx({inCh_, h, wd});
    for (int oc = 0; oc < outCh_; ++oc) {
        float *gwbase = &gw_[static_cast<std::size_t>(oc) * inCh_ * k_ * k_];
        const float *wbase =
            &w_[static_cast<std::size_t>(oc) * inCh_ * k_ * k_];
        for (int yy = 0; yy < h; ++yy) {
            for (int xx = 0; xx < wd; ++xx) {
                // Index flat: upstream layers may hand back a rank-1
                // gradient of the right size (e.g. Dense after flatten).
                const float g = grad_out[(static_cast<std::size_t>(oc) * h +
                                          yy) * wd + xx];
                if (g == 0.0f)
                    continue;
                gb_[static_cast<std::size_t>(oc)] += g;
                for (int ic = 0; ic < inCh_; ++ic) {
                    for (int ky = 0; ky < k_; ++ky) {
                        const int sy = yy + ky - r;
                        if (sy < 0 || sy >= h)
                            continue;
                        for (int kx = 0; kx < k_; ++kx) {
                            const int sx = xx + kx - r;
                            if (sx < 0 || sx >= wd)
                                continue;
                            const std::size_t wi =
                                (static_cast<std::size_t>(ic) * k_ + ky) *
                                    k_ + kx;
                            gwbase[wi] += g * x.at(ic, sy, sx);
                            gx.at(ic, sy, sx) += g * wbase[wi];
                        }
                    }
                }
            }
        }
    }
    return gx;
}

void
Conv2D::update(float lr, float momentum)
{
    sgdStep(w_, gw_, vw_, lr, momentum);
    sgdStep(b_, gb_, vb_, lr, momentum);
}

std::string
Conv2D::name() const
{
    return "Conv" + std::to_string(k_) + "x" + std::to_string(k_) + "x" +
           std::to_string(outCh_);
}

std::vector<std::vector<float> *>
Conv2D::params()
{
    return {&w_, &b_};
}

Tensor
HardTanh::forward(const Tensor &x)
{
    lastIn_ = x;
    Tensor y = x;
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = std::clamp(y[i], -1.0f, 1.0f);
    return y;
}

Tensor
HardTanh::backward(const Tensor &grad_out)
{
    Tensor gx = grad_out;
    for (std::size_t i = 0; i < gx.size(); ++i) {
        const float v = lastIn_[i];
        if (v <= -1.0f || v >= 1.0f)
            gx[i] = 0.0f;
    }
    return gx;
}

Tensor
SorterTanh::forward(const Tensor &x)
{
    Tensor y = x;
    for (std::size_t i = 0; i < y.size(); ++i)
        y[i] = std::tanh(kGain * y[i]);
    lastOut_ = y;
    return y;
}

Tensor
SorterTanh::backward(const Tensor &grad_out)
{
    Tensor gx = grad_out;
    for (std::size_t i = 0; i < gx.size(); ++i) {
        const float t = lastOut_[i];
        gx[i] *= kGain * (1.0f - t * t);
    }
    return gx;
}

Tensor
AvgPool2::forward(const Tensor &x)
{
    const int c = x.shape()[0], h = x.shape()[1], wd = x.shape()[2];
    assert(h % 2 == 0 && wd % 2 == 0);
    lastShape_ = x.shape();
    Tensor y({c, h / 2, wd / 2});
    for (int ch = 0; ch < c; ++ch) {
        for (int yy = 0; yy < h / 2; ++yy) {
            for (int xx = 0; xx < wd / 2; ++xx) {
                y.at(ch, yy, xx) =
                    0.25f * (x.at(ch, 2 * yy, 2 * xx) +
                             x.at(ch, 2 * yy, 2 * xx + 1) +
                             x.at(ch, 2 * yy + 1, 2 * xx) +
                             x.at(ch, 2 * yy + 1, 2 * xx + 1));
            }
        }
    }
    return y;
}

Tensor
AvgPool2::backward(const Tensor &grad_out)
{
    Tensor gx(lastShape_);
    const int c = lastShape_[0], h = lastShape_[1], wd = lastShape_[2];
    for (int ch = 0; ch < c; ++ch) {
        for (int yy = 0; yy < h / 2; ++yy) {
            for (int xx = 0; xx < wd / 2; ++xx) {
                // Flat index: tolerate rank-1 gradients from Dense.
                const float g =
                    0.25f * grad_out[(static_cast<std::size_t>(ch) * (h / 2) +
                                      yy) * (wd / 2) + xx];
                gx.at(ch, 2 * yy, 2 * xx) = g;
                gx.at(ch, 2 * yy, 2 * xx + 1) = g;
                gx.at(ch, 2 * yy + 1, 2 * xx) = g;
                gx.at(ch, 2 * yy + 1, 2 * xx + 1) = g;
            }
        }
    }
    return gx;
}

Dense::Dense(int in, int out, unsigned seed) : in_(in), out_(out)
{
    const std::size_t wn = static_cast<std::size_t>(in) * out;
    w_.assign(wn, 0.0f);
    b_.assign(static_cast<std::size_t>(out), 0.0f);
    gw_.assign(wn, 0.0f);
    gb_.assign(b_.size(), 0.0f);
    vw_.assign(wn, 0.0f);
    vb_.assign(b_.size(), 0.0f);
    initUniform(w_, std::sqrt(2.0f / static_cast<float>(in)), seed);
}

Tensor
Dense::forward(const Tensor &x)
{
    assert(static_cast<int>(x.size()) == in_);
    lastIn_ = x;
    Tensor y({out_});
    for (int o = 0; o < out_; ++o) {
        const float *row = &w_[static_cast<std::size_t>(o) * in_];
        float acc = b_[static_cast<std::size_t>(o)];
        for (int i = 0; i < in_; ++i)
            acc += row[i] * x[static_cast<std::size_t>(i)];
        y[static_cast<std::size_t>(o)] = acc;
    }
    return y;
}

Tensor
Dense::backward(const Tensor &grad_out)
{
    Tensor gx({in_});
    for (int o = 0; o < out_; ++o) {
        const float g = grad_out[static_cast<std::size_t>(o)];
        gb_[static_cast<std::size_t>(o)] += g;
        const float *row = &w_[static_cast<std::size_t>(o) * in_];
        float *grow = &gw_[static_cast<std::size_t>(o) * in_];
        for (int i = 0; i < in_; ++i) {
            grow[i] += g * lastIn_[static_cast<std::size_t>(i)];
            gx[static_cast<std::size_t>(i)] += g * row[i];
        }
    }
    return gx;
}

void
Dense::update(float lr, float momentum)
{
    sgdStep(w_, gw_, vw_, lr, momentum);
    sgdStep(b_, gb_, vb_, lr, momentum);
}

std::string
Dense::name() const
{
    return "FC" + std::to_string(out_);
}

std::vector<std::vector<float> *>
Dense::params()
{
    return {&w_, &b_};
}

namespace {

/** Bipolar-domain majority value: maj(a, x, y) = (a + x + y - axy) / 2. */
float
majValue(float a, float x, float y)
{
    return 0.5f * (a + x + y - a * x * y);
}

} // namespace

MajorityChainDense::MajorityChainDense(int in, int out, unsigned seed)
    : in_(in), out_(out)
{
    const std::size_t wn = static_cast<std::size_t>(in) * out;
    w_.assign(wn, 0.0f);
    b_.assign(static_cast<std::size_t>(out), 0.0f);
    gw_.assign(wn, 0.0f);
    gb_.assign(b_.size(), 0.0f);
    vw_.assign(wn, 0.0f);
    vb_.assign(b_.size(), 0.0f);
    // The chain attenuates early products, so a larger init than a linear
    // layer keeps late-product gradients alive.
    initUniform(w_, 0.5f, seed);
}

double
MajorityChainDense::chainValue(const Tensor &x, int o) const
{
    const int k_total = in_ + 1; // + bias
    const float *row = &w_[static_cast<std::size_t>(o) * in_];
    auto product = [&](int j) -> float {
        if (j < in_)
            return row[j] * x[static_cast<std::size_t>(j)];
        if (j == in_)
            return b_[static_cast<std::size_t>(o)];
        return 0.0f; // neutral pad
    };
    float acc = majValue(product(0), product(1), product(2));
    for (int j = 3; j < k_total; j += 2) {
        const float p2 = j + 1 < k_total ? product(j + 1) : 0.0f;
        acc = majValue(acc, product(j), p2);
    }
    return acc;
}

Tensor
MajorityChainDense::forward(const Tensor &x)
{
    assert(static_cast<int>(x.size()) == in_);
    lastIn_ = x;
    trace_.assign(static_cast<std::size_t>(out_), {});
    Tensor y({out_});
    const int k_total = in_ + 1;
    for (int o = 0; o < out_; ++o) {
        const float *row = &w_[static_cast<std::size_t>(o) * in_];
        auto product = [&](int j) -> float {
            if (j < in_)
                return row[j] * x[static_cast<std::size_t>(j)];
            if (j == in_)
                return b_[static_cast<std::size_t>(o)];
            return 0.0f;
        };
        auto &accs = trace_[static_cast<std::size_t>(o)];
        float acc = majValue(product(0), product(1), product(2));
        accs.push_back(acc);
        for (int j = 3; j < k_total; j += 2) {
            const float p2 = j + 1 < k_total ? product(j + 1) : 0.0f;
            acc = majValue(acc, product(j), p2);
            accs.push_back(acc);
        }
        y[static_cast<std::size_t>(o)] = acc * kLogitGain;
    }
    return y;
}

Tensor
MajorityChainDense::backward(const Tensor &grad_out)
{
    Tensor gx({in_});
    const int k_total = in_ + 1;
    for (int o = 0; o < out_; ++o) {
        const float *row = &w_[static_cast<std::size_t>(o) * in_];
        float *grow = &gw_[static_cast<std::size_t>(o) * in_];
        const auto &accs = trace_[static_cast<std::size_t>(o)];
        auto product = [&](int j) -> float {
            if (j < in_)
                return row[j] * lastIn_[static_cast<std::size_t>(j)];
            if (j == in_)
                return b_[static_cast<std::size_t>(o)];
            return 0.0f;
        };
        auto add_product_grad = [&](int j, float dp) {
            if (j < in_) {
                grow[j] += dp * lastIn_[static_cast<std::size_t>(j)];
                gx[static_cast<std::size_t>(j)] += dp * row[j];
            } else if (j == in_) {
                gb_[static_cast<std::size_t>(o)] += dp;
            } // neutral pad has no parameters
        };

        float dacc =
            grad_out[static_cast<std::size_t>(o)] * kLogitGain;
        // Walk the chain stages in reverse.
        int stage = static_cast<int>(accs.size()) - 1;
        for (int j = k_total - (k_total % 2 == 1 ? 2 : 1); j >= 3;
             j -= 2, --stage) {
            // Stage consumed products j, j+1 (j+1 may be the pad).
            const float prev = accs[static_cast<std::size_t>(stage) - 1];
            const float p1 = product(j);
            const float p2 = j + 1 < k_total ? product(j + 1) : 0.0f;
            add_product_grad(j, dacc * 0.5f * (1.0f - prev * p2));
            if (j + 1 < k_total)
                add_product_grad(j + 1, dacc * 0.5f * (1.0f - prev * p1));
            dacc *= 0.5f * (1.0f - p1 * p2);
        }
        // First triple.
        const float p0 = product(0), p1 = product(1), p2 = product(2);
        add_product_grad(0, dacc * 0.5f * (1.0f - p1 * p2));
        add_product_grad(1, dacc * 0.5f * (1.0f - p0 * p2));
        add_product_grad(2, dacc * 0.5f * (1.0f - p0 * p1));
    }
    return gx;
}

void
MajorityChainDense::update(float lr, float momentum)
{
    sgdStep(w_, gw_, vw_, lr, momentum);
    sgdStep(b_, gb_, vb_, lr, momentum);
}

std::string
MajorityChainDense::name() const
{
    return "MajChainFC" + std::to_string(out_);
}

std::vector<std::vector<float> *>
MajorityChainDense::params()
{
    return {&w_, &b_};
}

std::unique_ptr<Layer>
makeLayer(const LayerSpec &spec)
{
    switch (spec.kind) {
      case LayerSpec::Kind::Conv2D:
        if (spec.p0 <= 0 || spec.p1 <= 0 || spec.p2 <= 0 ||
            spec.p2 % 2 == 0)
            throw std::invalid_argument(
                "makeLayer: bad Conv2D spec (channels > 0, odd kernel)");
        return std::make_unique<Conv2D>(spec.p0, spec.p1, spec.p2, 0u);
      case LayerSpec::Kind::HardTanh:
        return std::make_unique<HardTanh>();
      case LayerSpec::Kind::SorterTanh:
        return std::make_unique<SorterTanh>();
      case LayerSpec::Kind::AvgPool2:
        return std::make_unique<AvgPool2>();
      case LayerSpec::Kind::Dense:
        if (spec.p0 <= 0 || spec.p1 <= 0)
            throw std::invalid_argument(
                "makeLayer: bad Dense spec (features must be > 0)");
        return std::make_unique<Dense>(spec.p0, spec.p1, 0u);
      case LayerSpec::Kind::MajorityChainDense:
        if (spec.p0 <= 0 || spec.p1 <= 0)
            throw std::invalid_argument(
                "makeLayer: bad MajorityChainDense spec (features must "
                "be > 0)");
        return std::make_unique<MajorityChainDense>(spec.p0, spec.p1, 0u);
    }
    throw std::invalid_argument(
        "makeLayer: unknown layer kind " +
        std::to_string(static_cast<int>(spec.kind)));
}

} // namespace aqfpsc::nn
