/**
 * @file
 * Neural-network layers with forward/backward passes.
 *
 * The layer set mirrors what the AQFP-SC hardware can realize
 * (Table 8 of the paper):
 *
 *  - Conv2D, same padding, stride 1 -- mapped to sorter-based feature
 *    extraction blocks (one per output pixel/channel);
 *  - HardTanh (clip to [-1, 1]) -- the activation the sorter block
 *    integrates (value-domain equivalent of the shifted clipped ReLU of
 *    Fig. 13), so it is trained-in exactly as Sec. 5.2 of the paper
 *    prescribes ("trained with taking all limitations of AQFP and SC
 *    into considerations");
 *  - AvgPool 2x2 stride 2 -- mapped to sorter-based pooling blocks;
 *  - Dense -- mapped to feature-extraction blocks (hidden FCs) or the
 *    majority-chain categorization block (output layer).
 *
 * Weights are clamped to [-1, 1] after every update, since bipolar SC
 * cannot represent values outside that range.
 */

#ifndef AQFPSC_NN_LAYERS_H
#define AQFPSC_NN_LAYERS_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "tensor.h"

namespace aqfpsc::nn {

class Rng;

/**
 * Serializable layer identity: a kind tag plus the shape parameters
 * needed to reconstruct the layer (weights travel separately).  The kind
 * values are part of the model-file format — never renumber them.
 */
struct LayerSpec
{
    enum class Kind : std::uint8_t
    {
        Conv2D = 1,
        HardTanh = 2,
        SorterTanh = 3,
        AvgPool2 = 4,
        Dense = 5,
        MajorityChainDense = 6,
    };

    Kind kind = Kind::HardTanh;
    int p0 = 0; ///< Conv2D: in channels;  Dense/chain: in features
    int p1 = 0; ///< Conv2D: out channels; Dense/chain: out features
    int p2 = 0; ///< Conv2D: kernel size
};

/** Reconstruct an untrained layer from its spec.
 *  @throws std::invalid_argument on an unknown kind or bad shape. */
std::unique_ptr<class Layer> makeLayer(const LayerSpec &spec);

/** Abstract layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Forward pass; caches whatever backward() needs. */
    virtual Tensor forward(const Tensor &x) = 0;

    /** Backward pass: dL/dx from dL/dy; accumulates parameter grads. */
    virtual Tensor backward(const Tensor &grad_out) = 0;

    /** SGD + momentum update; clears gradients. No-op if parameter-free. */
    virtual void update(float lr, float momentum) { (void)lr; (void)momentum; }

    /** Layer name for reports. */
    virtual std::string name() const = 0;

    /** Serializable identity (kind + shape) for model files. */
    virtual LayerSpec spec() const = 0;

    /** Parameter arrays (weights then biases), for quantization / IO. */
    virtual std::vector<std::vector<float> *> params() { return {}; }
};

/** 2-D convolution, same padding, stride 1, square odd kernel. */
class Conv2D : public Layer
{
  public:
    /**
     * @param in_ch Input channels.
     * @param out_ch Output channels.
     * @param kernel Odd kernel size (3, 5, 7, 9).
     * @param seed Weight-init seed.
     */
    Conv2D(int in_ch, int out_ch, int kernel, unsigned seed);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    void update(float lr, float momentum) override;
    std::string name() const override;
    LayerSpec spec() const override
    {
        return {LayerSpec::Kind::Conv2D, inCh_, outCh_, k_};
    }
    std::vector<std::vector<float> *> params() override;

    int inChannels() const { return inCh_; }
    int outChannels() const { return outCh_; }
    int kernel() const { return k_; }
    const std::vector<float> &weights() const { return w_; }
    const std::vector<float> &biases() const { return b_; }

  private:
    int inCh_, outCh_, k_;
    std::vector<float> w_;  ///< [out_ch][in_ch][k][k]
    std::vector<float> b_;  ///< [out_ch]
    std::vector<float> gw_, gb_, vw_, vb_;
    Tensor lastIn_;
};

/** Hard tanh: clip(x, -1, 1); the idealized SC activation (Eq. (1)). */
class HardTanh : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "HardTanh"; }
    LayerSpec spec() const override { return {LayerSpec::Kind::HardTanh}; }

  private:
    Tensor lastIn_;
};

/**
 * The *measured* response of the sorter-based feature-extraction block.
 *
 * The block's bounded carry softens the clip corners of the ideal
 * hard-tanh; across input sizes 9..393 the measured value transfer
 * curve is fitted to within ~0.05 by tanh(0.8 z) (see
 * bench_fig13_activation_shape).  Training with this surrogate is the
 * "taking all limitations of AQFP and SC into considerations" step of
 * the paper (Sec. 5.2): networks trained with SorterTanh lose almost
 * nothing when executed on the real SC blocks, while hard-tanh-trained
 * networks see the corner mismatch as noise.
 */
class SorterTanh : public Layer
{
  public:
    /** Gain of the fitted tanh response. */
    static constexpr float kGain = 0.8f;

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "ScTanh"; }
    LayerSpec spec() const override
    {
        return {LayerSpec::Kind::SorterTanh};
    }

  private:
    Tensor lastOut_;
};

/** 2x2 average pooling, stride 2 (input H, W must be even). */
class AvgPool2 : public Layer
{
  public:
    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    std::string name() const override { return "AvgPool2"; }
    LayerSpec spec() const override { return {LayerSpec::Kind::AvgPool2}; }

  private:
    std::vector<int> lastShape_;
};

/** Fully connected layer on a flattened input. */
class Dense : public Layer
{
  public:
    Dense(int in, int out, unsigned seed);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    void update(float lr, float momentum) override;
    std::string name() const override;
    LayerSpec spec() const override
    {
        return {LayerSpec::Kind::Dense, in_, out_, 0};
    }
    std::vector<std::vector<float> *> params() override;

    int inFeatures() const { return in_; }
    int outFeatures() const { return out_; }
    const std::vector<float> &weights() const { return w_; }
    const std::vector<float> &biases() const { return b_; }

  private:
    int in_, out_;
    std::vector<float> w_; ///< [out][in]
    std::vector<float> b_;
    std::vector<float> gw_, gb_, vw_, vb_;
    Tensor lastIn_;
};

/**
 * Output layer trained through the AQFP majority-chain semantics.
 *
 * The hardware categorization block folds Maj3 gates over the product
 * streams (Sec. 4.4).  In the bipolar value domain a majority gate obeys
 * maj(a, x, y) = (a + x + y - a*x*y) / 2, so the chain's expected output
 * follows an exact, differentiable recursion over the per-product values
 * u_j = w_j * x_j -- note the /2 per stage: the chain *attenuates* early
 * inputs exponentially, which is why a final layer must be trained
 * through the chain for the categorization block to rank classes
 * correctly (the paper: "trained with taking all limitations of AQFP and
 * SC into considerations").
 *
 * Product order matches core::ScNetworkEngine exactly: inputs 0..in-1,
 * then the bias (one more product), then a neutral zero-value pad when
 * the total count is even.  Returned scores are the chain values scaled
 * by a fixed logit gain (monotone, so rankings are unaffected).
 */
class MajorityChainDense : public Layer
{
  public:
    MajorityChainDense(int in, int out, unsigned seed);

    Tensor forward(const Tensor &x) override;
    Tensor backward(const Tensor &grad_out) override;
    void update(float lr, float momentum) override;
    std::string name() const override;
    LayerSpec spec() const override
    {
        return {LayerSpec::Kind::MajorityChainDense, in_, out_, 0};
    }
    std::vector<std::vector<float> *> params() override;

    int inFeatures() const { return in_; }
    int outFeatures() const { return out_; }
    const std::vector<float> &weights() const { return w_; }
    const std::vector<float> &biases() const { return b_; }

    /** Chain value of one output on raw input values (no logit gain). */
    double chainValue(const Tensor &x, int o) const;

    /** Fixed gain applied to chain values to form trainable logits. */
    static constexpr float kLogitGain = 8.0f;

  private:
    int in_, out_;
    std::vector<float> w_; ///< [out][in]
    std::vector<float> b_;
    std::vector<float> gw_, gb_, vw_, vb_;
    Tensor lastIn_;
    /** Per-output per-stage accumulated chain values (for backward). */
    std::vector<std::vector<float>> trace_;
};

} // namespace aqfpsc::nn

#endif // AQFPSC_NN_LAYERS_H
