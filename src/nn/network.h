/**
 * @file
 * Sequential network container with SGD training, evaluation and
 * weight serialization.
 */

#ifndef AQFPSC_NN_NETWORK_H
#define AQFPSC_NN_NETWORK_H

#include <memory>
#include <string>
#include <vector>

#include "layers.h"
#include "tensor.h"

namespace aqfpsc::nn {

/** One labelled sample. */
struct Sample
{
    Tensor image;  ///< CHW in [-1, 1]
    int label = 0; ///< class index
};

/** Training hyper-parameters. */
struct TrainConfig
{
    int epochs = 5;
    int batchSize = 32;
    float learningRate = 0.05f;
    float momentum = 0.9f;
    float lrDecay = 0.7f;    ///< multiplicative per-epoch decay
    unsigned shuffleSeed = 7;
    bool verbose = false;
};

/** Sequential feed-forward network. */
class Network
{
  public:
    /** Append a layer (takes ownership). */
    void add(std::unique_ptr<Layer> layer);

    /** Layer access. */
    std::size_t layerCount() const { return layers_.size(); }
    Layer &layer(std::size_t i) { return *layers_[i]; }
    const Layer &layer(std::size_t i) const { return *layers_[i]; }

    /** Forward pass to class scores (logits). */
    Tensor forward(const Tensor &x) const;

    /** Predicted class of one image. */
    int predict(const Tensor &x) const;

    /** Mean accuracy over a sample set. */
    double evaluate(const std::vector<Sample> &samples) const;

    /**
     * SGD training with softmax cross-entropy on the final scores.
     * @return final-epoch mean training loss.
     */
    double train(std::vector<Sample> &samples, const TrainConfig &cfg);

    /**
     * Snap all parameters to the bipolar SNG code grid (2^bits + 1 codes
     * over [-1, 1]).  Mirrors how weights are hardwired on chip.
     * Records the grid in quantBits() so model files carry it.
     */
    void quantizeParams(int bits);

    /** SNG grid the parameters were last quantized to (0 = never). */
    int quantBits() const { return quantBits_; }

    /**
     * Model-file format version written by saveModel ("AQFPSCM2"): a
     * full artifact carrying architecture (layer specs), quantization
     * state and all parameters, so a trained model is saved once and
     * served anywhere without rebuilding the architecture in code.
     * Version 3 appends an integrity footer (FNV-1a-64 checksum of the
     * payload plus a terminal footer magic) so loadModel can tell a
     * partially written file from a bit-flipped one.
     */
    static constexpr int kModelFormatVersion = 3;

    /**
     * Serialize architecture + quantization state + parameters,
     * atomically: the artifact is built in memory (with its checksum
     * footer), written to "<path>.tmp" and renamed over @p path, so a
     * crash mid-save can never leave a half-written file under the
     * final name — readers see the old artifact or the new one.
     * @return success (the temp file is removed on failure).
     */
    bool saveModel(const std::string &path) const;

    /**
     * Reconstruct a network from a saveModel file after verifying its
     * integrity footer.
     * @throws core::StatusError (a std::runtime_error) with an
     *         actionable message; the status code distinguishes
     *         IoError (missing/unreadable), ModelTruncated (footer
     *         missing: partial write), ModelCorrupted (bad magic or
     *         checksum mismatch: bit rot) and InvalidArgument
     *         (version/architecture mismatch).
     */
    static Network loadModel(const std::string &path);

    /** Serialize all parameters to a binary file ("AQFPSCW1",
     *  weights-only: the architecture must already exist in code).
     *  @return success. */
    bool saveWeights(const std::string &path) const;

    /** Load parameters saved by saveWeights.  @return success. */
    bool loadWeights(const std::string &path);

    /** Human-readable architecture string, e.g. "Conv3x3x32-AvgPool2-...". */
    std::string describe() const;

  private:
    std::vector<std::unique_ptr<Layer>> layers_;
    int quantBits_ = 0;
};

/** Numerically stable softmax over a score tensor. */
std::vector<double> softmax(const Tensor &scores);

} // namespace aqfpsc::nn

#endif // AQFPSC_NN_NETWORK_H
