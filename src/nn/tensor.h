/**
 * @file
 * Minimal dense float tensor (CHW layout for images).
 */

#ifndef AQFPSC_NN_TENSOR_H
#define AQFPSC_NN_TENSOR_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace aqfpsc::nn {

/** Dense row-major float tensor with a small-rank shape. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<int> shape) : shape_(std::move(shape))
    {
        std::size_t n = 1;
        for (int d : shape_) {
            assert(d > 0);
            n *= static_cast<std::size_t>(d);
        }
        data_.assign(n, 0.0f);
    }

    /** Shape vector. */
    const std::vector<int> &shape() const { return shape_; }

    /** Total element count. */
    std::size_t size() const { return data_.size(); }

    /** Flat element access. */
    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** 3-d access (c, y, x) for CHW image tensors. */
    float &
    at(int c, int y, int x)
    {
        return data_[flat(c, y, x)];
    }
    float
    at(int c, int y, int x) const
    {
        return data_[flat(c, y, x)];
    }

    /** Raw data access. */
    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Underlying vector (for serialization). */
    std::vector<float> &vec() { return data_; }
    const std::vector<float> &vec() const { return data_; }

  private:
    std::size_t
    flat(int c, int y, int x) const
    {
        assert(shape_.size() == 3);
        assert(c >= 0 && c < shape_[0]);
        assert(y >= 0 && y < shape_[1]);
        assert(x >= 0 && x < shape_[2]);
        return (static_cast<std::size_t>(c) *
                    static_cast<std::size_t>(shape_[1]) +
                static_cast<std::size_t>(y)) *
                   static_cast<std::size_t>(shape_[2]) +
               static_cast<std::size_t>(x);
    }

    std::vector<int> shape_;
    std::vector<float> data_;
};

} // namespace aqfpsc::nn

#endif // AQFPSC_NN_TENSOR_H
