#include "network.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <numeric>
#include <random>
#include <stdexcept>

#include "core/fault_injection.h"
#include "core/status.h"
#include "sc/sng.h"

namespace aqfpsc::nn {

void
Network::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

Tensor
Network::forward(const Tensor &x) const
{
    Tensor cur = x;
    for (const auto &l : layers_)
        cur = l->forward(cur);
    return cur;
}

int
Network::predict(const Tensor &x) const
{
    const Tensor scores = forward(x);
    int best = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] > scores[static_cast<std::size_t>(best)])
            best = static_cast<int>(i);
    }
    return best;
}

double
Network::evaluate(const std::vector<Sample> &samples) const
{
    if (samples.empty())
        return 0.0;
    int correct = 0;
    for (const auto &s : samples)
        correct += predict(s.image) == s.label ? 1 : 0;
    return static_cast<double>(correct) / static_cast<double>(samples.size());
}

std::vector<double>
softmax(const Tensor &scores)
{
    double mx = scores[0];
    for (std::size_t i = 1; i < scores.size(); ++i)
        mx = std::max(mx, static_cast<double>(scores[i]));
    std::vector<double> p(scores.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        p[i] = std::exp(static_cast<double>(scores[i]) - mx);
        sum += p[i];
    }
    for (auto &v : p)
        v /= sum;
    return p;
}

double
Network::train(std::vector<Sample> &samples, const TrainConfig &cfg)
{
    std::mt19937 gen(cfg.shuffleSeed);
    std::vector<std::size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);

    float lr = cfg.learningRate;
    double epoch_loss = 0.0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), gen);
        epoch_loss = 0.0;
        int in_batch = 0;
        for (std::size_t n = 0; n < order.size(); ++n) {
            const Sample &s = samples[order[n]];
            // Forward through all layers, keeping caches.
            Tensor cur = s.image;
            for (auto &l : layers_)
                cur = l->forward(cur);
            // Softmax cross-entropy gradient on the scores.
            const std::vector<double> p = softmax(cur);
            epoch_loss += -std::log(
                std::max(p[static_cast<std::size_t>(s.label)], 1e-12));
            Tensor grad({static_cast<int>(cur.size())});
            for (std::size_t i = 0; i < cur.size(); ++i) {
                grad[i] = static_cast<float>(p[i]) -
                          (static_cast<int>(i) == s.label ? 1.0f : 0.0f);
            }
            for (std::size_t li = layers_.size(); li-- > 0;)
                grad = layers_[li]->backward(grad);

            if (++in_batch == cfg.batchSize || n + 1 == order.size()) {
                const float scaled_lr =
                    lr / static_cast<float>(in_batch);
                for (auto &l : layers_)
                    l->update(scaled_lr, cfg.momentum);
                in_batch = 0;
            }
        }
        epoch_loss /= static_cast<double>(samples.size());
        if (cfg.verbose) {
            std::printf("  epoch %d/%d: loss %.4f (lr %.4f)\n", epoch + 1,
                        cfg.epochs, epoch_loss, static_cast<double>(lr));
            std::fflush(stdout);
        }
        lr *= cfg.lrDecay;
    }
    return epoch_loss;
}

void
Network::quantizeParams(int bits)
{
    quantBits_ = bits;
    for (auto &l : layers_) {
        for (std::vector<float> *p : l->params()) {
            for (auto &w : *p) {
                w = static_cast<float>(sc::codeToBipolar(
                    sc::quantizeBipolar(static_cast<double>(w), bits),
                    bits));
            }
        }
    }
}

bool
Network::saveWeights(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    const char magic[8] = {'A', 'Q', 'F', 'P', 'S', 'C', 'W', '1'};
    out.write(magic, sizeof(magic));
    for (const auto &l : layers_) {
        for (std::vector<float> *p :
             const_cast<Layer &>(*l).params()) {
            const std::uint64_t n = p->size();
            out.write(reinterpret_cast<const char *>(&n), sizeof(n));
            out.write(reinterpret_cast<const char *>(p->data()),
                      static_cast<std::streamsize>(n * sizeof(float)));
        }
    }
    return static_cast<bool>(out);
}

bool
Network::loadWeights(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::string(magic, 8) != "AQFPSCW1")
        return false;
    for (auto &l : layers_) {
        for (std::vector<float> *p : l->params()) {
            std::uint64_t n = 0;
            in.read(reinterpret_cast<char *>(&n), sizeof(n));
            if (!in || n != p->size())
                return false;
            in.read(reinterpret_cast<char *>(p->data()),
                    static_cast<std::streamsize>(n * sizeof(float)));
            if (!in)
                return false;
        }
    }
    return true;
}

namespace {

using core::StatusCode;
using core::StatusError;

constexpr char kModelMagic[8] = {'A', 'Q', 'F', 'P', 'S', 'C', 'M', '2'};
/// Terminal footer magic: its presence at the very end of the file is
/// what proves the write completed.  A file that stops before it is a
/// partial write (truncation), not bit rot.
constexpr char kModelFooterMagic[8] = {'A', 'Q', 'F', 'P', 'S', 'C', 'K',
                                       '1'};
/// Footer layout: FNV-1a-64 checksum of everything before the footer,
/// then the footer magic.
constexpr std::size_t kModelFooterBytes = 8 + sizeof(kModelFooterMagic);

/** FNV-1a 64-bit over a byte range; dependency-free and fast enough
 *  for MB-scale artifacts (integrity, not cryptography). */
std::uint64_t
fnv1a64(const char *data, std::size_t size)
{
    std::uint64_t h = 0xCBF29CE484222325ull;
    for (std::size_t i = 0; i < size; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 0x100000001B3ull;
    }
    return h;
}

std::string
hex64(std::uint64_t v)
{
    static const char digits[] = "0123456789abcdef";
    std::string s(16, '0');
    for (int i = 15; i >= 0; --i) {
        s[static_cast<std::size_t>(i)] = digits[v & 0xF];
        v >>= 4;
    }
    return s;
}

/** Append-only in-memory serializer the artifact is built into before
 *  it touches the file system. */
struct ByteSink
{
    std::string bytes;

    template <typename T> void pod(const T &v)
    {
        bytes.append(reinterpret_cast<const char *>(&v), sizeof(v));
    }
    void raw(const void *data, std::size_t size)
    {
        bytes.append(static_cast<const char *>(data), size);
    }
};

/** Bounds-checked cursor over the verified payload bytes. */
struct ByteSource
{
    const std::string &bytes;
    std::size_t pos;
    std::size_t end;
    const std::string &path;

    template <typename T> T pod(const char *what)
    {
        T v{};
        if (end - pos < sizeof(T))
            throw StatusError(StatusCode::ModelTruncated,
                              "loadModel: '" + path +
                                  "' truncated file while reading " + what);
        std::memcpy(&v, bytes.data() + pos, sizeof(T));
        pos += sizeof(T);
        return v;
    }
    void raw(void *out, std::size_t size, const char *what)
    {
        if (end - pos < size)
            throw StatusError(StatusCode::ModelTruncated,
                              "loadModel: '" + path +
                                  "' truncated file while reading " +
                                  std::string(what));
        std::memcpy(out, bytes.data() + pos, size);
        pos += size;
    }
};

} // namespace

bool
Network::saveModel(const std::string &path) const
{
    ByteSink sink;
    sink.raw(kModelMagic, sizeof(kModelMagic));
    sink.pod(static_cast<std::uint32_t>(kModelFormatVersion));
    sink.pod(static_cast<std::int32_t>(quantBits_));
    sink.pod(static_cast<std::uint32_t>(layers_.size()));
    for (const auto &l : layers_) {
        const LayerSpec spec = l->spec();
        sink.pod(static_cast<std::uint8_t>(spec.kind));
        sink.pod(static_cast<std::int32_t>(spec.p0));
        sink.pod(static_cast<std::int32_t>(spec.p1));
        sink.pod(static_cast<std::int32_t>(spec.p2));
    }
    for (const auto &l : layers_) {
        for (std::vector<float> *p : const_cast<Layer &>(*l).params()) {
            const std::uint64_t n = p->size();
            sink.pod(n);
            sink.raw(p->data(), p->size() * sizeof(float));
        }
    }
    sink.pod(fnv1a64(sink.bytes.data(), sink.bytes.size()));
    sink.raw(kModelFooterMagic, sizeof(kModelFooterMagic));

    // Atomic publish: a crash mid-write can orphan the temp file but
    // never leave a partial artifact under the final name.
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            return false;
        out.write(sink.bytes.data(),
                  static_cast<std::streamsize>(sink.bytes.size()));
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

Network
Network::loadModel(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw StatusError(StatusCode::IoError,
                          "loadModel: cannot open '" + path + "'");
    std::string bytes((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
    in.close();

    // Leading magic first: "this is not even one of our files" beats
    // any structural diagnosis.
    if (bytes.size() < sizeof(kModelMagic) ||
        std::memcmp(bytes.data(), kModelMagic, sizeof(kModelMagic)) != 0)
        throw StatusError(
            StatusCode::ModelCorrupted,
            "loadModel: '" + path +
                "' is not an AQFPSC model file (expected magic AQFPSCM2; "
                "weights-only AQFPSCW1 files need loadWeights on a network "
                "built in code)");

    // Chaos-test hook: flip one payload byte before verification, to
    // prove the checksum actually catches silent corruption.
    if (core::fault::shouldFire(core::FaultSite::ModelLoadCorrupt,
                                bytes.size()))
        bytes[bytes.size() / 2] ^= 0x01;

    ByteSource src{bytes, sizeof(kModelMagic), bytes.size(), path};
    const auto version = src.pod<std::uint32_t>("version");
    if (version != static_cast<std::uint32_t>(kModelFormatVersion))
        throw StatusError(StatusCode::InvalidArgument,
                          "loadModel: '" + path + "' has format version " +
                              std::to_string(version) +
                              "; this build reads version " +
                              std::to_string(kModelFormatVersion));

    // Integrity footer.  No terminal footer magic -> the write never
    // finished (truncation).  Footer present but checksum mismatch ->
    // the bytes changed after the write (corruption).
    if (bytes.size() < sizeof(kModelMagic) + sizeof(std::uint32_t) +
                           kModelFooterBytes ||
        std::memcmp(bytes.data() + bytes.size() - sizeof(kModelFooterMagic),
                    kModelFooterMagic, sizeof(kModelFooterMagic)) != 0)
        throw StatusError(StatusCode::ModelTruncated,
                          "loadModel: '" + path +
                              "' truncated: the file ends without its "
                              "integrity footer, so the write never "
                              "completed (partial copy or crash mid-save)");
    const std::size_t payload_end = bytes.size() - kModelFooterBytes;
    std::uint64_t stored = 0;
    std::memcpy(&stored, bytes.data() + payload_end, sizeof(stored));
    const std::uint64_t actual = fnv1a64(bytes.data(), payload_end);
    if (stored != actual)
        throw StatusError(StatusCode::ModelCorrupted,
                          "loadModel: '" + path +
                              "' is corrupt: payload checksum " +
                              hex64(actual) + " does not match recorded " +
                              hex64(stored) +
                              " (bit rot or an in-place edit; re-copy or "
                              "re-save the artifact)");
    src.end = payload_end;

    Network net;
    net.quantBits_ = src.pod<std::int32_t>("quantBits");
    const auto n_layers = src.pod<std::uint32_t>("layer count");
    for (std::uint32_t i = 0; i < n_layers; ++i) {
        LayerSpec spec;
        spec.kind =
            static_cast<LayerSpec::Kind>(src.pod<std::uint8_t>("kind"));
        spec.p0 = src.pod<std::int32_t>("layer param");
        spec.p1 = src.pod<std::int32_t>("layer param");
        spec.p2 = src.pod<std::int32_t>("layer param");
        try {
            net.add(makeLayer(spec));
        } catch (const std::invalid_argument &e) {
            throw StatusError(StatusCode::ModelCorrupted,
                              "loadModel: '" + path + "' layer " +
                                  std::to_string(i) + ": " + e.what());
        }
    }
    for (auto &l : net.layers_) {
        for (std::vector<float> *p : l->params()) {
            const auto n = src.pod<std::uint64_t>("parameter count");
            if (n != p->size())
                throw StatusError(
                    StatusCode::ModelCorrupted,
                    "loadModel: '" + path + "' parameter block of " +
                        l->name() + " holds " + std::to_string(n) +
                        " floats, architecture expects " +
                        std::to_string(p->size()));
            src.raw(p->data(), p->size() * sizeof(float),
                    "layer parameters");
        }
    }
    return net;
}

std::string
Network::describe() const
{
    std::string s;
    for (const auto &l : layers_) {
        if (!s.empty())
            s += "-";
        s += l->name();
    }
    return s;
}

} // namespace aqfpsc::nn
