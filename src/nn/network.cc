#include "network.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <numeric>
#include <random>
#include <stdexcept>

#include "sc/sng.h"

namespace aqfpsc::nn {

void
Network::add(std::unique_ptr<Layer> layer)
{
    layers_.push_back(std::move(layer));
}

Tensor
Network::forward(const Tensor &x) const
{
    Tensor cur = x;
    for (const auto &l : layers_)
        cur = l->forward(cur);
    return cur;
}

int
Network::predict(const Tensor &x) const
{
    const Tensor scores = forward(x);
    int best = 0;
    for (std::size_t i = 1; i < scores.size(); ++i) {
        if (scores[i] > scores[static_cast<std::size_t>(best)])
            best = static_cast<int>(i);
    }
    return best;
}

double
Network::evaluate(const std::vector<Sample> &samples) const
{
    if (samples.empty())
        return 0.0;
    int correct = 0;
    for (const auto &s : samples)
        correct += predict(s.image) == s.label ? 1 : 0;
    return static_cast<double>(correct) / static_cast<double>(samples.size());
}

std::vector<double>
softmax(const Tensor &scores)
{
    double mx = scores[0];
    for (std::size_t i = 1; i < scores.size(); ++i)
        mx = std::max(mx, static_cast<double>(scores[i]));
    std::vector<double> p(scores.size());
    double sum = 0.0;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        p[i] = std::exp(static_cast<double>(scores[i]) - mx);
        sum += p[i];
    }
    for (auto &v : p)
        v /= sum;
    return p;
}

double
Network::train(std::vector<Sample> &samples, const TrainConfig &cfg)
{
    std::mt19937 gen(cfg.shuffleSeed);
    std::vector<std::size_t> order(samples.size());
    std::iota(order.begin(), order.end(), 0);

    float lr = cfg.learningRate;
    double epoch_loss = 0.0;
    for (int epoch = 0; epoch < cfg.epochs; ++epoch) {
        std::shuffle(order.begin(), order.end(), gen);
        epoch_loss = 0.0;
        int in_batch = 0;
        for (std::size_t n = 0; n < order.size(); ++n) {
            const Sample &s = samples[order[n]];
            // Forward through all layers, keeping caches.
            Tensor cur = s.image;
            for (auto &l : layers_)
                cur = l->forward(cur);
            // Softmax cross-entropy gradient on the scores.
            const std::vector<double> p = softmax(cur);
            epoch_loss += -std::log(
                std::max(p[static_cast<std::size_t>(s.label)], 1e-12));
            Tensor grad({static_cast<int>(cur.size())});
            for (std::size_t i = 0; i < cur.size(); ++i) {
                grad[i] = static_cast<float>(p[i]) -
                          (static_cast<int>(i) == s.label ? 1.0f : 0.0f);
            }
            for (std::size_t li = layers_.size(); li-- > 0;)
                grad = layers_[li]->backward(grad);

            if (++in_batch == cfg.batchSize || n + 1 == order.size()) {
                const float scaled_lr =
                    lr / static_cast<float>(in_batch);
                for (auto &l : layers_)
                    l->update(scaled_lr, cfg.momentum);
                in_batch = 0;
            }
        }
        epoch_loss /= static_cast<double>(samples.size());
        if (cfg.verbose) {
            std::printf("  epoch %d/%d: loss %.4f (lr %.4f)\n", epoch + 1,
                        cfg.epochs, epoch_loss, static_cast<double>(lr));
            std::fflush(stdout);
        }
        lr *= cfg.lrDecay;
    }
    return epoch_loss;
}

void
Network::quantizeParams(int bits)
{
    quantBits_ = bits;
    for (auto &l : layers_) {
        for (std::vector<float> *p : l->params()) {
            for (auto &w : *p) {
                w = static_cast<float>(sc::codeToBipolar(
                    sc::quantizeBipolar(static_cast<double>(w), bits),
                    bits));
            }
        }
    }
}

bool
Network::saveWeights(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    const char magic[8] = {'A', 'Q', 'F', 'P', 'S', 'C', 'W', '1'};
    out.write(magic, sizeof(magic));
    for (const auto &l : layers_) {
        for (std::vector<float> *p :
             const_cast<Layer &>(*l).params()) {
            const std::uint64_t n = p->size();
            out.write(reinterpret_cast<const char *>(&n), sizeof(n));
            out.write(reinterpret_cast<const char *>(p->data()),
                      static_cast<std::streamsize>(n * sizeof(float)));
        }
    }
    return static_cast<bool>(out);
}

bool
Network::loadWeights(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::string(magic, 8) != "AQFPSCW1")
        return false;
    for (auto &l : layers_) {
        for (std::vector<float> *p : l->params()) {
            std::uint64_t n = 0;
            in.read(reinterpret_cast<char *>(&n), sizeof(n));
            if (!in || n != p->size())
                return false;
            in.read(reinterpret_cast<char *>(p->data()),
                    static_cast<std::streamsize>(n * sizeof(float)));
            if (!in)
                return false;
        }
    }
    return true;
}

namespace {

constexpr char kModelMagic[8] = {'A', 'Q', 'F', 'P', 'S', 'C', 'M', '2'};

template <typename T>
void
writePod(std::ofstream &out, const T &v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

template <typename T>
T
readPod(std::ifstream &in, const char *what)
{
    T v{};
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    if (!in)
        throw std::runtime_error(std::string("loadModel: truncated file "
                                             "while reading ") +
                                 what);
    return v;
}

} // namespace

bool
Network::saveModel(const std::string &path) const
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(kModelMagic, sizeof(kModelMagic));
    writePod(out, static_cast<std::uint32_t>(kModelFormatVersion));
    writePod(out, static_cast<std::int32_t>(quantBits_));
    writePod(out, static_cast<std::uint32_t>(layers_.size()));
    for (const auto &l : layers_) {
        const LayerSpec spec = l->spec();
        writePod(out, static_cast<std::uint8_t>(spec.kind));
        writePod(out, static_cast<std::int32_t>(spec.p0));
        writePod(out, static_cast<std::int32_t>(spec.p1));
        writePod(out, static_cast<std::int32_t>(spec.p2));
    }
    for (const auto &l : layers_) {
        for (std::vector<float> *p : const_cast<Layer &>(*l).params()) {
            const std::uint64_t n = p->size();
            writePod(out, n);
            out.write(reinterpret_cast<const char *>(p->data()),
                      static_cast<std::streamsize>(n * sizeof(float)));
        }
    }
    return static_cast<bool>(out);
}

Network
Network::loadModel(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw std::runtime_error("loadModel: cannot open '" + path + "'");
    char magic[8];
    in.read(magic, sizeof(magic));
    if (!in || std::string(magic, 8) != std::string(kModelMagic, 8))
        throw std::runtime_error(
            "loadModel: '" + path +
            "' is not an AQFPSC model file (expected magic AQFPSCM2; "
            "weights-only AQFPSCW1 files need loadWeights on a network "
            "built in code)");
    const auto version = readPod<std::uint32_t>(in, "version");
    if (version != static_cast<std::uint32_t>(kModelFormatVersion))
        throw std::runtime_error(
            "loadModel: '" + path + "' has format version " +
            std::to_string(version) + "; this build reads version " +
            std::to_string(kModelFormatVersion));
    Network net;
    net.quantBits_ = readPod<std::int32_t>(in, "quantBits");
    const auto n_layers = readPod<std::uint32_t>(in, "layer count");
    for (std::uint32_t i = 0; i < n_layers; ++i) {
        LayerSpec spec;
        spec.kind =
            static_cast<LayerSpec::Kind>(readPod<std::uint8_t>(in, "kind"));
        spec.p0 = readPod<std::int32_t>(in, "layer param");
        spec.p1 = readPod<std::int32_t>(in, "layer param");
        spec.p2 = readPod<std::int32_t>(in, "layer param");
        try {
            net.add(makeLayer(spec));
        } catch (const std::invalid_argument &e) {
            throw std::runtime_error("loadModel: '" + path + "' layer " +
                                     std::to_string(i) + ": " + e.what());
        }
    }
    for (auto &l : net.layers_) {
        for (std::vector<float> *p : l->params()) {
            const auto n = readPod<std::uint64_t>(in, "parameter count");
            if (n != p->size())
                throw std::runtime_error(
                    "loadModel: '" + path + "' parameter block of " +
                    l->name() + " holds " + std::to_string(n) +
                    " floats, architecture expects " +
                    std::to_string(p->size()));
            in.read(reinterpret_cast<char *>(p->data()),
                    static_cast<std::streamsize>(n * sizeof(float)));
            if (!in)
                throw std::runtime_error(
                    "loadModel: truncated file while reading " +
                    l->name() + " parameters");
        }
    }
    return net;
}

std::string
Network::describe() const
{
    std::string s;
    for (const auto &l : layers_) {
        if (!s.empty())
            s += "-";
        s += l->name();
    }
    return s;
}

} // namespace aqfpsc::nn
