#include "simulator.h"

#include <cassert>

namespace aqfpsc::aqfp {

namespace {

bool
gateEval(const Netlist &n, const Gate &g, const std::vector<char> &values)
{
    auto in = [&](int i) {
        const bool v =
            values[static_cast<std::size_t>(
                g.in[static_cast<std::size_t>(i)])] != 0;
        return g.negIn[static_cast<std::size_t>(i)] ? !v : v;
    };
    (void)n;
    const int fanins = faninCount(g.type);
    return evalCell(g.type, fanins > 0 && in(0), fanins > 1 && in(1),
                    fanins > 2 && in(2));
}

} // namespace

std::vector<bool>
evalCombinational(const Netlist &n, const std::vector<bool> &inputs)
{
    assert(inputs.size() == n.inputs().size());
    std::vector<char> values(n.size(), 0);
    std::size_t next_input = 0;
    for (std::size_t id = 0; id < n.size(); ++id) {
        const Gate &g = n.gate(static_cast<NodeId>(id));
        if (g.type == CellType::Input) {
            values[id] = inputs[next_input++] ? 1 : 0;
        } else {
            values[id] = gateEval(n, g, values) ? 1 : 0;
        }
    }
    std::vector<bool> out;
    out.reserve(n.outputs().size());
    for (NodeId o : n.outputs())
        out.push_back(values[static_cast<std::size_t>(o)] != 0);
    return out;
}

PhaseAccurateSimulator::PhaseAccurateSimulator(const Netlist &n)
    : net_(n), state_(n.size(), 0), next_(n.size(), 0)
{
    reset();
}

std::vector<bool>
PhaseAccurateSimulator::tick(const std::vector<bool> &inputs)
{
    assert(inputs.size() == net_.inputs().size());
    std::size_t next_input = 0;
    for (std::size_t id = 0; id < net_.size(); ++id) {
        const Gate &g = net_.gate(static_cast<NodeId>(id));
        if (g.type == CellType::Input) {
            next_[id] = inputs[next_input++] ? 1 : 0;
        } else if (g.type == CellType::Const0) {
            next_[id] = 0;
        } else if (g.type == CellType::Const1) {
            next_[id] = 1;
        } else {
            // Latch from the *previous* phase's values: one gate per phase.
            next_[id] = gateEval(net_, g, state_) ? 1 : 0;
        }
    }
    state_.swap(next_);
    std::vector<bool> out;
    out.reserve(net_.outputs().size());
    for (NodeId o : net_.outputs())
        out.push_back(state_[static_cast<std::size_t>(o)] != 0);
    return out;
}

void
PhaseAccurateSimulator::reset()
{
    state_.assign(state_.size(), 0);
    next_.assign(next_.size(), 0);
    // Constants are established by the excitation network from the first
    // phase on; pre-load them so warm-up waves see correct values.
    for (std::size_t id = 0; id < net_.size(); ++id) {
        if (net_.gate(static_cast<NodeId>(id)).type == CellType::Const1)
            state_[id] = 1;
    }
}

} // namespace aqfpsc::aqfp
