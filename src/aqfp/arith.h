/**
 * @file
 * Conventional binary arithmetic on AQFP -- the counterpoint that
 * motivates the paper (Sec. 3).
 *
 * A binary accumulator on AQFP suffers from the deep-pipelining nature:
 * one n-bit addition takes the full ripple depth in clock phases, and the
 * loop-carried dependence (the accumulator register feeds the next
 * addition) means a new operand can only be accepted once the previous
 * sum has emerged -- a RAW stall of depth cycles per operation, versus
 * the SC blocks' one new stochastic bit per cycle.  These builders let
 * the motivation bench quantify that argument on real netlists.
 *
 * AQFP is actually friendly to full adders: carry = MAJ3 is one native
 * 6-JJ cell; only the XOR sum needs a two-level macro.
 */

#ifndef AQFPSC_AQFP_ARITH_H
#define AQFPSC_AQFP_ARITH_H

#include "netlist.h"

namespace aqfpsc::aqfp {

/**
 * Build an n-bit ripple-carry adder.
 * Primary inputs: a[0..n) (LSB first), b[0..n).
 * Primary outputs: sum[0..n), carry-out.
 */
Netlist buildRippleCarryAdder(int n);

/**
 * XOR macro: XOR(a, b) = OR(AND(a, ~b), AND(~a, b)) -- three majority-
 * class gates using AQFP's free input negation.
 */
NodeId addXor(Netlist &net, NodeId a, NodeId b);

} // namespace aqfpsc::aqfp

#endif // AQFPSC_AQFP_ARITH_H
