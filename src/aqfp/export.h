/**
 * @file
 * Netlist export: structural Verilog and Graphviz DOT.
 *
 * The Verilog writer emits one cell instance per gate against a small
 * behavioural cell library (appended as modules), so the output is
 * self-contained and simulable with any Verilog simulator -- the bridge
 * from this framework to existing AQFP EDA flows.  Input-polarity flags
 * are materialized as inverters in the export (Verilog has no free
 * coupling negation), so exported netlists are logically equivalent but
 * may count more cells than the in-memory form.
 */

#ifndef AQFPSC_AQFP_EXPORT_H
#define AQFPSC_AQFP_EXPORT_H

#include <string>

#include "netlist.h"

namespace aqfpsc::aqfp {

/**
 * Render the netlist as structural Verilog.
 * @param n Netlist (any legality state).
 * @param module_name Verilog module name (identifier characters only).
 */
std::string toVerilog(const Netlist &n, const std::string &module_name);

/** Render the netlist as a Graphviz DOT digraph (inputs at the top). */
std::string toDot(const Netlist &n, const std::string &graph_name);

} // namespace aqfpsc::aqfp

#endif // AQFPSC_AQFP_EXPORT_H
