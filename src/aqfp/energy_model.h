/**
 * @file
 * AQFP energy / latency / throughput model.
 *
 * Model constants and their provenance:
 *
 *  - energyPerJjPerCycle = 5 zJ.  Takeuchi et al. (APL 2013, the paper's
 *    ref. [44]) measured ~10 zJ dissipation per switching event of a 2-JJ
 *    AQFP buffer at 5 GHz, i.e. ~5 zJ per JJ per excitation cycle.
 *    Because AQFP cells are AC-powered, every JJ is excited every clock
 *    cycle regardless of data activity, so block energy scales with
 *    (total JJ) x (cycles), not with switching activity.
 *
 *  - clockFrequencyHz = 5 GHz with a four-phase excitation clock
 *    (Sec. 2.1, Fig. 3): each gate occupies one phase, so a logic level
 *    costs 1/(4 f) = 50 ps of latency, while a new data wave (one
 *    stochastic bit) can be injected every clock cycle (0.2 ns).
 */

#ifndef AQFPSC_AQFP_ENERGY_MODEL_H
#define AQFPSC_AQFP_ENERGY_MODEL_H

#include <cstddef>

#include "netlist.h"

namespace aqfpsc::aqfp {

/** Technology parameters of the AQFP process model. */
struct AqfpTechnology
{
    double energyPerJjPerCycle = 5e-21; ///< joules per JJ per clock cycle
    double clockFrequencyHz = 5e9;      ///< AC excitation frequency
    int phasesPerCycle = 4;             ///< phases per clock period

    /** Latency of one logic level (one phase), seconds. */
    double phaseSeconds() const
    {
        return 1.0 / (clockFrequencyHz * phasesPerCycle);
    }

    /** Interval between successive data waves, seconds. */
    double cycleSeconds() const { return 1.0 / clockFrequencyHz; }
};

/** Hardware figures for one netlist under a technology model. */
struct HardwareCost
{
    long long jj = 0;        ///< total Josephson junctions
    std::size_t gates = 0;   ///< total cells (including buffers/splitters)
    int depthPhases = 0;     ///< pipeline depth in clock phases
    double energyPerCycleJ = 0.0; ///< joules per clock cycle
    double latencySeconds = 0.0;  ///< input-to-output latency

    /** Energy to stream an n-cycle stochastic operation. */
    double energyPerStreamJ(std::size_t stream_len) const
    {
        return energyPerCycleJ * static_cast<double>(stream_len);
    }

    /** Wall-clock time to process an n-cycle stream including drain. */
    double streamSeconds(std::size_t stream_len, double cycle_s,
                         double phase_s) const
    {
        return static_cast<double>(stream_len) * cycle_s +
               static_cast<double>(depthPhases) * phase_s;
    }
};

/** Compute the hardware figures of a (preferably legalized) netlist. */
HardwareCost analyzeNetlist(const Netlist &n,
                            const AqfpTechnology &tech = AqfpTechnology{});

} // namespace aqfpsc::aqfp

#endif // AQFPSC_AQFP_ENERGY_MODEL_H
