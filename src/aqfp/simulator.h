/**
 * @file
 * AQFP netlist simulation.
 *
 * Two evaluation modes:
 *
 *  - evalCombinational: zero-delay functional evaluation, used for logic
 *    equivalence checks between builder netlists and the pass pipeline's
 *    outputs.
 *
 *  - PhaseAccurateSimulator: models the AQFP clocking discipline
 *    (Sec. 2.1, Fig. 3).  Every gate is effectively a register: at each
 *    phase tick it latches the function of its fanins' *previous* values.
 *    On a path-balanced netlist a new data wave can be injected every
 *    tick and emerges depth() ticks later; the simulator is used by tests
 *    to verify that legalized netlists are hazard-free under full-rate
 *    streaming (the property motivating the paper's SC approach).
 */

#ifndef AQFPSC_AQFP_SIMULATOR_H
#define AQFPSC_AQFP_SIMULATOR_H

#include <vector>

#include "netlist.h"

namespace aqfpsc::aqfp {

/**
 * Zero-delay evaluation.
 * @param n Netlist.
 * @param inputs One value per primary input, in inputs() order.
 * @return One value per primary output, in outputs() order.
 */
std::vector<bool> evalCombinational(const Netlist &n,
                                    const std::vector<bool> &inputs);

/**
 * Phase-accurate streaming simulator.  Gate state initializes to 0 (both
 * wells empty is approximated as logic 0 until the first wave arrives).
 */
class PhaseAccurateSimulator
{
  public:
    explicit PhaseAccurateSimulator(const Netlist &n);

    /**
     * Advance one clock phase: inputs are presented to the primary inputs
     * and every gate latches its fanins' previous outputs.
     * @return Current values at the primary outputs (the wave injected
     *         depth() ticks ago, once the pipeline has filled).
     */
    std::vector<bool> tick(const std::vector<bool> &inputs);

    /** Reset all gate state to 0. */
    void reset();

  private:
    const Netlist &net_;
    std::vector<char> state_;
    std::vector<char> next_;
};

} // namespace aqfpsc::aqfp

#endif // AQFPSC_AQFP_SIMULATOR_H
