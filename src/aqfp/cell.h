/**
 * @file
 * AQFP standard-cell definitions.
 *
 * The minimalist AQFP cell library (Takeuchi et al., JAP 2015; Sec. 2.1 of
 * the paper) builds every logic cell bottom-up from the double-JJ buffer:
 *
 *  - buffer / inverter / constant: one double-JJ SQUID (2 JJs).  The
 *    inverter is a buffer with a negated output-transformer coupling, the
 *    constant a buffer with asymmetric excitation flux -- same JJ cost.
 *  - majority (MAJ3): three input buffers current-summed into one output
 *    (6 JJs).  AND and OR are majority gates with one input tied to a
 *    constant 0 / 1, NAND and NOR their output-negated variants -- all at
 *    the same 6-JJ cost (Fig. 2 of the paper).
 *  - splitter: a buffer with two output transformers (4 JJs in this
 *    model's accounting).  Unlike CMOS, every fanout > 1 must go through
 *    an explicit splitter tree.
 *
 * Every cell occupies exactly one clock phase; input negation can be
 * absorbed into a cell's input coupling polarity at zero JJ cost, which is
 * what the majority-synthesis pass exploits.
 */

#ifndef AQFPSC_AQFP_CELL_H
#define AQFPSC_AQFP_CELL_H

#include <string>

namespace aqfpsc::aqfp {

/** AQFP cell types. */
enum class CellType
{
    Input,    ///< primary input pseudo-cell (no JJ cost)
    Const0,   ///< constant logic 0
    Const1,   ///< constant logic 1
    Buffer,   ///< 1-input buffer
    Inverter, ///< 1-input inverter
    Splitter, ///< 1-input splitter; output may feed up to two consumers
    And2,     ///< 2-input AND (MAJ with a constant-0 input)
    Or2,      ///< 2-input OR (MAJ with a constant-1 input)
    Nand2,    ///< 2-input NAND
    Nor2,     ///< 2-input NOR
    Maj3,     ///< 3-input majority
};

/** Number of Josephson junctions in a cell. */
int jjCount(CellType type);

/** Number of logic inputs a cell consumes (0 for Input/Const). */
int faninCount(CellType type);

/** Maximum consumers a cell's output may legally feed (2 for Splitter). */
int fanoutCapacity(CellType type);

/** Human-readable cell name. */
const char *cellName(CellType type);

/**
 * Evaluate a cell on already-negated input values (a, b, c); unused
 * inputs are ignored.  Input/Const cells are not evaluatable here.
 */
bool evalCell(CellType type, bool a, bool b, bool c);

} // namespace aqfpsc::aqfp

#endif // AQFPSC_AQFP_CELL_H
