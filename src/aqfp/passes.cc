#include "passes.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <sstream>
#include <tuple>
#include <vector>

namespace aqfpsc::aqfp {

std::string
PassStats::summary() const
{
    std::ostringstream os;
    os << "gates " << gatesBefore << " -> " << gatesAfter << ", JJ "
       << jjBefore << " -> " << jjAfter << ", depth " << depthBefore
       << " -> " << depthAfter;
    if (buffersInserted)
        os << ", +" << buffersInserted << " buffers";
    if (splittersInserted)
        os << ", +" << splittersInserted << " splitters";
    return os.str();
}

namespace {

/** A node reference with polarity, the working currency of synthesis. */
struct Signal
{
    NodeId node = kNoNode;
    bool neg = false;
    /** Constant signals are encoded separately to enable folding. */
    bool isConst = false;
    bool constValue = false;

    static Signal constant(bool v) { return {kNoNode, false, true, v}; }
    static Signal wire(NodeId n, bool neg) { return {n, neg, false, false}; }

    Signal inverted() const
    {
        Signal s = *this;
        if (s.isConst)
            s.constValue = !s.constValue;
        else
            s.neg = !s.neg;
        return s;
    }

    bool operator==(const Signal &o) const
    {
        if (isConst != o.isConst)
            return false;
        if (isConst)
            return constValue == o.constValue;
        return node == o.node && neg == o.neg;
    }
};

/** Key for structural hashing of majority-class gates. */
using GateKey = std::tuple<int, NodeId, bool, NodeId, bool, NodeId, bool>;

void
fillBeforeStats(const Netlist &in, PassStats *stats)
{
    if (!stats)
        return;
    stats->gatesBefore = in.size();
    stats->jjBefore = in.jjCount();
    stats->depthBefore = in.depth();
}

void
fillAfterStats(const Netlist &out, PassStats *stats)
{
    if (!stats)
        return;
    stats->gatesAfter = out.size();
    stats->jjAfter = out.jjCount();
    stats->depthAfter = out.depth();
}

} // namespace

Netlist
majoritySynthesis(const Netlist &in, PassStats *stats)
{
    fillBeforeStats(in, stats);

    Netlist out;
    std::vector<Signal> sig(in.size());
    std::map<GateKey, NodeId> cse;
    // Shared constants, created lazily.
    NodeId const_nodes[2] = {kNoNode, kNoNode};
    auto materialize_const = [&](bool v) {
        if (const_nodes[v] == kNoNode)
            const_nodes[v] = out.addConst(v);
        return const_nodes[v];
    };

    auto resolve = [&](const Gate &g, int i) -> Signal {
        const Signal s = sig[static_cast<std::size_t>(
            g.in[static_cast<std::size_t>(i)])];
        return g.negIn[static_cast<std::size_t>(i)] ? s.inverted() : s;
    };

    // Emit a majority-class gate with CSE over (type, sorted fanins).
    auto emit = [&](CellType type, Signal a, Signal b, Signal c,
                    bool out_neg) -> Signal {
        // Normalize commutative operand order.
        std::array<std::pair<NodeId, bool>, 3> ops = {
            std::make_pair(a.node, a.neg), std::make_pair(b.node, b.neg),
            std::make_pair(c.node, c.neg)};
        const int fanins = faninCount(type);
        // Small fixed-size sort (avoids std::sort on a runtime sub-range,
        // which trips GCC's array-bounds analysis on std::array).
        if (fanins >= 2 && ops[1] < ops[0])
            std::swap(ops[0], ops[1]);
        if (fanins >= 3) {
            if (ops[2] < ops[1])
                std::swap(ops[1], ops[2]);
            if (ops[1] < ops[0])
                std::swap(ops[0], ops[1]);
        }
        GateKey key{static_cast<int>(type),
                    ops[0].first, ops[0].second,
                    fanins > 1 ? ops[1].first : kNoNode,
                    fanins > 1 && ops[1].second,
                    fanins > 2 ? ops[2].first : kNoNode,
                    fanins > 2 && ops[2].second};
        auto it = cse.find(key);
        NodeId id;
        if (it != cse.end()) {
            id = it->second;
        } else {
            id = out.addGateNeg(type, ops[0].first, ops[0].second,
                                fanins > 1 ? ops[1].first : kNoNode,
                                fanins > 1 && ops[1].second,
                                fanins > 2 ? ops[2].first : kNoNode,
                                fanins > 2 && ops[2].second);
            cse.emplace(key, id);
        }
        return Signal::wire(id, out_neg);
    };

    // AND with constant folding and duplicate/complement simplification;
    // OR is realized through De Morgan on the same helper.
    auto make_and = [&](Signal a, Signal b, bool out_neg) -> Signal {
        if (a.isConst)
            std::swap(a, b);
        if (b.isConst) {
            Signal r;
            if (!b.constValue)
                r = Signal::constant(false);
            else
                r = a;
            return out_neg ? r.inverted() : r;
        }
        if (a == b)
            return out_neg ? a.inverted() : a;
        if (a == b.inverted())
            return Signal::constant(out_neg);
        return emit(CellType::And2, a, b, Signal{}, out_neg);
    };

    auto make_or = [&](Signal a, Signal b, bool out_neg) -> Signal {
        // a | b = ~(~a & ~b)
        return make_and(a.inverted(), b.inverted(), !out_neg);
    };

    auto make_maj = [&](Signal a, Signal b, Signal c) -> Signal {
        // Fold constants: MAJ(a, b, 0) = AND, MAJ(a, b, 1) = OR.
        if (a.isConst)
            std::swap(a, c);
        if (b.isConst)
            std::swap(b, c);
        if (c.isConst)
            return c.constValue ? make_or(a, b, false)
                                : make_and(a, b, false);
        if (a == b)
            return a;
        if (a == c)
            return a;
        if (b == c)
            return b;
        if (a == b.inverted())
            return c;
        if (a == c.inverted())
            return b;
        if (b == c.inverted())
            return a;
        return emit(CellType::Maj3, a, b, c, false);
    };

    for (std::size_t id = 0; id < in.size(); ++id) {
        const Gate &g = in.gate(static_cast<NodeId>(id));
        switch (g.type) {
          case CellType::Input:
            sig[id] = Signal::wire(out.addInput(), false);
            break;
          case CellType::Const0:
            sig[id] = Signal::constant(false);
            break;
          case CellType::Const1:
            sig[id] = Signal::constant(true);
            break;
          case CellType::Buffer:
          case CellType::Splitter:
            sig[id] = resolve(g, 0);
            break;
          case CellType::Inverter:
            sig[id] = resolve(g, 0).inverted();
            break;
          case CellType::And2:
            sig[id] = make_and(resolve(g, 0), resolve(g, 1), false);
            break;
          case CellType::Nand2:
            sig[id] = make_and(resolve(g, 0), resolve(g, 1), true);
            break;
          case CellType::Or2:
            sig[id] = make_or(resolve(g, 0), resolve(g, 1), false);
            break;
          case CellType::Nor2:
            sig[id] = make_or(resolve(g, 0), resolve(g, 1), true);
            break;
          case CellType::Maj3:
            sig[id] = make_maj(resolve(g, 0), resolve(g, 1), resolve(g, 2));
            break;
        }
    }

    for (NodeId o : in.outputs()) {
        Signal s = sig[static_cast<std::size_t>(o)];
        NodeId id;
        if (s.isConst) {
            id = materialize_const(s.constValue);
        } else if (s.neg) {
            id = out.addGate(CellType::Inverter, s.node);
        } else {
            id = s.node;
        }
        out.markOutput(id);
    }

    fillAfterStats(out, stats);
    return out;
}

Netlist
insertSplitters(const Netlist &in, PassStats *stats, SplitterShape shape)
{
    fillBeforeStats(in, stats);

    const std::vector<int> fanout = in.fanoutCounts();
    Netlist out;
    // taps[old id] = FIFO of (new node, remaining slots) flattened into
    // one entry per available slot.
    std::vector<std::deque<NodeId>> taps(in.size());
    int splitters = 0;

    auto provision = [&](std::size_t old_id, NodeId new_id, CellType type) {
        const int need = fanout[old_id];
        std::deque<NodeId> q;
        for (int s = 0; s < fanoutCapacity(type); ++s)
            q.push_back(new_id);
        while (static_cast<int>(q.size()) < need) {
            // Balanced: split the shallowest available tap (FIFO).
            // Caterpillar: split the deepest (LIFO), forming a chain
            // whose taps arrive at successively later phases.
            NodeId src;
            if (shape == SplitterShape::Balanced) {
                src = q.front();
                q.pop_front();
            } else {
                src = q.back();
                q.pop_back();
            }
            const NodeId spl = out.addGate(CellType::Splitter, src);
            ++splitters;
            // Both taps go to the back: in caterpillar mode the queue
            // stays sorted shallow-to-deep, so consumer i (taken from the
            // front) sits at splitter depth ~i -- matching the arrival
            // profile of chain-shaped consumers.
            q.push_back(spl);
            q.push_back(spl);
        }
        taps[old_id] = std::move(q);
    };

    auto take = [&](NodeId old_src) -> NodeId {
        auto &q = taps[static_cast<std::size_t>(old_src)];
        assert(!q.empty() && "splitter provisioning exhausted");
        const NodeId t = q.front();
        q.pop_front();
        return t;
    };

    for (std::size_t id = 0; id < in.size(); ++id) {
        const Gate &g = in.gate(static_cast<NodeId>(id));
        NodeId nid;
        switch (g.type) {
          case CellType::Input:
            nid = out.addInput();
            break;
          case CellType::Const0:
            nid = out.addConst(false);
            break;
          case CellType::Const1:
            nid = out.addConst(true);
            break;
          default: {
            const int fanins = faninCount(g.type);
            NodeId a = kNoNode, b = kNoNode, c = kNoNode;
            if (fanins > 0)
                a = take(g.in[0]);
            if (fanins > 1)
                b = take(g.in[1]);
            if (fanins > 2)
                c = take(g.in[2]);
            nid = out.addGateNeg(g.type, a, g.negIn[0], b, g.negIn[1], c,
                                 g.negIn[2]);
            break;
          }
        }
        provision(id, nid, out.gate(nid).type);
    }

    for (NodeId o : in.outputs())
        out.markOutput(take(o));

    if (stats)
        stats->splittersInserted = splitters;
    fillAfterStats(out, stats);
    return out;
}

Netlist
balancePaths(const Netlist &in, bool align_outputs, PassStats *stats)
{
    fillBeforeStats(in, stats);

    const std::vector<int> level = in.levels();
    Netlist out;
    std::vector<NodeId> map(in.size(), kNoNode);
    int buffers = 0;

    auto pad = [&](NodeId new_src, int from_level, int to_level) {
        NodeId cur = new_src;
        for (int l = from_level; l < to_level; ++l) {
            cur = out.addGate(CellType::Buffer, cur);
            out.gate(cur).phase = l + 1;
            ++buffers;
        }
        return cur;
    };

    auto isConstType = [](CellType t) {
        return t == CellType::Const0 || t == CellType::Const1;
    };

    for (std::size_t id = 0; id < in.size(); ++id) {
        const Gate &g = in.gate(static_cast<NodeId>(id));
        NodeId nid;
        switch (g.type) {
          case CellType::Input:
            nid = out.addInput();
            out.gate(nid).phase = 0;
            break;
          case CellType::Const0:
          case CellType::Const1:
            nid = out.addConst(g.type == CellType::Const1);
            out.gate(nid).phase = 0;
            break;
          default: {
            const int fanins = faninCount(g.type);
            const int lvl = level[id];
            NodeId ins[3] = {kNoNode, kNoNode, kNoNode};
            for (int i = 0; i < fanins; ++i) {
                const NodeId src = g.in[static_cast<std::size_t>(i)];
                const Gate &sg = in.gate(src);
                if (isConstType(sg.type)) {
                    // Constants are phase-agile; use directly.
                    ins[i] = map[static_cast<std::size_t>(src)];
                } else {
                    ins[i] = pad(map[static_cast<std::size_t>(src)],
                                 level[static_cast<std::size_t>(src)],
                                 lvl - 1);
                }
            }
            nid = out.addGateNeg(g.type, ins[0], g.negIn[0], ins[1],
                                 g.negIn[1], ins[2], g.negIn[2]);
            out.gate(nid).phase = lvl;
            break;
          }
        }
        map[id] = nid;
    }

    if (align_outputs) {
        int max_level = 0;
        for (NodeId o : in.outputs())
            max_level = std::max(max_level,
                                 level[static_cast<std::size_t>(o)]);
        for (NodeId o : in.outputs()) {
            const Gate &og = in.gate(o);
            if (isConstType(og.type)) {
                out.markOutput(map[static_cast<std::size_t>(o)]);
                continue;
            }
            out.markOutput(pad(map[static_cast<std::size_t>(o)],
                               level[static_cast<std::size_t>(o)],
                               max_level));
        }
    } else {
        for (NodeId o : in.outputs())
            out.markOutput(map[static_cast<std::size_t>(o)]);
    }

    if (stats)
        stats->buffersInserted = buffers;
    fillAfterStats(out, stats);
    return out;
}

Netlist
legalize(const Netlist &in, bool with_synthesis, PassStats *stats,
         SplitterShape shape)
{
    PassStats synth_stats, split_stats, balance_stats;
    Netlist n = with_synthesis ? majoritySynthesis(in, &synth_stats) : in;
    n = insertSplitters(n, &split_stats, shape);
    n = balancePaths(n, true, &balance_stats);
    if (stats) {
        stats->gatesBefore = in.size();
        stats->jjBefore = in.jjCount();
        stats->depthBefore = in.depth();
        stats->gatesAfter = n.size();
        stats->jjAfter = n.jjCount();
        stats->depthAfter = n.depth();
        stats->buffersInserted = balance_stats.buffersInserted;
        stats->splittersInserted = split_stats.splittersInserted;
    }
    return n;
}

bool
checkLegalized(const Netlist &n, std::string *error)
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };

    const std::vector<int> fanout = n.fanoutCounts();
    for (std::size_t id = 0; id < n.size(); ++id) {
        const Gate &g = n.gate(static_cast<NodeId>(id));
        if (g.type == CellType::Const0 || g.type == CellType::Const1)
            continue; // constants are replicated by the clock network
        if (fanout[id] > fanoutCapacity(g.type))
            return fail("fanout violation at node " + std::to_string(id));
        const int fanins = faninCount(g.type);
        for (int i = 0; i < fanins; ++i) {
            const Gate &sg = n.gate(g.in[static_cast<std::size_t>(i)]);
            if (sg.type == CellType::Const0 || sg.type == CellType::Const1)
                continue;
            if (sg.phase != g.phase - 1)
                return fail("phase skew at node " + std::to_string(id));
        }
    }
    // All primary outputs at a common phase.
    int out_phase = -1;
    for (NodeId o : n.outputs()) {
        const Gate &og = n.gate(o);
        if (og.type == CellType::Const0 || og.type == CellType::Const1)
            continue;
        if (out_phase == -1)
            out_phase = og.phase;
        else if (og.phase != out_phase)
            return fail("unaligned primary outputs");
    }
    return true;
}

} // namespace aqfpsc::aqfp
