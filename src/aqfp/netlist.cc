#include "netlist.h"

#include <algorithm>
#include <cassert>

namespace aqfpsc::aqfp {

NodeId
Netlist::addInput(const std::string &name)
{
    (void)name; // names are kept out of the hot structure; reserved hook
    Gate g;
    g.type = CellType::Input;
    gates_.push_back(g);
    const NodeId id = static_cast<NodeId>(gates_.size()) - 1;
    inputs_.push_back(id);
    return id;
}

NodeId
Netlist::addConst(bool value)
{
    Gate g;
    g.type = value ? CellType::Const1 : CellType::Const0;
    gates_.push_back(g);
    return static_cast<NodeId>(gates_.size()) - 1;
}

NodeId
Netlist::addGate(CellType type, NodeId a, NodeId b, NodeId c)
{
    return addGateNeg(type, a, false, b, false, c, false);
}

NodeId
Netlist::addGateNeg(CellType type, NodeId a, bool na, NodeId b, bool nb,
                    NodeId c, bool nc)
{
    [[maybe_unused]] const int fanins = faninCount(type);
    assert(fanins >= 1 && "use addInput/addConst for source cells");
    assert(a != kNoNode && a < static_cast<NodeId>(gates_.size()));
    assert((fanins < 2) == (b == kNoNode));
    assert((fanins < 3) == (c == kNoNode));

    Gate g;
    g.type = type;
    g.in = {a, b, c};
    g.negIn = {na, nb, nc};
    gates_.push_back(g);
    return static_cast<NodeId>(gates_.size()) - 1;
}

NodeId
Netlist::addXnor(NodeId a, NodeId b)
{
    const NodeId both = addGate(CellType::And2, a, b);
    const NodeId neither = addGate(CellType::Nor2, a, b);
    return addGate(CellType::Or2, both, neither);
}

void
Netlist::markOutput(NodeId id)
{
    assert(id >= 0 && id < static_cast<NodeId>(gates_.size()));
    outputs_.push_back(id);
}

long long
Netlist::jjCount() const
{
    long long total = 0;
    for (const auto &g : gates_)
        total += aqfp::jjCount(g.type);
    return total;
}

int
Netlist::countType(CellType type) const
{
    int n = 0;
    for (const auto &g : gates_)
        n += g.type == type ? 1 : 0;
    return n;
}

std::vector<int>
Netlist::fanoutCounts() const
{
    std::vector<int> counts(gates_.size(), 0);
    for (const auto &g : gates_) {
        const int fanins = faninCount(g.type);
        for (int i = 0; i < fanins; ++i)
            ++counts[static_cast<std::size_t>(g.in[static_cast<std::size_t>(i)])];
    }
    for (NodeId out : outputs_)
        ++counts[static_cast<std::size_t>(out)];
    return counts;
}

std::vector<int>
Netlist::levels() const
{
    std::vector<int> level(gates_.size(), 0);
    for (std::size_t id = 0; id < gates_.size(); ++id) {
        const Gate &g = gates_[id];
        const int fanins = faninCount(g.type);
        int lvl = 0;
        for (int i = 0; i < fanins; ++i) {
            const NodeId src = g.in[static_cast<std::size_t>(i)];
            const Gate &sg = gates_[static_cast<std::size_t>(src)];
            // Constants are replicated per phase by the clock network and
            // never constrain arrival times.
            if (sg.type == CellType::Const0 || sg.type == CellType::Const1)
                continue;
            lvl = std::max(lvl, level[static_cast<std::size_t>(src)] + 1);
        }
        if (fanins > 0)
            lvl = std::max(lvl, 1);
        level[id] = fanins == 0 ? 0 : lvl;
    }
    return level;
}

int
Netlist::depth() const
{
    const auto level = levels();
    int d = 0;
    for (NodeId out : outputs_)
        d = std::max(d, level[static_cast<std::size_t>(out)]);
    return d;
}

bool
Netlist::check(std::string *error) const
{
    auto fail = [&](const std::string &msg) {
        if (error)
            *error = msg;
        return false;
    };
    for (std::size_t id = 0; id < gates_.size(); ++id) {
        const Gate &g = gates_[id];
        const int fanins = faninCount(g.type);
        for (int i = 0; i < 3; ++i) {
            const NodeId src = g.in[static_cast<std::size_t>(i)];
            if (i < fanins) {
                if (src == kNoNode)
                    return fail("missing fanin on node " +
                                std::to_string(id));
                if (src < 0 || src >= static_cast<NodeId>(id))
                    return fail("non-topological fanin on node " +
                                std::to_string(id));
            } else if (src != kNoNode) {
                return fail("extra fanin on node " + std::to_string(id));
            }
        }
    }
    for (NodeId out : outputs_) {
        if (out < 0 || out >= static_cast<NodeId>(gates_.size()))
            return fail("output id out of range");
    }
    return true;
}

} // namespace aqfpsc::aqfp
