/**
 * @file
 * AQFP physical-design passes: majority synthesis, splitter insertion and
 * buffer path-balancing (contribution (v) of the paper).
 *
 * Pass pipeline:
 *
 *   builder netlist
 *     -> majoritySynthesis   (logic optimization; optional)
 *     -> insertSplitters     (legalize fanout: every fanout > 1 becomes a
 *                             balanced tree of 1:2 splitter cells)
 *     -> balancePaths        (legalize timing: every gate's non-constant
 *                             fanins arrive exactly one phase earlier;
 *                             inserts buffer chains, assigns phases)
 *
 * majoritySynthesis exploits two AQFP-specific facts: AND/OR/NAND/NOR are
 * all majority-class cells with identical 6-JJ cost, and input/output
 * negation is free (transformer coupling polarity).  The pass therefore
 * (a) absorbs every explicit inverter into consumer input polarities,
 * (b) collapses buffers, (c) folds constants through majority-class cells,
 * (d) simplifies duplicate/complementary fanins, and (e) shares
 * structurally identical gates (CSE with commutative normalization).
 */

#ifndef AQFPSC_AQFP_PASSES_H
#define AQFPSC_AQFP_PASSES_H

#include <string>

#include "netlist.h"

namespace aqfpsc::aqfp {

/** Statistics reported by each pass. */
struct PassStats
{
    std::size_t gatesBefore = 0;
    std::size_t gatesAfter = 0;
    long long jjBefore = 0;
    long long jjAfter = 0;
    int depthBefore = 0;
    int depthAfter = 0;
    int buffersInserted = 0;
    int splittersInserted = 0;

    /** One-line human-readable summary. */
    std::string summary() const;
};

/** Majority synthesis / logic optimization.  Returns the rewritten netlist. */
Netlist majoritySynthesis(const Netlist &in, PassStats *stats = nullptr);

/** Topology used when a fanout tree of 1:2 splitters is built. */
enum class SplitterShape
{
    /**
     * Minimum-depth balanced tree: every consumer sees ceil(log2 f)
     * splitter levels.  Best when consumers sit at similar phases.
     */
    Balanced,
    /**
     * Chain ("caterpillar"): each splitter feeds one consumer and the
     * next splitter.  Consumer i sees ~i splitter levels -- which is
     * exactly the arrival profile linear structures like the majority
     * chain need, eliminating most path-balancing buffers (see the
     * splitter-shape rows of bench_ablation_majority_synthesis).
     */
    Caterpillar,
};

/**
 * Insert 1:2 splitter trees so that every node drives at most
 * fanoutCapacity(type) consumers.
 */
Netlist insertSplitters(const Netlist &in, PassStats *stats = nullptr,
                        SplitterShape shape = SplitterShape::Balanced);

/**
 * Insert buffer chains so that every non-constant fanin of a gate at
 * phase p has phase exactly p - 1, and (when @p align_outputs) all primary
 * outputs sit at the same phase.  Assigns Gate::phase on the result.
 */
Netlist balancePaths(const Netlist &in, bool align_outputs = true,
                     PassStats *stats = nullptr);

/**
 * Run the full legalization pipeline:
 * optional majoritySynthesis, then insertSplitters, then balancePaths.
 */
Netlist legalize(const Netlist &in, bool with_synthesis = true,
                 PassStats *stats = nullptr,
                 SplitterShape shape = SplitterShape::Balanced);

/**
 * Verify AQFP design rules on a legalized netlist: fanout within cell
 * capacity, and phase(fanin) == phase(gate) - 1 for all non-constant
 * fanins.  @p error receives a diagnostic on failure.
 */
bool checkLegalized(const Netlist &n, std::string *error = nullptr);

} // namespace aqfpsc::aqfp

#endif // AQFPSC_AQFP_PASSES_H
