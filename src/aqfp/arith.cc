#include "arith.h"

#include <cassert>
#include <vector>

namespace aqfpsc::aqfp {

NodeId
addXor(Netlist &net, NodeId a, NodeId b)
{
    const NodeId a_not_b =
        net.addGateNeg(CellType::And2, a, false, b, true);
    const NodeId b_not_a =
        net.addGateNeg(CellType::And2, a, true, b, false);
    return net.addGate(CellType::Or2, a_not_b, b_not_a);
}

Netlist
buildRippleCarryAdder(int n)
{
    assert(n >= 1);
    Netlist net;
    std::vector<NodeId> a(static_cast<std::size_t>(n));
    std::vector<NodeId> b(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i)
        a[static_cast<std::size_t>(i)] = net.addInput();
    for (int i = 0; i < n; ++i)
        b[static_cast<std::size_t>(i)] = net.addInput();

    std::vector<NodeId> sum(static_cast<std::size_t>(n));
    NodeId carry = kNoNode;
    for (int i = 0; i < n; ++i) {
        const NodeId ai = a[static_cast<std::size_t>(i)];
        const NodeId bi = b[static_cast<std::size_t>(i)];
        const NodeId ab = addXor(net, ai, bi);
        if (carry == kNoNode) {
            sum[static_cast<std::size_t>(i)] = ab;
            carry = net.addGate(CellType::And2, ai, bi);
        } else {
            sum[static_cast<std::size_t>(i)] = addXor(net, ab, carry);
            carry = net.addGate(CellType::Maj3, ai, bi, carry);
        }
    }
    for (int i = 0; i < n; ++i)
        net.markOutput(sum[static_cast<std::size_t>(i)]);
    net.markOutput(carry);
    return net;
}

} // namespace aqfpsc::aqfp
