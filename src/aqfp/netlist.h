/**
 * @file
 * Gate-level AQFP netlist.
 *
 * Nodes are single-output gates identified by dense integer ids; fanins
 * reference earlier nodes (builders create nodes in topological order and
 * the passes preserve acyclicity).  Each fanin carries a polarity flag:
 * AQFP realizes input negation for free by flipping a transformer coupling
 * coefficient, and the majority-synthesis pass absorbs explicit inverters
 * into these flags.
 *
 * Feedback (the sorter blocks' Dprev loop) is intentionally *not*
 * representable: the netlist is the combinational body, and blocks close
 * the loop externally, mirroring how the deep-pipelined hardware operates
 * on interleaved streams (DESIGN.md Sec. 5.2).
 */

#ifndef AQFPSC_AQFP_NETLIST_H
#define AQFPSC_AQFP_NETLIST_H

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "cell.h"

namespace aqfpsc::aqfp {

/** Dense node identifier. */
using NodeId = int;

/** Sentinel for an unused fanin slot. */
constexpr NodeId kNoNode = -1;

/** One gate instance. */
struct Gate
{
    CellType type = CellType::Buffer;
    std::array<NodeId, 3> in = {kNoNode, kNoNode, kNoNode};
    std::array<bool, 3> negIn = {false, false, false};
    /**
     * Clock phase the gate occupies, counted from the primary inputs
     * (inputs are at phase 0).  Assigned by Passes::balancePaths; -1
     * before that.
     */
    int phase = -1;
};

/**
 * A combinational AQFP netlist.
 */
class Netlist
{
  public:
    /** Add a primary input; returns its node id. */
    NodeId addInput(const std::string &name = "");

    /** Add a constant cell. */
    NodeId addConst(bool value);

    /**
     * Add a gate of @p type with the given fanins.  The number of valid
     * fanins must match faninCount(type).
     */
    NodeId addGate(CellType type, NodeId a = kNoNode, NodeId b = kNoNode,
                   NodeId c = kNoNode);

    /** Add a gate with explicit input polarities. */
    NodeId addGateNeg(CellType type, NodeId a, bool na, NodeId b, bool nb,
                      NodeId c = kNoNode, bool nc = false);

    /**
     * Convenience macro-cell: bipolar stochastic multiplier
     * XNOR(a, b) = OR(AND(a, b), NOR(a, b)) -- three logic gates; input
     * sharing is legalized later by splitter insertion.
     */
    NodeId addXnor(NodeId a, NodeId b);

    /** Mark a node as a primary output. */
    void markOutput(NodeId id);

    /** Number of nodes. */
    std::size_t size() const { return gates_.size(); }

    /** Access a gate. */
    const Gate &gate(NodeId id) const
    {
        return gates_[static_cast<std::size_t>(id)];
    }

    /** Mutable access for passes. */
    Gate &gate(NodeId id) { return gates_[static_cast<std::size_t>(id)]; }

    /** Primary-input node ids in creation order. */
    const std::vector<NodeId> &inputs() const { return inputs_; }

    /** Primary-output node ids in marking order. */
    const std::vector<NodeId> &outputs() const { return outputs_; }

    /** Mutable output list (passes may retarget outputs). */
    std::vector<NodeId> &outputs() { return outputs_; }

    /** Total JJ count over all gates. */
    long long jjCount() const;

    /** Number of gates of a given type. */
    int countType(CellType type) const;

    /** Number of consumers of each node (outputs count as one consumer). */
    std::vector<int> fanoutCounts() const;

    /**
     * Logic depth in phases: longest input-to-output path, counting one
     * phase per gate.  Constants are phase-agile (see balancePaths) and do
     * not constrain depth.
     */
    int depth() const;

    /**
     * Per-node logic level (Input = 0, gate = 1 + max(fanin levels);
     * constants get level 0).
     */
    std::vector<int> levels() const;

    /** Validate fanin counts, acyclicity-by-ordering and id ranges. */
    bool check(std::string *error = nullptr) const;

  private:
    std::vector<Gate> gates_;
    std::vector<NodeId> inputs_;
    std::vector<NodeId> outputs_;
};

} // namespace aqfpsc::aqfp

#endif // AQFPSC_AQFP_NETLIST_H
