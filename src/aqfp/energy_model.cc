#include "energy_model.h"

namespace aqfpsc::aqfp {

HardwareCost
analyzeNetlist(const Netlist &n, const AqfpTechnology &tech)
{
    HardwareCost cost;
    cost.jj = n.jjCount();
    cost.gates = n.size();
    cost.depthPhases = n.depth();
    cost.energyPerCycleJ =
        static_cast<double>(cost.jj) * tech.energyPerJjPerCycle;
    // Latency accounting follows the paper's component tables: each logic
    // level contributes one clock period (its output is valid once per AC
    // cycle), e.g. the ~50-60 level feature-extraction sorter at M = 800
    // reports 12.4 ns (Table 5).  Overlapped four-phase clocking could
    // lower this by up to 4x (tech.phaseSeconds()); we keep the paper's
    // convention.
    cost.latencySeconds =
        static_cast<double>(cost.depthPhases) * tech.cycleSeconds();
    return cost;
}

} // namespace aqfpsc::aqfp
