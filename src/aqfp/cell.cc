#include "cell.h"

#include <cassert>

namespace aqfpsc::aqfp {

int
jjCount(CellType type)
{
    switch (type) {
      case CellType::Input:
        return 0;
      case CellType::Const0:
      case CellType::Const1:
      case CellType::Buffer:
      case CellType::Inverter:
        return 2;
      case CellType::Splitter:
        return 4;
      case CellType::And2:
      case CellType::Or2:
      case CellType::Nand2:
      case CellType::Nor2:
      case CellType::Maj3:
        return 6;
    }
    return 0;
}

int
faninCount(CellType type)
{
    switch (type) {
      case CellType::Input:
      case CellType::Const0:
      case CellType::Const1:
        return 0;
      case CellType::Buffer:
      case CellType::Inverter:
      case CellType::Splitter:
        return 1;
      case CellType::And2:
      case CellType::Or2:
      case CellType::Nand2:
      case CellType::Nor2:
        return 2;
      case CellType::Maj3:
        return 3;
    }
    return 0;
}

int
fanoutCapacity(CellType type)
{
    return type == CellType::Splitter ? 2 : 1;
}

const char *
cellName(CellType type)
{
    switch (type) {
      case CellType::Input: return "INPUT";
      case CellType::Const0: return "CONST0";
      case CellType::Const1: return "CONST1";
      case CellType::Buffer: return "BUF";
      case CellType::Inverter: return "INV";
      case CellType::Splitter: return "SPL";
      case CellType::And2: return "AND2";
      case CellType::Or2: return "OR2";
      case CellType::Nand2: return "NAND2";
      case CellType::Nor2: return "NOR2";
      case CellType::Maj3: return "MAJ3";
    }
    return "?";
}

bool
evalCell(CellType type, bool a, bool b, bool c)
{
    switch (type) {
      case CellType::Const0:
        return false;
      case CellType::Const1:
        return true;
      case CellType::Buffer:
      case CellType::Splitter:
        return a;
      case CellType::Inverter:
        return !a;
      case CellType::And2:
        return a && b;
      case CellType::Or2:
        return a || b;
      case CellType::Nand2:
        return !(a && b);
      case CellType::Nor2:
        return !(a || b);
      case CellType::Maj3:
        return (a && b) || (a && c) || (b && c);
      case CellType::Input:
        break;
    }
    assert(false && "cell is not evaluatable");
    return false;
}

} // namespace aqfpsc::aqfp
