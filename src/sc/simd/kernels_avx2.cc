/**
 * @file
 * AVX2 kernel table: 4 packed stream words (256 cycles) per lane group.
 *
 * Compiled with -mavx2 via a per-file CMake property; when the compiler
 * lacks the flag (non-x86), the TU degrades to a nullptr stub and
 * dispatch falls back to scalar.  Bit-identity with the scalar
 * reference holds because the ripple performs the same AND/XOR plane
 * updates per word — only 4 words at a time — and the planes hold exact
 * binary counts.  The vector early-exit (whole lane group's carry zero)
 * is coarser than the scalar per-word exit but only skips no-op plane
 * updates, so the stored bits are unchanged.
 */

#include "kernels_scalar.h"
#include "simd.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <cassert>

namespace aqfpsc::sc::simd {
namespace {

inline void
rippleVec(const PlaneSpan &s, std::size_t wi, __m256i carry, int from_plane)
{
    for (int k = from_plane; k < s.planeCount; ++k) {
        if (_mm256_testz_si256(carry, carry))
            return;
        std::uint64_t *p =
            s.planes + static_cast<std::size_t>(k) * s.stride + wi;
        const __m256i plane =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(p));
        const __m256i t = _mm256_and_si256(plane, carry);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(p),
                            _mm256_xor_si256(plane, carry));
        carry = t;
    }
    assert(_mm256_testz_si256(carry, carry) && "ColumnCounts overflow");
}

void
addXnorMulti(const PlaneSpan spans[], const std::uint64_t *const xs[],
             std::size_t images, const std::uint64_t *w, std::size_t words)
{
    const __m256i ones = _mm256_set1_epi64x(-1);
    std::size_t wi = 0;
    for (; wi + 4 <= words; wi += 4) {
        // One shared weight lane group feeds the whole cohort.
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(w + wi));
        for (std::size_t c = 0; c < images; ++c) {
            const __m256i xv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(xs[c] + wi));
            const __m256i prod =
                _mm256_xor_si256(_mm256_xor_si256(xv, wv), ones);
            rippleVec(spans[c], wi, prod, 0);
        }
    }
    detail::addXnorMultiWords(spans, xs, images, w, wi, words);
}

void
addXnor2Multi(const PlaneSpan spans[], const std::uint64_t *const xs1[],
              const std::uint64_t *const xs2[], std::size_t images,
              const std::uint64_t *w1, const std::uint64_t *w2,
              std::size_t words)
{
    const __m256i ones = _mm256_set1_epi64x(-1);
    std::size_t wi = 0;
    for (; wi + 4 <= words; wi += 4) {
        const __m256i wv1 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(w1 + wi));
        const __m256i wv2 =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(w2 + wi));
        for (std::size_t c = 0; c < images; ++c) {
            const __m256i p1 = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_loadu_si256(
                                     reinterpret_cast<const __m256i *>(
                                         xs1[c] + wi)),
                                 wv1),
                ones);
            const __m256i p2 = _mm256_xor_si256(
                _mm256_xor_si256(_mm256_loadu_si256(
                                     reinterpret_cast<const __m256i *>(
                                         xs2[c] + wi)),
                                 wv2),
                ones);
            // 3:2 compress: p1 + p2 = (p1 ^ p2) + 2 * (p1 & p2).
            rippleVec(spans[c], wi, _mm256_xor_si256(p1, p2), 0);
            rippleVec(spans[c], wi, _mm256_and_si256(p1, p2), 1);
        }
    }
    detail::addXnor2MultiWords(spans, xs1, xs2, images, w1, w2, wi, words);
}

void
addWordsMulti(const PlaneSpan spans[], std::size_t images,
              const std::uint64_t *src, std::size_t words)
{
    std::size_t wi = 0;
    for (; wi + 4 <= words; wi += 4) {
        const __m256i wv =
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(src + wi));
        for (std::size_t c = 0; c < images; ++c)
            rippleVec(spans[c], wi, wv, 0);
    }
    detail::addWordsMultiWords(spans, images, src, wi, words);
}

std::uint64_t
thresholdPack(const std::uint64_t *rnd, std::size_t n,
              std::uint64_t threshold)
{
    // AVX2 has no unsigned 64-bit compare; flip the sign bit of both
    // sides so signed greater-than computes the unsigned relation.
    const __m256i bias = _mm256_set1_epi64x(
        static_cast<long long>(0x8000000000000000ULL));
    const __m256i tv = _mm256_xor_si256(
        _mm256_set1_epi64x(static_cast<long long>(threshold)), bias);
    std::uint64_t word = 0;
    std::size_t b = 0;
    for (; b + 4 <= n; b += 4) {
        const __m256i rv = _mm256_xor_si256(
            _mm256_loadu_si256(reinterpret_cast<const __m256i *>(rnd + b)),
            bias);
        const __m256i lt = _mm256_cmpgt_epi64(tv, rv);
        const unsigned mask = static_cast<unsigned>(
            _mm256_movemask_pd(_mm256_castsi256_pd(lt)));
        word |= static_cast<std::uint64_t>(mask) << b;
    }
    return word | detail::thresholdPackBits(rnd, b, n, threshold);
}

constexpr KernelTable kAvx2Table = {
    "avx2", addXnorMulti, addXnor2Multi, addWordsMulti, thresholdPack,
};

} // namespace

const KernelTable *
avx2Kernels()
{
    return &kAvx2Table;
}

} // namespace aqfpsc::sc::simd

#else // !defined(__AVX2__)

namespace aqfpsc::sc::simd {

const KernelTable *
avx2Kernels()
{
    return nullptr;
}

} // namespace aqfpsc::sc::simd

#endif // defined(__AVX2__)
