/**
 * @file
 * AVX-512 kernel table: 8 packed stream words (512 cycles) per lane
 * group.  Same structure and bit-identity argument as kernels_avx2.cc;
 * the mask registers additionally give the threshold compare its packed
 * result for free (_mm512_cmplt_epu64_mask yields the 8 stream bits
 * directly).  Compiled with -mavx512f/bw/dq/vl via a per-file CMake
 * property; degrades to a nullptr stub without it.
 */

#include "kernels_scalar.h"
#include "simd.h"

#if defined(__AVX512F__)

#include <immintrin.h>

#include <cassert>

namespace aqfpsc::sc::simd {
namespace {

inline void
rippleVec(const PlaneSpan &s, std::size_t wi, __m512i carry, int from_plane)
{
    for (int k = from_plane; k < s.planeCount; ++k) {
        if (_mm512_test_epi64_mask(carry, carry) == 0)
            return;
        std::uint64_t *p =
            s.planes + static_cast<std::size_t>(k) * s.stride + wi;
        const __m512i plane = _mm512_loadu_si512(p);
        const __m512i t = _mm512_and_si512(plane, carry);
        _mm512_storeu_si512(p, _mm512_xor_si512(plane, carry));
        carry = t;
    }
    assert(_mm512_test_epi64_mask(carry, carry) == 0 &&
           "ColumnCounts overflow");
}

void
addXnorMulti(const PlaneSpan spans[], const std::uint64_t *const xs[],
             std::size_t images, const std::uint64_t *w, std::size_t words)
{
    const __m512i ones = _mm512_set1_epi64(-1);
    std::size_t wi = 0;
    for (; wi + 8 <= words; wi += 8) {
        // One shared weight lane group feeds the whole cohort.
        const __m512i wv = _mm512_loadu_si512(w + wi);
        for (std::size_t c = 0; c < images; ++c) {
            const __m512i xv = _mm512_loadu_si512(xs[c] + wi);
            const __m512i prod =
                _mm512_xor_si512(_mm512_xor_si512(xv, wv), ones);
            rippleVec(spans[c], wi, prod, 0);
        }
    }
    detail::addXnorMultiWords(spans, xs, images, w, wi, words);
}

void
addXnor2Multi(const PlaneSpan spans[], const std::uint64_t *const xs1[],
              const std::uint64_t *const xs2[], std::size_t images,
              const std::uint64_t *w1, const std::uint64_t *w2,
              std::size_t words)
{
    const __m512i ones = _mm512_set1_epi64(-1);
    std::size_t wi = 0;
    for (; wi + 8 <= words; wi += 8) {
        const __m512i wv1 = _mm512_loadu_si512(w1 + wi);
        const __m512i wv2 = _mm512_loadu_si512(w2 + wi);
        for (std::size_t c = 0; c < images; ++c) {
            const __m512i p1 = _mm512_xor_si512(
                _mm512_xor_si512(_mm512_loadu_si512(xs1[c] + wi), wv1),
                ones);
            const __m512i p2 = _mm512_xor_si512(
                _mm512_xor_si512(_mm512_loadu_si512(xs2[c] + wi), wv2),
                ones);
            // 3:2 compress: p1 + p2 = (p1 ^ p2) + 2 * (p1 & p2).
            rippleVec(spans[c], wi, _mm512_xor_si512(p1, p2), 0);
            rippleVec(spans[c], wi, _mm512_and_si512(p1, p2), 1);
        }
    }
    detail::addXnor2MultiWords(spans, xs1, xs2, images, w1, w2, wi, words);
}

void
addWordsMulti(const PlaneSpan spans[], std::size_t images,
              const std::uint64_t *src, std::size_t words)
{
    std::size_t wi = 0;
    for (; wi + 8 <= words; wi += 8) {
        const __m512i wv = _mm512_loadu_si512(src + wi);
        for (std::size_t c = 0; c < images; ++c)
            rippleVec(spans[c], wi, wv, 0);
    }
    detail::addWordsMultiWords(spans, images, src, wi, words);
}

std::uint64_t
thresholdPack(const std::uint64_t *rnd, std::size_t n,
              std::uint64_t threshold)
{
    const __m512i tv =
        _mm512_set1_epi64(static_cast<long long>(threshold));
    std::uint64_t word = 0;
    std::size_t b = 0;
    for (; b + 8 <= n; b += 8) {
        const __m512i rv = _mm512_loadu_si512(rnd + b);
        const __mmask8 lt = _mm512_cmplt_epu64_mask(rv, tv);
        word |= static_cast<std::uint64_t>(lt) << b;
    }
    return word | detail::thresholdPackBits(rnd, b, n, threshold);
}

constexpr KernelTable kAvx512Table = {
    "avx512", addXnorMulti, addXnor2Multi, addWordsMulti, thresholdPack,
};

} // namespace

const KernelTable *
avx512Kernels()
{
    return &kAvx512Table;
}

} // namespace aqfpsc::sc::simd

#else // !defined(__AVX512F__)

namespace aqfpsc::sc::simd {

const KernelTable *
avx512Kernels()
{
    return nullptr;
}

} // namespace aqfpsc::sc::simd

#endif // defined(__AVX512F__)
