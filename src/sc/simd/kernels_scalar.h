/**
 * @file
 * Scalar reference loops for the dispatched SC kernels.
 *
 * These are the exact loops the pre-dispatch ColumnCounts /
 * StreamMatrix code ran, lifted out so (a) the scalar table can wrap
 * them over the full word range and (b) the AVX2/AVX-512 TUs can reuse
 * them for the sub-lane-group word tail.  Every vector kernel must be
 * bit-identical to these over any word sub-range.
 */

#ifndef AQFPSC_SC_SIMD_KERNELS_SCALAR_H
#define AQFPSC_SC_SIMD_KERNELS_SCALAR_H

#include <cassert>
#include <cstddef>
#include <cstdint>

#include "simd.h"

namespace aqfpsc::sc::simd::detail {

/** One word's carry-save ripple (the add all kernels share). */
inline void
rippleWord(const PlaneSpan &s, std::size_t wi, std::uint64_t carry,
           int from_plane = 0)
{
    for (int k = from_plane; k < s.planeCount && carry; ++k) {
        std::uint64_t &plane =
            s.planes[static_cast<std::size_t>(k) * s.stride + wi];
        const std::uint64_t t = plane & carry;
        plane ^= carry;
        carry = t;
    }
    assert(carry == 0 && "ColumnCounts overflow");
}

/** Scalar addXnorMulti over words [begin, end). */
inline void
addXnorMultiWords(const PlaneSpan spans[], const std::uint64_t *const xs[],
                  std::size_t images, const std::uint64_t *w,
                  std::size_t begin, std::size_t end)
{
    for (std::size_t wi = begin; wi < end; ++wi) {
        const std::uint64_t ww = w[wi];
        for (std::size_t c = 0; c < images; ++c)
            rippleWord(spans[c], wi, ~(xs[c][wi] ^ ww));
    }
}

/** Scalar addXnor2Multi over words [begin, end). */
inline void
addXnor2MultiWords(const PlaneSpan spans[], const std::uint64_t *const xs1[],
                   const std::uint64_t *const xs2[], std::size_t images,
                   const std::uint64_t *w1, const std::uint64_t *w2,
                   std::size_t begin, std::size_t end)
{
    for (std::size_t wi = begin; wi < end; ++wi) {
        const std::uint64_t ww1 = w1[wi];
        const std::uint64_t ww2 = w2[wi];
        for (std::size_t c = 0; c < images; ++c) {
            const std::uint64_t p1 = ~(xs1[c][wi] ^ ww1);
            const std::uint64_t p2 = ~(xs2[c][wi] ^ ww2);
            // 3:2 compress: p1 + p2 = (p1 ^ p2) + 2 * (p1 & p2).
            rippleWord(spans[c], wi, p1 ^ p2);
            rippleWord(spans[c], wi, p1 & p2, 1);
        }
    }
}

/** Scalar addWordsMulti over words [begin, end). */
inline void
addWordsMultiWords(const PlaneSpan spans[], std::size_t images,
                   const std::uint64_t *src, std::size_t begin,
                   std::size_t end)
{
    for (std::size_t wi = begin; wi < end; ++wi) {
        const std::uint64_t ww = src[wi];
        for (std::size_t c = 0; c < images; ++c)
            rippleWord(spans[c], wi, ww);
    }
}

/** Scalar threshold compare+pack over bits [begin, end). */
inline std::uint64_t
thresholdPackBits(const std::uint64_t *rnd, std::size_t begin,
                  std::size_t end, std::uint64_t threshold)
{
    std::uint64_t word = 0;
    for (std::size_t b = begin; b < end; ++b)
        word |= static_cast<std::uint64_t>(rnd[b] < threshold) << b;
    return word;
}

} // namespace aqfpsc::sc::simd::detail

#endif // AQFPSC_SC_SIMD_KERNELS_SCALAR_H
