/**
 * @file
 * Runtime ISA dispatch for the SC kernel hot loops.
 *
 * PR 5 rebuilt execution around stage-major cohorts so the carry-save
 * ripple (ColumnCounts::add*Multi) and the SNG threshold fill
 * (StreamMatrix::fillBipolar*) could vectorize; this layer supplies the
 * vector kernels and picks one implementation per process:
 *
 *  - kernels() returns a per-kernel function-pointer table resolved
 *    once at static init from cpuid feature detection (scalar, AVX2 or
 *    AVX-512), overridable with the AQFPSC_FORCE_SCALAR env var (any
 *    non-empty value other than "0" forces the scalar table).
 *  - The AVX TUs are compiled with per-file arch flags (see
 *    CMakeLists.txt) and degrade to stubs when the compiler lacks the
 *    flag, so the binary stays portable: no vector instruction executes
 *    unless the running CPU advertises the feature.
 *  - Every vector kernel is bit-identical to the scalar reference: the
 *    carry-save planes hold exact binary counts (independent of
 *    addition grouping) and the vector ripple performs the same
 *    AND/XOR plane updates, just 4/8 packed words per lane group; the
 *    threshold fill performs the same unsigned compare per RNG word.
 *    tests/test_simd_kernels.cc pins this differentially, and the
 *    PR 3/PR 5 golden hashes pin it end to end.
 *
 * setActiveLevel() exists for tests and benches that need to compare
 * variants in-process; it swaps an atomic table pointer, so it must not
 * race with in-flight inference (call it between runs).
 */

#ifndef AQFPSC_SC_SIMD_SIMD_H
#define AQFPSC_SC_SIMD_SIMD_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace aqfpsc::sc::simd {

/** Kernel implementation tiers, ordered by preference. */
enum class Level
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Stable lowercase name ("scalar", "avx2", "avx512") for reports. */
const char *levelName(Level level);

/**
 * One image's carry-save planes, decoupled from ColumnCounts internals:
 * plane k of word wi lives at planes[k * stride + wi].
 */
struct PlaneSpan
{
    std::uint64_t *planes;
    std::size_t stride;
    int planeCount;
};

/** Fold ~(xs[c] ^ w) into each image's planes over words [0, words). */
using AddXnorMultiFn = void (*)(const PlaneSpan spans[],
                                const std::uint64_t *const xs[],
                                std::size_t images, const std::uint64_t *w,
                                std::size_t words);

/** 3:2-compressed pair of XNOR products per image (see addXnor2()). */
using AddXnor2MultiFn = void (*)(const PlaneSpan spans[],
                                 const std::uint64_t *const xs1[],
                                 const std::uint64_t *const xs2[],
                                 std::size_t images, const std::uint64_t *w1,
                                 const std::uint64_t *w2, std::size_t words);

/** Add one shared packed row into every image's planes. */
using AddWordsMultiFn = void (*)(const PlaneSpan spans[], std::size_t images,
                                 const std::uint64_t *src, std::size_t words);

/** Pack (rnd[b] < threshold) for b in [0, n) into one stream word. */
using ThresholdPackFn = std::uint64_t (*)(const std::uint64_t *rnd,
                                          std::size_t n,
                                          std::uint64_t threshold);

/** The per-kernel dispatch table (one per implementation tier). */
struct KernelTable
{
    const char *name; ///< levelName() of the implementing tier.
    AddXnorMultiFn addXnorMulti;
    AddXnor2MultiFn addXnor2Multi;
    AddWordsMultiFn addWordsMulti;
    ThresholdPackFn thresholdPack;
};

/** The active table.  Safe during static init (falls back to scalar). */
const KernelTable &kernels();

/** Highest tier both this build and the running CPU support. */
Level detectedLevel();

/** Tier of the currently active table. */
Level activeLevel();

/**
 * Swap the active table (tests/benches only — not safe concurrently
 * with running kernels).  Fails (returns false, no change) when the
 * requested tier exceeds detectedLevel().
 */
bool setActiveLevel(Level level);

/** "kernel=tier" summary of the active table for report stamps. */
std::string variantSummary();

/**
 * Env-override policy, exposed pure for tests: AQFPSC_FORCE_SCALAR
 * unset, empty or "0" keeps @p detected; anything else forces scalar.
 */
Level resolveLevel(Level detected, const char *force_scalar_env);

/** Per-tier tables; AVX accessors return nullptr when the TU was
 *  compiled without the arch flag (non-x86 or old compiler). */
const KernelTable *scalarKernels();
const KernelTable *avx2Kernels();
const KernelTable *avx512Kernels();

} // namespace aqfpsc::sc::simd

#endif // AQFPSC_SC_SIMD_SIMD_H
