/**
 * @file
 * Kernel-table resolution: cpuid feature detection, the scalar
 * reference table, and the process-wide active-table pointer (resolved
 * once at static init, AQFPSC_FORCE_SCALAR override, swappable from
 * tests via setActiveLevel()).
 */

#include "simd.h"

#include <atomic>
#include <cstdlib>

#include "kernels_scalar.h"

namespace aqfpsc::sc::simd {

namespace {

void
scalarAddXnorMulti(const PlaneSpan spans[], const std::uint64_t *const xs[],
                   std::size_t images, const std::uint64_t *w,
                   std::size_t words)
{
    detail::addXnorMultiWords(spans, xs, images, w, 0, words);
}

void
scalarAddXnor2Multi(const PlaneSpan spans[], const std::uint64_t *const xs1[],
                    const std::uint64_t *const xs2[], std::size_t images,
                    const std::uint64_t *w1, const std::uint64_t *w2,
                    std::size_t words)
{
    detail::addXnor2MultiWords(spans, xs1, xs2, images, w1, w2, 0, words);
}

void
scalarAddWordsMulti(const PlaneSpan spans[], std::size_t images,
                    const std::uint64_t *src, std::size_t words)
{
    detail::addWordsMultiWords(spans, images, src, 0, words);
}

std::uint64_t
scalarThresholdPack(const std::uint64_t *rnd, std::size_t n,
                    std::uint64_t threshold)
{
    return detail::thresholdPackBits(rnd, 0, n, threshold);
}

constexpr KernelTable kScalarTable = {
    "scalar",         scalarAddXnorMulti,  scalarAddXnor2Multi,
    scalarAddWordsMulti, scalarThresholdPack,
};

// Constant-initialized, so kernels() is safe from any other TU's static
// init (a null table reads as scalar until the resolver below runs).
std::atomic<const KernelTable *> g_table{nullptr};
std::atomic<Level> g_level{Level::Scalar};

const KernelTable *
tableFor(Level level)
{
    switch (level) {
    case Level::Avx512:
        return avx512Kernels();
    case Level::Avx2:
        return avx2Kernels();
    case Level::Scalar:
        break;
    }
    return &kScalarTable;
}

/** Resolves the table once at static init (env override included). */
const struct DispatchInit
{
    DispatchInit()
    {
        setActiveLevel(resolveLevel(detectedLevel(),
                                    std::getenv("AQFPSC_FORCE_SCALAR")));
    }
} g_dispatch_init;

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
    case Level::Avx512:
        return "avx512";
    case Level::Avx2:
        return "avx2";
    case Level::Scalar:
        break;
    }
    return "scalar";
}

Level
detectedLevel()
{
#if defined(__GNUC__) && (defined(__x86_64__) || defined(__i386__))
    static const Level detected = [] {
        if (__builtin_cpu_supports("avx512f") &&
            __builtin_cpu_supports("avx512bw") &&
            __builtin_cpu_supports("avx512dq") &&
            __builtin_cpu_supports("avx512vl") && avx512Kernels() != nullptr)
            return Level::Avx512;
        if (__builtin_cpu_supports("avx2") && avx2Kernels() != nullptr)
            return Level::Avx2;
        return Level::Scalar;
    }();
    return detected;
#else
    return Level::Scalar;
#endif
}

Level
resolveLevel(Level detected, const char *force_scalar_env)
{
    if (force_scalar_env != nullptr && force_scalar_env[0] != '\0' &&
        !(force_scalar_env[0] == '0' && force_scalar_env[1] == '\0'))
        return Level::Scalar;
    return detected;
}

const KernelTable &
kernels()
{
    const KernelTable *t = g_table.load(std::memory_order_relaxed);
    return t != nullptr ? *t : kScalarTable;
}

Level
activeLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

bool
setActiveLevel(Level level)
{
    if (static_cast<int>(level) > static_cast<int>(detectedLevel()))
        return false;
    const KernelTable *t = tableFor(level);
    if (t == nullptr)
        return false;
    g_table.store(t, std::memory_order_relaxed);
    g_level.store(level, std::memory_order_relaxed);
    return true;
}

std::string
variantSummary()
{
    const char *name = kernels().name;
    std::string out;
    for (const char *kernel :
         {"addXnorMulti", "addXnor2Multi", "addWordsMulti",
          "thresholdPack"}) {
        if (!out.empty())
            out += ' ';
        out += kernel;
        out += '=';
        out += name;
    }
    return out;
}

const KernelTable *
scalarKernels()
{
    return &kScalarTable;
}

} // namespace aqfpsc::sc::simd
