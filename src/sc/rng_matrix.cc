#include "rng_matrix.h"

#include <cassert>

namespace aqfpsc::sc {

RngMatrix::RngMatrix(int n, std::uint64_t seed) : n_(n)
{
    assert(n >= 2 && n <= 64);
    units_.reserve(static_cast<std::size_t>(n) * n);
    for (int i = 0; i < n * n; ++i)
        units_.emplace_back(seed + static_cast<std::uint64_t>(i) * 0x9E37ULL);
    rowBits_.assign(static_cast<std::size_t>(n), 0);
    step();
}

void
RngMatrix::step()
{
    for (int r = 0; r < n_; ++r) {
        std::uint64_t row = 0;
        for (int c = 0; c < n_; ++c) {
            if (units_[static_cast<std::size_t>(r) * n_ + c].nextBit())
                row |= 1ULL << c;
        }
        rowBits_[static_cast<std::size_t>(r)] = row;
    }
}

bool
RngMatrix::bit(int row, int col) const
{
    assert(row >= 0 && row < n_ && col >= 0 && col < n_);
    return (rowBits_[static_cast<std::size_t>(row)] >> col) & 1ULL;
}

std::uint64_t
RngMatrix::output(int idx) const
{
    assert(idx >= 0 && idx < numOutputs());
    const int kind = idx / n_;
    const int k = idx % n_;
    std::uint64_t v = 0;
    switch (kind) {
      case 0: // row k, bit b = unit (k, b)
        return rowBits_[static_cast<std::size_t>(k)];
      case 1: // column k, bit b = unit (b, k)
        for (int b = 0; b < n_; ++b) {
            if (bit(b, k))
                v |= 1ULL << b;
        }
        return v;
      case 2: // diagonal k, bit b = unit (b, (b + k) mod N)
        for (int b = 0; b < n_; ++b) {
            if (bit(b, (b + k) % n_))
                v |= 1ULL << b;
        }
        return v;
      default: // anti-diagonal k, bit b = unit (b, (k - b) mod N)
        for (int b = 0; b < n_; ++b) {
            if (bit(b, ((k - b) % n_ + n_) % n_))
                v |= 1ULL << b;
        }
        return v;
    }
}

std::vector<int>
RngMatrix::unitsOf(int idx) const
{
    assert(idx >= 0 && idx < numOutputs());
    const int kind = idx / n_;
    const int k = idx % n_;
    std::vector<int> units;
    units.reserve(static_cast<std::size_t>(n_));
    for (int b = 0; b < n_; ++b) {
        int r = 0, c = 0;
        switch (kind) {
          case 0: r = k; c = b; break;
          case 1: r = b; c = k; break;
          case 2: r = b; c = (b + k) % n_; break;
          default: r = b; c = ((k - b) % n_ + n_) % n_; break;
        }
        units.push_back(r * n_ + c);
    }
    return units;
}

} // namespace aqfpsc::sc
