/**
 * @file
 * Cycle-parallel stochastic-computing operators and stream statistics.
 *
 * The classic SC operator set (Fig. 4 of the paper): AND for unipolar
 * multiply, XNOR for bipolar multiply, MUX for scaled addition, plus the
 * majority operator that AQFP provides natively, and the stochastic
 * cross-correlation (SCC) metric used to validate RNG independence.
 */

#ifndef AQFPSC_SC_OPS_H
#define AQFPSC_SC_OPS_H

#include <vector>

#include "bitstream.h"
#include "rng.h"

namespace aqfpsc::sc {

/** Unipolar multiply: P(a AND b) = P(a) * P(b) for independent streams. */
Bitstream multiplyUnipolar(const Bitstream &a, const Bitstream &b);

/** Bipolar multiply: value(a XNOR b) = value(a) * value(b). */
Bitstream multiplyBipolar(const Bitstream &a, const Bitstream &b);

/**
 * Scaled addition via a MUX tree: each cycle the output copies one input
 * chosen uniformly at random, so value(out) = mean(value(inputs)).
 * Works for both encodings.  @p rng supplies the select streams.
 */
Bitstream scaledAdd(const std::vector<Bitstream> &inputs, RandomSource &rng);

/** Bitwise 3-input majority of equal-length streams. */
Bitstream majority3(const Bitstream &a, const Bitstream &b,
                    const Bitstream &c);

/**
 * Stochastic cross-correlation (SCC) of two streams (Alaghi & Hayes).
 * 0 for independent streams, +1 for maximally overlapping, -1 for
 * maximally disjoint.  Returns 0 when either stream is constant.
 */
double streamCorrelation(const Bitstream &a, const Bitstream &b);

} // namespace aqfpsc::sc

#endif // AQFPSC_SC_OPS_H
