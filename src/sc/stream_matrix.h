/**
 * @file
 * Flat matrix of packed stochastic streams.
 *
 * Whole-network SC inference keeps hundreds of thousands of streams live
 * (every weight of every layer); one heap allocation per Bitstream would
 * waste memory and locality, so layers store their streams as rows of a
 * single contiguous word buffer.
 */

#ifndef AQFPSC_SC_STREAM_MATRIX_H
#define AQFPSC_SC_STREAM_MATRIX_H

#include <cstdint>
#include <vector>

#include "bitstream.h"
#include "rng.h"

namespace aqfpsc::sc {

/** Rows of equal-length packed bit-streams. */
class StreamMatrix
{
  public:
    StreamMatrix() = default;

    /** @param rows Number of streams. @param len Stream length (cycles). */
    StreamMatrix(std::size_t rows, std::size_t len);

    /**
     * Re-shape in place, reusing the existing word buffer (it only grows,
     * never shrinks — the workspace-arena contract).  Row contents are
     * unspecified afterwards: every row must be fully overwritten by a
     * whole-word writer (fillBipolar, fillNeutral, ColumnCounts::drive)
     * before it is read.  Steady-state inference therefore performs no
     * allocation here once the buffer has reached its high-water size.
     */
    void reset(std::size_t rows, std::size_t len);

    std::size_t rows() const { return rows_; }
    std::size_t streamLen() const { return len_; }
    std::size_t wordsPerRow() const { return wpr_; }

    /** Mutable pointer to row @p r (wordsPerRow() words). */
    std::uint64_t *row(std::size_t r) { return &words_[r * wpr_]; }

    /** Const pointer to row @p r. */
    const std::uint64_t *row(std::size_t r) const { return &words_[r * wpr_]; }

    /**
     * Fill row @p r with an SNG stream for bipolar value @p value
     * (quantized to @p bits), drawing randomness from @p rng.
     * Tail bits beyond streamLen() are left zero.
     *
     * Word-batched: 64 comparison bits are generated per iteration from
     * a block of RNG words (RandomSource::nextWords), consuming the RNG
     * in exactly the per-bit order — the streams are bit-identical to
     * the bit-serial formulation bit = (rng.nextBits(bits) < code).
     */
    void fillBipolar(std::size_t r, double value, int bits,
                     RandomSource &rng);

    /**
     * fillBipolar() restricted to cycles [@p begin_cycle, @p end_cycle):
     * only the covered words of row @p r are written (tail bits beyond
     * streamLen() stay zero) and only that many RNG draws are consumed.
     * @p begin_cycle must be 64-aligned; @p end_cycle is clamped to
     * streamLen().
     *
     * This is the lazy-SNG path of non-deterministic adaptive inference:
     * each checkpoint block draws from its own RNG substream, so blocks
     * beyond an early exit are never generated at all.  The draws differ
     * from one uninterrupted fillBipolar() pass — use full fills when
     * bit-identity with the non-adaptive path matters.
     */
    void fillBipolarSpan(std::size_t r, double value, int bits,
                         RandomSource &rng, std::size_t begin_cycle,
                         std::size_t end_cycle);

    /** Fill row @p r with the neutral 0101... stream (bipolar value 0). */
    void fillNeutral(std::size_t r);

    /** Copy row @p r out as a Bitstream. */
    Bitstream toBitstream(std::size_t r) const;

    /** Number of ones in row @p r. */
    std::size_t countOnes(std::size_t r) const;

    /** Bipolar value of row @p r. */
    double bipolarValue(std::size_t r) const;

  private:
    std::size_t rows_ = 0;
    std::size_t len_ = 0;
    std::size_t wpr_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace aqfpsc::sc

#endif // AQFPSC_SC_STREAM_MATRIX_H
