/**
 * @file
 * Random sources used throughout the framework.
 *
 * Three generators are provided:
 *  - Xoshiro256StarStar: fast, high-quality software PRNG used for test
 *    vector generation and Monte-Carlo experiments.
 *  - Lfsr: the Fibonacci linear-feedback shift register that CMOS SC
 *    designs use as a pseudo-RNG inside their SNGs (the baseline).
 *  - AqfpTrueRng: behavioural model of the paper's 2-JJ true RNG --- an
 *    AQFP buffer with zero input current resolves each cycle to 0 or 1
 *    according to thermal noise (Fig. 7).  The model exposes the input
 *    current bias so the Fig. 7(b) output-distribution sweep can be
 *    reproduced: P(out = 1) = Phi(i_in / i_noise) where Phi is the
 *    standard normal CDF.
 */

#ifndef AQFPSC_SC_RNG_H
#define AQFPSC_SC_RNG_H

#include <array>
#include <cstdint>

namespace aqfpsc::sc {

/**
 * Deterministic per-stream seed derivation: base XOR index.
 *
 * Batched inference gives image @p index the seed
 * deriveStreamSeed(engine_seed, index), so every image's streams are a
 * pure function of (seed, index) — independent of batch size, submission
 * order, and thread schedule — and index 0 reproduces the engine seed
 * exactly.  Adjacent derived seeds are decorrelated by the splitmix64
 * expansion every consumer (Xoshiro256StarStar) applies to its seed.
 */
constexpr std::uint64_t
deriveStreamSeed(std::uint64_t base, std::uint64_t index)
{
    return base ^ index;
}

/**
 * Interface for a source of uniform random bits/words.
 */
class RandomSource
{
  public:
    virtual ~RandomSource() = default;

    /** Next uniform 64-bit word. */
    virtual std::uint64_t nextWord() = 0;

    /** Next uniform bit. */
    virtual bool nextBit() { return nextWord() & 1ULL; }

    /**
     * Fill @p dst with the next @p n words — the exact sequence n
     * nextWord() calls would produce.  Concrete generators override this
     * to batch the state updates (no virtual dispatch per word), which
     * is what makes word-parallel SNG stream fill fast.  Generation
     * itself stays scalar even under SIMD dispatch — the xoshiro
     * recurrence is serial — so StreamMatrix::fillBipolar vectorizes
     * only the downstream threshold compare+pack (sc::simd), which
     * consumes these words unchanged.
     */
    virtual void
    nextWords(std::uint64_t *dst, std::size_t n)
    {
        for (std::size_t i = 0; i < n; ++i)
            dst[i] = nextWord();
    }

    /** Next uniform value in [0, 2^bits). @p bits must be in [1, 64]. */
    std::uint64_t nextBits(int bits);

    /** Next double uniform in [0, 1). */
    double nextDouble();
};

/**
 * xoshiro256** 1.0 (Blackman & Vigna).  Small state, excellent statistical
 * quality; the workhorse PRNG of this repository.
 */
class Xoshiro256StarStar : public RandomSource
{
  public:
    /** Seed via splitmix64 expansion of @p seed. */
    explicit Xoshiro256StarStar(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    std::uint64_t nextWord() override;

    /** Batched generation with the state kept in registers. */
    void nextWords(std::uint64_t *dst, std::size_t n) override;

    /** Jump function: advance by 2^128 steps (for independent substreams). */
    void jump();

    /**
     * Snapshot of the 256-bit internal state.  Together with setState()
     * this lets a caller checkpoint the generator and later resume the
     * exact word sequence — the plan cache uses it to skip regeneration
     * of interned parameter streams while keeping every downstream
     * consumer on the same sequence it would see after a cold compile.
     */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }

    /** Restore a state previously captured with state(). */
    void
    setState(const std::array<std::uint64_t, 4> &s)
    {
        s_[0] = s[0];
        s_[1] = s[1];
        s_[2] = s[2];
        s_[3] = s[3];
    }

  private:
    std::uint64_t s_[4];
};

/**
 * Fibonacci LFSR with maximal-length taps, modelling the pseudo-RNG of
 * CMOS stochastic number generators.  Supports widths 3..32.
 *
 * Note the well-known SC caveat that LFSR streams are only pseudo-random
 * and correlate when shared; the AQFP true RNG removes this limitation.
 */
class Lfsr : public RandomSource
{
  public:
    /**
     * @param width Register width in bits (3..32).
     * @param seed Non-zero initial state (zero is mapped to 1).
     */
    explicit Lfsr(int width, std::uint32_t seed = 1);

    /** Advance one step and return the new @c width -bit state. */
    std::uint32_t nextState();

    /** Register width in bits. */
    int width() const { return width_; }

    std::uint64_t nextWord() override;

  private:
    int width_;
    std::uint32_t state_;
    std::uint32_t tapMask_;
};

/**
 * Behavioural model of the 1-bit AQFP true RNG (an AQFP buffer whose input
 * current is nominally zero, Fig. 7 of the paper).
 *
 * Each excitation cycle the double-JJ SQUID settles into the left or right
 * well; with zero input the choice is decided by thermal noise and is an
 * independent fair coin flip.  A non-zero input current biases the outcome,
 * modelled as P(1) = Phi(inputCurrent / noiseCurrent).
 *
 * Hardware cost: 2 JJs, one clock phase -- accounted in aqfp::CellLibrary.
 */
class AqfpTrueRng : public RandomSource
{
  public:
    /**
     * @param seed Seed for the underlying noise process model.
     * @param input_current Input bias current (same unit as noise current).
     * @param noise_current Thermal noise RMS current; must be > 0.
     */
    explicit AqfpTrueRng(std::uint64_t seed = 1, double input_current = 0.0,
                         double noise_current = 1.0);

    /** Set the input bias current (Fig. 7(b) sweeps this). */
    void setInputCurrent(double i) { inputCurrent_ = i; }

    /** Probability of emitting 1 in a cycle, Phi(i_in / i_noise). */
    double probabilityOfOne() const;

    bool nextBit() override;

    /** 64 successive RNG cycles packed into one word. */
    std::uint64_t nextWord() override;

  private:
    Xoshiro256StarStar noise_;
    double inputCurrent_;
    double noiseCurrent_;
};

} // namespace aqfpsc::sc

#endif // AQFPSC_SC_RNG_H
