#include "stream_matrix.h"

#include <bit>
#include <cassert>

#include "sng.h"

namespace aqfpsc::sc {

StreamMatrix::StreamMatrix(std::size_t rows, std::size_t len)
    : rows_(rows), len_(len), wpr_((len + 63) / 64),
      words_(rows * ((len + 63) / 64), 0)
{
}

void
StreamMatrix::fillBipolar(std::size_t r, double value, int bits,
                          RandomSource &rng)
{
    assert(r < rows_);
    const std::uint32_t code = quantizeBipolar(value, bits);
    std::uint64_t *dst = row(r);
    for (std::size_t w = 0; w < wpr_; ++w) {
        std::uint64_t word = 0;
        const std::size_t hi =
            len_ - w * 64 < 64 ? len_ - w * 64 : 64;
        for (std::size_t b = 0; b < hi; ++b) {
            if (rng.nextBits(bits) < code)
                word |= 1ULL << b;
        }
        dst[w] = word;
    }
}

void
StreamMatrix::fillNeutral(std::size_t r)
{
    assert(r < rows_);
    std::uint64_t *dst = row(r);
    for (std::size_t w = 0; w < wpr_; ++w)
        dst[w] = 0xAAAAAAAAAAAAAAAAULL;
    const std::size_t used = len_ % 64;
    if (used != 0)
        dst[wpr_ - 1] &= (1ULL << used) - 1;
}

Bitstream
StreamMatrix::toBitstream(std::size_t r) const
{
    Bitstream s(len_);
    const std::uint64_t *src = row(r);
    for (std::size_t w = 0; w < wpr_; ++w)
        s.setWord(w, src[w]);
    return s;
}

std::size_t
StreamMatrix::countOnes(std::size_t r) const
{
    const std::uint64_t *src = row(r);
    std::size_t ones = 0;
    for (std::size_t w = 0; w < wpr_; ++w)
        ones += static_cast<std::size_t>(std::popcount(src[w]));
    return ones;
}

double
StreamMatrix::bipolarValue(std::size_t r) const
{
    assert(len_ > 0);
    return 2.0 * static_cast<double>(countOnes(r)) /
               static_cast<double>(len_) -
           1.0;
}

} // namespace aqfpsc::sc
