#include "stream_matrix.h"

#include <bit>
#include <cassert>

#include "simd/simd.h"
#include "sng.h"

namespace aqfpsc::sc {

StreamMatrix::StreamMatrix(std::size_t rows, std::size_t len)
    : rows_(rows), len_(len), wpr_((len + 63) / 64),
      words_(rows * ((len + 63) / 64), 0)
{
}

void
StreamMatrix::reset(std::size_t rows, std::size_t len)
{
    rows_ = rows;
    len_ = len;
    wpr_ = (len + 63) / 64;
    // resize() keeps capacity, so repeated reuse at or below the
    // high-water size allocates nothing.
    words_.resize(rows_ * wpr_);
}

void
StreamMatrix::fillBipolar(std::size_t r, double value, int bits,
                          RandomSource &rng)
{
    assert(r < rows_);
    const std::uint32_t code = quantizeBipolar(value, bits);
    // bit = (rng.nextBits(bits) < code) with nextBits(b) = word >> (64-b);
    // floor(x / 2^s) < code  <=>  x < code << s, so one full-width compare
    // per RNG word reproduces the bit-serial SNG exactly.  code can be
    // 2^bits (value 1.0), where code << shift overflows 64 bits; that
    // case means "always 1" and is special-cased (the RNG words are still
    // consumed, one per cycle, to keep the draw sequence identical).
    const int shift = 64 - bits;
    const bool all_ones = (code >> bits) != 0;
    const std::uint64_t threshold = static_cast<std::uint64_t>(code)
                                    << shift;
    std::uint64_t rnd[64];
    std::uint64_t *dst = row(r);
    // RNG word generation stays scalar (the xoshiro recurrence is
    // serial); the compare+pack dispatches to the SIMD kernel table.
    const simd::KernelTable &kt = simd::kernels();
    for (std::size_t w = 0; w < wpr_; ++w) {
        const std::size_t hi =
            len_ - w * 64 < 64 ? len_ - w * 64 : 64;
        rng.nextWords(rnd, hi);
        std::uint64_t word;
        if (all_ones)
            word = hi == 64 ? ~0ULL : (1ULL << hi) - 1;
        else
            word = kt.thresholdPack(rnd, hi, threshold);
        dst[w] = word;
    }
}

void
StreamMatrix::fillBipolarSpan(std::size_t r, double value, int bits,
                              RandomSource &rng, std::size_t begin_cycle,
                              std::size_t end_cycle)
{
    assert(r < rows_);
    assert(begin_cycle % 64 == 0);
    if (end_cycle > len_)
        end_cycle = len_;
    if (begin_cycle >= end_cycle)
        return;
    // Same word-batched threshold compare as fillBipolar (see there for
    // the bit-serial equivalence argument), over a word sub-range.
    const std::uint32_t code = quantizeBipolar(value, bits);
    const int shift = 64 - bits;
    const bool all_ones = (code >> bits) != 0;
    const std::uint64_t threshold = static_cast<std::uint64_t>(code)
                                    << shift;
    std::uint64_t rnd[64];
    std::uint64_t *dst = row(r);
    const simd::KernelTable &kt = simd::kernels();
    const std::size_t w_end = (end_cycle + 63) / 64;
    for (std::size_t w = begin_cycle / 64; w < w_end; ++w) {
        const std::size_t hi =
            end_cycle - w * 64 < 64 ? end_cycle - w * 64 : 64;
        rng.nextWords(rnd, hi);
        std::uint64_t word;
        if (all_ones)
            word = hi == 64 ? ~0ULL : (1ULL << hi) - 1;
        else
            word = kt.thresholdPack(rnd, hi, threshold);
        dst[w] = word;
    }
}

void
StreamMatrix::fillNeutral(std::size_t r)
{
    assert(r < rows_);
    std::uint64_t *dst = row(r);
    for (std::size_t w = 0; w < wpr_; ++w)
        dst[w] = 0xAAAAAAAAAAAAAAAAULL;
    const std::size_t used = len_ % 64;
    if (used != 0)
        dst[wpr_ - 1] &= (1ULL << used) - 1;
}

Bitstream
StreamMatrix::toBitstream(std::size_t r) const
{
    Bitstream s(len_);
    const std::uint64_t *src = row(r);
    for (std::size_t w = 0; w < wpr_; ++w)
        s.setWord(w, src[w]);
    return s;
}

std::size_t
StreamMatrix::countOnes(std::size_t r) const
{
    const std::uint64_t *src = row(r);
    std::size_t ones = 0;
    for (std::size_t w = 0; w < wpr_; ++w)
        ones += static_cast<std::size_t>(std::popcount(src[w]));
    return ones;
}

double
StreamMatrix::bipolarValue(std::size_t r) const
{
    assert(len_ > 0);
    return 2.0 * static_cast<double>(countOnes(r)) /
               static_cast<double>(len_) -
           1.0;
}

} // namespace aqfpsc::sc
