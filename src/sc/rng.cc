#include "rng.h"

#include <bit>
#include <cassert>
#include <cmath>

namespace aqfpsc::sc {

std::uint64_t
RandomSource::nextBits(int bits)
{
    assert(bits >= 1 && bits <= 64);
    if (bits == 64)
        return nextWord();
    return nextWord() >> (64 - bits);
}

double
RandomSource::nextDouble()
{
    // 53 high bits -> uniform double in [0, 1).
    return static_cast<double>(nextWord() >> 11) * 0x1.0p-53;
}

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    std::uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Xoshiro256StarStar::Xoshiro256StarStar(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
    // All-zero state is invalid; splitmix64 cannot produce four zero words
    // from any seed, but guard anyway.
    if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0)
        s_[0] = 1;
}

std::uint64_t
Xoshiro256StarStar::nextWord()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

void
Xoshiro256StarStar::nextWords(std::uint64_t *dst, std::size_t n)
{
    // Same recurrence as nextWord(), with the state held in locals so
    // the compiler keeps it in registers across the whole batch.
    std::uint64_t s0 = s_[0], s1 = s_[1], s2 = s_[2], s3 = s_[3];
    for (std::size_t i = 0; i < n; ++i) {
        dst[i] = rotl(s1 * 5, 7) * 9;
        const std::uint64_t t = s1 << 17;
        s2 ^= s0;
        s3 ^= s1;
        s1 ^= s2;
        s0 ^= s3;
        s2 ^= t;
        s3 = rotl(s3, 45);
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
}

void
Xoshiro256StarStar::jump()
{
    static const std::uint64_t kJump[] = {
        0x180EC6D33CFD0ABAULL, 0xD5A61266F0C9392CULL,
        0xA9582618E03FC9AAULL, 0x39ABDC4529B1661CULL};

    std::uint64_t s0 = 0, s1 = 0, s2 = 0, s3 = 0;
    for (std::uint64_t jump : kJump) {
        for (int b = 0; b < 64; ++b) {
            if (jump & (1ULL << b)) {
                s0 ^= s_[0];
                s1 ^= s_[1];
                s2 ^= s_[2];
                s3 ^= s_[3];
            }
            nextWord();
        }
    }
    s_[0] = s0;
    s_[1] = s1;
    s_[2] = s2;
    s_[3] = s3;
}

namespace {

/**
 * Maximal-length Fibonacci LFSR tap masks for widths 3..32
 * (taps from Xilinx XAPP052; mask bit i set means stage i+1 feeds back).
 */
std::uint32_t
lfsrTaps(int width)
{
    switch (width) {
      case 3: return (1u << 2) | (1u << 1);
      case 4: return (1u << 3) | (1u << 2);
      case 5: return (1u << 4) | (1u << 2);
      case 6: return (1u << 5) | (1u << 4);
      case 7: return (1u << 6) | (1u << 5);
      case 8: return (1u << 7) | (1u << 5) | (1u << 4) | (1u << 3);
      case 9: return (1u << 8) | (1u << 4);
      case 10: return (1u << 9) | (1u << 6);
      case 11: return (1u << 10) | (1u << 8);
      case 12: return (1u << 11) | (1u << 5) | (1u << 3) | (1u << 0);
      case 13: return (1u << 12) | (1u << 3) | (1u << 2) | (1u << 0);
      case 14: return (1u << 13) | (1u << 4) | (1u << 2) | (1u << 0);
      case 15: return (1u << 14) | (1u << 13);
      case 16: return (1u << 15) | (1u << 14) | (1u << 12) | (1u << 3);
      case 17: return (1u << 16) | (1u << 13);
      case 18: return (1u << 17) | (1u << 10);
      case 19: return (1u << 18) | (1u << 5) | (1u << 1) | (1u << 0);
      case 20: return (1u << 19) | (1u << 16);
      case 21: return (1u << 20) | (1u << 18);
      case 22: return (1u << 21) | (1u << 20);
      case 23: return (1u << 22) | (1u << 17);
      case 24: return (1u << 23) | (1u << 22) | (1u << 21) | (1u << 16);
      case 25: return (1u << 24) | (1u << 21);
      case 26: return (1u << 25) | (1u << 5) | (1u << 1) | (1u << 0);
      case 27: return (1u << 26) | (1u << 4) | (1u << 1) | (1u << 0);
      case 28: return (1u << 27) | (1u << 24);
      case 29: return (1u << 28) | (1u << 26);
      case 30: return (1u << 29) | (1u << 5) | (1u << 3) | (1u << 0);
      case 31: return (1u << 30) | (1u << 27);
      case 32: return (1u << 31) | (1u << 21) | (1u << 1) | (1u << 0);
      default: assert(false && "unsupported LFSR width"); return 0;
    }
}

} // namespace

Lfsr::Lfsr(int width, std::uint32_t seed)
    : width_(width), state_(seed), tapMask_(lfsrTaps(width))
{
    assert(width >= 3 && width <= 32);
    const std::uint32_t mask =
        width == 32 ? 0xFFFFFFFFu : ((1u << width) - 1);
    state_ &= mask;
    if (state_ == 0)
        state_ = 1;
}

std::uint32_t
Lfsr::nextState()
{
    const std::uint32_t fb =
        static_cast<std::uint32_t>(std::popcount(state_ & tapMask_)) & 1u;
    const std::uint32_t mask =
        width_ == 32 ? 0xFFFFFFFFu : ((1u << width_) - 1);
    state_ = ((state_ << 1) | fb) & mask;
    if (state_ == 0)
        state_ = 1;
    return state_;
}

std::uint64_t
Lfsr::nextWord()
{
    // Compose a word from successive states; used only when an Lfsr is
    // consumed through the generic RandomSource interface.
    std::uint64_t w = 0;
    int filled = 0;
    while (filled < 64) {
        const int take = width_ < (64 - filled) ? width_ : (64 - filled);
        w |= (static_cast<std::uint64_t>(nextState()) &
              ((take == 64 ? 0 : (1ULL << take)) - 1ULL))
             << filled;
        filled += take;
    }
    return w;
}

AqfpTrueRng::AqfpTrueRng(std::uint64_t seed, double input_current,
                         double noise_current)
    : noise_(seed), inputCurrent_(input_current),
      noiseCurrent_(noise_current)
{
    assert(noise_current > 0.0);
}

double
AqfpTrueRng::probabilityOfOne() const
{
    // Standard normal CDF via erfc for numerical stability in the tails.
    const double z = inputCurrent_ / noiseCurrent_;
    return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

bool
AqfpTrueRng::nextBit()
{
    return noise_.nextDouble() < probabilityOfOne();
}

std::uint64_t
AqfpTrueRng::nextWord()
{
    if (inputCurrent_ == 0.0)
        return noise_.nextWord(); // unbiased: every bit is a fair coin
    std::uint64_t w = 0;
    for (int b = 0; b < 64; ++b) {
        if (nextBit())
            w |= 1ULL << b;
    }
    return w;
}

} // namespace aqfpsc::sc
