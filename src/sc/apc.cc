#include "apc.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

#include "simd/simd.h"

namespace aqfpsc::sc {

int
exactColumnCount(const std::vector<bool> &bits)
{
    int ones = 0;
    for (bool b : bits)
        ones += b ? 1 : 0;
    return ones;
}

int
ApproximateParallelCounter::count(const std::vector<bool> &bits) const
{
    assert(static_cast<int>(bits.size()) == m_);
    int total = 0;
    int i = 0;
    for (; i + 1 < m_; i += 2) {
        const bool a = bits[static_cast<std::size_t>(i)];
        const bool b = bits[static_cast<std::size_t>(i) + 1];
        total += 2 * (a && b ? 1 : 0) + (a || b ? 1 : 0);
    }
    if (i < m_)
        total += bits[static_cast<std::size_t>(i)] ? 1 : 0;
    return total;
}

int
ApproximateParallelCounter::gateCount() const
{
    // First layer: one AND + one OR per input pair.
    const int pairs = m_ / 2;
    int gates = 2 * pairs;
    // Exact adder tree over `pairs` two-bit operands: a w-bit adder costs
    // ~5 gates/bit (full adder); tree has pairs-1 adders of growing width.
    int operands = pairs;
    int width = 2;
    while (operands > 1) {
        const int adders = operands / 2;
        gates += adders * 5 * width;
        operands = (operands + 1) / 2;
        ++width;
    }
    return gates;
}

ColumnCounts::ColumnCounts(std::size_t len, int max_count)
    : len_(len), wordCount_((len + 63) / 64), maxCount_(max_count)
{
    assert(max_count >= 1);
    planeCount_ = std::bit_width(static_cast<unsigned>(max_count));
    planes_.assign(static_cast<std::size_t>(planeCount_) * wordCount_, 0);
}

void
ColumnCounts::add(const Bitstream &s)
{
    assert(s.size() == len_);
    assert(added_ < maxCount_);
    ++added_;
    for (std::size_t w = 0; w < wordCount_; ++w) {
        std::uint64_t carry = s.word(w);
        for (int k = 0; k < planeCount_ && carry; ++k) {
            std::uint64_t &plane = planes_[
                static_cast<std::size_t>(k) * wordCount_ + w];
            const std::uint64_t t = plane & carry;
            plane ^= carry;
            carry = t;
        }
        assert(carry == 0 && "ColumnCounts overflow");
    }
}

void
ColumnCounts::addWords(const std::uint64_t *words, std::size_t word_count)
{
    // Spans (drivePrefix) may add fewer words than the full stream.
    assert(word_count <= wordCount_);
    assert(added_ < maxCount_);
    ++added_;
    for (std::size_t w = 0; w < word_count; ++w) {
        std::uint64_t carry = words[w];
        for (int k = 0; k < planeCount_ && carry; ++k) {
            std::uint64_t &plane = planes_[
                static_cast<std::size_t>(k) * wordCount_ + w];
            const std::uint64_t t = plane & carry;
            plane ^= carry;
            carry = t;
        }
        assert(carry == 0 && "ColumnCounts overflow");
    }
}

void
ColumnCounts::addXnor(const std::uint64_t *x, const std::uint64_t *w,
                      std::size_t word_count)
{
    // Spans (drivePrefix) may add fewer words than the full stream.
    assert(word_count <= wordCount_);
    assert(added_ < maxCount_);
    ++added_;
    for (std::size_t wi = 0; wi < word_count; ++wi) {
        std::uint64_t carry = ~(x[wi] ^ w[wi]);
        for (int k = 0; k < planeCount_ && carry; ++k) {
            std::uint64_t &plane = planes_[
                static_cast<std::size_t>(k) * wordCount_ + wi];
            const std::uint64_t t = plane & carry;
            plane ^= carry;
            carry = t;
        }
        assert(carry == 0 && "ColumnCounts overflow");
    }
}

void
ColumnCounts::addXnor2(const std::uint64_t *x1, const std::uint64_t *w1,
                       const std::uint64_t *x2, const std::uint64_t *w2,
                       std::size_t word_count)
{
    // Spans (drivePrefix) may add fewer words than the full stream.
    assert(word_count <= wordCount_);
    assert(added_ + 2 <= maxCount_);
    added_ += 2;
    for (std::size_t wi = 0; wi < word_count; ++wi) {
        const std::uint64_t p1 = ~(x1[wi] ^ w1[wi]);
        const std::uint64_t p2 = ~(x2[wi] ^ w2[wi]);
        // 3:2 compress: p1 + p2 = (p1 ^ p2) + 2 * (p1 & p2).
        std::uint64_t carry = p1 ^ p2;
        for (int k = 0; k < planeCount_ && carry; ++k) {
            std::uint64_t &plane = planes_[
                static_cast<std::size_t>(k) * wordCount_ + wi];
            const std::uint64_t t = plane & carry;
            plane ^= carry;
            carry = t;
        }
        assert(carry == 0 && "ColumnCounts overflow");
        carry = p1 & p2;
        for (int k = 1; k < planeCount_ && carry; ++k) {
            std::uint64_t &plane = planes_[
                static_cast<std::size_t>(k) * wordCount_ + wi];
            const std::uint64_t t = plane & carry;
            plane ^= carry;
            carry = t;
        }
        assert(carry == 0 && "ColumnCounts overflow");
    }
}

void
ColumnCounts::addXnorMulti(ColumnCounts *const counters[],
                           const std::uint64_t *const xs[],
                           std::size_t images, const std::uint64_t *w,
                           std::size_t word_count)
{
    assert(images <= kMaxMultiImages);
    simd::PlaneSpan spans[kMaxMultiImages];
    for (std::size_t c = 0; c < images; ++c) {
        ColumnCounts &cc = *counters[c];
        assert(word_count <= cc.wordCount_);
        assert(cc.added_ < cc.maxCount_);
        ++cc.added_;
        spans[c] = simd::PlaneSpan{cc.planes_.data(), cc.wordCount_,
                                   cc.planeCount_};
    }
    simd::kernels().addXnorMulti(spans, xs, images, w, word_count);
}

void
ColumnCounts::addXnor2Multi(ColumnCounts *const counters[],
                            const std::uint64_t *const xs1[],
                            const std::uint64_t *const xs2[],
                            std::size_t images, const std::uint64_t *w1,
                            const std::uint64_t *w2, std::size_t word_count)
{
    assert(images <= kMaxMultiImages);
    simd::PlaneSpan spans[kMaxMultiImages];
    for (std::size_t c = 0; c < images; ++c) {
        ColumnCounts &cc = *counters[c];
        assert(word_count <= cc.wordCount_);
        assert(cc.added_ + 2 <= cc.maxCount_);
        cc.added_ += 2;
        spans[c] = simd::PlaneSpan{cc.planes_.data(), cc.wordCount_,
                                   cc.planeCount_};
    }
    simd::kernels().addXnor2Multi(spans, xs1, xs2, images, w1, w2,
                                  word_count);
}

void
ColumnCounts::addWordsMulti(ColumnCounts *const counters[],
                            std::size_t images, const std::uint64_t *words,
                            std::size_t word_count)
{
    assert(images <= kMaxMultiImages);
    simd::PlaneSpan spans[kMaxMultiImages];
    for (std::size_t c = 0; c < images; ++c) {
        ColumnCounts &cc = *counters[c];
        assert(word_count <= cc.wordCount_);
        assert(cc.added_ < cc.maxCount_);
        ++cc.added_;
        spans[c] = simd::PlaneSpan{cc.planes_.data(), cc.wordCount_,
                                   cc.planeCount_};
    }
    simd::kernels().addWordsMulti(spans, images, words, word_count);
}

int
ColumnCounts::count(std::size_t i) const
{
    assert(i < len_);
    const std::size_t w = i / 64;
    const std::size_t b = i % 64;
    int c = 0;
    for (int k = 0; k < planeCount_; ++k) {
        c |= static_cast<int>(
                 (planes_[static_cast<std::size_t>(k) * wordCount_ + w]
                  >> b) & 1ULL)
             << k;
    }
    return c;
}

void
ColumnCounts::extract(std::vector<int> &out) const
{
    out.assign(len_, 0);
    for (int k = 0; k < planeCount_; ++k) {
        const std::uint64_t *plane =
            &planes_[static_cast<std::size_t>(k) * wordCount_];
        for (std::size_t w = 0; w < wordCount_; ++w) {
            std::uint64_t bits = plane[w];
            while (bits) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                const std::size_t idx = w * 64 + static_cast<std::size_t>(b);
                if (idx < len_)
                    out[idx] |= 1 << k;
            }
        }
    }
}

void
ColumnCounts::clear()
{
    // Counts never exceed the number of streams added, so planes at and
    // above bit_width(added_) are still zero — re-zero only the dirty
    // prefix (the whole point of reusing one counter per output neuron).
    const std::size_t dirty =
        static_cast<std::size_t>(dirtyPlanes()) * wordCount_;
    std::fill_n(planes_.begin(), dirty, 0);
    added_ = 0;
}

} // namespace aqfpsc::sc
