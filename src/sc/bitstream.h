/**
 * @file
 * Packed stochastic bit-stream representation.
 *
 * A stochastic number is a time-independent sequence of bits whose density
 * of ones encodes a value (unipolar: x = P(X=1); bipolar: x = 2*P(X=1)-1).
 * Bit i of the stream is the value carried during clock cycle i.  Streams
 * are stored packed, 64 cycles per word, so that the cycle-parallel SC
 * operators (XNOR multiply, MUX add, majority) run word-at-a-time.
 */

#ifndef AQFPSC_SC_BITSTREAM_H
#define AQFPSC_SC_BITSTREAM_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace aqfpsc::sc {

/**
 * Fixed-length packed bit-stream.
 *
 * Invariant: any bits in the last storage word at positions >= size() are
 * zero ("tail-clean"), so popcount over words equals countOnes().
 */
class Bitstream
{
  public:
    /** Construct an empty (zero-length) stream. */
    Bitstream() = default;

    /**
     * Construct a stream of @p len cycles.
     * @param len Number of bits (clock cycles).
     * @param fill Initial value of every bit.
     */
    explicit Bitstream(std::size_t len, bool fill = false);

    /** Build a stream from an explicit bit vector (bit 0 = cycle 0). */
    static Bitstream fromBits(const std::vector<bool> &bits);

    /** Parse from a string of '0'/'1' characters (index 0 = cycle 0). */
    static Bitstream fromString(const std::string &s);

    /** Number of cycles in the stream. */
    std::size_t size() const { return len_; }

    /** True when the stream has no cycles. */
    bool empty() const { return len_ == 0; }

    /** Value of the bit at cycle @p i (no bounds check in release). */
    bool get(std::size_t i) const;

    /** Set the bit at cycle @p i to @p v. */
    void set(std::size_t i, bool v);

    /** Number of ones in the whole stream. */
    std::size_t countOnes() const;

    /** Unipolar value: ones / length, in [0, 1]. */
    double unipolarValue() const;

    /** Bipolar value: 2 * ones / length - 1, in [-1, 1]. */
    double bipolarValue() const;

    /** Number of 64-bit storage words. */
    std::size_t wordCount() const { return words_.size(); }

    /** Read-only access to storage word @p w. */
    std::uint64_t word(std::size_t w) const { return words_[w]; }

    /**
     * Set storage word @p w wholesale.  Bits beyond size() are masked off
     * to preserve the tail-clean invariant.
     */
    void setWord(std::size_t w, std::uint64_t value);

    /** Bitwise AND (unipolar multiply). Streams must be the same length. */
    Bitstream operator&(const Bitstream &o) const;

    /** Bitwise OR. Streams must be the same length. */
    Bitstream operator|(const Bitstream &o) const;

    /** Bitwise XOR. Streams must be the same length. */
    Bitstream operator^(const Bitstream &o) const;

    /** Bitwise NOT (negates a bipolar value). */
    Bitstream operator~() const;

    /** Bitwise XNOR (bipolar multiply). Streams must be the same length. */
    Bitstream xnorWith(const Bitstream &o) const;

    /** Exact bit equality (same length, same bits). */
    bool operator==(const Bitstream &o) const;

    /** Render as a '0'/'1' string, cycle 0 first. */
    std::string toString() const;

    /**
     * The constant "neutral noise" stream 0101... of value 0 in bipolar
     * encoding, used by the paper to pad even-input sorter blocks.
     * @param len Stream length.
     * @param phase When true the stream starts with 1 (1010...).
     */
    static Bitstream neutral(std::size_t len, bool phase = false);

  private:
    /** Zero any bits at positions >= len_ in the last word. */
    void cleanTail();

    std::size_t len_ = 0;
    std::vector<std::uint64_t> words_;
};

} // namespace aqfpsc::sc

#endif // AQFPSC_SC_BITSTREAM_H
