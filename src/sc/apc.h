/**
 * @file
 * Parallel counters for stochastic bit columns.
 *
 * The CMOS SC-DNN baseline (SC-DCNN, Ren et al. ASPLOS'17 -- Fig. 5 of the
 * paper) sums the per-cycle column of product bits with an (approximate)
 * parallel counter whose binary output feeds an accumulating activation
 * counter.  We provide:
 *
 *  - exactColumnCount: the exact parallel counter (full adder tree);
 *  - ApproximateParallelCounter: SC-DCNN's approximation, whose first
 *    layer replaces half of the full adders with OR/AND pairs
 *    (a + b ~ 2*(a AND b) + (a OR b)); it overcounts by one exactly when
 *    both inputs of a pair are 1 and is otherwise exact, and costs ~half
 *    the first-layer adder hardware;
 *  - ColumnCounts: bit-sliced "vertical counter" that computes, for M
 *    packed streams, the per-cycle column popcounts in O(M * N / 64 * logM)
 *    word operations.  This is the workhorse of the fast functional block
 *    models.
 */

#ifndef AQFPSC_SC_APC_H
#define AQFPSC_SC_APC_H

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

#include "bitstream.h"

namespace aqfpsc::sc {

/** Exact number of ones among the given bits (reference parallel counter). */
int exactColumnCount(const std::vector<bool> &bits);

/**
 * SC-DCNN-style approximate parallel counter.
 *
 * Inputs are paired; each pair (a, b) is encoded as carry = a AND b
 * (weight 2) and sum = a OR b (weight 1), then carries and sums are summed
 * exactly.  For a pair with a = b = 1 the encoding reads 2*1 + 1 = 3
 * instead of 2, so the counter overcounts by the number of (1,1) pairs.
 */
class ApproximateParallelCounter
{
  public:
    /** @param m Number of counter inputs (>= 1). */
    explicit ApproximateParallelCounter(int m) : m_(m) {}

    /** Approximate count of ones in @p bits (size must be m). */
    int count(const std::vector<bool> &bits) const;

    /**
     * Equivalent two's-complement gate count of the CMOS implementation,
     * used by the CMOS cost model: first layer m/2 AND+OR pairs, then an
     * exact adder tree over m/2 two-bit operands.
     */
    int gateCount() const;

  private:
    int m_;
};

/**
 * Per-cycle column popcounts over a set of packed streams.
 *
 * Streams are added one at a time into a carry-save "vertical counter":
 * plane k holds bit k of every cycle's running count.  Adding a stream
 * word into P planes costs at most P AND/XOR pairs, so accumulating M
 * streams of N cycles costs O(M * N/64 * log2 M) word ops instead of the
 * naive O(M * N) single-bit ops.
 *
 * Two usage styles:
 *
 *  - Reference path: addWords() every (pre-XNORed) product, then
 *    extract() the per-cycle counts into a std::vector<int>.  This is
 *    the golden implementation the fused kernels are tested against.
 *  - Fused path: addXnor() folds the bipolar XNOR multiply directly into
 *    the carry-save add (no product buffer), and drive()/forEachCount()
 *    walk the planes word-by-word to feed a bit-serial step function
 *    without materializing the count array.  clear() is lazy: it only
 *    re-zeros the planes dirtied since the last clear (tracked through
 *    the stream count high-water mark), so per-neuron reuse in the
 *    inference hot loop costs O(planes actually used).
 */
class ColumnCounts
{
  public:
    /**
     * @param len Stream length (cycles).
     * @param max_count Largest count that will be accumulated (sets the
     *        number of planes); adding more streams than this is an error.
     */
    ColumnCounts(std::size_t len, int max_count);

    /** Add a stream's bits into the per-cycle counters. */
    void add(const Bitstream &s);

    /** Add a raw packed word array of the same word count. */
    void addWords(const std::uint64_t *words, std::size_t word_count);

    /**
     * Fused bipolar multiply-accumulate: add the XNOR of rows @p x and
     * @p w without materializing the product.  Bit-identical to
     * xnor-into-a-buffer followed by addWords(buffer), including the
     * all-ones tail bits XNOR produces beyond the stream length (they
     * stay confined to the planes and are never read back).
     */
    void addXnor(const std::uint64_t *x, const std::uint64_t *w,
                 std::size_t word_count);

    /**
     * Add two XNOR products in one pass with a 3:2 carry-save
     * compression: the pair enters the planes as (sum, carry) at
     * weights 1 and 2, so two streams cost roughly one ripple instead
     * of two.  The planes hold the exact per-cycle binary count, which
     * is independent of addition grouping — the result is bit-identical
     * to two addXnor() calls.
     */
    void addXnor2(const std::uint64_t *x1, const std::uint64_t *w1,
                  const std::uint64_t *x2, const std::uint64_t *w2,
                  std::size_t word_count);

    /** Hard cap on the cohort width of the *Multi entry points (core's
     *  kMaxCohortImages must not exceed this). */
    static constexpr std::size_t kMaxMultiImages = 64;

    /**
     * Cohort (multi-scratch) form of addXnor(): fold ONE shared weight
     * row into @p images distinct counters, each against its own input
     * row.  The walk is word-major with the weight word (or, in the
     * dispatched SIMD kernels, a 4/8-word weight lane group) held in a
     * register across the whole cohort, so one pass over a weight block
     * feeds every image's carry-save planes — this is the entry point
     * stage-major cohort execution uses to amortize weight-plane
     * traversal across images.  All *Multi entry points route through
     * the sc::simd kernel table (see src/sc/simd/simd.h); the planes
     * hold exact binary counts, so every variant is bit-identical:
     * per counter the result equals counters[c]->addXnor(xs[c], w,
     * word_count) exactly.  All counters must share length and plane
     * geometry; images must be <= kMaxMultiImages.
     */
    static void addXnorMulti(ColumnCounts *const counters[],
                             const std::uint64_t *const xs[],
                             std::size_t images, const std::uint64_t *w,
                             std::size_t word_count);

    /**
     * Cohort form of addXnor2(): two shared weight rows against each
     * image's pair of input rows, 3:2-compressed per image.  Per counter
     * bit-identical to addXnor2(xs1[c], w1, xs2[c], w2, word_count).
     */
    static void addXnor2Multi(ColumnCounts *const counters[],
                              const std::uint64_t *const xs1[],
                              const std::uint64_t *const xs2[],
                              std::size_t images, const std::uint64_t *w1,
                              const std::uint64_t *w2,
                              std::size_t word_count);

    /**
     * Cohort form of addWords(): add one shared packed row (bias,
     * neutral pad, pooling window) into every counter.  Per counter
     * bit-identical to addWords(words, word_count).
     */
    static void addWordsMulti(ColumnCounts *const counters[],
                              std::size_t images,
                              const std::uint64_t *words,
                              std::size_t word_count);

    /** Extract the count at cycle @p i. */
    int count(std::size_t i) const;

    /** Extract all per-cycle counts into @p out (resized to len). */
    void extract(std::vector<int> &out) const;

    /**
     * Visit the per-cycle counts in cycle order without materializing
     * them: fn(cycle_index, count).  Counts are rebuilt one 64-cycle
     * block at a time in a stack-resident column array (the sparse
     * set-bit walk of extract(), minus the len-sized heap vector).
     */
    template <typename Fn>
    void
    forEachCount(Fn &&fn) const
    {
        for (std::size_t w = 0; w < wordCount_; ++w) {
            const std::size_t base = w * 64;
            const std::size_t hi = len_ - base < 64 ? len_ - base : 64;
            std::uint32_t col[64];
            blockCounts(w, col);
            for (std::size_t b = 0; b < hi; ++b)
                fn(base + b, static_cast<int>(col[b]));
        }
    }

    /**
     * Fused count-extract + bit-serial drive: call
     * @p step (count) for every cycle in order and pack the returned
     * bits into @p dst (wordCount() words; tail bits are zeroed).  This
     * is the inference hot path: one cache-hot pass over the planes, no
     * std::vector<int> column array, full-word output stores.
     */
    template <typename Step>
    void
    drive(Step &&step, std::uint64_t *dst) const
    {
        drivePrefix(len_, static_cast<Step &&>(step), dst);
    }

    /**
     * Incremental drive entry point of the fused kernel: drive() limited
     * to the first @p cycles cycles (first ceil(cycles/64) words of the
     * planes and of @p dst; tail bits of the last written word are
     * zeroed).  This is what checkpointable stage execution runs: a
     * stage accumulates one 64-cycle-aligned block of streams at plane
     * offset 0 and drives exactly that block, resuming the step
     * function's state across blocks.  drivePrefix(length(), ...) is
     * drive() exactly.
     */
    template <typename Step>
    void
    drivePrefix(std::size_t cycles, Step &&step, std::uint64_t *dst) const
    {
        assert(cycles <= len_);
        const std::size_t words = (cycles + 63) / 64;
        for (std::size_t w = 0; w < words; ++w) {
            const std::size_t base = w * 64;
            const std::size_t hi = cycles - base < 64 ? cycles - base : 64;
            std::uint32_t col[64];
            blockCounts(w, col);
            std::uint64_t outw = 0;
            for (std::size_t b = 0; b < hi; ++b) {
                if (step(static_cast<int>(col[b])))
                    outw |= 1ULL << b;
            }
            dst[w] = outw;
        }
    }

    /**
     * drive() with the SC-DCNN OR-pair overcount folded in: the cycle
     * count becomes min(count + over.count, @p cap) before @p step sees
     * it, matching the reference extract() + addOvercount() sequence
     * bit-for-bit.  @p over must have the same length.
     */
    template <typename Step>
    void
    driveWithOvercount(const ColumnCounts &over, int cap, Step &&step,
                       std::uint64_t *dst) const
    {
        driveWithOvercountPrefix(over, cap, len_, static_cast<Step &&>(step),
                                 dst);
    }

    /** driveWithOvercount() limited to the first @p cycles cycles (see
     *  drivePrefix()). */
    template <typename Step>
    void
    driveWithOvercountPrefix(const ColumnCounts &over, int cap,
                             std::size_t cycles, Step &&step,
                             std::uint64_t *dst) const
    {
        assert(over.len_ == len_ && over.wordCount_ == wordCount_);
        assert(cycles <= len_);
        const std::size_t words = (cycles + 63) / 64;
        for (std::size_t w = 0; w < words; ++w) {
            const std::size_t base = w * 64;
            const std::size_t hi = cycles - base < 64 ? cycles - base : 64;
            std::uint32_t col[64];
            std::uint32_t ocol[64];
            blockCounts(w, col);
            over.blockCounts(w, ocol);
            std::uint64_t outw = 0;
            for (std::size_t b = 0; b < hi; ++b) {
                int c = static_cast<int>(col[b] + ocol[b]);
                if (c > cap)
                    c = cap;
                if (step(c))
                    outw |= 1ULL << b;
            }
            dst[w] = outw;
        }
    }

    /** Number of streams added so far. */
    int added() const { return added_; }

    /** Packed words per plane ((len + 63) / 64). */
    std::size_t wordCount() const { return wordCount_; }

    /** Stream length in cycles. */
    std::size_t length() const { return len_; }

    /**
     * Reset all counters to zero.  Lazy: only the planes that the
     * streams added since the last clear can have dirtied are re-zeroed.
     */
    void clear();

  private:
    /** Planes the currently-added streams can have written. */
    int
    dirtyPlanes() const
    {
        return std::bit_width(static_cast<unsigned>(added_));
    }

    /** 8x8 bit-matrix transpose (Hacker's Delight 7-3), rows = bytes. */
    static std::uint64_t
    transpose8x8(std::uint64_t x)
    {
        std::uint64_t t;
        t = (x ^ (x >> 7)) & 0x00AA00AA00AA00AAULL;
        x = x ^ t ^ (t << 7);
        t = (x ^ (x >> 14)) & 0x0000CCCC0000CCCCULL;
        x = x ^ t ^ (t << 14);
        t = (x ^ (x >> 28)) & 0x00000000F0F0F0F0ULL;
        x = x ^ t ^ (t << 28);
        return x;
    }

    /**
     * Rebuild the counts of 64-cycle block @p w into @p col (64
     * entries; tail entries beyond the stream length are garbage).
     *
     * Up to 8 dirty planes (counts < 256, i.e. every conv window and
     * pooling stage) the planes are transposed 8 bytes at a time with
     * the branch-free 8x8 bit transpose — constant cost per cycle.
     * Beyond that, each extra plane is scattered through its set bits
     * (high planes are sparse, so the walk stays cheap).
     */
    void
    blockCounts(std::size_t w, std::uint32_t *col) const
    {
        const int planes = dirtyPlanes();
        const int low = planes < 8 ? planes : 8;
        std::uint64_t pw[8];
        for (int k = 0; k < low; ++k)
            pw[k] = planes_[static_cast<std::size_t>(k) * wordCount_ + w];
        for (int g = 0; g < 8; ++g) {
            std::uint64_t x = 0;
            for (int k = 0; k < low; ++k)
                x |= ((pw[k] >> (8 * g)) & 0xFFULL) << (8 * k);
            x = transpose8x8(x);
            for (int i = 0; i < 8; ++i)
                col[8 * g + i] =
                    static_cast<std::uint32_t>((x >> (8 * i)) & 0xFFULL);
        }
        for (int k = 8; k < planes; ++k) {
            std::uint64_t bits =
                planes_[static_cast<std::size_t>(k) * wordCount_ + w];
            while (bits) {
                const int b = std::countr_zero(bits);
                bits &= bits - 1;
                col[b] |= 1u << k;
            }
        }
    }

    std::size_t len_;
    std::size_t wordCount_;
    int planeCount_;
    int maxCount_;
    int added_ = 0;
    /** planes_[k * wordCount_ + w] = bit k of counts in word w. */
    std::vector<std::uint64_t> planes_;
};

} // namespace aqfpsc::sc

#endif // AQFPSC_SC_APC_H
