/**
 * @file
 * Parallel counters for stochastic bit columns.
 *
 * The CMOS SC-DNN baseline (SC-DCNN, Ren et al. ASPLOS'17 -- Fig. 5 of the
 * paper) sums the per-cycle column of product bits with an (approximate)
 * parallel counter whose binary output feeds an accumulating activation
 * counter.  We provide:
 *
 *  - exactColumnCount: the exact parallel counter (full adder tree);
 *  - ApproximateParallelCounter: SC-DCNN's approximation, whose first
 *    layer replaces half of the full adders with OR/AND pairs
 *    (a + b ~ 2*(a AND b) + (a OR b)); it overcounts by one exactly when
 *    both inputs of a pair are 1 and is otherwise exact, and costs ~half
 *    the first-layer adder hardware;
 *  - ColumnCounts: bit-sliced "vertical counter" that computes, for M
 *    packed streams, the per-cycle column popcounts in O(M * N / 64 * logM)
 *    word operations.  This is the workhorse of the fast functional block
 *    models.
 */

#ifndef AQFPSC_SC_APC_H
#define AQFPSC_SC_APC_H

#include <cstdint>
#include <vector>

#include "bitstream.h"

namespace aqfpsc::sc {

/** Exact number of ones among the given bits (reference parallel counter). */
int exactColumnCount(const std::vector<bool> &bits);

/**
 * SC-DCNN-style approximate parallel counter.
 *
 * Inputs are paired; each pair (a, b) is encoded as carry = a AND b
 * (weight 2) and sum = a OR b (weight 1), then carries and sums are summed
 * exactly.  For a pair with a = b = 1 the encoding reads 2*1 + 1 = 3
 * instead of 2, so the counter overcounts by the number of (1,1) pairs.
 */
class ApproximateParallelCounter
{
  public:
    /** @param m Number of counter inputs (>= 1). */
    explicit ApproximateParallelCounter(int m) : m_(m) {}

    /** Approximate count of ones in @p bits (size must be m). */
    int count(const std::vector<bool> &bits) const;

    /**
     * Equivalent two's-complement gate count of the CMOS implementation,
     * used by the CMOS cost model: first layer m/2 AND+OR pairs, then an
     * exact adder tree over m/2 two-bit operands.
     */
    int gateCount() const;

  private:
    int m_;
};

/**
 * Per-cycle column popcounts over a set of packed streams.
 *
 * Streams are added one at a time into a carry-save "vertical counter":
 * plane k holds bit k of every cycle's running count.  Adding a stream
 * word into P planes costs at most P AND/XOR pairs, so accumulating M
 * streams of N cycles costs O(M * N/64 * log2 M) word ops instead of the
 * naive O(M * N) single-bit ops.
 */
class ColumnCounts
{
  public:
    /**
     * @param len Stream length (cycles).
     * @param max_count Largest count that will be accumulated (sets the
     *        number of planes); adding more streams than this is an error.
     */
    ColumnCounts(std::size_t len, int max_count);

    /** Add a stream's bits into the per-cycle counters. */
    void add(const Bitstream &s);

    /** Add a raw packed word array of the same word count. */
    void addWords(const std::uint64_t *words, std::size_t word_count);

    /** Extract the count at cycle @p i. */
    int count(std::size_t i) const;

    /** Extract all per-cycle counts into @p out (resized to len). */
    void extract(std::vector<int> &out) const;

    /** Number of streams added so far. */
    int added() const { return added_; }

    /** Reset all counters to zero. */
    void clear();

  private:
    std::size_t len_;
    std::size_t wordCount_;
    int planeCount_;
    int maxCount_;
    int added_ = 0;
    /** planes_[k * wordCount_ + w] = bit k of counts in word w. */
    std::vector<std::uint64_t> planes_;
};

} // namespace aqfpsc::sc

#endif // AQFPSC_SC_APC_H
