#include "ops.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aqfpsc::sc {

Bitstream
multiplyUnipolar(const Bitstream &a, const Bitstream &b)
{
    return a & b;
}

Bitstream
multiplyBipolar(const Bitstream &a, const Bitstream &b)
{
    return a.xnorWith(b);
}

Bitstream
scaledAdd(const std::vector<Bitstream> &inputs, RandomSource &rng)
{
    assert(!inputs.empty());
    const std::size_t len = inputs[0].size();
    for ([[maybe_unused]] const auto &in : inputs)
        assert(in.size() == len);

    Bitstream out(len);
    const std::size_t n = inputs.size();
    for (std::size_t i = 0; i < len; ++i) {
        // Uniform select among n inputs via rejection-free modulo of a
        // 64-bit draw; the bias for n << 2^64 is negligible.
        const std::size_t sel = static_cast<std::size_t>(
            rng.nextWord() % static_cast<std::uint64_t>(n));
        out.set(i, inputs[sel].get(i));
    }
    return out;
}

Bitstream
majority3(const Bitstream &a, const Bitstream &b, const Bitstream &c)
{
    assert(a.size() == b.size() && b.size() == c.size());
    Bitstream r(a.size());
    for (std::size_t w = 0; w < r.wordCount(); ++w) {
        const std::uint64_t x = a.word(w), y = b.word(w), z = c.word(w);
        r.setWord(w, (x & y) | (x & z) | (y & z));
    }
    return r;
}

double
streamCorrelation(const Bitstream &a, const Bitstream &b)
{
    assert(a.size() == b.size() && a.size() > 0);
    const double n = static_cast<double>(a.size());
    const double pa = a.unipolarValue();
    const double pb = b.unipolarValue();
    const double pab = static_cast<double>((a & b).countOnes()) / n;
    const double delta = pab - pa * pb;

    if (delta == 0.0)
        return 0.0;
    double denom;
    if (delta > 0.0)
        denom = std::min(pa, pb) - pa * pb;
    else
        denom = pa * pb - std::max(pa + pb - 1.0, 0.0);
    if (denom <= 0.0)
        return 0.0;
    return delta / denom;
}

} // namespace aqfpsc::sc
