/**
 * @file
 * True-RNG sharing matrix (Fig. 8 of the paper).
 *
 * An N x N array of 1-bit AQFP true RNGs produces, every clock cycle,
 * 4N N-bit random numbers: one per row, one per column, one per (wrapping)
 * diagonal and one per (wrapping) anti-diagonal.  Each unit RNG is thereby
 * shared by exactly four numbers, and any two of the 4N numbers share at
 * most one unit RNG -- hence at most one bit in common -- which keeps the
 * cross-correlation of the generated numbers negligible while cutting the
 * RNG hardware by 4x.
 */

#ifndef AQFPSC_SC_RNG_MATRIX_H
#define AQFPSC_SC_RNG_MATRIX_H

#include <cstdint>
#include <vector>

#include "rng.h"

namespace aqfpsc::sc {

/**
 * N x N matrix of independent 1-bit true RNG cells with four-way output
 * sharing.  N is limited to 64 so an N-bit number fits one word; the SNG
 * bank composes several matrices when more numbers are needed.
 */
class RngMatrix
{
  public:
    /**
     * @param n Matrix dimension (2..64).
     * @param seed Seed for the unit RNG noise processes.
     */
    RngMatrix(int n, std::uint64_t seed);

    /** Matrix dimension N. */
    int n() const { return n_; }

    /** Number of N-bit random numbers produced per cycle (4N). */
    int numOutputs() const { return 4 * n_; }

    /** Advance all N*N unit RNGs by one clock cycle. */
    void step();

    /** Raw bit of unit RNG (row, col) for the current cycle. */
    bool bit(int row, int col) const;

    /**
     * Output number @p idx for the current cycle, an N-bit value.
     * Outputs 0..N-1 are rows, N..2N-1 columns, 2N..3N-1 diagonals
     * (row r, col (r+k) mod N), 3N..4N-1 anti-diagonals
     * (row r, col (k-r) mod N).
     */
    std::uint64_t output(int idx) const;

    /**
     * Indices of the unit RNGs feeding output @p idx, as row*N+col, in bit
     * order (bit b of the output comes from unit unitsOf(idx)[b]).
     * Used by tests to verify the <=1 shared-unit property.
     */
    std::vector<int> unitsOf(int idx) const;

    /** Total JJ cost: 2 JJs per unit RNG. */
    int jjCount() const { return 2 * n_ * n_; }

  private:
    int n_;
    std::vector<AqfpTrueRng> units_; ///< row-major N*N unit RNGs
    std::vector<std::uint64_t> rowBits_; ///< current cycle, packed per row
};

} // namespace aqfpsc::sc

#endif // AQFPSC_SC_RNG_MATRIX_H
