/**
 * @file
 * Stochastic number generation (binary -> stochastic conversion).
 *
 * An SNG compares an n-bit binary code against a fresh n-bit uniform random
 * number every clock cycle; the comparison bit forms the stochastic stream.
 * With code B in [0, 2^n], P(bit = 1) = B / 2^n.
 *
 * Bipolar values x in [-1, 1] are first mapped to P(1) = (x + 1) / 2
 * (Sec. 2.2 of the paper), then quantized to the code grid.
 *
 * Two generation back-ends are provided:
 *  - SngBank::Mode::SharedMatrix -- faithful model of the paper's RNG
 *    matrix (Fig. 8): unit true RNGs shared four ways, used for hardware
 *    accounting and the sharing ablation;
 *  - SngBank::Mode::IndependentRng -- statistically equivalent fast path
 *    drawing from independent PRNG substreams, used for bulk stream
 *    generation in whole-network experiments.
 */

#ifndef AQFPSC_SC_SNG_H
#define AQFPSC_SC_SNG_H

#include <cstdint>
#include <vector>

#include "bitstream.h"
#include "rng.h"
#include "rng_matrix.h"

namespace aqfpsc::sc {

/**
 * Quantize a unipolar value x in [0, 1] to an SNG code in [0, 2^bits].
 * The inclusive upper code lets 1.0 be represented exactly.
 */
std::uint32_t quantizeUnipolar(double x, int bits);

/** Quantize a bipolar value x in [-1, 1] to an SNG code in [0, 2^bits]. */
std::uint32_t quantizeBipolar(double x, int bits);

/** The unipolar value a code represents: code / 2^bits. */
double codeToUnipolar(std::uint32_t code, int bits);

/** The bipolar value a code represents: 2 * code / 2^bits - 1. */
double codeToBipolar(std::uint32_t code, int bits);

/**
 * Generate one stream of @p len cycles for @p code using random numbers
 * drawn from @p rng (bit = random < code).
 */
Bitstream generateStream(std::uint32_t code, int bits, std::size_t len,
                         RandomSource &rng);

/** Convenience: encode a unipolar value directly. */
Bitstream encodeUnipolar(double x, int bits, std::size_t len,
                         RandomSource &rng);

/** Convenience: encode a bipolar value directly. */
Bitstream encodeBipolar(double x, int bits, std::size_t len,
                        RandomSource &rng);

/**
 * A bank of SNGs that converts many binary codes to streams at once,
 * modelling how a layer's weights are converted in parallel on chip.
 */
class SngBank
{
  public:
    /** Random-number supply strategy. */
    enum class Mode
    {
        SharedMatrix,   ///< paper's 4-way shared true-RNG matrix (Fig. 8)
        IndependentRng, ///< independent PRNG per stream (fast path)
    };

    /**
     * @param rng_bits Width of the binary codes / random numbers (3..20).
     * @param mode Random-number supply strategy.
     * @param seed Seed for all randomness in this bank.
     */
    SngBank(int rng_bits, Mode mode, std::uint64_t seed);

    /** Code width in bits. */
    int rngBits() const { return rngBits_; }

    /** Generate one stream per code, all of length @p len. */
    std::vector<Bitstream> generate(const std::vector<std::uint32_t> &codes,
                                    std::size_t len);

    /** Generate one stream per bipolar value, all of length @p len. */
    std::vector<Bitstream>
    generateBipolar(const std::vector<double> &values, std::size_t len);

    /**
     * Matrix dimension used in SharedMatrix mode.  Rounded up to the next
     * odd integer >= rng_bits so that any two matrix outputs share at most
     * one unit RNG (lines of distinct slope on an odd torus intersect in
     * exactly gcd(slope difference, N) = 1 point).
     */
    int matrixDim() const { return matrixDim_; }

    /** Number of RNG matrices instantiated so far (SharedMatrix mode). */
    int matricesUsed() const { return static_cast<int>(matrices_.size()); }

  private:
    int rngBits_;
    Mode mode_;
    std::uint64_t seed_;
    int matrixDim_;
    std::vector<RngMatrix> matrices_;
    Xoshiro256StarStar fastRng_;
};

} // namespace aqfpsc::sc

#endif // AQFPSC_SC_SNG_H
