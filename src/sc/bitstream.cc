#include "bitstream.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace aqfpsc::sc {

namespace {

std::size_t
wordsFor(std::size_t len)
{
    return (len + 63) / 64;
}

} // namespace

Bitstream::Bitstream(std::size_t len, bool fill)
    : len_(len), words_(wordsFor(len), fill ? ~0ULL : 0ULL)
{
    cleanTail();
}

Bitstream
Bitstream::fromBits(const std::vector<bool> &bits)
{
    Bitstream s(bits.size());
    for (std::size_t i = 0; i < bits.size(); ++i) {
        if (bits[i])
            s.set(i, true);
    }
    return s;
}

Bitstream
Bitstream::fromString(const std::string &str)
{
    Bitstream s(str.size());
    for (std::size_t i = 0; i < str.size(); ++i) {
        if (str[i] == '1') {
            s.set(i, true);
        } else if (str[i] != '0') {
            throw std::invalid_argument(
                "Bitstream::fromString: expected only '0'/'1'");
        }
    }
    return s;
}

bool
Bitstream::get(std::size_t i) const
{
    assert(i < len_);
    return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void
Bitstream::set(std::size_t i, bool v)
{
    assert(i < len_);
    const std::uint64_t mask = 1ULL << (i % 64);
    if (v)
        words_[i / 64] |= mask;
    else
        words_[i / 64] &= ~mask;
}

std::size_t
Bitstream::countOnes() const
{
    std::size_t ones = 0;
    for (std::uint64_t w : words_)
        ones += static_cast<std::size_t>(std::popcount(w));
    return ones;
}

double
Bitstream::unipolarValue() const
{
    assert(len_ > 0);
    return static_cast<double>(countOnes()) / static_cast<double>(len_);
}

double
Bitstream::bipolarValue() const
{
    return 2.0 * unipolarValue() - 1.0;
}

void
Bitstream::setWord(std::size_t w, std::uint64_t value)
{
    assert(w < words_.size());
    words_[w] = value;
    if (w == words_.size() - 1)
        cleanTail();
}

Bitstream
Bitstream::operator&(const Bitstream &o) const
{
    assert(len_ == o.len_);
    Bitstream r(len_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        r.words_[w] = words_[w] & o.words_[w];
    return r;
}

Bitstream
Bitstream::operator|(const Bitstream &o) const
{
    assert(len_ == o.len_);
    Bitstream r(len_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        r.words_[w] = words_[w] | o.words_[w];
    return r;
}

Bitstream
Bitstream::operator^(const Bitstream &o) const
{
    assert(len_ == o.len_);
    Bitstream r(len_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        r.words_[w] = words_[w] ^ o.words_[w];
    return r;
}

Bitstream
Bitstream::operator~() const
{
    Bitstream r(len_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        r.words_[w] = ~words_[w];
    r.cleanTail();
    return r;
}

Bitstream
Bitstream::xnorWith(const Bitstream &o) const
{
    assert(len_ == o.len_);
    Bitstream r(len_);
    for (std::size_t w = 0; w < words_.size(); ++w)
        r.words_[w] = ~(words_[w] ^ o.words_[w]);
    r.cleanTail();
    return r;
}

bool
Bitstream::operator==(const Bitstream &o) const
{
    return len_ == o.len_ && words_ == o.words_;
}

std::string
Bitstream::toString() const
{
    std::string s;
    s.reserve(len_);
    for (std::size_t i = 0; i < len_; ++i)
        s.push_back(get(i) ? '1' : '0');
    return s;
}

Bitstream
Bitstream::neutral(std::size_t len, bool phase)
{
    // 0xAAAA... has ones at odd bit positions; 0x5555... at even ones.
    const std::uint64_t pattern =
        phase ? 0x5555555555555555ULL : 0xAAAAAAAAAAAAAAAAULL;
    Bitstream s(len);
    for (std::size_t w = 0; w < s.words_.size(); ++w)
        s.words_[w] = pattern;
    s.cleanTail();
    return s;
}

void
Bitstream::cleanTail()
{
    if (words_.empty())
        return;
    const std::size_t used = len_ % 64;
    if (used != 0)
        words_.back() &= (1ULL << used) - 1;
}

} // namespace aqfpsc::sc
