#include "sng.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace aqfpsc::sc {

std::uint32_t
quantizeUnipolar(double x, int bits)
{
    assert(bits >= 1 && bits <= 20);
    const double clipped = std::clamp(x, 0.0, 1.0);
    const double scale = static_cast<double>(1u << bits);
    return static_cast<std::uint32_t>(std::lround(clipped * scale));
}

std::uint32_t
quantizeBipolar(double x, int bits)
{
    return quantizeUnipolar((std::clamp(x, -1.0, 1.0) + 1.0) / 2.0, bits);
}

double
codeToUnipolar(std::uint32_t code, int bits)
{
    return static_cast<double>(code) / static_cast<double>(1u << bits);
}

double
codeToBipolar(std::uint32_t code, int bits)
{
    return 2.0 * codeToUnipolar(code, bits) - 1.0;
}

Bitstream
generateStream(std::uint32_t code, int bits, std::size_t len,
               RandomSource &rng)
{
    assert(code <= (1u << bits));
    Bitstream s(len);
    for (std::size_t w = 0; w < s.wordCount(); ++w) {
        std::uint64_t word = 0;
        const std::size_t hi = std::min<std::size_t>(64, len - w * 64);
        for (std::size_t b = 0; b < hi; ++b) {
            if (rng.nextBits(bits) < code)
                word |= 1ULL << b;
        }
        s.setWord(w, word);
    }
    return s;
}

Bitstream
encodeUnipolar(double x, int bits, std::size_t len, RandomSource &rng)
{
    return generateStream(quantizeUnipolar(x, bits), bits, len, rng);
}

Bitstream
encodeBipolar(double x, int bits, std::size_t len, RandomSource &rng)
{
    return generateStream(quantizeBipolar(x, bits), bits, len, rng);
}

SngBank::SngBank(int rng_bits, Mode mode, std::uint64_t seed)
    : rngBits_(rng_bits), mode_(mode), seed_(seed),
      matrixDim_((rng_bits % 2 == 0) ? rng_bits + 1 : rng_bits),
      fastRng_(seed)
{
    assert(rng_bits >= 3 && rng_bits <= 20);
}

std::vector<Bitstream>
SngBank::generate(const std::vector<std::uint32_t> &codes, std::size_t len)
{
    std::vector<Bitstream> streams;
    streams.reserve(codes.size());

    if (mode_ == Mode::IndependentRng) {
        for (std::uint32_t code : codes)
            streams.push_back(generateStream(code, rngBits_, len, fastRng_));
        return streams;
    }

    // SharedMatrix mode: assign each code an output slot of an RNG matrix
    // (4 * matrixDim_ slots per matrix), then march all matrices through
    // len cycles, comparing each cycle's random number against the code.
    const int slots_per_matrix = 4 * matrixDim_;
    const int needed = static_cast<int>(
        (codes.size() + slots_per_matrix - 1) / slots_per_matrix);
    while (matricesUsed() < needed) {
        matrices_.emplace_back(
            matrixDim_,
            seed_ + 0xA5A5ULL * static_cast<std::uint64_t>(matricesUsed()));
    }

    for (std::size_t i = 0; i < codes.size(); ++i)
        streams.emplace_back(len);

    const std::uint64_t bit_mask = (1ULL << rngBits_) - 1ULL;
    for (std::size_t cycle = 0; cycle < len; ++cycle) {
        for (std::size_t i = 0; i < codes.size(); ++i) {
            const int m = static_cast<int>(i) / slots_per_matrix;
            const int slot = static_cast<int>(i) % slots_per_matrix;
            const std::uint64_t r =
                matrices_[static_cast<std::size_t>(m)].output(slot) &
                bit_mask;
            if (r < codes[i])
                streams[i].set(cycle, true);
        }
        for (auto &matrix : matrices_)
            matrix.step();
    }
    return streams;
}

std::vector<Bitstream>
SngBank::generateBipolar(const std::vector<double> &values, std::size_t len)
{
    std::vector<std::uint32_t> codes;
    codes.reserve(values.size());
    for (double v : values)
        codes.push_back(quantizeBipolar(v, rngBits_));
    return generate(codes, len);
}

} // namespace aqfpsc::sc
