/**
 * @file
 * Synthetic MNIST-surrogate digit dataset.
 *
 * Substitution note (DESIGN.md Sec. 3): the offline build environment has
 * no access to the MNIST files, so the paper's application-level
 * experiments run on a procedurally generated 10-class digit task that
 * exercises the identical code path: 28x28 grayscale glyphs with random
 * affine jitter (shift, scale, rotation) and additive pixel noise,
 * rendered from hand-authored digit masks.  Labels are balanced and the
 * generator is fully deterministic given a seed.
 */

#ifndef AQFPSC_DATA_DIGITS_H
#define AQFPSC_DATA_DIGITS_H

#include <cstdint>
#include <vector>

#include "nn/network.h"

namespace aqfpsc::data {

/** Distortion parameters of the generator. */
struct DigitGenConfig
{
    double maxShift = 2.5;     ///< pixels of random translation
    double maxRotateDeg = 12.0; ///< degrees of random rotation
    double minScale = 0.85;    ///< uniform scale range
    double maxScale = 1.15;
    double noiseStd = 0.08;    ///< additive Gaussian pixel noise
};

/**
 * Generate @p count labelled 28x28 samples (CHW tensor, single channel,
 * values in [-1, 1]) with balanced classes.
 */
std::vector<nn::Sample> generateDigits(int count, std::uint64_t seed,
                                       const DigitGenConfig &cfg = {});

/** Image side length produced by the generator. */
constexpr int kDigitImageSize = 28;

} // namespace aqfpsc::data

#endif // AQFPSC_DATA_DIGITS_H
