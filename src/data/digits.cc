#include "digits.h"

#include <array>
#include <cassert>
#include <cmath>
#include <random>
#include <string_view>

namespace aqfpsc::data {

namespace {

/** Hand-authored 8-column x 12-row digit masks ('#' = ink). */
constexpr std::array<std::array<std::string_view, 12>, 10> kGlyphs = {{
    // 0
    {{"..####..",
      ".##..##.",
      "##....##",
      "##....##",
      "##....##",
      "##....##",
      "##....##",
      "##....##",
      "##....##",
      "##....##",
      ".##..##.",
      "..####.."}},
    // 1
    {{"...##...",
      "..###...",
      ".####...",
      "...##...",
      "...##...",
      "...##...",
      "...##...",
      "...##...",
      "...##...",
      "...##...",
      "...##...",
      ".######."}},
    // 2
    {{"..####..",
      ".##..##.",
      "##....##",
      "......##",
      ".....##.",
      "....##..",
      "...##...",
      "..##....",
      ".##.....",
      "##......",
      "##......",
      "########"}},
    // 3
    {{"..####..",
      ".##..##.",
      "......##",
      "......##",
      ".....##.",
      "...###..",
      ".....##.",
      "......##",
      "......##",
      "......##",
      ".##..##.",
      "..####.."}},
    // 4
    {{".....##.",
      "....###.",
      "...####.",
      "..##.##.",
      ".##..##.",
      "##...##.",
      "##...##.",
      "########",
      ".....##.",
      ".....##.",
      ".....##.",
      ".....##."}},
    // 5
    {{"########",
      "##......",
      "##......",
      "##......",
      "######..",
      "##...##.",
      "......##",
      "......##",
      "......##",
      "##....##",
      ".##..##.",
      "..####.."}},
    // 6
    {{"..####..",
      ".##..##.",
      "##......",
      "##......",
      "##.###..",
      "###..##.",
      "##....##",
      "##....##",
      "##....##",
      "##....##",
      ".##..##.",
      "..####.."}},
    // 7
    {{"########",
      "......##",
      ".....##.",
      ".....##.",
      "....##..",
      "....##..",
      "...##...",
      "...##...",
      "..##....",
      "..##....",
      ".##.....",
      ".##....."}},
    // 8
    {{"..####..",
      ".##..##.",
      "##....##",
      "##....##",
      ".##..##.",
      "..####..",
      ".##..##.",
      "##....##",
      "##....##",
      "##....##",
      ".##..##.",
      "..####.."}},
    // 9
    {{"..####..",
      ".##..##.",
      "##....##",
      "##....##",
      "##....##",
      "##....##",
      ".##..###",
      "..###.##",
      "......##",
      "......##",
      ".##..##.",
      "..####.."}},
}};

constexpr int kGlyphW = 8;
constexpr int kGlyphH = 12;

/** Bilinear sample of a glyph mask at fractional coordinates. */
double
sampleGlyph(int digit, double gx, double gy)
{
    auto ink = [&](int x, int y) -> double {
        if (x < 0 || x >= kGlyphW || y < 0 || y >= kGlyphH)
            return 0.0;
        return kGlyphs[static_cast<std::size_t>(digit)]
                      [static_cast<std::size_t>(y)]
                      [static_cast<std::size_t>(x)] == '#'
                   ? 1.0
                   : 0.0;
    };
    const int x0 = static_cast<int>(std::floor(gx));
    const int y0 = static_cast<int>(std::floor(gy));
    const double fx = gx - x0, fy = gy - y0;
    return ink(x0, y0) * (1 - fx) * (1 - fy) +
           ink(x0 + 1, y0) * fx * (1 - fy) +
           ink(x0, y0 + 1) * (1 - fx) * fy +
           ink(x0 + 1, y0 + 1) * fx * fy;
}

} // namespace

std::vector<nn::Sample>
generateDigits(int count, std::uint64_t seed, const DigitGenConfig &cfg)
{
    assert(count >= 1);
    std::mt19937_64 gen(seed);
    std::uniform_real_distribution<double> uni(0.0, 1.0);
    std::normal_distribution<double> noise(0.0, cfg.noiseStd);

    const int n = kDigitImageSize;
    std::vector<nn::Sample> samples;
    samples.reserve(static_cast<std::size_t>(count));

    for (int i = 0; i < count; ++i) {
        const int digit = i % 10; // balanced classes
        const double angle = (2.0 * uni(gen) - 1.0) * cfg.maxRotateDeg *
                             M_PI / 180.0;
        const double scale =
            cfg.minScale + (cfg.maxScale - cfg.minScale) * uni(gen);
        const double dx = (2.0 * uni(gen) - 1.0) * cfg.maxShift;
        const double dy = (2.0 * uni(gen) - 1.0) * cfg.maxShift;
        const double ca = std::cos(angle), sa = std::sin(angle);

        // Map output pixel centre back into glyph coordinates: inverse of
        // (glyph centre -> scale -> rotate -> translate -> image centre).
        const double gcx = kGlyphW / 2.0, gcy = kGlyphH / 2.0;
        const double icx = n / 2.0 + dx, icy = n / 2.0 + dy;
        // Glyph pixels are stretched ~2x to fill the 28x28 canvas.
        const double base_scale = 2.0 * scale;

        nn::Sample s;
        s.image = nn::Tensor({1, n, n});
        s.label = digit;
        for (int y = 0; y < n; ++y) {
            for (int x = 0; x < n; ++x) {
                const double rx = (x + 0.5 - icx) / base_scale;
                const double ry = (y + 0.5 - icy) / base_scale;
                const double gx = ca * rx + sa * ry + gcx - 0.5;
                const double gy = -sa * rx + ca * ry + gcy - 0.5;
                double v = sampleGlyph(digit, gx, gy) + noise(gen);
                v = std::min(1.0, std::max(0.0, v));
                // Bipolar input domain for SC.
                s.image.at(0, y, x) = static_cast<float>(2.0 * v - 1.0);
            }
        }
        samples.push_back(std::move(s));
    }
    return samples;
}

} // namespace aqfpsc::data
