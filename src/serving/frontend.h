/**
 * @file
 * ServingFrontend: the multi-tenant, multi-model serving front end.
 *
 * core::InferenceServer turns ONE session backend into an async
 * service; this subsystem is the production-shaped layer above it: many
 * named models (lazy per-backend engine compile through their
 * InferenceSessions), many tenants with per-tenant bounded queues and
 * admission control, a pluggable scheduler over one shared worker pool,
 * and graceful overload degradation — under load the front end sheds
 * *cycles* (slightly lower SC precision via a tightened early-exit
 * margin) before it sheds *requests*:
 *
 *   serving::ServingFrontend fe({.workers = 2, .policy =
 *                                serving::SchedPolicy::WeightedFair});
 *   fe.addModelFromFile("m", "model.bin", engineOpts);
 *   serving::TenantConfig gold;
 *   gold.name = "gold"; gold.model = "m"; gold.weight = 3.0;
 *   gold.deadlineSeconds = 0.2;
 *   fe.addTenant(gold);
 *   ... more tenants ...
 *   fe.start();
 *   auto f = fe.trySubmit("gold", image);   // nullopt = admission reject
 *   if (f) serving::ServedResult r = f->get();
 *
 * Scheduling (SchedPolicy, one shared worker pool):
 *
 *  - **Fifo**: global arrival order across all tenants (a greedy tenant
 *    owns the pool; the baseline the bench compares against).
 *  - **Priority**: strict tenant priority, ties in arrival order.
 *    Starvation of low-priority tenants is *possible by design*; use
 *    WeightedFair when that is unacceptable.
 *  - **Edf**: earliest absolute deadline first (enqueue time + the
 *    tenant's deadlineSeconds; tenants without a deadline sort last).
 *  - **WeightedFair**: stride scheduling over tenant weights — each
 *    tenant's virtual pass advances by servedImages/weight, the
 *    smallest pass is picked next, and a tenant going busy re-enters at
 *    the current virtual time (no banked credit).  A greedy tenant
 *    cannot starve a low-rate one: the low-rate tenant's head request
 *    is picked after at most one in-flight batch per competing tenant
 *    (asserted by tests/test_serving.cc).
 *
 * A worker pick drains up to maxBatch requests from ONE tenant and
 * serves them as a stage-major execution cohort on that tenant's
 * engine (same amortization as core::InferenceServer).
 *
 * Shed-before-reject (ShedConfig): each pick computes the tenant's load
 * signal — max(queue depth / queueCapacity, head-of-line wait /
 * deadline) — and linearly tightens the adaptive policy's exitMargin
 * from the configured base down to marginFloor (and minCycles down to
 * minCyclesFloor) as the load crosses [startLoad, fullLoad].  Lower
 * margin = earlier exits = fewer cycles per request = more throughput
 * at slightly lower precision, so the queue drains before admission
 * control ever has to reject.  The *effective* policy applied to a
 * batch is recorded in every ServedResult, preserving the determinism
 * contract below.
 *
 * Determinism: every served prediction is the pure function
 * (model, backend, requestId, effective policy) — bit-identical to
 * engine.inferIndexed(image, requestId) (non-adaptive tenants) or
 * engine.inferAdaptive(image, requestId, result.effectivePolicy)
 * (adaptive tenants), independent of worker count, scheduling policy,
 * batching, arrival interleaving, retries and injected faults.
 * requestIds are assigned in global submission order across all
 * tenants.
 *
 * Failure model (PR 8; see docs/ARCHITECTURE.md "Failure model & fault
 * injection"):
 *
 *  - **Structured failures.**  A future never carries a raw foreign
 *    exception: every failure is a core::StatusError whose
 *    status().code says what happened (Timeout, Quarantined,
 *    WorkerCrashed, ...).
 *  - **Per-request timeouts + cooperative cancellation.**  With
 *    TenantConfig::timeoutSeconds > 0 each request carries a hard
 *    deadline; expiry fails it with StatusError{Timeout} at pickup or
 *    mid-run at the next adaptive checkpoint block (non-adaptive
 *    tenants on resumable backends are served through the
 *    exitMargin=infinity adaptive path — bit-identical to full-length
 *    inference — so their runs are cancellable too).  A cancelled
 *    request frees its worker; it never wedges the pool.
 *  - **Bounded retry with backoff.**  Transient failures (a worker
 *    crash, a throwing serve path) requeue the request at the front of
 *    its tenant queue with an exponentially growing notBefore backoff,
 *    up to TenantConfig::maxRetries extra attempts; exhaustion fails
 *    the future with StatusError{Quarantined}, isolating poison
 *    requests instead of letting them eat the pool.
 *  - **Worker supervision.**  A watchdog thread samples each worker's
 *    RunControl beat counter every FrontendOptions::watchdogSeconds:
 *    a busy worker whose beats freeze for stallSeconds is *kicked*
 *    (its run is cancelled at the next checkpoint, the batch falls
 *    back to per-request isolation), and a dead worker thread is
 *    joined and respawned so the pool heals itself.  health() reports
 *    the HealthSnapshot: workers alive, respawns, kicks, and the
 *    failure/timeout/retry/quarantine totals.
 *  - **Health folds into shedding.**  Each tenant keeps an
 *    exponentially decaying failure load (~0.5 s half-life, +0.25 per
 *    failure/timeout/retry); the shed load signal is the max of queue
 *    fill, head-of-line wait and that failure load, so a tenant whose
 *    requests are failing degrades precision early instead of piling
 *    up retries at full cost.
 *
 * Lifecycle: addModel variants + addTenant, then start(), then
 * submit/trySubmit.  start() seals registration (addModel/addTenant
 * afterwards throw std::logic_error); workers themselves spawn in the
 * constructor unless startPaused, and registration while they run is
 * safe — they only observe tenants under the same lock.  shutdown() (also
 * run by the destructor) stops admission, drains every accepted
 * request and joins the workers — every obtained future is eventually
 * satisfied, even when shutdown() is called on a front end that was
 * never start()ed (the drain pool is spun up on demand).  Fuzzed under
 * ASan/UBSan in tests/test_serving.cc.
 *
 * Thread safety: submit/trySubmit/stats/tenantStats/accepting from any
 * thread at any time once start() returned; shutdown() from any
 * thread, idempotently.
 */

#ifndef AQFPSC_SERVING_FRONTEND_H
#define AQFPSC_SERVING_FRONTEND_H

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/latency_histogram.h"
#include "core/sc_engine.h"
#include "core/session.h"
#include "core/status.h"

namespace aqfpsc::serving {

/** Scheduler policy of the shared worker pool (see the file comment). */
enum class SchedPolicy
{
    Fifo,         ///< global arrival order
    Priority,     ///< strict tenant priority (may starve)
    Edf,          ///< earliest absolute deadline first
    WeightedFair, ///< stride scheduling over tenant weights
};

/** Canonical CLI/JSON name of @p policy ("fifo", "priority", "edf",
 *  "fair"). */
const char *schedPolicyName(SchedPolicy policy);

/** Parse a policy name; std::nullopt for unknown names. */
std::optional<SchedPolicy> parseSchedPolicy(const std::string &name);

/**
 * Per-tenant overload-degradation bounds: how far the front end may
 * tighten the tenant's adaptive early-exit policy before rejecting
 * requests (see the file comment's shed-before-reject contract).
 * Requires the tenant to serve adaptively (TenantConfig::adaptive).
 */
struct ShedConfig
{
    bool enabled = false;
    /** Load (0..1) where shedding starts; below it the base policy is
     *  served untouched. */
    double startLoad = 0.5;
    /** Load where the policy reaches the floor; loads beyond clamp. */
    double fullLoad = 0.95;
    /** exitMargin at full shed (must not exceed the base margin). */
    double marginFloor = 0.02;
    /** minCycles at full shed (must not exceed the base minCycles). */
    std::size_t minCyclesFloor = 64;
};

/** Configuration of one tenant (validated by ServingFrontend). */
struct TenantConfig
{
    std::string name;    ///< unique tenant id (stats/submission key)
    std::string model;   ///< registered model name to serve
    std::string backend; ///< registry name; empty = the model's default
    int priority = 0;    ///< SchedPolicy::Priority: higher = first
    double weight = 1.0; ///< SchedPolicy::WeightedFair share (> 0)
    std::size_t queueCapacity = 64; ///< pending bound (admission control)
    /** Per-request latency budget (submit -> completion) in seconds;
     *  0 = none.  Drives Edf ordering, the deadline-miss counter and
     *  the slack half of the shed load signal. */
    double deadlineSeconds = 0.0;
    /** Serve adaptively (early exit) under @ref policy. */
    bool adaptive = false;
    core::AdaptivePolicy policy; ///< base policy when adaptive
    ShedConfig shed;             ///< overload degradation bounds
    /** Hard per-request budget measured from submission; 0 disables.
     *  Expired requests fail with StatusError{Timeout} — at pickup, or
     *  mid-run at the next checkpoint block (see the file comment's
     *  failure model). */
    double timeoutSeconds = 0.0;
    /** Extra serve attempts granted to transient failures (worker
     *  crash / throwing serve path) before the request is failed with
     *  StatusError{Quarantined}.  0 = fail on first transient error. */
    int maxRetries = 0;
    /** Base retry backoff; attempt k re-enters the queue after
     *  retryBackoffSeconds * 2^(k-1). */
    double retryBackoffSeconds = 0.002;

    /** Hard bound on queueCapacity (pending requests own their image
     *  tensors), matching core::ServerOptions::kMaxQueueCapacity. */
    static constexpr std::size_t kMaxQueueCapacity = std::size_t{1} << 20;

    /** All configuration errors, each actionable; empty means valid. */
    std::vector<std::string> validate() const;
};

/** Configuration of the front end itself. */
struct FrontendOptions
{
    int workers = 1; ///< shared pool size (0 = one per hw thread)
    /** Max requests drained from one tenant per pick; also the
     *  execution cohort size (clamped to kMaxCohortImages). */
    int maxBatch = 8;
    SchedPolicy policy = SchedPolicy::Fifo;
    /** Do not spawn workers in the constructor; serving begins at
     *  start().  Lets tests enqueue a known backlog first, making
     *  scheduling-order assertions deterministic. */
    bool startPaused = false;
    /** Supervision tick: how often the watchdog samples worker
     *  liveness, respawns dead workers and kicks stalled ones. */
    double watchdogSeconds = 0.05;
    /** A busy worker whose RunControl beats freeze this long is
     *  considered wedged and kicked (its run cancelled cooperatively at
     *  the next checkpoint block). */
    double stallSeconds = 1.0;

    /** All configuration errors, each actionable; empty means valid. */
    std::vector<std::string> validate() const;
};

/** One served request: the prediction plus serving metadata. */
struct ServedResult
{
    core::ScPrediction prediction;
    std::uint64_t requestId = 0; ///< global submission order = inference index
    std::size_t consumedCycles = 0; ///< stream cycles executed
    bool exitedEarly = false;       ///< adaptive early exit taken
    bool adaptive = false;          ///< served through the adaptive path
    /** The policy actually applied to this request's batch (equals the
     *  tenant's base policy when no shedding occurred).  Meaningless
     *  when !adaptive. */
    core::AdaptivePolicy effectivePolicy;
    bool shed = false; ///< effectivePolicy was tightened below the base
    double queueSeconds = 0.0;   ///< submit -> worker pickup
    double serviceSeconds = 0.0; ///< worker pickup -> cohort done
    /** Deadline budget applied (the tenant's; 0 = none). */
    double deadlineSeconds = 0.0;
    bool deadlineMissed = false; ///< completed after the budget elapsed
    /** Global completion sequence number (0 = first request the front
     *  end completed).  Scheduling-order tests assert on this instead
     *  of wall time. */
    std::uint64_t completionSeq = 0;
    /** Serve attempts this request took (1 = no retries).  Retries
     *  never change the prediction: the requestId is the seed. */
    int attempts = 1;
};

/** Per-tenant counters since construction (racy-read consistent). */
struct TenantStats
{
    std::uint64_t submitted = 0;      ///< accepted into the queue
    std::uint64_t rejected = 0;       ///< admission-control rejects
    std::uint64_t completed = 0;      ///< futures satisfied with a value
    std::uint64_t failed = 0;         ///< futures satisfied with an exception
    std::uint64_t timedOut = 0;       ///< subset of failed: deadline expiry
    std::uint64_t retried = 0;        ///< transient-failure requeues
    std::uint64_t quarantined = 0;    ///< subset of failed: retries exhausted
    std::uint64_t earlyExits = 0;     ///< completed with exitedEarly
    std::uint64_t shedServed = 0;     ///< completed under a tightened policy
    std::uint64_t deadlineMissed = 0; ///< completed past the budget
    double avgConsumedCycles = 0.0;   ///< mean cycles over completed
    std::size_t queueDepth = 0;       ///< pending right now
    std::size_t queueDepthHighWater = 0;
    core::LatencyHistogram queueHistogram;   ///< submit -> pickup
    core::LatencyHistogram serviceHistogram; ///< pickup -> done
};

/**
 * Supervision snapshot: the state of the worker pool plus failure
 * totals summed across tenants (racy-read consistent).  The watchdog
 * keeps workersAlive at workersConfigured by respawning dead workers;
 * a persistent gap means respawns are losing a crash race and is the
 * first thing to alert on.
 */
struct HealthSnapshot
{
    int workersConfigured = 0;       ///< pool size the front end runs
    int workersAlive = 0;            ///< worker threads currently live
    int workersBusy = 0;             ///< workers serving a batch right now
    std::uint64_t respawns = 0;      ///< dead workers joined + replaced
    std::uint64_t watchdogKicks = 0; ///< wedged runs cancelled
    std::uint64_t watchdogTicks = 0; ///< supervision passes completed
    // Failure totals summed over tenants (same meaning as TenantStats).
    std::uint64_t failed = 0;
    std::uint64_t timedOut = 0;
    std::uint64_t retried = 0;
    std::uint64_t quarantined = 0;
    /** Process-wide core::PlanCache counters: how much compiled-plan and
     *  weight-stream state the resident models share (identical
     *  (model, backend) pairs compile once and reference one plan). */
    core::PlanCacheStats planCache;
};

/**
 * Multi-tenant, QoS-aware serving front end over named
 * InferenceSessions (see the file comment for the full contract).
 */
class ServingFrontend
{
  public:
    /** Validate @p opts; workers spawn here unless startPaused. */
    explicit ServingFrontend(FrontendOptions opts = {});

    /** shutdown(), then destroy. */
    ~ServingFrontend();

    ServingFrontend(const ServingFrontend &) = delete;
    ServingFrontend &operator=(const ServingFrontend &) = delete;

    /**
     * Register @p net under @p name (engines compile lazily per
     * backend, exactly like a standalone InferenceSession).
     * @throws std::invalid_argument on duplicate names or bad options,
     *         std::logic_error after start().
     */
    void addModel(const std::string &name, nn::Network net,
                  core::EngineOptions opts = {});

    /** addModel() a saveModel artifact. */
    void addModelFromFile(const std::string &name, const std::string &path,
                          core::EngineOptions opts = {});

    /** addModel() a freshly built zoo architecture. */
    void addModelFromZoo(const std::string &name, const std::string &zoo,
                         core::EngineOptions opts = {},
                         unsigned buildSeed = 1);

    /** The registered model's session.  @throws std::invalid_argument
     *  for unknown names. */
    const core::InferenceSession &model(const std::string &name) const;

    /** Registered model names (sorted). */
    std::vector<std::string> modelNames() const;

    /**
     * Register a tenant; its engine compiles here (configuration
     * errors surface now, not inside a future).
     * @throws std::invalid_argument on invalid configs, duplicate or
     *         unknown names, adaptive serving on a non-resumable
     *         backend; std::logic_error after start().
     */
    void addTenant(TenantConfig cfg);

    /** Registered tenant names, in registration order. */
    std::vector<std::string> tenantNames() const;

    /** Spawn the worker pool (idempotent).  No-op when the front end
     *  was constructed without startPaused (already running). */
    void start();

    /**
     * Enqueue one image for @p tenant (copied into the request).
     * @throws std::invalid_argument for unknown tenants,
     *         std::runtime_error when the tenant queue is full or
     *         shutdown has begun (admission control never blocks —
     *         callers on the overload path should use trySubmit()).
     */
    std::future<ServedResult> submit(const std::string &tenant,
                                     nn::Tensor image);

    /** Non-throwing admission control: std::nullopt when the tenant
     *  queue is full or shutdown has begun.  @throws
     *  std::invalid_argument for unknown tenants (a caller bug). */
    std::optional<std::future<ServedResult>>
    trySubmit(const std::string &tenant, nn::Tensor image);

    /**
     * Stop admission, serve every accepted request, join the workers.
     * Idempotent; safe from any thread.  After return, every future is
     * ready.
     */
    void shutdown();

    /** True until shutdown() begins. */
    bool accepting() const;

    /** The worker count configured to run. */
    int workers() const { return workerCount_; }

    /** Front-end options (validated). */
    const FrontendOptions &options() const { return opts_; }

    /** Counter snapshot of @p tenant.  @throws std::invalid_argument
     *  for unknown names. */
    TenantStats tenantStats(const std::string &tenant) const;

    /** Supervision snapshot (see HealthSnapshot). */
    HealthSnapshot health() const;

  private:
    struct Request
    {
        nn::Tensor image;
        std::promise<ServedResult> promise;
        std::uint64_t id = 0;
        int attempt = 0; ///< completed serve attempts so far
        std::chrono::steady_clock::time_point enqueued;
        std::chrono::steady_clock::time_point deadline; ///< max() = none
        /** Hard timeout (max() = none); past it the request fails. */
        std::chrono::steady_clock::time_point expiry =
            core::RunControl::kNoDeadline;
        /** Retry backoff: not schedulable before this instant. */
        std::chrono::steady_clock::time_point notBefore =
            std::chrono::steady_clock::time_point::min();
    };

    struct Tenant
    {
        TenantConfig cfg;
        const core::ScNetworkEngine *engine = nullptr;
        std::deque<Request> queue; ///< invariant: ascending request id
        double pass = 0.0; ///< WeightedFair virtual finish time
        /** Non-adaptive tenants on resumable backends run through the
         *  adaptive path under this exitMargin=infinity policy
         *  (bit-identical to full-length inference) so their runs are
         *  cancellable at checkpoint granularity. */
        bool cancellable = false;
        core::AdaptivePolicy fullLengthPolicy;

        // Stats (under the front end's mutex_).
        std::uint64_t submitted = 0;
        std::uint64_t rejected = 0;
        std::uint64_t completed = 0;
        std::uint64_t failed = 0;
        std::uint64_t timedOut = 0;
        std::uint64_t retried = 0;
        std::uint64_t quarantined = 0;
        std::uint64_t earlyExits = 0;
        std::uint64_t shedServed = 0;
        std::uint64_t deadlineMissed = 0;
        std::uint64_t consumedCycles = 0;
        std::size_t queueDepthHighWater = 0;
        core::LatencyHistogram queueHist;
        core::LatencyHistogram serviceHist;

        /** Exponentially decaying failure pressure (under mutex_):
         *  folded into the shed load signal so health composes with
         *  overload degradation. */
        double failLoad = 0.0;
        std::chrono::steady_clock::time_point failLoadAt{};

        double failureLoadLocked(
            std::chrono::steady_clock::time_point now) const;
        void noteFailureLocked(std::chrono::steady_clock::time_point now);
    };

    /**
     * One supervised worker: its thread plus the shared state the
     * watchdog reads.  alive/busy are atomics (written by the worker
     * off-lock); lastBeats/lastProgress are watchdog-private.
     */
    struct WorkerSlot
    {
        std::thread thread;
        std::atomic<bool> alive{false};
        std::atomic<bool> busy{false};
        core::RunControl control;
        std::uint64_t lastBeats = 0;
        std::chrono::steady_clock::time_point lastProgress{};
    };

    /** One popped batch: requests + the effective policy to serve them
     *  under. */
    struct Batch
    {
        Tenant *tenant = nullptr;
        std::vector<Request> requests;
        /** Popped requests already past their hard deadline: failed
         *  with StatusError{Timeout} before any engine work. */
        std::vector<Request> expired;
        core::AdaptivePolicy policy;
        bool adaptive = false;
        bool cancellable = false;
        bool shed = false;
        /** Requests[0, firstPending) are fulfilled/disposed; the crash
         *  recovery path requeues the rest. */
        std::size_t firstPending = 0;
        std::uint64_t seq = 0; ///< global pop sequence (fault keying)
    };

    Tenant &tenantOrThrow(const std::string &name);
    const Tenant &tenantOrThrow(const std::string &name) const;

    /** Enqueue into @p tenant; caller holds mutex_ and checked space. */
    std::future<ServedResult> enqueueLocked(Tenant &tenant,
                                            nn::Tensor image);

    /** True when some tenant's head request is schedulable now (or
     *  already expired and needs failing).  Caller holds mutex_. */
    bool hasEligibleWorkLocked(
        std::chrono::steady_clock::time_point now) const;

    /** Scheduler: index of the tenant to drain next, per opts_.policy;
     *  npos when no tenant has an eligible head.  Caller holds mutex_. */
    std::size_t pickTenantLocked(
        std::chrono::steady_clock::time_point now) const;

    /** Pop up to maxBatch eligible requests from the picked tenant and
     *  compute the effective (possibly shed) policy; caller holds
     *  mutex_. */
    Batch popBatchLocked(std::chrono::steady_clock::time_point now);

    void spawnWorkersLocked();
    void workerLoop(WorkerSlot *slot);
    void watchdogLoop();

    /** Serve one popped batch as stage-major cohorts through
     *  @p workspace (the worker's arena for this batch's engine),
     *  under @p slot's RunControl. */
    void serveBatchWith(Batch &batch, core::CohortWorkspace &workspace,
                        WorkerSlot *slot);

    /** Fail batch.expired with StatusError{Timeout}. */
    void failExpired(Batch &batch);

    /** Retry-or-fail disposition of one failed request: transient
     *  status with attempts left -> ordered requeue with backoff;
     *  otherwise the future fails (Quarantined when retries ran out). */
    void disposeFailure(Tenant &tenant, Request &&request,
                        const core::Status &status);

    /** Crash recovery: dispose every not-yet-disposed request of
     *  @p batch as a WorkerCrashed transient failure. */
    void recoverBatch(Batch &batch);

    FrontendOptions opts_;
    int workerCount_ = 0;
    std::size_t cohortCap_ = 1;

    mutable std::mutex mutex_;
    std::condition_variable notEmpty_;
    std::condition_variable drained_;  ///< shutdown waits for inflight 0
    std::condition_variable watchdogCv_;
    std::map<std::string, std::unique_ptr<core::InferenceSession>> models_;
    std::vector<std::unique_ptr<Tenant>> tenants_; ///< registration order
    std::map<std::string, std::size_t> tenantIndex_;
    std::vector<std::unique_ptr<WorkerSlot>> slots_;
    std::thread watchdogThread_;
    bool workersRunning_ = false;
    bool sealed_ = false; ///< start() called: registration is closed
    bool stopping_ = false;
    bool watchdogStop_ = false;
    std::uint64_t nextId_ = 0;
    std::uint64_t nextCompletionSeq_ = 0;
    std::uint64_t nextBatchSeq_ = 0;
    std::size_t totalQueued_ = 0;
    /** Requests popped but not yet fulfilled/requeued/failed; the
     *  shutdown drain waits for totalQueued_ == 0 && inFlight_ == 0. */
    std::size_t inFlight_ = 0;
    double virtualTime_ = 0.0; ///< WeightedFair global virtual time

    // Supervision counters (under mutex_).
    std::uint64_t respawns_ = 0;
    std::uint64_t watchdogKicks_ = 0;
    std::uint64_t watchdogTicks_ = 0;

    /** Serializes concurrent shutdown() callers around the joins. */
    std::mutex joinMutex_;
};

} // namespace aqfpsc::serving

#endif // AQFPSC_SERVING_FRONTEND_H
