#include "frontend.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/model_zoo.h"
#include "core/stages/stage.h"
#include "core/workspace.h"

namespace aqfpsc::serving {

namespace {

constexpr std::size_t kNoTenant = static_cast<std::size_t>(-1);

int
resolveWorkerCount(int requested)
{
    if (requested <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        requested = hw == 0 ? 1 : static_cast<int>(hw);
    }
    return std::clamp(requested, 1, 256);
}

void
throwJoined(const char *what, const std::vector<std::string> &errors)
{
    std::string msg = what;
    msg += ": ";
    for (std::size_t i = 0; i < errors.size(); ++i)
        msg += (i ? "; " : "") + errors[i];
    throw std::invalid_argument(msg);
}

} // namespace

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::Fifo:
        return "fifo";
      case SchedPolicy::Priority:
        return "priority";
      case SchedPolicy::Edf:
        return "edf";
      case SchedPolicy::WeightedFair:
        return "fair";
    }
    return "fifo";
}

std::optional<SchedPolicy>
parseSchedPolicy(const std::string &name)
{
    if (name == "fifo")
        return SchedPolicy::Fifo;
    if (name == "priority")
        return SchedPolicy::Priority;
    if (name == "edf")
        return SchedPolicy::Edf;
    if (name == "fair")
        return SchedPolicy::WeightedFair;
    return std::nullopt;
}

std::vector<std::string>
TenantConfig::validate() const
{
    std::vector<std::string> errors;
    if (name.empty())
        errors.push_back("tenant name must be non-empty");
    if (model.empty())
        errors.push_back("tenant '" + name +
                         "' must reference a registered model name");
    if (!(weight > 0.0) || !std::isfinite(weight)) {
        errors.push_back(
            "weight " + std::to_string(weight) +
            " must be a positive finite WeightedFair share");
    }
    if (queueCapacity == 0 || queueCapacity > kMaxQueueCapacity) {
        errors.push_back(
            "queueCapacity " + std::to_string(queueCapacity) +
            " out of [1, " + std::to_string(kMaxQueueCapacity) +
            "]: pending requests own their image tensors, so the bound "
            "is the admission-control backstop");
    }
    if (std::isnan(deadlineSeconds) || deadlineSeconds < 0.0) {
        errors.push_back("deadlineSeconds must be >= 0 (0 = no budget)");
    }
    if (adaptive) {
        for (const std::string &e : policy.validate())
            errors.push_back("policy: " + e);
    }
    if (shed.enabled) {
        if (!adaptive) {
            errors.push_back(
                "shed.enabled requires adaptive serving: shedding "
                "tightens the early-exit margin, which only exists on "
                "the adaptive path");
        }
        if (std::isnan(shed.startLoad) || shed.startLoad < 0.0 ||
            !std::isfinite(shed.fullLoad) ||
            shed.fullLoad <= shed.startLoad) {
            errors.push_back(
                "shed loads must satisfy 0 <= startLoad < fullLoad "
                "(the margin tightens linearly across that band)");
        }
        if (std::isnan(shed.marginFloor) || shed.marginFloor < 0.0 ||
            shed.marginFloor > policy.exitMargin) {
            errors.push_back(
                "shed.marginFloor must lie in [0, policy.exitMargin]: "
                "shedding only ever tightens the margin");
        }
        if (shed.minCyclesFloor > policy.minCycles) {
            errors.push_back(
                "shed.minCyclesFloor must not exceed policy.minCycles: "
                "shedding only ever lowers the exit floor");
        }
    }
    return errors;
}

std::vector<std::string>
FrontendOptions::validate() const
{
    std::vector<std::string> errors;
    if (workers < 0 || workers > 256) {
        errors.push_back(
            "workers " + std::to_string(workers) +
            " out of [0, 256]: 0 means one worker per hardware thread");
    }
    if (maxBatch < 1 || static_cast<std::size_t>(maxBatch) >
                            TenantConfig::kMaxQueueCapacity) {
        errors.push_back(
            "maxBatch " + std::to_string(maxBatch) +
            " must be >= 1: it is the number of requests drained from "
            "one tenant per scheduler pick");
    }
    return errors;
}

ServingFrontend::ServingFrontend(FrontendOptions opts)
    : opts_(std::move(opts))
{
    const std::vector<std::string> errors = opts_.validate();
    if (!errors.empty())
        throwJoined("invalid FrontendOptions", errors);
    workerCount_ = resolveWorkerCount(opts_.workers);
    cohortCap_ = std::min<std::size_t>(
        static_cast<std::size_t>(opts_.maxBatch), core::kMaxCohortImages);
    if (!opts_.startPaused) {
        const std::lock_guard<std::mutex> lock(mutex_);
        spawnWorkersLocked();
    }
}

ServingFrontend::~ServingFrontend()
{
    shutdown();
}

void
ServingFrontend::addModel(const std::string &name, nn::Network net,
                          core::EngineOptions opts)
{
    auto session = std::make_unique<core::InferenceSession>(
        std::move(net), std::move(opts));
    const std::lock_guard<std::mutex> lock(mutex_);
    if (sealed_) {
        throw std::logic_error(
            "addModel('" + name + "') after start(): register every "
            "model before serving begins");
    }
    if (!models_.emplace(name, std::move(session)).second)
        throw std::invalid_argument("model '" + name +
                                    "' is already registered");
}

void
ServingFrontend::addModelFromFile(const std::string &name,
                                  const std::string &path,
                                  core::EngineOptions opts)
{
    addModel(name, nn::Network::loadModel(path), std::move(opts));
}

void
ServingFrontend::addModelFromZoo(const std::string &name,
                                 const std::string &zoo,
                                 core::EngineOptions opts,
                                 unsigned buildSeed)
{
    addModel(name, core::buildModel(zoo, buildSeed), std::move(opts));
}

const core::InferenceSession &
ServingFrontend::model(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(name);
    if (it == models_.end())
        throw std::invalid_argument("unknown model '" + name + "'");
    return *it->second;
}

std::vector<std::string>
ServingFrontend::modelNames() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto &[name, session] : models_)
        names.push_back(name);
    return names;
}

void
ServingFrontend::addTenant(TenantConfig cfg)
{
    const std::vector<std::string> errors = cfg.validate();
    if (!errors.empty())
        throwJoined(("invalid TenantConfig '" + cfg.name + "'").c_str(),
                    errors);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (sealed_) {
        throw std::logic_error(
            "addTenant('" + cfg.name + "') after start(): register "
            "every tenant before serving begins");
    }
    if (tenantIndex_.count(cfg.name))
        throw std::invalid_argument("tenant '" + cfg.name +
                                    "' is already registered");
    const auto it = models_.find(cfg.model);
    if (it == models_.end()) {
        throw std::invalid_argument(
            "tenant '" + cfg.name + "' references unknown model '" +
            cfg.model + "'");
    }
    // Compile now: serving threads must never pay (or race on) the
    // first-use engine build, and configuration errors — unknown
    // backend, adaptive on a non-resumable backend — surface here.
    const core::ScNetworkEngine &engine = it->second->engine(cfg.backend);
    if (cfg.adaptive) {
        std::string why_not;
        if (!engine.supportsAdaptive(&why_not)) {
            throw std::invalid_argument(
                "tenant '" + cfg.name +
                "': adaptive serving unavailable on backend '" +
                engine.backendName() + "': stage '" + why_not +
                "' is not resumable");
        }
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->cfg = std::move(cfg);
    tenant->engine = &engine;
    tenantIndex_.emplace(tenant->cfg.name, tenants_.size());
    tenants_.push_back(std::move(tenant));
}

std::vector<std::string>
ServingFrontend::tenantNames() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(tenants_.size());
    for (const auto &t : tenants_)
        names.push_back(t->cfg.name);
    return names;
}

void
ServingFrontend::start()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    sealed_ = true;
    spawnWorkersLocked();
}

void
ServingFrontend::spawnWorkersLocked()
{
    if (workersRunning_)
        return;
    workersRunning_ = true;
    threads_.reserve(static_cast<std::size_t>(workerCount_));
    for (int t = 0; t < workerCount_; ++t)
        threads_.emplace_back(&ServingFrontend::workerLoop, this);
}

ServingFrontend::Tenant &
ServingFrontend::tenantOrThrow(const std::string &name)
{
    const auto it = tenantIndex_.find(name);
    if (it == tenantIndex_.end())
        throw std::invalid_argument("unknown tenant '" + name + "'");
    return *tenants_[it->second];
}

const ServingFrontend::Tenant &
ServingFrontend::tenantOrThrow(const std::string &name) const
{
    const auto it = tenantIndex_.find(name);
    if (it == tenantIndex_.end())
        throw std::invalid_argument("unknown tenant '" + name + "'");
    return *tenants_[it->second];
}

std::future<ServedResult>
ServingFrontend::enqueueLocked(Tenant &tenant, nn::Tensor image)
{
    if (opts_.policy == SchedPolicy::WeightedFair &&
        tenant.queue.empty()) {
        // A tenant going busy re-enters at the current virtual time:
        // idle periods bank no credit, so a returning tenant cannot
        // monopolize the pool to "catch up".
        tenant.pass = std::max(tenant.pass, virtualTime_);
    }
    Request request;
    request.image = std::move(image);
    request.id = nextId_++;
    request.enqueued = std::chrono::steady_clock::now();
    request.deadline =
        tenant.cfg.deadlineSeconds > 0.0
            ? request.enqueued +
                  std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(
                          tenant.cfg.deadlineSeconds))
            : std::chrono::steady_clock::time_point::max();
    std::future<ServedResult> future = request.promise.get_future();
    tenant.queue.push_back(std::move(request));
    ++tenant.submitted;
    ++totalQueued_;
    tenant.queueDepthHighWater =
        std::max(tenant.queueDepthHighWater, tenant.queue.size());
    return future;
}

std::future<ServedResult>
ServingFrontend::submit(const std::string &tenant, nn::Tensor image)
{
    std::future<ServedResult> future;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        Tenant &t = tenantOrThrow(tenant);
        if (stopping_) {
            throw std::runtime_error(
                "ServingFrontend is shut down: request rejected");
        }
        if (t.queue.size() >= t.cfg.queueCapacity) {
            ++t.rejected;
            throw std::runtime_error(
                "tenant '" + tenant + "' queue is full (" +
                std::to_string(t.cfg.queueCapacity) +
                " pending): request rejected");
        }
        future = enqueueLocked(t, std::move(image));
    }
    notEmpty_.notify_one();
    return future;
}

std::optional<std::future<ServedResult>>
ServingFrontend::trySubmit(const std::string &tenant, nn::Tensor image)
{
    std::optional<std::future<ServedResult>> future;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        Tenant &t = tenantOrThrow(tenant);
        if (stopping_)
            return std::nullopt;
        if (t.queue.size() >= t.cfg.queueCapacity) {
            ++t.rejected;
            return std::nullopt;
        }
        future = enqueueLocked(t, std::move(image));
    }
    notEmpty_.notify_one();
    return future;
}

std::size_t
ServingFrontend::pickTenantLocked() const
{
    std::size_t best = kNoTenant;
    double bestKey = 0.0;
    std::uint64_t bestSeq = 0;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        const Tenant &t = *tenants_[i];
        if (t.queue.empty())
            continue;
        const Request &head = t.queue.front();
        double key = 0.0;
        switch (opts_.policy) {
          case SchedPolicy::Fifo:
            key = 0.0; // arrival order only
            break;
          case SchedPolicy::Priority:
            key = -static_cast<double>(t.cfg.priority);
            break;
          case SchedPolicy::Edf:
            key = head.deadline ==
                          std::chrono::steady_clock::time_point::max()
                      ? std::numeric_limits<double>::infinity()
                      : std::chrono::duration<double>(
                            head.deadline.time_since_epoch())
                            .count();
            break;
          case SchedPolicy::WeightedFair:
            key = t.pass;
            break;
        }
        if (best == kNoTenant || key < bestKey ||
            (key == bestKey && head.id < bestSeq)) {
            best = i;
            bestKey = key;
            bestSeq = head.id;
        }
    }
    return best;
}

ServingFrontend::Batch
ServingFrontend::popBatchLocked()
{
    Batch batch;
    const std::size_t idx = pickTenantLocked();
    if (idx == kNoTenant)
        return batch;
    Tenant &t = *tenants_[idx];
    batch.tenant = &t;
    batch.adaptive = t.cfg.adaptive;
    batch.policy = t.cfg.policy;

    // The load signal, sampled at dispatch: queue fill fraction, and —
    // when the tenant runs a deadline budget — how much of that budget
    // the head-of-line request has already burned waiting.
    if (t.cfg.shed.enabled) {
        const double fill =
            static_cast<double>(t.queue.size()) /
            static_cast<double>(t.cfg.queueCapacity);
        double load = fill;
        if (t.cfg.deadlineSeconds > 0.0) {
            const double headWait =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() -
                    t.queue.front().enqueued)
                    .count();
            load = std::max(load, headWait / t.cfg.deadlineSeconds);
        }
        const double f = std::clamp(
            (load - t.cfg.shed.startLoad) /
                (t.cfg.shed.fullLoad - t.cfg.shed.startLoad),
            0.0, 1.0);
        if (f > 0.0) {
            batch.shed = true;
            // Clamp: FP interpolation at f = 1 may land one ULP below
            // the configured floor, which the contract forbids.
            batch.policy.exitMargin = std::max(
                t.cfg.shed.marginFloor,
                batch.policy.exitMargin +
                    f * (t.cfg.shed.marginFloor - batch.policy.exitMargin));
            const double floorCycles =
                static_cast<double>(t.cfg.shed.minCyclesFloor);
            const double baseCycles =
                static_cast<double>(batch.policy.minCycles);
            batch.policy.minCycles = static_cast<std::size_t>(
                baseCycles + f * (floorCycles - baseCycles) + 0.5);
        }
    }

    const std::size_t take = std::min(
        t.queue.size(), static_cast<std::size_t>(opts_.maxBatch));
    batch.requests.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
        batch.requests.push_back(std::move(t.queue.front()));
        t.queue.pop_front();
    }
    totalQueued_ -= take;
    if (opts_.policy == SchedPolicy::WeightedFair) {
        virtualTime_ = std::max(virtualTime_, t.pass);
        t.pass += static_cast<double>(take) / t.cfg.weight;
    }
    return batch;
}

void
ServingFrontend::workerLoop()
{
    // One cohort arena per (worker, engine), built lazily on the first
    // batch of each tenant's engine and reused for the worker's
    // lifetime: steady-state serving allocates nothing in the stage
    // pipeline, and a front end with many tenants on one model shares
    // one arena per worker.
    std::map<const core::ScNetworkEngine *,
             std::unique_ptr<core::CohortWorkspace>>
        workspaces;

    for (;;) {
        Batch batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            notEmpty_.wait(lock,
                           [&] { return stopping_ || totalQueued_ > 0; });
            if (totalQueued_ == 0)
                return; // stopping, every queue drained
            batch = popBatchLocked();
        }
        if (batch.requests.empty())
            continue;
        auto &workspace = workspaces[batch.tenant->engine];
        if (!workspace) {
            workspace = std::make_unique<core::CohortWorkspace>(
                *batch.tenant->engine, cohortCap_);
        }
        serveBatchWith(batch, *workspace);
    }
}

void
ServingFrontend::serveBatchWith(Batch &batch,
                                core::CohortWorkspace &workspace)
{
    Tenant &tenant = *batch.tenant;
    const core::ScNetworkEngine &engine = *tenant.engine;
    const auto picked = std::chrono::steady_clock::now();

    for (std::size_t off = 0; off < batch.requests.size();
         off += cohortCap_) {
        const std::size_t count =
            std::min(cohortCap_, batch.requests.size() - off);
        const nn::Tensor *images[core::kMaxCohortImages];
        std::size_t ids[core::kMaxCohortImages];
        for (std::size_t j = 0; j < count; ++j) {
            images[j] = &batch.requests[off + j].image;
            ids[j] = batch.requests[off + j].id;
        }

        core::ScPrediction preds[core::kMaxCohortImages];
        core::AdaptivePrediction apreds[core::kMaxCohortImages];
        bool cohortOk = true;
        try {
            if (batch.adaptive)
                engine.inferAdaptiveCohort(images, ids, count, workspace,
                                           batch.policy, apreds);
            else
                engine.inferCohort(images, ids, count, workspace, preds);
        } catch (...) {
            cohortOk = false;
        }
        const auto done = std::chrono::steady_clock::now();
        const double serviceSeconds =
            std::chrono::duration<double>(done - picked).count();

        for (std::size_t j = 0; j < count; ++j) {
            Request &request = batch.requests[off + j];
            ServedResult served;
            served.requestId = request.id;
            served.adaptive = batch.adaptive;
            served.effectivePolicy = batch.policy;
            served.shed = batch.shed;
            served.deadlineSeconds = tenant.cfg.deadlineSeconds;
            served.queueSeconds =
                std::chrono::duration<double>(picked - request.enqueued)
                    .count();
            // Execution is cohort-granular: the measured service time
            // is shared by every request of the cohort.
            served.serviceSeconds = serviceSeconds;
            served.deadlineMissed = done > request.deadline;
            try {
                if (!cohortOk) {
                    // Isolate the failure: re-run this request as a
                    // cohort of one (bit-identical result), so one bad
                    // request cannot fail its cohort-mates.
                    if (batch.adaptive)
                        engine.inferAdaptiveCohort(&images[j], &ids[j], 1,
                                                   workspace, batch.policy,
                                                   &apreds[j]);
                    else
                        engine.inferCohort(&images[j], &ids[j], 1,
                                           workspace, &preds[j]);
                }
                if (batch.adaptive) {
                    served.prediction = std::move(apreds[j].prediction);
                    served.consumedCycles = apreds[j].consumedCycles;
                    served.exitedEarly = apreds[j].exitedEarly;
                } else {
                    served.prediction = std::move(preds[j]);
                    served.consumedCycles = engine.config().streamLen;
                }
                // Count before fulfilling: a caller returning from
                // future.get() must already see itself in stats().
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    served.completionSeq = nextCompletionSeq_++;
                    ++tenant.completed;
                    tenant.consumedCycles += served.consumedCycles;
                    if (served.exitedEarly)
                        ++tenant.earlyExits;
                    if (served.shed)
                        ++tenant.shedServed;
                    if (served.deadlineMissed)
                        ++tenant.deadlineMissed;
                    tenant.queueHist.record(served.queueSeconds);
                    tenant.serviceHist.record(served.serviceSeconds);
                }
                request.promise.set_value(std::move(served));
            } catch (...) {
                {
                    const std::lock_guard<std::mutex> lock(mutex_);
                    served.completionSeq = nextCompletionSeq_++;
                    ++tenant.failed;
                }
                request.promise.set_exception(std::current_exception());
            }
        }
    }
}

void
ServingFrontend::shutdown()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // A never-started (startPaused) front end may hold accepted
        // requests; spin the pool up so the drain contract holds.
        spawnWorkersLocked();
    }
    notEmpty_.notify_all();
    const std::lock_guard<std::mutex> join_lock(joinMutex_);
    for (std::thread &t : threads_) {
        if (t.joinable())
            t.join();
    }
}

bool
ServingFrontend::accepting() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return !stopping_;
}

TenantStats
ServingFrontend::tenantStats(const std::string &tenant) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const Tenant &t = tenantOrThrow(tenant);
    TenantStats s;
    s.submitted = t.submitted;
    s.rejected = t.rejected;
    s.completed = t.completed;
    s.failed = t.failed;
    s.earlyExits = t.earlyExits;
    s.shedServed = t.shedServed;
    s.deadlineMissed = t.deadlineMissed;
    s.avgConsumedCycles =
        t.completed == 0 ? 0.0
                         : static_cast<double>(t.consumedCycles) /
                               static_cast<double>(t.completed);
    s.queueDepth = t.queue.size();
    s.queueDepthHighWater = t.queueDepthHighWater;
    s.queueHistogram = t.queueHist;
    s.serviceHistogram = t.serviceHist;
    return s;
}

} // namespace aqfpsc::serving
