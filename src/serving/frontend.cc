#include "frontend.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <utility>

#include "core/fault_injection.h"
#include "core/model_zoo.h"
#include "core/stages/stage.h"
#include "core/stages/stage_compiler.h"
#include "core/workspace.h"

namespace aqfpsc::serving {

using core::FaultSite;
using core::Status;
using core::StatusCode;
using core::StatusError;

namespace {

constexpr std::size_t kNoTenant = static_cast<std::size_t>(-1);

/** Half-life of a tenant's decaying failure-pressure signal. */
constexpr double kFailLoadHalfLifeSeconds = 0.5;
/** Failure pressure added per failure/timeout/retry event: four recent
 *  failures saturate the shed load signal. */
constexpr double kFailLoadPerEvent = 0.25;

std::chrono::steady_clock::time_point
addSeconds(std::chrono::steady_clock::time_point base, double seconds)
{
    return base + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(seconds));
}

/** Fail @p request's future, swallowing the (impossible in practice)
 *  double-fulfillment error so a disposal can never kill a worker. */
void
fulfillException(std::promise<ServedResult> &promise, const Status &status)
{
    try {
        promise.set_exception(
            std::make_exception_ptr(StatusError(status)));
    } catch (const std::future_error &) {
        // Already satisfied: nothing left to deliver.
    }
}

int
resolveWorkerCount(int requested)
{
    if (requested <= 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        requested = hw == 0 ? 1 : static_cast<int>(hw);
    }
    return std::clamp(requested, 1, 256);
}

void
throwJoined(const char *what, const std::vector<std::string> &errors)
{
    std::string msg = what;
    msg += ": ";
    for (std::size_t i = 0; i < errors.size(); ++i)
        msg += (i ? "; " : "") + errors[i];
    throw std::invalid_argument(msg);
}

} // namespace

const char *
schedPolicyName(SchedPolicy policy)
{
    switch (policy) {
      case SchedPolicy::Fifo:
        return "fifo";
      case SchedPolicy::Priority:
        return "priority";
      case SchedPolicy::Edf:
        return "edf";
      case SchedPolicy::WeightedFair:
        return "fair";
    }
    return "fifo";
}

std::optional<SchedPolicy>
parseSchedPolicy(const std::string &name)
{
    if (name == "fifo")
        return SchedPolicy::Fifo;
    if (name == "priority")
        return SchedPolicy::Priority;
    if (name == "edf")
        return SchedPolicy::Edf;
    if (name == "fair")
        return SchedPolicy::WeightedFair;
    return std::nullopt;
}

std::vector<std::string>
TenantConfig::validate() const
{
    std::vector<std::string> errors;
    if (name.empty())
        errors.push_back("tenant name must be non-empty");
    if (model.empty())
        errors.push_back("tenant '" + name +
                         "' must reference a registered model name");
    if (!(weight > 0.0) || !std::isfinite(weight)) {
        errors.push_back(
            "weight " + std::to_string(weight) +
            " must be a positive finite WeightedFair share");
    }
    if (queueCapacity == 0 || queueCapacity > kMaxQueueCapacity) {
        errors.push_back(
            "queueCapacity " + std::to_string(queueCapacity) +
            " out of [1, " + std::to_string(kMaxQueueCapacity) +
            "]: pending requests own their image tensors, so the bound "
            "is the admission-control backstop");
    }
    if (std::isnan(deadlineSeconds) || deadlineSeconds < 0.0) {
        errors.push_back("deadlineSeconds must be >= 0 (0 = no budget)");
    }
    if (!std::isfinite(timeoutSeconds) || timeoutSeconds < 0.0) {
        errors.push_back(
            "timeoutSeconds must be a finite value >= 0 (0 = no hard "
            "per-request timeout)");
    }
    if (maxRetries < 0 || maxRetries > 16) {
        errors.push_back(
            "maxRetries " + std::to_string(maxRetries) +
            " out of [0, 16]: each retry re-serves the full request, so "
            "the budget must stay small");
    }
    if (!std::isfinite(retryBackoffSeconds) || retryBackoffSeconds < 0.0) {
        errors.push_back(
            "retryBackoffSeconds must be a finite value >= 0 (attempt k "
            "waits retryBackoffSeconds * 2^(k-1))");
    }
    if (adaptive) {
        for (const std::string &e : policy.validate())
            errors.push_back("policy: " + e);
    }
    if (shed.enabled) {
        if (!adaptive) {
            errors.push_back(
                "shed.enabled requires adaptive serving: shedding "
                "tightens the early-exit margin, which only exists on "
                "the adaptive path");
        }
        if (std::isnan(shed.startLoad) || shed.startLoad < 0.0 ||
            !std::isfinite(shed.fullLoad) ||
            shed.fullLoad <= shed.startLoad) {
            errors.push_back(
                "shed loads must satisfy 0 <= startLoad < fullLoad "
                "(the margin tightens linearly across that band)");
        }
        if (std::isnan(shed.marginFloor) || shed.marginFloor < 0.0 ||
            shed.marginFloor > policy.exitMargin) {
            errors.push_back(
                "shed.marginFloor must lie in [0, policy.exitMargin]: "
                "shedding only ever tightens the margin");
        }
        if (shed.minCyclesFloor > policy.minCycles) {
            errors.push_back(
                "shed.minCyclesFloor must not exceed policy.minCycles: "
                "shedding only ever lowers the exit floor");
        }
    }
    return errors;
}

std::vector<std::string>
FrontendOptions::validate() const
{
    std::vector<std::string> errors;
    if (workers < 0 || workers > 256) {
        errors.push_back(
            "workers " + std::to_string(workers) +
            " out of [0, 256]: 0 means one worker per hardware thread");
    }
    if (maxBatch < 1 || static_cast<std::size_t>(maxBatch) >
                            TenantConfig::kMaxQueueCapacity) {
        errors.push_back(
            "maxBatch " + std::to_string(maxBatch) +
            " must be >= 1: it is the number of requests drained from "
            "one tenant per scheduler pick");
    }
    if (!std::isfinite(watchdogSeconds) || watchdogSeconds <= 0.0) {
        errors.push_back(
            "watchdogSeconds must be a positive finite supervision tick");
    }
    if (!std::isfinite(stallSeconds) || stallSeconds <= 0.0) {
        errors.push_back(
            "stallSeconds must be a positive finite stall threshold");
    }
    return errors;
}

ServingFrontend::ServingFrontend(FrontendOptions opts)
    : opts_(std::move(opts))
{
    const std::vector<std::string> errors = opts_.validate();
    if (!errors.empty())
        throwJoined("invalid FrontendOptions", errors);
    workerCount_ = resolveWorkerCount(opts_.workers);
    cohortCap_ = std::min<std::size_t>(
        static_cast<std::size_t>(opts_.maxBatch), core::kMaxCohortImages);
    if (!opts_.startPaused) {
        const std::lock_guard<std::mutex> lock(mutex_);
        spawnWorkersLocked();
    }
}

ServingFrontend::~ServingFrontend()
{
    shutdown();
}

void
ServingFrontend::addModel(const std::string &name, nn::Network net,
                          core::EngineOptions opts)
{
    auto session = std::make_unique<core::InferenceSession>(
        std::move(net), std::move(opts));
    const std::lock_guard<std::mutex> lock(mutex_);
    if (sealed_) {
        throw std::logic_error(
            "addModel('" + name + "') after start(): register every "
            "model before serving begins");
    }
    if (!models_.emplace(name, std::move(session)).second)
        throw std::invalid_argument("model '" + name +
                                    "' is already registered");
}

void
ServingFrontend::addModelFromFile(const std::string &name,
                                  const std::string &path,
                                  core::EngineOptions opts)
{
    addModel(name, nn::Network::loadModel(path), std::move(opts));
}

void
ServingFrontend::addModelFromZoo(const std::string &name,
                                 const std::string &zoo,
                                 core::EngineOptions opts,
                                 unsigned buildSeed)
{
    addModel(name, core::buildModel(zoo, buildSeed), std::move(opts));
}

const core::InferenceSession &
ServingFrontend::model(const std::string &name) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = models_.find(name);
    if (it == models_.end())
        throw std::invalid_argument("unknown model '" + name + "'");
    return *it->second;
}

std::vector<std::string>
ServingFrontend::modelNames() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(models_.size());
    for (const auto &[name, session] : models_)
        names.push_back(name);
    return names;
}

void
ServingFrontend::addTenant(TenantConfig cfg)
{
    const std::vector<std::string> errors = cfg.validate();
    if (!errors.empty())
        throwJoined(("invalid TenantConfig '" + cfg.name + "'").c_str(),
                    errors);
    const std::lock_guard<std::mutex> lock(mutex_);
    if (sealed_) {
        throw std::logic_error(
            "addTenant('" + cfg.name + "') after start(): register "
            "every tenant before serving begins");
    }
    if (tenantIndex_.count(cfg.name))
        throw std::invalid_argument("tenant '" + cfg.name +
                                    "' is already registered");
    const auto it = models_.find(cfg.model);
    if (it == models_.end()) {
        throw std::invalid_argument(
            "tenant '" + cfg.name + "' references unknown model '" +
            cfg.model + "'");
    }
    // Compile now: serving threads must never pay (or race on) the
    // first-use engine build, and configuration errors — unknown
    // backend, adaptive on a non-resumable backend — surface here.
    const core::ScNetworkEngine &engine = it->second->engine(cfg.backend);
    if (cfg.adaptive) {
        std::string why_not;
        if (!engine.supportsAdaptive(&why_not)) {
            throw std::invalid_argument(
                "tenant '" + cfg.name +
                "': adaptive serving unavailable on backend '" +
                engine.backendName() + "': stage '" + why_not +
                "' is not resumable");
        }
    }
    auto tenant = std::make_unique<Tenant>();
    tenant->cfg = std::move(cfg);
    tenant->engine = &engine;
    if (!tenant->cfg.adaptive && engine.supportsAdaptive()) {
        // Route full-length serving through the adaptive path under an
        // exitMargin=infinity policy — bit-identical to inferCohort —
        // so timeouts and watchdog kicks can cancel the run at
        // checkpoint-block granularity instead of at batch boundaries.
        tenant->cancellable = true;
        tenant->fullLengthPolicy.checkpointCycles = 256;
        tenant->fullLengthPolicy.exitMargin =
            std::numeric_limits<double>::infinity();
        tenant->fullLengthPolicy.minCycles = 0;
        tenant->fullLengthPolicy.deterministic = true;
    }
    tenantIndex_.emplace(tenant->cfg.name, tenants_.size());
    tenants_.push_back(std::move(tenant));
}

std::vector<std::string>
ServingFrontend::tenantNames() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(tenants_.size());
    for (const auto &t : tenants_)
        names.push_back(t->cfg.name);
    return names;
}

void
ServingFrontend::start()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    sealed_ = true;
    spawnWorkersLocked();
}

void
ServingFrontend::spawnWorkersLocked()
{
    if (workersRunning_)
        return;
    workersRunning_ = true;
    const auto now = std::chrono::steady_clock::now();
    slots_.reserve(static_cast<std::size_t>(workerCount_));
    for (int t = 0; t < workerCount_; ++t) {
        auto slot = std::make_unique<WorkerSlot>();
        slot->alive.store(true);
        slot->lastProgress = now;
        slot->thread =
            std::thread(&ServingFrontend::workerLoop, this, slot.get());
        slots_.push_back(std::move(slot));
    }
    watchdogThread_ = std::thread(&ServingFrontend::watchdogLoop, this);
}

double
ServingFrontend::Tenant::failureLoadLocked(
    std::chrono::steady_clock::time_point now) const
{
    if (failLoad <= 0.0)
        return 0.0;
    const double dt =
        std::chrono::duration<double>(now - failLoadAt).count();
    if (dt <= 0.0)
        return failLoad;
    return failLoad * std::exp2(-dt / kFailLoadHalfLifeSeconds);
}

void
ServingFrontend::Tenant::noteFailureLocked(
    std::chrono::steady_clock::time_point now)
{
    failLoad = failureLoadLocked(now) + kFailLoadPerEvent;
    failLoadAt = now;
}

ServingFrontend::Tenant &
ServingFrontend::tenantOrThrow(const std::string &name)
{
    const auto it = tenantIndex_.find(name);
    if (it == tenantIndex_.end())
        throw std::invalid_argument("unknown tenant '" + name + "'");
    return *tenants_[it->second];
}

const ServingFrontend::Tenant &
ServingFrontend::tenantOrThrow(const std::string &name) const
{
    const auto it = tenantIndex_.find(name);
    if (it == tenantIndex_.end())
        throw std::invalid_argument("unknown tenant '" + name + "'");
    return *tenants_[it->second];
}

std::future<ServedResult>
ServingFrontend::enqueueLocked(Tenant &tenant, nn::Tensor image)
{
    if (opts_.policy == SchedPolicy::WeightedFair &&
        tenant.queue.empty()) {
        // A tenant going busy re-enters at the current virtual time:
        // idle periods bank no credit, so a returning tenant cannot
        // monopolize the pool to "catch up".
        tenant.pass = std::max(tenant.pass, virtualTime_);
    }
    Request request;
    request.image = std::move(image);
    request.id = nextId_++;
    request.enqueued = std::chrono::steady_clock::now();
    request.deadline =
        tenant.cfg.deadlineSeconds > 0.0
            ? addSeconds(request.enqueued, tenant.cfg.deadlineSeconds)
            : std::chrono::steady_clock::time_point::max();
    request.expiry =
        tenant.cfg.timeoutSeconds > 0.0
            ? addSeconds(request.enqueued, tenant.cfg.timeoutSeconds)
            : core::RunControl::kNoDeadline;
    std::future<ServedResult> future = request.promise.get_future();
    tenant.queue.push_back(std::move(request));
    ++tenant.submitted;
    ++totalQueued_;
    tenant.queueDepthHighWater =
        std::max(tenant.queueDepthHighWater, tenant.queue.size());
    return future;
}

std::future<ServedResult>
ServingFrontend::submit(const std::string &tenant, nn::Tensor image)
{
    std::future<ServedResult> future;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        Tenant &t = tenantOrThrow(tenant);
        if (stopping_) {
            throw StatusError(
                StatusCode::Shutdown,
                "ServingFrontend is shut down: request rejected");
        }
        if (t.queue.size() >= t.cfg.queueCapacity) {
            ++t.rejected;
            throw StatusError(
                StatusCode::Overloaded,
                "tenant '" + tenant + "' queue is full (" +
                    std::to_string(t.cfg.queueCapacity) +
                    " pending): request rejected");
        }
        future = enqueueLocked(t, std::move(image));
    }
    notEmpty_.notify_one();
    return future;
}

std::optional<std::future<ServedResult>>
ServingFrontend::trySubmit(const std::string &tenant, nn::Tensor image)
{
    std::optional<std::future<ServedResult>> future;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        Tenant &t = tenantOrThrow(tenant);
        if (stopping_)
            return std::nullopt;
        if (t.queue.size() >= t.cfg.queueCapacity) {
            ++t.rejected;
            return std::nullopt;
        }
        future = enqueueLocked(t, std::move(image));
    }
    notEmpty_.notify_one();
    return future;
}

bool
ServingFrontend::hasEligibleWorkLocked(
    std::chrono::steady_clock::time_point now) const
{
    for (const auto &t : tenants_) {
        if (t->queue.empty())
            continue;
        const Request &head = t->queue.front();
        // Eligible: schedulable now, or already expired (a worker must
        // pick it up just to fail its future promptly).
        if (now > head.expiry || head.notBefore <= now)
            return true;
    }
    return false;
}

std::size_t
ServingFrontend::pickTenantLocked(
    std::chrono::steady_clock::time_point now) const
{
    std::size_t best = kNoTenant;
    double bestKey = 0.0;
    std::uint64_t bestSeq = 0;
    for (std::size_t i = 0; i < tenants_.size(); ++i) {
        const Tenant &t = *tenants_[i];
        if (t.queue.empty())
            continue;
        const Request &head = t.queue.front();
        if (!(now > head.expiry || head.notBefore <= now))
            continue; // head waiting out a retry backoff
        double key = 0.0;
        switch (opts_.policy) {
          case SchedPolicy::Fifo:
            key = 0.0; // arrival order only
            break;
          case SchedPolicy::Priority:
            key = -static_cast<double>(t.cfg.priority);
            break;
          case SchedPolicy::Edf:
            key = head.deadline ==
                          std::chrono::steady_clock::time_point::max()
                      ? std::numeric_limits<double>::infinity()
                      : std::chrono::duration<double>(
                            head.deadline.time_since_epoch())
                            .count();
            break;
          case SchedPolicy::WeightedFair:
            key = t.pass;
            break;
        }
        if (best == kNoTenant || key < bestKey ||
            (key == bestKey && head.id < bestSeq)) {
            best = i;
            bestKey = key;
            bestSeq = head.id;
        }
    }
    return best;
}

ServingFrontend::Batch
ServingFrontend::popBatchLocked(std::chrono::steady_clock::time_point now)
{
    Batch batch;
    const std::size_t idx = pickTenantLocked(now);
    if (idx == kNoTenant)
        return batch;
    Tenant &t = *tenants_[idx];
    batch.tenant = &t;
    batch.adaptive = t.cfg.adaptive;
    batch.cancellable = t.cancellable;
    batch.policy = t.cfg.adaptive ? t.cfg.policy : t.fullLengthPolicy;
    batch.seq = nextBatchSeq_++;

    // The load signal, sampled at dispatch: queue fill fraction; when
    // the tenant runs a deadline budget, how much of that budget the
    // head-of-line request has already burned waiting; and the decaying
    // failure pressure (failures/timeouts/retries degrade precision
    // early instead of piling retried work onto a struggling pool).
    if (t.cfg.shed.enabled) {
        const double fill =
            static_cast<double>(t.queue.size()) /
            static_cast<double>(t.cfg.queueCapacity);
        double load = fill;
        if (t.cfg.deadlineSeconds > 0.0) {
            const double headWait =
                std::chrono::duration<double>(now -
                                              t.queue.front().enqueued)
                    .count();
            load = std::max(load, headWait / t.cfg.deadlineSeconds);
        }
        load = std::max(load, std::min(1.0, t.failureLoadLocked(now)));
        const double f = std::clamp(
            (load - t.cfg.shed.startLoad) /
                (t.cfg.shed.fullLoad - t.cfg.shed.startLoad),
            0.0, 1.0);
        if (f > 0.0) {
            batch.shed = true;
            // Clamp: FP interpolation at f = 1 may land one ULP below
            // the configured floor, which the contract forbids.
            batch.policy.exitMargin = std::max(
                t.cfg.shed.marginFloor,
                batch.policy.exitMargin +
                    f * (t.cfg.shed.marginFloor - batch.policy.exitMargin));
            const double floorCycles =
                static_cast<double>(t.cfg.shed.minCyclesFloor);
            const double baseCycles =
                static_cast<double>(batch.policy.minCycles);
            batch.policy.minCycles = static_cast<std::size_t>(
                baseCycles + f * (floorCycles - baseCycles) + 0.5);
        }
    }

    // Drain up to maxBatch live requests.  Already-expired requests
    // siphon into batch.expired (failed before any engine work) without
    // consuming batch budget; a head waiting out its retry backoff
    // blocks the tenant's drain (keeps the id-order invariant).
    while (batch.requests.size() <
               static_cast<std::size_t>(opts_.maxBatch) &&
           !t.queue.empty()) {
        Request &head = t.queue.front();
        if (now > head.expiry) {
            batch.expired.push_back(std::move(head));
            t.queue.pop_front();
            --totalQueued_;
            continue;
        }
        if (head.notBefore > now)
            break;
        batch.requests.push_back(std::move(head));
        t.queue.pop_front();
        --totalQueued_;
    }
    inFlight_ += batch.requests.size() + batch.expired.size();
    if (opts_.policy == SchedPolicy::WeightedFair &&
        !batch.requests.empty()) {
        virtualTime_ = std::max(virtualTime_, t.pass);
        t.pass += static_cast<double>(batch.requests.size()) /
                  t.cfg.weight;
    }
    return batch;
}

void
ServingFrontend::workerLoop(WorkerSlot *slot)
{
    // One cohort arena per (worker, engine), built lazily on the first
    // batch of each tenant's engine and reused for the worker's
    // lifetime: steady-state serving allocates nothing in the stage
    // pipeline, and a front end with many tenants on one model shares
    // one arena per worker.
    std::map<const core::ScNetworkEngine *,
             std::unique_ptr<core::CohortWorkspace>>
        workspaces;

    for (;;) {
        Batch batch;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            for (;;) {
                if (stopping_ && totalQueued_ == 0) {
                    // Every queue drained.  In-flight work of other
                    // workers may still requeue a retry; the watchdog
                    // respawns a worker for it if so.
                    slot->alive.store(false);
                    drained_.notify_all();
                    return;
                }
                const auto now = std::chrono::steady_clock::now();
                if (totalQueued_ > 0 && hasEligibleWorkLocked(now))
                    break;
                if (totalQueued_ > 0) {
                    // Only backoff-delayed heads: poll for the nearest
                    // notBefore instead of sleeping until a submit.
                    notEmpty_.wait_for(lock, std::chrono::milliseconds(1));
                } else {
                    notEmpty_.wait(lock);
                }
            }
            batch = popBatchLocked(std::chrono::steady_clock::now());
        }
        failExpired(batch);
        if (batch.requests.empty())
            continue;
        slot->busy.store(true);
        bool crashed = false;
        try {
            auto &workspace = workspaces[batch.tenant->engine];
            if (!workspace) {
                workspace = std::make_unique<core::CohortWorkspace>(
                    *batch.tenant->engine, cohortCap_);
            }
            core::fault::injectThrow(FaultSite::WorkerCrash, batch.seq);
            serveBatchWith(batch, *workspace, slot);
        } catch (...) {
            // serveBatchWith disposes per-request failures itself, so
            // anything escaping it is a crash-class event: dispose what
            // the batch still owes, then let this thread die (the
            // watchdog joins and respawns it).
            recoverBatch(batch);
            crashed = true;
        }
        slot->busy.store(false);
        if (crashed) {
            slot->alive.store(false);
            return;
        }
    }
}

void
ServingFrontend::watchdogLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    while (!watchdogStop_) {
        watchdogCv_.wait_for(
            lock, std::chrono::duration<double>(opts_.watchdogSeconds));
        if (watchdogStop_)
            break;
        const auto now = std::chrono::steady_clock::now();
        ++watchdogTicks_;
        for (const auto &slotPtr : slots_) {
            WorkerSlot &slot = *slotPtr;
            if (!slot.alive.load()) {
                // Dead workers only unlock-and-return after clearing
                // alive, so this join cannot deadlock on mutex_.
                if (slot.thread.joinable())
                    slot.thread.join();
                if (!stopping_ || totalQueued_ > 0) {
                    slot.control.rearm(core::RunControl::kNoDeadline);
                    slot.lastBeats = slot.control.beats();
                    slot.lastProgress = now;
                    slot.busy.store(false);
                    slot.alive.store(true);
                    slot.thread = std::thread(&ServingFrontend::workerLoop,
                                              this, &slot);
                    ++respawns_;
                }
                continue;
            }
            if (!slot.busy.load()) {
                slot.lastBeats = slot.control.beats();
                slot.lastProgress = now;
                continue;
            }
            const std::uint64_t beats = slot.control.beats();
            if (beats != slot.lastBeats) {
                slot.lastBeats = beats;
                slot.lastProgress = now;
                continue;
            }
            if (std::chrono::duration<double>(now - slot.lastProgress)
                    .count() >= opts_.stallSeconds) {
                // Busy with frozen beats for a full stall window: kick.
                // The run aborts at its next checkpoint (or, for an
                // injected hang, at its next 1 ms slice) and the batch
                // falls back to per-request isolation.
                slot.control.requestCancel();
                ++watchdogKicks_;
                slot.lastProgress = now;
            }
        }
    }
}

void
ServingFrontend::serveBatchWith(Batch &batch,
                                core::CohortWorkspace &workspace,
                                WorkerSlot *slot)
{
    Tenant &tenant = *batch.tenant;
    const core::ScNetworkEngine &engine = *tenant.engine;
    // Adaptive tenants run their own policy; cancellable non-adaptive
    // tenants run the exitMargin=infinity policy through the same path
    // (bit-identical to inferCohort) so the RunControl can stop them.
    const bool adaptiveRun = batch.adaptive || batch.cancellable;
    const auto picked = std::chrono::steady_clock::now();

    for (std::size_t off = 0; off < batch.requests.size();
         off += cohortCap_) {
        const std::size_t count =
            std::min(cohortCap_, batch.requests.size() - off);
        const nn::Tensor *images[core::kMaxCohortImages];
        std::size_t ids[core::kMaxCohortImages];
        auto chunkExpiry = core::RunControl::kNoDeadline;
        for (std::size_t j = 0; j < count; ++j) {
            const Request &request = batch.requests[off + j];
            images[j] = &request.image;
            ids[j] = request.id;
            chunkExpiry = std::min(chunkExpiry, request.expiry);
        }
        // Fault keying: the chunk key folds the head request's attempt
        // number in, so a retried request draws a fresh decision (the
        // transient fault pattern, not the request, is what repeats).
        const std::uint64_t chunkKey =
            static_cast<std::uint64_t>(ids[0]) ^
            (static_cast<std::uint64_t>(batch.requests[off].attempt)
             << 40);

        core::ScPrediction preds[core::kMaxCohortImages];
        core::AdaptivePrediction apreds[core::kMaxCohortImages];
        bool cohortOk = true;
        try {
            slot->control.rearm(chunkExpiry);
            core::fault::injectDelay(FaultSite::WorkerHang, chunkKey,
                                     &slot->control);
            core::fault::injectDelay(FaultSite::WorkerSlowdown, chunkKey,
                                     &slot->control);
            core::fault::injectThrow(FaultSite::WorkerException, chunkKey);
            if (adaptiveRun)
                engine.inferAdaptiveCohort(images, ids, count, workspace,
                                           batch.policy, apreds,
                                           &slot->control);
            else
                engine.inferCohort(images, ids, count, workspace, preds);
        } catch (...) {
            cohortOk = false;
        }
        const auto done = std::chrono::steady_clock::now();
        const double serviceSeconds =
            std::chrono::duration<double>(done - picked).count();

        for (std::size_t j = 0; j < count; ++j) {
            Request &request = batch.requests[off + j];
            ServedResult served;
            served.requestId = request.id;
            served.adaptive = batch.adaptive;
            served.effectivePolicy = batch.policy;
            served.shed = batch.shed;
            served.deadlineSeconds = tenant.cfg.deadlineSeconds;
            served.attempts = request.attempt + 1;
            served.queueSeconds =
                std::chrono::duration<double>(picked - request.enqueued)
                    .count();
            // Execution is cohort-granular: the measured service time
            // is shared by every request of the cohort.
            served.serviceSeconds = serviceSeconds;
            served.deadlineMissed = done > request.deadline;
            if (!cohortOk) {
                // Isolate the failure: re-run this request as a cohort
                // of one (bit-identical result: the requestId is the
                // seed), so one bad request cannot fail its
                // cohort-mates.  Its own failure is disposed through
                // the retry/quarantine policy.
                try {
                    if (std::chrono::steady_clock::now() > request.expiry)
                        throw StatusError(
                            StatusCode::Timeout,
                            "request " + std::to_string(request.id) +
                                " deadline elapsed during service");
                    slot->control.rearm(request.expiry);
                    core::fault::injectThrow(
                        FaultSite::WorkerException,
                        static_cast<std::uint64_t>(request.id) ^
                            0x517CC1B727220A95ull ^
                            (static_cast<std::uint64_t>(request.attempt)
                             << 40));
                    if (adaptiveRun)
                        engine.inferAdaptiveCohort(&images[j], &ids[j], 1,
                                                   workspace, batch.policy,
                                                   &apreds[j],
                                                   &slot->control);
                    else
                        engine.inferCohort(&images[j], &ids[j], 1,
                                           workspace, &preds[j]);
                } catch (...) {
                    disposeFailure(tenant, std::move(request),
                                   Status::fromCurrentException());
                    batch.firstPending = off + j + 1;
                    continue;
                }
            }
            if (batch.adaptive) {
                served.prediction = std::move(apreds[j].prediction);
                served.consumedCycles = apreds[j].consumedCycles;
                served.exitedEarly = apreds[j].exitedEarly;
            } else if (adaptiveRun) {
                served.prediction = std::move(apreds[j].prediction);
                served.consumedCycles = engine.plan().fullRunCycles();
            } else {
                served.prediction = std::move(preds[j]);
                served.consumedCycles = engine.plan().fullRunCycles();
            }
            // Count before fulfilling: a caller returning from
            // future.get() must already see itself in stats().
            {
                const std::lock_guard<std::mutex> lock(mutex_);
                served.completionSeq = nextCompletionSeq_++;
                ++tenant.completed;
                tenant.consumedCycles += served.consumedCycles;
                if (served.exitedEarly)
                    ++tenant.earlyExits;
                if (served.shed)
                    ++tenant.shedServed;
                if (served.deadlineMissed)
                    ++tenant.deadlineMissed;
                tenant.queueHist.record(served.queueSeconds);
                tenant.serviceHist.record(served.serviceSeconds);
                --inFlight_;
                if (totalQueued_ == 0 && inFlight_ == 0)
                    drained_.notify_all();
            }
            try {
                request.promise.set_value(std::move(served));
            } catch (const std::future_error &) {
                // Already satisfied: nothing left to deliver.
            }
            batch.firstPending = off + j + 1;
        }
    }
}

void
ServingFrontend::failExpired(Batch &batch)
{
    if (batch.expired.empty())
        return;
    Tenant &tenant = *batch.tenant;
    const auto now = std::chrono::steady_clock::now();
    for (Request &request : batch.expired) {
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++nextCompletionSeq_;
            ++tenant.failed;
            ++tenant.timedOut;
            tenant.noteFailureLocked(now);
            --inFlight_;
            if (totalQueued_ == 0 && inFlight_ == 0)
                drained_.notify_all();
        }
        fulfillException(
            request.promise,
            Status{StatusCode::Timeout,
                   "request " + std::to_string(request.id) +
                       " expired in the queue before a worker picked "
                       "it up"});
    }
    batch.expired.clear();
}

void
ServingFrontend::disposeFailure(Tenant &tenant, Request &&request,
                                const core::Status &status)
{
    const auto now = std::chrono::steady_clock::now();
    if (status.transient() && request.attempt < tenant.cfg.maxRetries) {
        bool notify = false;
        {
            const std::lock_guard<std::mutex> lock(mutex_);
            ++request.attempt;
            request.notBefore = addSeconds(
                now, tenant.cfg.retryBackoffSeconds *
                         std::exp2(static_cast<double>(request.attempt -
                                                       1)));
            // Requeue in id order (the tenant-queue invariant): the
            // retried request re-enters ahead of younger requests, not
            // at the tail, so retries cannot starve behind fresh load.
            const auto pos = std::upper_bound(
                tenant.queue.begin(), tenant.queue.end(), request.id,
                [](std::uint64_t id, const Request &r) {
                    return id < r.id;
                });
            tenant.queue.insert(pos, std::move(request));
            ++totalQueued_;
            --inFlight_;
            ++tenant.retried;
            tenant.noteFailureLocked(now);
            notify = true;
        }
        if (notify)
            notEmpty_.notify_one();
        return;
    }
    Status terminal = status;
    if (status.transient()) {
        terminal = Status{
            StatusCode::Quarantined,
            "request " + std::to_string(request.id) +
                " quarantined after " +
                std::to_string(request.attempt + 1) +
                " failed attempts; last failure: " + status.toString()};
    }
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++nextCompletionSeq_;
        ++tenant.failed;
        if (terminal.code == StatusCode::Timeout)
            ++tenant.timedOut;
        if (terminal.code == StatusCode::Quarantined)
            ++tenant.quarantined;
        tenant.noteFailureLocked(now);
        --inFlight_;
        if (totalQueued_ == 0 && inFlight_ == 0)
            drained_.notify_all();
    }
    fulfillException(request.promise, terminal);
}

void
ServingFrontend::recoverBatch(Batch &batch)
{
    // failExpired already ran (before anything could throw), so the
    // batch only owes its not-yet-disposed live requests.
    for (std::size_t i = batch.firstPending; i < batch.requests.size();
         ++i) {
        Request &request = batch.requests[i];
        const Status status{StatusCode::WorkerCrashed,
                            "worker thread died while serving request " +
                                std::to_string(request.id) + "'s batch"};
        disposeFailure(*batch.tenant, std::move(request), status);
    }
    batch.firstPending = batch.requests.size();
}

void
ServingFrontend::shutdown()
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
        // A never-started (startPaused) front end may hold accepted
        // requests; spin the pool up so the drain contract holds.
        spawnWorkersLocked();
    }
    notEmpty_.notify_all();
    const std::lock_guard<std::mutex> join_lock(joinMutex_);
    {
        // Drain: queued AND in-flight both zero.  In-flight failures
        // may requeue (retry), so neither alone proves completion.
        // Poll under the watchdog in case a drain notify is lost to a
        // respawn race.
        std::unique_lock<std::mutex> lock(mutex_);
        while (totalQueued_ > 0 || inFlight_ > 0)
            drained_.wait_for(lock, std::chrono::milliseconds(10));
        watchdogStop_ = true;
    }
    watchdogCv_.notify_all();
    if (watchdogThread_.joinable())
        watchdogThread_.join();
    // The watchdog is gone: no more respawns.  Wake every idle worker
    // (stopping_ + empty queues = exit) and join the pool.
    notEmpty_.notify_all();
    for (const auto &slot : slots_) {
        if (slot->thread.joinable())
            slot->thread.join();
    }
}

bool
ServingFrontend::accepting() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return !stopping_;
}

TenantStats
ServingFrontend::tenantStats(const std::string &tenant) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const Tenant &t = tenantOrThrow(tenant);
    TenantStats s;
    s.submitted = t.submitted;
    s.rejected = t.rejected;
    s.completed = t.completed;
    s.failed = t.failed;
    s.timedOut = t.timedOut;
    s.retried = t.retried;
    s.quarantined = t.quarantined;
    s.earlyExits = t.earlyExits;
    s.shedServed = t.shedServed;
    s.deadlineMissed = t.deadlineMissed;
    s.avgConsumedCycles =
        t.completed == 0 ? 0.0
                         : static_cast<double>(t.consumedCycles) /
                               static_cast<double>(t.completed);
    s.queueDepth = t.queue.size();
    s.queueDepthHighWater = t.queueDepthHighWater;
    s.queueHistogram = t.queueHist;
    s.serviceHistogram = t.serviceHist;
    return s;
}

HealthSnapshot
ServingFrontend::health() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    HealthSnapshot h;
    h.workersConfigured = workerCount_;
    for (const auto &slot : slots_) {
        if (slot->alive.load())
            ++h.workersAlive;
        if (slot->busy.load())
            ++h.workersBusy;
    }
    h.respawns = respawns_;
    h.watchdogKicks = watchdogKicks_;
    h.watchdogTicks = watchdogTicks_;
    for (const auto &t : tenants_) {
        h.failed += t->failed;
        h.timedOut += t->timedOut;
        h.retried += t->retried;
        h.quarantined += t->quarantined;
    }
    h.planCache = core::PlanCache::instance().stats();
    return h;
}

} // namespace aqfpsc::serving
