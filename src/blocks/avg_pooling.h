/**
 * @file
 * Sorter-based average-pooling (sub-sampling) block (Sec. 4.3,
 * Algorithm 2, Fig. 14).
 *
 * The block emits one 1 in the output stream for every M input 1s, so
 * value(SO) = mean_j value(in_j) exactly up to the +/-1 carried remainder
 * -- far more accurate than the MUX-based pooling of the CMOS prior art
 * (which subsamples 1 of M inputs randomly per cycle; see
 * baseline::MuxAveragePooling and the pooling ablation bench).
 *
 * Representations mirror FeatureExtractionBlock: fast counter-form run(),
 * literal sorted-vector runLiteral(), and a gate-level buildNetlist()
 * (M-input sorter, 2M merger, and the output-selected feedback MUX row).
 */

#ifndef AQFPSC_BLOCKS_AVG_POOLING_H
#define AQFPSC_BLOCKS_AVG_POOLING_H

#include <vector>

#include "aqfp/netlist.h"
#include "sc/bitstream.h"
#include "sorting/bitonic.h"

namespace aqfpsc::blocks {

/** Sorter-based average-pooling block. */
class AvgPoolingBlock
{
  public:
    /** @param m Number of pooled input streams (>= 1). */
    explicit AvgPoolingBlock(int m);

    /** Number of pooled inputs. */
    int m() const { return m_; }

    /** Functional model: Algorithm 2 over the input streams. */
    sc::Bitstream run(const std::vector<sc::Bitstream> &inputs) const;

    /** Literal Algorithm 2 through an explicit bitonic network. */
    sc::Bitstream
    runLiteral(const std::vector<sc::Bitstream> &inputs,
               sorting::SortKind kind = sorting::SortKind::Generalized) const;

    /**
     * Gate-level netlist of one slice.  Primary inputs: in[0..m), then
     * fb[0..m).  Primary outputs: SO, then fb_next[0..m) (the MUX row
     * selects between sorted slices [0..m) and [m..2m) based on SO).
     */
    static aqfp::Netlist
    buildNetlist(int m,
                 sorting::SortKind kind = sorting::SortKind::Generalized);

  private:
    int m_;
};

} // namespace aqfpsc::blocks

#endif // AQFPSC_BLOCKS_AVG_POOLING_H
