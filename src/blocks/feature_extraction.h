/**
 * @file
 * Sorter-based feature-extraction block (Sec. 4.2, Algorithm 1, Fig. 12).
 *
 * The block integrates inner-product summation and the activation function
 * without any accumulator: each cycle, the fresh column of XNOR product
 * bits and the M-bit feedback vector are sorted; the middle bit becomes
 * the output stream bit and the M bits below it feed back.  The resulting
 * stream SO satisfies value(SO) = clip(sum_j x_j * w_j + b, -1, 1) -- a
 * hard-tanh in the bipolar value domain, equivalently a shifted, clipped
 * ReLU in the ones-count domain (Fig. 13).
 *
 * Even input counts are padded with the neutral 0101... stream of bipolar
 * value 0 so that (M-1)/2 is integral, exactly as the paper prescribes.
 *
 * Three representations are provided:
 *  - run(): fast functional model (counter form; the reference for all
 *    accuracy experiments and network inference);
 *  - runLiteral(): the literal Algorithm 1 with an explicit bitonic
 *    sorting network, used to validate run();
 *  - buildNetlist(): gate-level AQFP netlist of one pipeline slice (XNOR
 *    multipliers, column sorter, 2M merger), consumed by the hardware
 *    benches and the phase-accurate simulator.
 */

#ifndef AQFPSC_BLOCKS_FEATURE_EXTRACTION_H
#define AQFPSC_BLOCKS_FEATURE_EXTRACTION_H

#include <vector>

#include "aqfp/netlist.h"
#include "sc/bitstream.h"
#include "sorting/bitonic.h"

namespace aqfpsc::blocks {

/** Sorter-based feature-extraction block. */
class FeatureExtractionBlock
{
  public:
    /**
     * @param m Number of product streams the block sums (bias included
     *          by the caller as an extra product).  Any m >= 1.
     */
    explicit FeatureExtractionBlock(int m);

    /** Number of product inputs as constructed. */
    int m() const { return m_; }

    /** Sorter data width after neutral padding (odd). */
    int effectiveM() const { return effM_; }

    /**
     * Functional model: run Algorithm 1 over the product streams
     * (all the same length).  products.size() must equal m().
     */
    sc::Bitstream run(const std::vector<sc::Bitstream> &products) const;

    /**
     * Convenience: XNOR-multiply inputs and weights pairwise, then run.
     * x.size() == w.size() == m().
     */
    sc::Bitstream runInnerProduct(const std::vector<sc::Bitstream> &x,
                                  const std::vector<sc::Bitstream> &w) const;

    /**
     * Literal Algorithm 1: explicit sorted-vector bookkeeping through a
     * bitonic network.  Bit-exact equal to run(); O(M log^2 M) per cycle.
     */
    sc::Bitstream
    runLiteral(const std::vector<sc::Bitstream> &products,
               sorting::SortKind kind = sorting::SortKind::Generalized) const;

    /**
     * Build the gate-level netlist of one block slice.
     *
     * Primary inputs, in order: x[0..m), w[0..m), then (m even) one
     * neutral input, then fb[0..effM).  Primary outputs, in order: SO,
     * then fb_next[0..effM).  The feedback loop is closed externally
     * (see DESIGN.md Sec. 5.2 on C-slow operation).
     *
     * @param m Number of products.
     * @param kind Sorting-network construction.
     * @param with_multipliers When false the netlist takes product bits
     *        directly (inputs p[0..m)) instead of x/w pairs.
     */
    static aqfp::Netlist
    buildNetlist(int m, sorting::SortKind kind = sorting::SortKind::Generalized,
                 bool with_multipliers = true);

  private:
    int m_;
    int effM_;
};

} // namespace aqfpsc::blocks

#endif // AQFPSC_BLOCKS_FEATURE_EXTRACTION_H
