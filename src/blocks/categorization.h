/**
 * @file
 * Majority-chain categorization block for FC layers (Sec. 4.4, Fig. 15).
 *
 * Each output of a final FC layer only needs to preserve the *ranking*
 * of the class scores, not the exact inner product.  The block therefore
 * replaces the sorter with a chain of 3-input majority gates folded over
 * the XNOR product bits of one cycle:
 *
 *   Maj(x0, x1, x2, x3, x4, ...) = Maj(Maj(Maj(x0, x1, x2), x3, x4), ...)
 *
 * (the paper's factorization; note the chained form is an approximation
 * of the flat multi-input majority -- it weighs early inputs less -- but
 * it is monotone in every input, which is what preserves ranking).  In
 * AQFP a 3-input majority costs the same 6 JJs as a 2-input AND/OR, so
 * the block is linear in size and extremely cheap.
 *
 * Even input counts are padded with the neutral stream; so is the final
 * partial stage when fewer than two fresh inputs remain.
 */

#ifndef AQFPSC_BLOCKS_CATEGORIZATION_H
#define AQFPSC_BLOCKS_CATEGORIZATION_H

#include <vector>

#include "aqfp/netlist.h"
#include "sc/bitstream.h"

namespace aqfpsc::blocks {

/** Majority-chain categorization block. */
class CategorizationBlock
{
  public:
    /** @param k Number of product inputs (>= 1). */
    explicit CategorizationBlock(int k);

    /** Number of product inputs. */
    int k() const { return k_; }

    /** Number of Maj3 stages in the chain. */
    int chainLength() const;

    /** Functional model: fold the majority chain over product streams. */
    sc::Bitstream run(const std::vector<sc::Bitstream> &products) const;

    /** Convenience: XNOR-multiply x and w pairwise, then run. */
    sc::Bitstream runInnerProduct(const std::vector<sc::Bitstream> &x,
                                  const std::vector<sc::Bitstream> &w) const;

    /**
     * Gate-level netlist.  Primary inputs: x[0..k), w[0..k), then one
     * neutral input if the chain needs padding.  Primary output: SO.
     */
    static aqfp::Netlist buildNetlist(int k, bool with_multipliers = true);

  private:
    int k_;
};

} // namespace aqfpsc::blocks

#endif // AQFPSC_BLOCKS_CATEGORIZATION_H
