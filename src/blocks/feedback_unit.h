/**
 * @file
 * Counter-form equivalents of the paper's sorter + feedback loops.
 *
 * Both Algorithm 1 (feature extraction) and Algorithm 2 (average pooling)
 * sort [current column | previous feedback] descending and slice the
 * result.  A descending-sorted binary vector of length 2M containing s
 * ones has bit p (0-indexed) equal to (s > p), so each algorithm reduces
 * to integer bookkeeping on s = column_ones + feedback_ones.
 *
 * Feature extraction realizes Eq. (3) of the paper: the n-th output bit
 * is set when the running accumulation of D_i = col_i - (M-1)/2 - SO_i
 * is positive.  A feedback vector can only store a non-negative count,
 * so the accumulator is kept with a +(M-1)/2 *offset*: the carry's
 * operating point is c* = (M-1)/2, deficits swing it toward 0 and
 * surpluses toward M.  Concretely, per cycle:
 *
 *    out = (s >= M)                        (sorted bit M-1)
 *    c'  = clamp(s - (M-1)/2 - out, 0, M)  (slice selected by out:
 *                                           [(M+1)/2 ..) if out else
 *                                           [(M-1)/2 ..))
 *    c0  = (M-1)/2                         (operating-point init)
 *
 * so that sum(SO) tracks clip(sum(col) - (M-1)/2 * N, 0, N) (Eq. (2)) and
 * value(SO) = clip(sum_j x_j w_j, -1, 1) in the bipolar domain.  Note
 * Algorithm 1 as printed initializes the feedback to zero and keeps a
 * fixed slice; with a fixed slice the carry cannot represent deficits
 * and the output acquires a large positive bias (O(sigma^2/drift) ones
 * per stream), contradicting the paper's own Table 1 -- see
 * tests/test_blocks.cc (MarkovSpec).  The offset
 * reading is the one consistent with Eq. (2)/(3) and with the reported
 * accuracy, and costs the same hardware as the pooling block's
 * output-selected feedback mux (Fig. 14).
 *
 * Average pooling (Algorithm 2) needs no offset -- it only ever tracks a
 * non-negative remainder:
 *
 *    out = (s >= M)
 *    c'  = out ? s - M : s
 *
 * These counter forms are what the fast functional models and the
 * whole-network SC inference engine execute; unit tests assert bit-exact
 * equivalence against the literal sorted-vector procedure and against
 * the gate-level netlists.
 */

#ifndef AQFPSC_BLOCKS_FEEDBACK_UNIT_H
#define AQFPSC_BLOCKS_FEEDBACK_UNIT_H

#include <algorithm>
#include <cassert>

namespace aqfpsc::blocks {

/** Counter form of the feature-extraction sorter + feedback loop. */
class FeatureFeedbackUnit
{
  public:
    /** @param m Number of sorter data inputs; must be odd. */
    explicit FeatureFeedbackUnit(int m) : m_(m), carry_((m - 1) / 2)
    {
        assert(m >= 1 && m % 2 == 1);
    }

    /** Process one column; @p column_ones in [0, m]. Returns the SO bit. */
    bool
    step(int column_ones)
    {
        assert(column_ones >= 0 && column_ones <= m_);
        const int s = column_ones + carry_;
        const bool out = s >= m_;
        carry_ = std::clamp(s - (m_ - 1) / 2 - (out ? 1 : 0), 0, m_);
        return out;
    }

    /** Ones currently held in the feedback vector. */
    int carry() const { return carry_; }

    /** Reset the feedback vector to the operating point (M-1)/2. */
    void reset() { carry_ = (m_ - 1) / 2; }

    /**
     * Re-arm for a (possibly different) input count @p m — equivalent to
     * constructing FeatureFeedbackUnit(m), without the per-use object
     * churn in the inference inner loops (conv border windows change M
     * per output pixel).
     */
    void
    reset(int m)
    {
        assert(m >= 1 && m % 2 == 1);
        m_ = m;
        carry_ = (m - 1) / 2;
    }

    /**
     * Re-arm for input count @p m with an explicit feedback count —
     * resumes a block-wise (checkpointed) execution exactly where a
     * previous block's carry() left off, so processing a stream in
     * 64-cycle-aligned blocks is bit-identical to one uninterrupted
     * pass.
     */
    void
    restore(int m, int carry)
    {
        assert(m >= 1 && m % 2 == 1);
        assert(carry >= 0 && carry <= m);
        m_ = m;
        carry_ = carry;
    }

    int m() const { return m_; }

  private:
    int m_;
    int carry_;
};

/** Counter form of Algorithm 2's sorter + half feedback loop. */
class PoolingFeedbackUnit
{
  public:
    /** @param m Number of pooled inputs (>= 1). */
    explicit PoolingFeedbackUnit(int m) : m_(m) { assert(m >= 1); }

    /** Process one column; @p column_ones in [0, m]. Returns the SO bit. */
    bool
    step(int column_ones)
    {
        assert(column_ones >= 0 && column_ones <= m_);
        const int s = column_ones + carry_;
        const bool out = s >= m_;
        carry_ = out ? s - m_ : s;
        return out;
    }

    /** Ones currently held in the feedback vector. */
    int carry() const { return carry_; }

    /** Reset the feedback vector to all zeros. */
    void reset() { carry_ = 0; }

    /** Re-arm for input count @p m (== constructing PoolingFeedbackUnit(m)). */
    void
    reset(int m)
    {
        assert(m >= 1);
        m_ = m;
        carry_ = 0;
    }

    /** Re-arm with an explicit remainder count — resumes a block-wise
     *  execution from a previous block's carry() (see
     *  FeatureFeedbackUnit::restore). */
    void
    restore(int m, int carry)
    {
        assert(m >= 1);
        assert(carry >= 0 && carry < m);
        m_ = m;
        carry_ = carry;
    }

    int m() const { return m_; }

  private:
    int m_;
    int carry_ = 0;
};

} // namespace aqfpsc::blocks

#endif // AQFPSC_BLOCKS_FEEDBACK_UNIT_H
